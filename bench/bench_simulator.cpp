// E7 — substrate viability: state-vector kernel throughput. Regenerates the
// gate-cost table (time per gate vs qubit count; the shape is ~2^n per
// 1-qubit gate) that justifies using this simulator as the Qiskit-Aer
// replacement for every other experiment.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "qutes/common/rng.hpp"
#include "qutes/sim/statevector.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;

void print_summary() {
  std::printf("=== E7: single-qubit gate cost vs register size ===\n");
  std::printf("%6s %14s | %14s %16s\n", "n", "amplitudes", "h_gate_us",
              "amps_per_us");
  for (std::size_t n = 8; n <= 22; n += 2) {
    StateVector sv(n);
    const int reps = n <= 16 ? 200 : 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) sv.apply_1q(gates::H(), r % n);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
    std::printf("%6zu %14llu | %14.2f %16.1f\n", n,
                static_cast<unsigned long long>(sv.dim()), us,
                static_cast<double>(sv.dim()) / us);
  }
  std::printf("shape check: h_gate_us doubles per qubit (O(2^n) amplitudes), "
              "amps_per_us roughly flat once out of cache-resident sizes\n\n");
}

void BM_Hadamard(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_1q(gates::H(), q);
    q = (q + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Hadamard)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(22);

void BM_CxGate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_controlled_1q(gates::X(), q, (q + 1) % n);
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_CxGate)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Toffoli(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  const std::size_t controls[2] = {0, 1};
  for (auto _ : state) {
    sv.apply_multi_controlled_1q(gates::X(), controls, 2);
  }
}
BENCHMARK(BM_Toffoli)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_PhaseKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    sv.apply_phase(0.1, 3);
  }
}
BENCHMARK(BM_PhaseKernel)->Arg(12)->Arg(16)->Arg(20);

void BM_SwapKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    sv.apply_swap(0, n - 1);
  }
}
BENCHMARK(BM_SwapKernel)->Arg(12)->Arg(16)->Arg(20);

void BM_Probability(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.probability_one(n / 2));
  }
}
BENCHMARK(BM_Probability)->Arg(12)->Arg(16)->Arg(20);

void BM_SampleCounts(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.sample_counts(1024, rng));
  }
}
BENCHMARK(BM_SampleCounts)->Arg(8)->Arg(12)->Arg(16);

void BM_MeasureCollapse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    StateVector sv(n);
    for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sv.measure(0, rng));
  }
}
BENCHMARK(BM_MeasureCollapse)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
