// E7 — substrate viability: state-vector kernel throughput. Regenerates the
// gate-cost table (time per gate vs qubit count; the shape is ~2^n per
// 1-qubit gate) that justifies using this simulator as the Qiskit-Aer
// replacement for every other experiment.
#include <benchmark/benchmark.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/fusion.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/kernels.hpp"
#include "qutes/sim/statevector.hpp"
#include "qutes/testing/generators.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;

void print_summary() {
  std::printf("=== E7: single-qubit gate cost vs register size ===\n");
  std::printf("%6s %14s | %14s %16s\n", "n", "amplitudes", "h_gate_us",
              "amps_per_us");
  for (std::size_t n = 8; n <= 22; n += 2) {
    StateVector sv(n);
    const int reps = n <= 16 ? 200 : 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) sv.apply_1q(gates::H(), r % n);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
    std::printf("%6zu %14llu | %14.2f %16.1f\n", n,
                static_cast<unsigned long long>(sv.dim()), us,
                static_cast<double>(sv.dim()) / us);
  }
  std::printf("shape check: h_gate_us doubles per qubit (O(2^n) amplitudes), "
              "amps_per_us roughly flat once out of cache-resident sizes\n\n");
}

int bench_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// The shared brickwork workload (qutes::testing::brickwork_circuit):
/// alternating layers of U3 on every qubit and a CX ring with alternating
/// offset — the standard fusion-friendly workload, identical to what the
/// fusion tests exercise.
circ::QuantumCircuit brickwork(std::size_t n, std::size_t depth,
                               std::uint64_t seed) {
  return qutes::testing::brickwork_circuit(n, depth, seed);
}

/// Evolve a zero state through a prebuilt fusion plan of `c`; returns wall ms.
double evolve_through_plan_ms(const circ::QuantumCircuit& c,
                              const circ::FusionPlan& plan) {
  StateVector sv(c.num_qubits());
  std::uint64_t scratch = 0;
  Rng rng(0);
  const auto t0 = std::chrono::steady_clock::now();
  for (const circ::FusedOp& op : plan.ops) {
    if (op.fused) {
      sv.apply_kq(op.matrix, op.qubits);
    } else {
      circ::apply_instruction(sv, c.instructions()[op.instruction], scratch,
                              rng);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

circ::FusionPlan plan_with(const circ::QuantumCircuit& c, std::size_t max_fused,
                           bool coalesce) {
  circ::FusionOptions options;
  options.max_fused_qubits = max_fused;
  options.coalesce_blocks = coalesce;
  return build_fusion_plan(c.instructions(), options);
}

circ::QuantumCircuit reorder_commuting(const circ::QuantumCircuit& c) {
  circ::PassManager pm;
  pm.emplace<circ::ReorderCommuting>();
  return pm.run(c);
}

std::string histogram_json(const std::map<std::size_t, std::size_t>& hist) {
  std::string out = "{";
  for (const auto& [width, blocks] : hist) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += std::to_string(width);
    out += "\":";
    out += std::to_string(blocks);
  }
  return out + "}";
}

/// Machine-readable fusion comparison, collected into BENCH_fusion.json by
/// scripts/run_experiments.sh. One line per workload size with four
/// configurations measured on the same circuit:
///   unfused        — gate-at-a-time replay, portable kernels;
///   fused          — legacy planner shape (max width 4, no coalescing),
///                    portable kernels;
///   fused+reorder  — ReorderCommuting before planning, default planner
///                    (width 5, flush-time coalescing), portable kernels;
///   +simd          — same plan on the best ISA the CPU has.
void print_fusion_json() {
  namespace kn = sim::kernels;
  std::printf("=== fusion engine: brickwork evolution, fused vs unfused ===\n");
  for (const std::size_t n : {16u, 20u, 22u}) {
    const std::size_t depth = 8;
    const circ::QuantumCircuit c = brickwork(n, depth, 42 + n);
    const circ::QuantumCircuit reordered = reorder_commuting(c);
    const circ::FusionPlan plan_unfused = plan_with(c, 1, false);
    const circ::FusionPlan plan_fused = plan_with(c, 4, false);
    const circ::FusionPlan plan_reorder =
        build_fusion_plan(reordered.instructions(), circ::FusionOptions{});
    // min-of-reps, interleaved: every config sees the same machine noise, and
    // the min discards scheduler hiccups (this often runs on shared boxes).
    const int reps = n <= 16 ? 7 : 3;
    double unfused_ms = 1e300, fused_ms = 1e300, reorder_ms = 1e300,
           simd_ms = 1e300;
    evolve_through_plan_ms(c, plan_unfused);  // warm the allocator/page cache
    for (int r = 0; r < reps; ++r) {
      kn::force_isa(kn::Isa::Portable);
      unfused_ms = std::min(unfused_ms, evolve_through_plan_ms(c, plan_unfused));
      fused_ms = std::min(fused_ms, evolve_through_plan_ms(c, plan_fused));
      reorder_ms =
          std::min(reorder_ms, evolve_through_plan_ms(reordered, plan_reorder));
      kn::reset_isa();
      simd_ms =
          std::min(simd_ms, evolve_through_plan_ms(reordered, plan_reorder));
    }
    const double gates_per_sec =
        static_cast<double>(c.size()) / (simd_ms / 1000.0);
    std::printf("BENCH_JSON {\"bench\":\"simulator\",\"workload\":"
                "\"brickwork\",\"qubits\":%zu,\"gates\":%zu,\"threads\":%d,"
                "\"isa\":\"%s\",\"unfused_ms\":%.3f,\"fused_ms\":%.3f,"
                "\"fused_reorder_ms\":%.3f,\"fused_reorder_simd_ms\":%.3f,"
                "\"speedup\":%.3f,\"speedup_vs_fused\":%.3f,"
                "\"gates_per_sec\":%.1f,\"blocks\":%s}\n",
                n, c.size(), bench_threads(), kn::isa_name(kn::active_isa()),
                unfused_ms, fused_ms, reorder_ms, simd_ms,
                unfused_ms / simd_ms, fused_ms / simd_ms, gates_per_sec,
                histogram_json(plan_reorder.width_histogram).c_str());
  }
  std::printf("shape check: fused_reorder_simd_ms <= fused_ms / 2 at n >= 20 "
              "(wider coalesced blocks + vector kernels), speedup vs unfused "
              "> 2x\n\n");
}

/// QUTES_PERF_SMOKE=1: quick pass/fail guard wired into scripts/check.sh.
/// Compares the portable gate-at-a-time path against the full pipeline
/// (reorder + coalescing planner + best ISA) on one mid-size brickwork
/// circuit and fails the process when the speedup drops below the floor — a
/// regression tripwire for the kernel/fusion stack, not a benchmark.
int run_perf_smoke() {
  namespace kn = sim::kernels;
  constexpr double kFloor = 1.3;
  const std::size_t n = 16, depth = 8;
  const circ::QuantumCircuit c = brickwork(n, depth, 42 + n);
  const circ::QuantumCircuit reordered = reorder_commuting(c);
  const circ::FusionPlan plan_unfused = plan_with(c, 1, false);
  const circ::FusionPlan plan_reorder =
      build_fusion_plan(reordered.instructions(), circ::FusionOptions{});
  double unfused_ms = 1e300, simd_ms = 1e300;
  evolve_through_plan_ms(c, plan_unfused);
  for (int r = 0; r < 5; ++r) {
    kn::force_isa(kn::Isa::Portable);
    unfused_ms = std::min(unfused_ms, evolve_through_plan_ms(c, plan_unfused));
    kn::reset_isa();
    simd_ms = std::min(simd_ms, evolve_through_plan_ms(reordered, plan_reorder));
  }
  const double speedup = unfused_ms / simd_ms;
  std::printf("PERF_SMOKE {\"qubits\":%zu,\"isa\":\"%s\",\"unfused_ms\":%.3f,"
              "\"fused_reorder_simd_ms\":%.3f,\"speedup\":%.3f,\"floor\":%.2f,"
              "\"pass\":%s}\n",
              n, kn::isa_name(kn::active_isa()), unfused_ms, simd_ms, speedup,
              kFloor, speedup >= kFloor ? "true" : "false");
  if (speedup < kFloor) {
    std::fprintf(stderr,
                 "perf smoke FAILED: fused+reorder+simd speedup %.3f is below "
                 "the %.2f floor\n",
                 speedup, kFloor);
    return 1;
  }
  return 0;
}

/// Machine-readable obs snapshot: run one executor workload with metrics on
/// and emit the registry verbatim (collected into BENCH_obs.json by
/// scripts/run_experiments.sh, same names as --metrics-json). Metrics are
/// switched off again before the timing benchmarks run.
void print_obs_json() {
  std::printf("=== observability: metric snapshot of one executor run ===\n");
  obs::set_metrics_enabled(true);
  for (const std::size_t n : {12u, 16u}) {
    obs::reset_metrics();
    qutes::RunConfig options;
    options.shots = 256;
    options.seed = 7;
    const circ::QuantumCircuit c = brickwork(n, 8, 42 + n);
    (void)circ::Executor(options).run(c);
    std::string metrics = obs::export_metrics_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    std::printf("BENCH_JSON_OBS {\"bench\":\"simulator\",\"workload\":"
                "\"brickwork\",\"qubits\":%zu,\"gates\":%zu,\"shots\":%zu,"
                "\"threads\":%d,\"metrics\":%s}\n",
                n, c.size(), options.shots, bench_threads(),
                metrics.c_str());
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
  std::printf("shape check: sv.gates_applied = fused blocks + unfused "
              "instructions, executor.shots matches the request\n\n");
}

void BM_Hadamard(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_1q(gates::H(), q);
    q = (q + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Hadamard)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(22);

void BM_CxGate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  std::size_t q = 0;
  for (auto _ : state) {
    sv.apply_controlled_1q(gates::X(), q, (q + 1) % n);
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_CxGate)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_Toffoli(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  const std::size_t controls[2] = {0, 1};
  for (auto _ : state) {
    sv.apply_multi_controlled_1q(gates::X(), controls, 2);
  }
}
BENCHMARK(BM_Toffoli)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_PhaseKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    sv.apply_phase(0.1, 3);
  }
}
BENCHMARK(BM_PhaseKernel)->Arg(12)->Arg(16)->Arg(20);

void BM_SwapKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    sv.apply_swap(0, n - 1);
  }
}
BENCHMARK(BM_SwapKernel)->Arg(12)->Arg(16)->Arg(20);

void BM_Probability(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.probability_one(n / 2));
  }
}
BENCHMARK(BM_Probability)->Arg(12)->Arg(16)->Arg(20);

void BM_SampleCounts(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StateVector sv(n);
  for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.sample_counts(1024, rng));
  }
}
BENCHMARK(BM_SampleCounts)->Arg(8)->Arg(12)->Arg(16);

void BM_MeasureCollapse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    StateVector sv(n);
    for (std::size_t q = 0; q < n; ++q) sv.apply_1q(gates::H(), q);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sv.measure(0, rng));
  }
}
BENCHMARK(BM_MeasureCollapse)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  if (const char* smoke = std::getenv("QUTES_PERF_SMOKE");
      smoke != nullptr && smoke[0] != '\0' && smoke[0] != '0') {
    return run_perf_smoke();
  }
  print_summary();
  print_fusion_json();
  print_obs_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
