// E3 — constant-depth cyclic shift (Faro-Pavone-Viola) vs the linear-depth
// classical-style baseline. Regenerates the depth/gate tables across
// register sizes and shift amounts; the paper's claim is that the rotation
// circuit's depth does not grow with n while the baseline's does.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "qutes/algorithms/rotation.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/transpiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

void print_summary() {
  std::printf("=== E3: cyclic shift depth, constant vs linear (k = n/2) ===\n");
  std::printf("%4s %4s | %12s %12s | %12s %12s | %12s %12s\n", "n", "k",
              "const_depth", "const_gates", "lin_depth", "lin_gates",
              "constCX_d", "linCX_d");
  for (std::size_t n = 4; n <= 20; n += 2) {
    const std::size_t k = n / 2;
    QuantumCircuit constant(n), linear(n);
    append_rotate_constant_depth(constant, iota(n), k);
    append_rotate_linear_depth(linear, iota(n), k);
    const QuantumCircuit const_cx = decompose_to_basis(constant);
    const QuantumCircuit lin_cx = decompose_to_basis(linear);
    std::printf("%4zu %4zu | %12zu %12zu | %12zu %12zu | %12zu %12zu\n", n, k,
                constant.depth(), constant.gate_count(), linear.depth(),
                linear.gate_count(), const_cx.depth(), lin_cx.depth());
  }
  std::printf("shape check: const_depth stays at 2 (SWAP layers) for every n; "
              "lin_depth grows ~ k*(n-1)\n\n");
}

void BM_BuildConstantDepth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qubits = iota(n);
  for (auto _ : state) {
    QuantumCircuit c(n);
    append_rotate_constant_depth(c, qubits, n / 2);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_BuildConstantDepth)->Arg(8)->Arg(16)->Arg(24);

void BM_BuildLinearDepth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qubits = iota(n);
  for (auto _ : state) {
    QuantumCircuit c(n);
    append_rotate_linear_depth(c, qubits, n / 2);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_BuildLinearDepth)->Arg(8)->Arg(16)->Arg(24);

void BM_SimulateConstantDepth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  QuantumCircuit c(n);
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  append_rotate_constant_depth(c, iota(n), n / 2);
  Executor ex({.shots = 1, .seed = 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_single(c));
  }
}
BENCHMARK(BM_SimulateConstantDepth)->Arg(8)->Arg(12)->Arg(16);

void BM_SimulateLinearDepth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  QuantumCircuit c(n);
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  append_rotate_linear_depth(c, iota(n), n / 2);
  Executor ex({.shots = 1, .seed = 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_single(c));
  }
}
BENCHMARK(BM_SimulateLinearDepth)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
