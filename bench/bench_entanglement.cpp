// E4 — entanglement propagation along a swap chain. Regenerates the
// endpoint-quality table across chain lengths: endpoint <ZZ> correlation and
// Bell fidelity must stay at 1.0 regardless of length (noiseless), and the
// same chain under depolarizing noise shows fidelity decaying with length —
// the NISQ-motivated shape.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "qutes/algorithms/entanglement.hpp"
#include "qutes/circuit/executor.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

/// Fraction of shots with agreeing endpoint measurements under noise.
double noisy_endpoint_agreement(std::size_t links, double depolarizing,
                                std::size_t shots) {
  circ::QuantumCircuit c = build_entanglement_chain_circuit(links);
  // Measure the endpoints into two extra classical bits.
  const auto& endcreg = c.add_classical_register("ends", 2);
  c.measure(0, endcreg[0]);
  c.measure(2 * links - 1, endcreg[1]);

  qutes::RunConfig options;
  options.shots = shots;
  options.seed = 97;
  options.backend.noise.depolarizing_2q = depolarizing;
  const auto result = circ::Executor(options).run(c);

  std::uint64_t agree = 0, total = 0;
  for (const auto& [key, count] : result.counts) {
    // Endpoint bits are the two most significant characters of the key.
    const char a = key[0];
    const char b = key[1];
    if (a == b) agree += count;
    total += count;
  }
  return total ? static_cast<double>(agree) / static_cast<double>(total) : 0.0;
}

void print_summary() {
  std::printf("=== E4: entanglement swap chain, noiseless ===\n");
  std::printf("%6s %8s | %10s %14s\n", "links", "qubits", "<ZZ>", "bell_fidelity");
  for (std::size_t links : {1u, 2u, 3u, 4u, 6u, 8u, 10u, 12u}) {
    const ChainResult result = run_entanglement_chain(links, 5 + links);
    std::printf("%6zu %8zu | %10.6f %14.6f\n", links, result.chain_qubits,
                result.zz_correlation, result.bell_fidelity);
  }
  std::printf("shape check: both columns pinned at 1.0 for every length\n");

  std::printf("\n--- under 2q depolarizing noise (p = 0.02), 2000 shots ---\n");
  std::printf("%6s | %18s\n", "links", "endpoint_agreement");
  for (std::size_t links : {1u, 2u, 4u, 6u, 8u}) {
    std::printf("%6zu | %18.4f\n", links,
                noisy_endpoint_agreement(links, 0.02, 2000));
  }
  std::printf("shape check: agreement decays toward 0.5 as the chain grows\n\n");
}

void BM_ChainNoiseless(benchmark::State& state) {
  const auto links = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_entanglement_chain(links, seed++));
  }
}
BENCHMARK(BM_ChainNoiseless)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ChainBuildOnly(benchmark::State& state) {
  const auto links = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_entanglement_chain_circuit(links));
  }
}
BENCHMARK(BM_ChainBuildOnly)->Arg(4)->Arg(16)->Arg(64);

void BM_ChainNoisyShots(benchmark::State& state) {
  const auto links = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(noisy_endpoint_agreement(links, 0.02, 50));
  }
}
BENCHMARK(BM_ChainNoisyShots)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
