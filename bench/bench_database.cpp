// E9 (extension; paper §6 future work) — Grover database operations:
// filter search over a loaded table and Durr-Hoyer minimum finding.
// Regenerates the oracle-call table quantum-vs-classical: equality search
// ~ sqrt(N) oracle calls vs N probes; minimum finding ~ 22.5 sqrt(N) vs
// N - 1 comparisons; correctness rates across random tables.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "qutes/algorithms/database.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::vector<std::uint64_t> random_table(std::size_t size, std::uint64_t seed,
                                        std::uint64_t range) {
  Rng rng(seed);
  std::vector<std::uint64_t> table(size);
  for (auto& v : table) v = rng.below(range);
  return table;
}

void print_summary() {
  std::printf("=== E9a: equality search over a table (unique key) ===\n");
  std::printf("%6s | %12s %10s | %10s\n", "N", "grover_q", "P(hit)", "classical");
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    auto table = random_table(n, 100 + n, 50);
    table[n / 2] = 63;  // unique planted key
    const QuantumDatabase db(table);
    const GroverResult result = db.run_equal(63, 7);
    std::printf("%6zu | %12zu %10.3f | %10zu\n", n, result.oracle_calls,
                result.success_probability, n);
  }
  std::printf("shape check: grover_q ~ pi/4 sqrt(N); classical = N probes\n");

  std::printf("\n=== E9b: Durr-Hoyer minimum over random tables ===\n");
  std::printf("%6s | %14s %14s %8s | %12s\n", "N", "oracle_calls", "rounds",
              "exact", "classical");
  for (std::size_t n : {4u, 8u, 16u}) {
    std::size_t calls = 0, rounds = 0, exact = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      const auto table =
          random_table(n, 33 * static_cast<std::uint64_t>(t) + n, 60);
      const ExtremumResult r =
          find_minimum(table, static_cast<std::uint64_t>(t) + 1);
      calls += r.oracle_calls;
      rounds += r.grover_rounds;
      exact += r.exact;
    }
    std::printf("%6zu | %14.1f %14.1f %7zu/%d | %12zu\n", n,
                static_cast<double>(calls) / trials,
                static_cast<double>(rounds) / trials, exact, trials, n - 1);
  }
  std::printf("shape check: oracle_calls grows ~ sqrt(N); exact rate high\n\n");
}

void BM_EqualitySearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto table = random_table(n, 5, 50);
  table[1] = 63;
  const QuantumDatabase db(table);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.run_equal(63, seed++));
  }
}
BENCHMARK(BM_EqualitySearch)->Arg(4)->Arg(8)->Arg(16);

void BM_ClassicalSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto table = random_table(n, 5, 50);
  table[n - 1] = 63;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::find(table.begin(), table.end(), 63));
  }
}
BENCHMARK(BM_ClassicalSearch)->Arg(16)->Arg(4096);

void BM_QuantumMinimum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto table = random_table(n, 9, 60);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_minimum(table, seed++));
  }
}
BENCHMARK(BM_QuantumMinimum)->Arg(4)->Arg(8)->Arg(16);

void BM_DslQmin(benchmark::State& state) {
  const std::string source = "print qmin([21, 8, 30, 3, 17, 11, 25, 6]);";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    qutes::RunConfig options;
    options.seed = seed++;
    benchmark::DoNotOptimize(qutes::lang::run_source(source, options));
  }
}
BENCHMARK(BM_DslQmin);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
