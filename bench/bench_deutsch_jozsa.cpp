// E5 — Deutsch-Jozsa query complexity: 1 quantum query vs 2^{n-1}+1
// deterministic classical queries, plus end-to-end runtime of the quantum
// circuit (which grows with simulator dimension, not query count — an
// honest accounting the table makes explicit).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "qutes/algorithms/bernstein_vazirani.hpp"
#include "qutes/algorithms/deutsch_jozsa.hpp"
#include "qutes/algorithms/simon.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

void print_summary() {
  std::printf("=== E5: Deutsch-Jozsa queries, quantum vs classical ===\n");
  std::printf("%4s | %14s %10s | %18s\n", "n", "quantum_queries", "verdict",
              "classical_queries");
  for (std::size_t n = 2; n <= 16; n += 2) {
    const DjResult quantum = run_deutsch_jozsa(n, DjOracle::constant(false));
    const std::size_t classical =
        classical_deutsch_jozsa_queries(n, DjOracle::constant(false));
    std::printf("%4zu | %14zu %10s | %18zu\n", n, quantum.oracle_calls,
                quantum.constant ? "constant" : "balanced", classical);
  }
  std::printf("shape check: quantum column constant at 1; classical column "
              "doubles per added input (2^(n-1)+1)\n");

  std::printf("\n--- correctness across balanced oracles (n = 6) ---\n");
  std::size_t correct = 0, trials = 0;
  for (std::uint64_t mask = 1; mask < 64; mask += 3) {
    const DjResult r = run_deutsch_jozsa(6, DjOracle::balanced(mask), mask);
    correct += !r.constant;
    ++trials;
  }
  std::printf("balanced verdicts: %zu/%zu correct (deterministic algorithm)\n",
              correct, trials);

  // The rest of the one-query family: Bernstein-Vazirani recovers an n-bit
  // secret in 1 query (vs n classical), Simon recovers an XOR period in
  // O(n) queries (vs Omega(2^{n/2}) classically).
  std::printf("\n--- Bernstein-Vazirani: secret recovery in one query ---\n");
  std::printf("%4s | %10s %10s | %18s\n", "n", "recovered", "queries", "classical_bits");
  for (std::size_t n : {4u, 8u, 12u}) {
    const std::uint64_t secret = (1ULL << (n - 1)) | 0b101;
    const std::uint64_t got = run_bernstein_vazirani(n, secret, n);
    std::printf("%4zu | %10s %10d | %18zu\n", n, got == secret ? "yes" : "NO", 1, n);
  }

  std::printf("\n--- Simon: XOR-period recovery ---\n");
  std::printf("%4s %8s | %10s %10s | %14s\n", "n", "secret", "success",
              "queries", "classical~2^(n/2)");
  for (std::size_t n : {3u, 4u, 5u}) {
    const std::uint64_t secret = (1ULL << (n - 1)) | 1;
    const SimonResult result = run_simon(n, secret, 11 * n);
    std::printf("%4zu %8llu | %10s %10zu | %14.0f\n", n,
                static_cast<unsigned long long>(secret),
                result.success ? "yes" : "NO", result.quantum_queries,
                std::pow(2.0, n / 2.0));
  }
  std::printf("shape check: Simon queries ~ O(n), far below the classical "
              "birthday bound\n\n");
}

void BM_QuantumDeutschJozsa(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_deutsch_jozsa(n, DjOracle::balanced(1), seed++));
  }
  state.counters["oracle_calls"] = 1;
}
BENCHMARK(BM_QuantumDeutschJozsa)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_ClassicalDeutschJozsa(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classical_deutsch_jozsa_queries(n, DjOracle::constant(false)));
  }
  state.counters["oracle_calls"] =
      static_cast<double>(classical_deutsch_jozsa_queries(
          n, DjOracle::constant(false)));
}
BENCHMARK(BM_ClassicalDeutschJozsa)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_DslDeutschJozsa(benchmark::State& state) {
  const std::string source = R"(
    void oracle(quint x, qubit y) { cx(x[0], y); cx(x[2], y); }
    quint<4> x = 0q;
    qubit y = |->;
    hadamard x;
    oracle(x, y);
    hadamard x;
    int v = x;
  )";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    qutes::RunConfig options;
    options.seed = seed++;
    benchmark::DoNotOptimize(qutes::lang::run_source(source, options));
  }
}
BENCHMARK(BM_DslDeutschJozsa);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
