// E1 — "superposition addition": the circuits behind quint arithmetic.
// Regenerates the Draper-vs-Cuccaro resource table (gate count, CX-basis
// depth, ancillas) across register widths, then times circuit construction
// and simulation. Paper shape: both are polynomial; Draper needs no
// ancilla but O(n^2) gates, Cuccaro is O(n) gates with one ancilla.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "qutes/algorithms/adders.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/transpiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t begin, std::size_t count) {
  std::vector<std::size_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = begin + i;
  return v;
}

QuantumCircuit build_draper(std::size_t n) {
  QuantumCircuit c(2 * n);
  append_draper_adder(c, iota(0, n), iota(n, n));
  return c;
}

QuantumCircuit build_cuccaro(std::size_t n) {
  QuantumCircuit c(2 * n + 1);
  append_cuccaro_adder(c, iota(0, n), iota(n, n), 2 * n);
  return c;
}

void print_summary() {
  std::printf("=== E1: adder resources (b += a, width n) ===\n");
  std::printf("%4s | %14s %14s %8s | %14s %14s %8s\n", "n", "draper_gates",
              "draper_depth", "anc", "cuccaro_gates", "cuccaro_depth", "anc");
  for (std::size_t n = 2; n <= 10; ++n) {
    const QuantumCircuit draper = decompose_to_basis(build_draper(n));
    const QuantumCircuit cuccaro = decompose_to_basis(build_cuccaro(n));
    std::printf("%4zu | %14zu %14zu %8d | %14zu %14zu %8d\n", n,
                draper.gate_count(), draper.depth(), 0, cuccaro.gate_count(),
                cuccaro.depth(), 1);
  }
  std::printf("shape check: draper gates ~ O(n^2) with 0 ancillas; "
              "cuccaro gates ~ O(n) with 1 ancilla\n\n");
}

void BM_DraperBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_draper(n));
  }
}
BENCHMARK(BM_DraperBuild)->Arg(4)->Arg(8)->Arg(12);

void BM_CuccaroBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cuccaro(n));
  }
}
BENCHMARK(BM_CuccaroBuild)->Arg(4)->Arg(8)->Arg(12);

void BM_DraperSimulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  QuantumCircuit c(2 * n);
  for (std::size_t q = 0; q < 2 * n; ++q) c.h(q);
  append_draper_adder(c, iota(0, n), iota(n, n));
  Executor ex({.shots = 1, .seed = 11});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_single(c));
  }
}
BENCHMARK(BM_DraperSimulate)->Arg(3)->Arg(5)->Arg(7);

void BM_CuccaroSimulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  QuantumCircuit c(2 * n + 1);
  for (std::size_t q = 0; q < 2 * n; ++q) c.h(q);
  append_cuccaro_adder(c, iota(0, n), iota(n, n), 2 * n);
  Executor ex({.shots = 1, .seed = 11});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_single(c));
  }
}
BENCHMARK(BM_CuccaroSimulate)->Arg(3)->Arg(5)->Arg(7);

void BM_ConstantAddViaDsl(benchmark::State& state) {
  // The language-level path: quint += constant.
  for (auto _ : state) {
    QuantumCircuit c(6);
    append_draper_add_const(c, iota(0, 6), 23);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_ConstantAddViaDsl);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
