// E16 — qutesd service: what the long-lived daemon buys over a cold CLI
// invocation. Three tables:
//
//   * cold vs warm request latency — a cache miss pays lex+parse(+stdlib)+
//     lower+pipeline+backend resolution; a hit replays the cached lowered
//     circuit. The ISSUE acceptance bar is warm >= 10x under cold.
//   * warm-cache throughput — requests/second through Service::handle once
//     the program is resident.
//   * batching speedup — N same-program shot requests executed sequentially
//     vs drained into one Executor::run_batch (the statevector fast path
//     evolves the state once and only re-samples per item). Batched counts
//     are bit-identical to sequential by construction; the bench asserts it.
//
// Machine-readable rows go to stdout as BENCH_JSON_QUTESD lines;
// scripts/run_experiments.sh collects them into BENCH_qutesd.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/service/protocol.hpp"
#include "qutes/service/service.hpp"

namespace {

namespace circ = qutes::circ;
namespace service = qutes::service;
using clock_type = std::chrono::steady_clock;

bool quick_mode() {
  const char* flag = std::getenv("QUTES_QUTESD_QUICK");
  return flag != nullptr && std::string(flag) != "0";
}

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

/// Daemon-shaped workloads: the Qutes source a client would POST. All use
/// the default include_stdlib=true, so a cold compile pays the stdlib parse
/// the same way `qutes run` does.
struct Workload {
  const char* name;
  std::string source;
  std::size_t shots;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"bell", "qubit q = |+>; print q;", 64});
  out.push_back({"ghz3",
                 "qubit a = |0>;\n"
                 "qubit b = |0>;\n"
                 "qubit c = |0>;\n"
                 "ghz3(a, b, c);\n"
                 "bool x = a;\n"
                 "bool y = b;\n"
                 "bool z = c;\n"
                 "print x == y && y == z;\n",
                 64});
  // No qubits: the daemon detects a classical program at compile time and a
  // warm hit returns the cached deterministic output without re-executing.
  out.push_back({"classical",
                 "int acc = 0;\n"
                 "int i = 0;\n"
                 "while (i < 500) { acc = acc + i * 3 - 1; i = i + 1; }\n"
                 "print acc;\n",
                 1});
  return out;
}

service::Request run_request(const Workload& w, std::uint64_t seed) {
  service::Request request;
  request.op = "run";
  request.source = w.source;
  request.shots = w.shots;
  request.seed = seed;
  return request;
}

void die(const char* where, const service::Response& response) {
  std::fprintf(stderr, "bench_qutesd: %s failed: %s\n", where,
               response.error.c_str());
  std::exit(1);
}

// ---- E16a: cold vs warm latency --------------------------------------------

void print_latency_json() {
  std::printf("=== E16: qutesd — cold vs warm request latency ===\n");
  std::printf("%-10s %10s %10s %10s\n", "workload", "cold_ms", "warm_ms",
              "speedup");
  const int warm_reps = quick_mode() ? 5 : 30;
  for (const Workload& w : workloads()) {
    // Fresh service per workload so the first handle() is a true miss.
    service::Service svc;
    const service::Request request = run_request(w, /*seed=*/7);

    clock_type::time_point t0 = clock_type::now();
    service::Response cold = svc.handle(request);
    const double cold_ms = ms_since(t0);
    if (!cold.ok) die(w.name, cold);
    if (cold.cache != "miss") die(w.name, cold);

    // Warm latency: best of N, the steady-state a client actually sees.
    double warm_ms = 1e30;
    for (int i = 0; i < warm_reps; ++i) {
      t0 = clock_type::now();
      service::Response warm = svc.handle(request);
      warm_ms = std::min(warm_ms, ms_since(t0));
      if (!warm.ok || warm.cache != "hit") die(w.name, warm);
    }

    const double speedup = cold_ms / warm_ms;
    std::printf("%-10s %10.3f %10.4f %9.1fx\n", w.name, cold_ms, warm_ms,
                speedup);
    std::printf("BENCH_JSON_QUTESD {\"bench\":\"qutesd\",\"mode\":\"latency\","
                "\"workload\":\"%s\",\"shots\":%zu,\"cold_ms\":%.4f,"
                "\"warm_ms\":%.4f,\"speedup\":%.2f}\n",
                w.name, w.shots, cold_ms, warm_ms, speedup);
  }
  std::printf("shape check: warm-cache latency >= 10x under cold on every "
              "workload (the cold request pays the stdlib parse + lower + "
              "pipeline; the hit replays the cached lowered circuit)\n\n");
}

// ---- E16b: warm-cache throughput -------------------------------------------

void print_throughput_json() {
  std::printf("=== E16: qutesd — warm-cache throughput ===\n");
  const std::size_t requests = quick_mode() ? 100 : 1000;
  const Workload w = workloads().front();  // bell, 64 shots
  service::Service svc;
  if (service::Response r = svc.handle(run_request(w, 1)); !r.ok)
    die("throughput warmup", r);

  const clock_type::time_point t0 = clock_type::now();
  for (std::size_t i = 0; i < requests; ++i) {
    // Distinct seeds: same cache entry, fresh sampling per request.
    service::Response r = svc.handle(run_request(w, i + 2));
    if (!r.ok || r.cache != "hit") die("throughput", r);
  }
  const double wall_ms = ms_since(t0);
  const double req_per_s = 1e3 * static_cast<double>(requests) / wall_ms;
  std::printf("%zu warm requests in %.1f ms = %.0f req/s\n", requests,
              wall_ms, req_per_s);
  std::printf("BENCH_JSON_QUTESD {\"bench\":\"qutesd\",\"mode\":\"throughput\","
              "\"workload\":\"%s\",\"requests\":%zu,\"wall_ms\":%.3f,"
              "\"req_per_s\":%.0f}\n",
              w.name, requests, wall_ms, req_per_s);
  std::printf("\n");
}

// ---- E16c: batching speedup ------------------------------------------------

circ::QuantumCircuit ghz_circuit(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t i = 1; i < n; ++i) c.cx(i - 1, i);
  for (std::size_t i = 0; i < n; ++i) c.measure(i, i);
  return c;
}

void print_batch_json() {
  std::printf("=== E16: qutesd — batched vs sequential same-circuit shot "
              "requests ===\n");
  const std::size_t qubits = quick_mode() ? 14 : 20;
  const std::size_t n_items = 16;
  const circ::QuantumCircuit circuit = ghz_circuit(qubits);
  qutes::RunConfig config;
  config.shots = 64;

  std::vector<circ::ShotBatchItem> items;
  for (std::size_t i = 0; i < n_items; ++i)
    items.push_back({/*seed=*/1000 + i, /*shots=*/64, /*record_memory=*/false});

  // Sequential: one full execution per request, exactly what N independent
  // CLI invocations (or an unbatched daemon) would do.
  clock_type::time_point t0 = clock_type::now();
  std::vector<circ::ExecutionResult> sequential;
  for (const circ::ShotBatchItem& item : items) {
    qutes::RunConfig per = config;
    per.seed = item.seed;
    per.shots = item.shots;
    sequential.push_back(circ::Executor(per).run(circuit));
  }
  const double sequential_ms = ms_since(t0);

  // Batched: the worker-pool path — one evolution, N samplings.
  t0 = clock_type::now();
  const std::vector<circ::ExecutionResult> batched =
      circ::Executor(config).run_batch(circuit, items);
  const double batched_ms = ms_since(t0);

  // The whole point: batching must not change a single count.
  for (std::size_t i = 0; i < n_items; ++i) {
    if (batched[i].counts != sequential[i].counts) {
      std::fprintf(stderr,
                   "bench_qutesd: batched counts diverged at item %zu\n", i);
      std::exit(1);
    }
  }

  const double speedup = sequential_ms / batched_ms;
  std::printf("GHZ-%zu, %zu requests x 64 shots: sequential %.1f ms, "
              "batched %.1f ms (%.1fx), counts bit-identical\n",
              qubits, n_items, sequential_ms, batched_ms, speedup);
  std::printf("BENCH_JSON_QUTESD {\"bench\":\"qutesd\",\"mode\":\"batch\","
              "\"workload\":\"ghz\",\"qubits\":%zu,\"items\":%zu,"
              "\"shots\":%zu,\"sequential_ms\":%.3f,\"batched_ms\":%.3f,"
              "\"speedup\":%.2f}\n",
              qubits, n_items, config.shots, sequential_ms, batched_ms,
              speedup);

  // Service-level: the same batch through the async queue (submitted before
  // start() so one worker drains them as a single same-key batch).
  service::Service svc({.workers = 1});
  Workload wide{"uniform20", "quint<20> x = 0q; hadamard x; print x;", 64};
  if (quick_mode())
    wide = {"uniform14", "quint<14> x = 0q; hadamard x; print x;", 64};
  if (service::Response r = svc.handle(run_request(wide, 1)); !r.ok)
    die("batch warmup", r);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = n_items;
  t0 = clock_type::now();
  for (std::size_t i = 0; i < n_items; ++i) {
    svc.submit(run_request(wide, 2000 + i), [&](service::Response r) {
      if (!r.ok) die("batch submit", r);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  svc.start();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  }
  const double service_batch_ms = ms_since(t0);

  t0 = clock_type::now();
  for (std::size_t i = 0; i < n_items; ++i) {
    if (service::Response r = svc.handle(run_request(wide, 2000 + i)); !r.ok)
      die("batch sequential", r);
  }
  const double service_seq_ms = ms_since(t0);

  std::printf("service queue (%s, %zu warm requests): sequential %.1f ms, "
              "batched %.1f ms (%.1fx)\n",
              wide.name, n_items, service_seq_ms, service_batch_ms,
              service_seq_ms / service_batch_ms);
  std::printf("BENCH_JSON_QUTESD {\"bench\":\"qutesd\",\"mode\":\"batch\","
              "\"workload\":\"%s\",\"items\":%zu,\"shots\":%zu,"
              "\"sequential_ms\":%.3f,\"batched_ms\":%.3f,"
              "\"speedup\":%.2f}\n",
              wide.name, n_items, wide.shots, service_seq_ms, service_batch_ms,
              service_seq_ms / service_batch_ms);
  std::printf("shape check: batching shares the single state evolution "
              "across all N requests, so batched wall time approaches "
              "1/N of sequential as evolution dominates sampling\n\n");
}

void print_summary() {
  print_latency_json();
  print_throughput_json();
  print_batch_json();
}

// ---- google-benchmark timings ----------------------------------------------

void BM_ColdRequest(benchmark::State& state) {
  const Workload w = workloads().front();
  const service::Request request = run_request(w, 7);
  for (auto _ : state) {
    service::Service svc;  // fresh cache: every handle() is a miss
    benchmark::DoNotOptimize(svc.handle(request).counts.size());
  }
}
BENCHMARK(BM_ColdRequest)->Unit(benchmark::kMillisecond);

void BM_WarmRequest(benchmark::State& state) {
  const Workload w = workloads().front();
  const service::Request request = run_request(w, 7);
  service::Service svc;
  benchmark::DoNotOptimize(svc.handle(request).counts.size());
  for (auto _ : state)
    benchmark::DoNotOptimize(svc.handle(request).counts.size());
}
BENCHMARK(BM_WarmRequest);

void BM_RunBatch16(benchmark::State& state) {
  const circ::QuantumCircuit circuit = ghz_circuit(14);
  qutes::RunConfig config;
  config.shots = 64;
  std::vector<circ::ShotBatchItem> items(16);
  for (std::size_t i = 0; i < items.size(); ++i) items[i].seed = i + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circ::Executor(config).run_batch(circuit, items).size());
  }
}
BENCHMARK(BM_RunBatch16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
