// E15 — Stabilizer (CHP) backend at thousand-qubit widths: wall time vs
// register width on three Clifford workloads (GHZ chain, brickwork-Clifford,
// swap-chain) at n = 100 / 1000 / 5000, plus the dense-vs-stabilizer
// crossover at widths the statevector can still hold. The headline table
// runs widths no dense or tensor-network backend can touch; each dense
// refusal is recorded in the JSON so BENCH_stab.json documents both sides
// (and shows the guard message pointing Clifford circuits at the tableau).
//
// Machine-readable lines are prefixed BENCH_JSON_STAB and collected into
// BENCH_stab.json by scripts/run_experiments.sh --stabilizer. Set
// QUTES_STAB_QUICK=1 (scripts/check.sh --quick does) for a scaled-down
// smoke sweep.
#include <benchmark/benchmark.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/sim/statevector.hpp"

namespace {

using namespace qutes;

bool quick_mode() {
  const char* flag = std::getenv("QUTES_STAB_QUICK");
  return flag != nullptr && std::string(flag) != "0";
}

int bench_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

circ::QuantumCircuit ghz(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  return c;
}

// Brickwork over the Clifford generators: H/S single-qubit layers between
// alternating-offset CX bricks — the random-circuit shape of the MPS bench,
// restricted to the tableau gate set (depth 4).
circ::QuantumCircuit clifford_brickwork(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  for (std::size_t layer = 0; layer < 4; ++layer) {
    for (std::size_t q = 0; q < n; ++q) {
      if ((q + layer) % 2 == 0) {
        c.h(q);
      } else {
        c.s(q);
      }
    }
    for (std::size_t q = layer % 2; q + 1 < n; q += 2) c.cx(q, q + 1);
  }
  c.measure_all();
  return c;
}

// Drag an excitation across the whole register: X then n-1 SWAPs. Every
// measurement is deterministic, so this isolates the column-update and
// deterministic-branch (scratch rowsum) costs from the rank update.
circ::QuantumCircuit swap_chain(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.x(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.swap(q, q + 1);
  c.measure_all();
  return c;
}

struct Workload {
  const char* name;
  circ::QuantumCircuit (*build)(std::size_t);
};

constexpr Workload kWorkloads[] = {{"ghz", &ghz},
                                   {"brickwork_clifford", &clifford_brickwork},
                                   {"swap_chain", &swap_chain}};

double run_ms(const circ::QuantumCircuit& c, const qutes::RunConfig& options,
              circ::ExecutionResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  result = circ::Executor(options).run(c);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// "refused: <guard message>" when the dense backend rejects this width
/// (the message now routes Clifford circuits to --backend stabilizer),
/// "ok" when the statevector could also hold it.
std::string dense_verdict(const circ::QuantumCircuit& c) {
  if (c.num_qubits() <= sim::StateVector::kMaxQubits) return "ok";
  try {
    qutes::RunConfig options;
    options.shots = 1;
    (void)circ::Executor(options).run(c);
    return "unexpectedly accepted";
  } catch (const CircuitError& e) {
    return std::string("refused: ") + e.what();
  }
}

void print_stab_sweep_json() {
  std::printf("=== E15: stabilizer backend — wall time vs register width ===\n");
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{100, 300}
                   : std::vector<std::size_t>{100, 1000, 5000};
  for (const Workload& w : kWorkloads) {
    for (const std::size_t n : widths) {
      const circ::QuantumCircuit c = w.build(n);
      const std::string dense = dense_verdict(c);
      qutes::RunConfig options;
      options.backend.name = "stabilizer";
      // Gate evolution is O(n) per gate, but a GHZ-like measure-all costs up
      // to O(n^2/64) per measured qubit per shot (deterministic-branch row
      // sums over O(n) destabilizers); scale the shot budget down with width
      // so every row finishes in interactive time on one core.
      options.shots = n >= 5000 ? 1 : (n >= 1000 ? 4 : 64);
      circ::ExecutionResult result;
      const double ms = run_ms(c, options, result);
      std::printf(
          "BENCH_JSON_STAB {\"bench\":\"stabilizer\",\"workload\":\"%s\","
          "\"qubits\":%zu,\"gates\":%zu,\"shots\":%zu,\"threads\":%d,"
          "\"wall_ms\":%.3f,\"fast_path\":%s,\"statevector\":\"%s\"}\n",
          w.name, n, c.gate_count(), options.shots, bench_threads(), ms,
          result.fast_path ? "true" : "false", dense.c_str());
    }
  }
  std::printf("shape check: wall_ms grows polynomially (never exponentially) "
              "in qubits; the n=1000 GHZ row lands well under a second; every "
              "n>30 row shows the dense guard refusing and routing Clifford "
              "circuits to --backend stabilizer\n\n");
}

void print_crossover_json() {
  std::printf("=== E15: dense vs stabilizer crossover (widths both hold) ===\n");
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{12}
                   : std::vector<std::size_t>{8, 12, 16, 20, 24};
  for (const std::size_t n : widths) {
    const circ::QuantumCircuit c = ghz(n);
    qutes::RunConfig options;
    options.shots = 256;
    circ::ExecutionResult result;
    const double dense_ms = run_ms(c, options, result);
    options.backend.name = "stabilizer";
    const double stab_ms = run_ms(c, options, result);
    std::printf(
        "BENCH_JSON_STAB {\"bench\":\"stabilizer\",\"workload\":\"crossover\","
        "\"qubits\":%zu,\"gates\":%zu,\"shots\":%zu,\"threads\":%d,"
        "\"statevector_ms\":%.3f,\"stabilizer_ms\":%.3f,"
        "\"stab_over_dense\":%.3f}\n",
        n, c.gate_count(), options.shots, bench_threads(), dense_ms, stab_ms,
        stab_ms / dense_ms);
  }
  std::printf("shape check: dense cost doubles per qubit while the tableau "
              "grows quadratically, so stab_over_dense falls toward (then "
              "below) 1 as n rises\n\n");
}

/// Machine-readable obs snapshot of one stabilizer executor run (same metric
/// names as --metrics-json). Metrics are switched off again before the
/// timing benchmarks run.
void print_obs_json() {
  std::printf("=== observability: metric snapshot of one stabilizer run ===\n");
  namespace obs = qutes::obs;
  obs::set_metrics_enabled(true);
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{100}
                   : std::vector<std::size_t>{100, 1000};
  for (const std::size_t n : widths) {
    obs::reset_metrics();
    qutes::RunConfig options;
    options.backend.name = "stabilizer";
    options.shots = n >= 1000 ? 8 : 64;
    options.seed = 7;
    const circ::QuantumCircuit c = ghz(n);
    (void)circ::Executor(options).run(c);
    std::string metrics = obs::export_metrics_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    std::printf("BENCH_JSON_OBS {\"bench\":\"stabilizer\",\"workload\":"
                "\"ghz\",\"qubits\":%zu,\"gates\":%zu,\"shots\":%zu,"
                "\"threads\":%d,\"metrics\":%s}\n",
                n, c.gate_count(), options.shots, bench_threads(),
                metrics.c_str());
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
  std::printf("shape check: stab.random_outcomes = shots (one coin flip per "
              "GHZ collapse) and stab.peak_bytes grows quadratically, not "
              "exponentially, with qubits\n\n");
}

void BM_StabilizerGhzEvolveAndSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const circ::QuantumCircuit c = ghz(n);
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  options.shots = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circ::Executor(options).run(c).counts);
  }
}
BENCHMARK(BM_StabilizerGhzEvolveAndSample)->Arg(100)->Arg(1000);

void BM_StabilizerBrickworkEvolve(benchmark::State& state) {
  // Unitary prefix only (no sampling): pure column-update throughput.
  const auto n = static_cast<std::size_t>(state.range(0));
  circ::QuantumCircuit c = clifford_brickwork(n);
  circ::QuantumCircuit unitary(n, n);
  for (const circ::Instruction& in : c.instructions()) {
    if (in.type != circ::GateType::Measure) unitary.append(in);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circ::evolve_stabilizer(unitary).stabilizer_string(0));
  }
}
BENCHMARK(BM_StabilizerBrickworkEvolve)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  print_stab_sweep_json();
  print_crossover_json();
  print_obs_json();
  benchmark::Initialize(&argc, argv);
  if (!quick_mode()) benchmark::RunSpecifiedBenchmarks();
  return 0;
}
