// E2 — Grover substring search (the `in` operator). Regenerates the
// quantum-vs-classical query table: oracle calls ~ floor(pi/4 sqrt(N/M))
// with success probability > 1/2 at the optimum, vs N classical probes.
// Paper shape: sqrt scaling of quantum queries; high hit rates.
#include <benchmark/benchmark.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "qutes/algorithms/counting.hpp"
#include "qutes/algorithms/grover.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/fusion.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::string random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '0');
  for (char& c : s) c = rng.below(2) ? '1' : '0';
  return s;
}

void print_summary() {
  std::printf("=== E2: Grover substring search vs classical scan ===\n");
  std::printf("%6s %4s | %8s %8s %11s %8s | %10s\n", "text_n", "m", "pos",
              "matches", "grover_q", "P(hit)", "classical");
  for (std::size_t n : {8u, 12u, 16u, 24u, 32u}) {
    const std::string text = random_bits(n, 1000 + n);
    const std::string pattern = text.substr(n / 2, 3);  // guaranteed present
    const SubstringSearch search(text, pattern);
    const GroverResult result = search.run(/*seed=*/n);
    // Classical scan: worst case examines every window.
    const std::size_t classical = n - pattern.size() + 1;
    std::printf("%6zu %4zu | %8zu %8zu %11zu %8.3f | %10zu\n", n, pattern.size(),
                static_cast<std::size_t>(result.outcome), search.matches().size(),
                result.oracle_calls, result.success_probability, classical);
  }
  std::printf("shape check: grover_q ~ sqrt(positions / matches), P(hit) > 0.5\n");

  std::printf("\n--- iteration scaling, single marked state ---\n");
  std::printf("%8s %12s %16s\n", "qubits", "N", "grover_iters");
  for (std::size_t bits = 4; bits <= 20; bits += 4) {
    std::printf("%8zu %12llu %16zu\n", bits,
                static_cast<unsigned long long>(dim_of(bits)),
                optimal_grover_iterations(dim_of(bits), 1));
  }
  std::printf("shape check: iterations quadruple per +4 qubits (sqrt(N))\n");

  // Quantum counting closes the loop: it supplies the M that the iteration
  // formula needs, via QPE over the Grover operator.
  std::printf("\n--- quantum counting (N = 8, t = 5 counting bits) ---\n");
  std::printf("%10s | %16s\n", "true M", "median estimate");
  for (std::size_t m : {1u, 2u, 3u, 4u}) {
    std::vector<std::uint64_t> marked;
    for (std::size_t i = 0; i < m; ++i) marked.push_back(2 * i + 1);
    std::vector<double> estimates;
    for (std::uint64_t seed = 1; seed <= 7; ++seed) {
      estimates.push_back(
          algo::run_quantum_counting(3, marked, 5, 100 * seed + m)
              .estimated_marked);
    }
    std::sort(estimates.begin(), estimates.end());
    std::printf("%10zu | %16.2f\n", m, estimates[estimates.size() / 2]);
  }
  std::printf("shape check: estimates track the planted counts\n\n");
}

int bench_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

std::string histogram_json(const std::map<std::size_t, std::size_t>& hist) {
  std::string out = "{";
  for (const auto& [width, blocks] : hist) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += std::to_string(width);
    out += "\":";
    out += std::to_string(blocks);
  }
  return out + "}";
}

/// Machine-readable fusion comparison on a full Grover circuit (H layers,
/// multi-controlled oracle, diffusion), collected into BENCH_fusion.json by
/// scripts/run_experiments.sh.
void print_fusion_json() {
  std::printf("=== fusion engine: Grover executor, fused vs unfused ===\n");
  for (const std::size_t bits : {16u, 18u}) {
    const std::uint64_t marked[] = {dim_of(bits) - 1};
    // A few fixed rounds: the optimum at 16 qubits (~200 iterations) would
    // dominate bench time without changing the per-gate shape.
    const circ::QuantumCircuit c = build_grover_circuit(bits, marked, 4);
    const auto run_ms = [&](std::size_t max_fused) {
      qutes::RunConfig options;
      options.shots = 64;
      options.seed = 7;
      options.backend.max_fused_qubits = max_fused;
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = circ::Executor(options).run(c);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(result.counts);
      return std::make_pair(
          std::chrono::duration<double, std::milli>(t1 - t0).count(),
          result.fused_width_histogram);
    };
    run_ms(1);  // warm up
    double unfused_ms = 1e300, fused_ms = 1e300;
    std::map<std::size_t, std::size_t> histogram;
    for (int r = 0; r < 3; ++r) {
      unfused_ms = std::min(unfused_ms, run_ms(1).first);
      const auto [ms, hist] = run_ms(4);
      fused_ms = std::min(fused_ms, ms);
      histogram = hist;
    }
    const double gates_per_sec =
        static_cast<double>(c.size()) / (fused_ms / 1000.0);
    std::printf("BENCH_JSON {\"bench\":\"grover\",\"workload\":\"grover\","
                "\"qubits\":%zu,\"gates\":%zu,\"threads\":%d,"
                "\"unfused_ms\":%.3f,\"fused_ms\":%.3f,\"speedup\":%.3f,"
                "\"gates_per_sec\":%.1f,\"blocks\":%s}\n",
                bits, c.size(), bench_threads(), unfused_ms, fused_ms,
                unfused_ms / fused_ms, gates_per_sec,
                histogram_json(histogram).c_str());
    // Regression guard: the planner once degenerated on Grover's layer
    // structure (H/X walls fenced by the wide oracle) into all-singleton
    // blocks ({"1":128}), which made "fusion" a pure overhead pass. Flush-time
    // coalescing packs those disjoint singletons into multi-wire blocks; fail
    // loudly if that ever regresses.
    std::size_t wide_blocks = 0;
    for (const auto& [width, count] : histogram) {
      if (width >= 2) wide_blocks += count;
    }
    if (wide_blocks == 0) {
      std::fprintf(stderr,
                   "FUSION REGRESSION: Grover plan at %zu bits has only "
                   "singleton blocks (%s)\n",
                   bits, histogram_json(histogram).c_str());
      std::exit(1);
    }
  }
  std::printf("shape check: fused H/diffusion layers cut full-state sweeps; "
              "block histogram contains multi-wire blocks (no singleton "
              "degeneracy)\n\n");
}

void BM_SubstringSearchRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = random_bits(n, 77);
  const std::string pattern = text.substr(n / 3, 3);
  const SubstringSearch search(text, pattern);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.run(seed++));
  }
  state.counters["oracle_calls"] =
      static_cast<double>(search.run(1).oracle_calls);
}
BENCHMARK(BM_SubstringSearchRun)->Arg(8)->Arg(12)->Arg(16);

void BM_ClassicalScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = random_bits(n, 77);
  const std::string pattern = text.substr(n / 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text.find(pattern));
  }
}
BENCHMARK(BM_ClassicalScan)->Arg(8)->Arg(16)->Arg(4096);

void BM_GroverMarkedValue(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::uint64_t marked[] = {dim_of(bits) - 1};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_grover(bits, marked, seed++));
  }
}
BENCHMARK(BM_GroverMarkedValue)->Arg(3)->Arg(5)->Arg(7);

void BM_DslInOperator(benchmark::State& state) {
  // Full pipeline cost of the language-level `in`.
  const std::string source =
      "qustring t = \"0110100110\"q; bool hit = \"101\" in t;";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    qutes::RunConfig options;
    options.seed = seed++;
    benchmark::DoNotOptimize(qutes::lang::run_source(source, options));
  }
}
BENCHMARK(BM_DslInOperator);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  print_fusion_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
