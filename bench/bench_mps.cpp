// E12 — MPS backend viability: wall time vs width and bond dimension on the
// three canonical workloads (GHZ chain, QFT on |0...0>, shallow brickwork),
// plus the dense-vs-MPS crossover at widths the statevector can still hold.
// The headline table runs widths the dense backend refuses outright (the
// capability guard names the 30-qubit wall and points at --backend mps);
// each refusal is recorded in the JSON so BENCH_mps.json documents both
// sides of the trade.
//
// Machine-readable lines are prefixed BENCH_JSON_MPS and collected into
// BENCH_mps.json by scripts/run_experiments.sh. Set QUTES_MPS_QUICK=1
// (scripts/check.sh --quick does) for a scaled-down smoke sweep.
#include <benchmark/benchmark.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qutes/algorithms/qft.hpp"
#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/common/error.hpp"
#include "qutes/sim/mps.hpp"
#include "qutes/sim/statevector.hpp"
#include "qutes/testing/generators.hpp"

namespace {

using namespace qutes;

bool quick_mode() {
  const char* flag = std::getenv("QUTES_MPS_QUICK");
  return flag != nullptr && std::string(flag) != "0";
}

int bench_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

circ::QuantumCircuit ghz(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  return c;
}

circ::QuantumCircuit qft(std::size_t n) {
  circ::QuantumCircuit c = algo::make_qft(n);
  c.measure_all();  // adds the missing clbits itself
  return c;
}

circ::QuantumCircuit brickwork(std::size_t n) {
  // Shallow (depth 4): entanglement stays bounded, the regime where MPS wins.
  circ::QuantumCircuit c = testing::brickwork_circuit(n, 4, 0x9e37 + n);
  c.measure_all();
  return c;
}

struct Workload {
  const char* name;
  circ::QuantumCircuit (*build)(std::size_t);
};

constexpr Workload kWorkloads[] = {
    {"ghz", &ghz}, {"qft", &qft}, {"brickwork", &brickwork}};

double run_ms(const circ::QuantumCircuit& c, const qutes::RunConfig& options,
              circ::ExecutionResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  result = circ::Executor(options).run(c);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// "refused: <guard message>" when the dense backend rejects this width,
/// "ok" when it would run. Proves the escape hatch fires instead of an OOM.
std::string dense_verdict(const circ::QuantumCircuit& c) {
  if (c.num_qubits() <= sim::StateVector::kMaxQubits) return "ok";
  try {
    qutes::RunConfig options;
    options.shots = 1;
    (void)circ::Executor(options).run(c);
    return "unexpectedly accepted";
  } catch (const CircuitError& e) {
    return std::string("refused: ") + e.what();
  }
}

void print_mps_sweep_json() {
  std::printf("=== E12: MPS backend — wall time vs width and bond cap ===\n");
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{16, 32}
                   : std::vector<std::size_t>{16, 32, 48, 64};
  const std::vector<std::size_t> bond_dims =
      quick_mode() ? std::vector<std::size_t>{16}
                   : std::vector<std::size_t>{8, 16, 32, 64};
  for (const Workload& w : kWorkloads) {
    for (const std::size_t n : widths) {
      const circ::QuantumCircuit c = w.build(n);
      const std::string dense = dense_verdict(c);
      for (const std::size_t bond : bond_dims) {
        qutes::RunConfig options;
        options.backend.name = "mps";
        options.shots = 256;
        options.backend.max_bond_dim = bond;
        circ::ExecutionResult result;
        const double ms = run_ms(c, options, result);
        std::printf(
            "BENCH_JSON_MPS {\"bench\":\"mps\",\"workload\":\"%s\","
            "\"qubits\":%zu,\"gates\":%zu,\"max_bond_dim\":%zu,"
            "\"bond_reached\":%zu,\"truncation_error\":%.3e,\"shots\":%zu,"
            "\"threads\":%d,\"wall_ms\":%.3f,\"statevector\":\"%s\"}\n",
            w.name, n, c.gate_count(), bond, result.max_bond_dim_reached,
            result.truncation_error, options.shots, bench_threads(), ms,
            dense.c_str());
      }
    }
  }
  std::printf("shape check: ghz/qft wall_ms grows ~linearly in qubits (bond "
              "stays O(1)); brickwork truncation_error drops as the bond cap "
              "rises; every n>30 row shows the dense guard refusing\n\n");
}

void print_crossover_json() {
  std::printf("=== E12: dense vs MPS crossover (widths both can hold) ===\n");
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{12}
                   : std::vector<std::size_t>{12, 16, 20, 24};
  for (const std::size_t n : widths) {
    const circ::QuantumCircuit c = brickwork(n);
    qutes::RunConfig options;
    options.shots = 64;
    circ::ExecutionResult result;
    const double dense_ms = run_ms(c, options, result);
    options.backend.name = "mps";
    options.backend.max_bond_dim = 64;
    const double mps_ms = run_ms(c, options, result);
    std::printf(
        "BENCH_JSON_MPS {\"bench\":\"mps\",\"workload\":\"crossover\","
        "\"qubits\":%zu,\"gates\":%zu,\"max_bond_dim\":64,"
        "\"bond_reached\":%zu,\"truncation_error\":%.3e,\"shots\":%zu,"
        "\"threads\":%d,\"statevector_ms\":%.3f,\"mps_ms\":%.3f,"
        "\"mps_over_dense\":%.3f}\n",
        n, c.gate_count(), result.max_bond_dim_reached,
        result.truncation_error, options.shots, bench_threads(), dense_ms,
        mps_ms, mps_ms / dense_ms);
  }
  std::printf("shape check: dense cost doubles per qubit while shallow-"
              "brickwork MPS cost grows polynomially, so mps_over_dense "
              "falls toward (then below) 1 as n rises\n\n");
}

void BM_MpsGhzEvolveAndSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const circ::QuantumCircuit c = ghz(n);
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.shots = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circ::Executor(options).run(c).counts);
  }
}
BENCHMARK(BM_MpsGhzEvolveAndSample)->Arg(16)->Arg(32)->Arg(64);

void BM_MpsBrickworkEvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const circ::QuantumCircuit c = testing::brickwork_circuit(n, 4, 0xb0b0);
  sim::MpsOptions options;
  options.max_bond_dim = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circ::evolve_mps(c, options).max_bond_dim_reached());
  }
}
BENCHMARK(BM_MpsBrickworkEvolve)->Arg(16)->Arg(32)->Arg(48);

void BM_MpsNonAdjacentCx(benchmark::State& state) {
  // Worst-case layout: every CX spans the whole chain, so each application
  // pays a full swap chain there and back.
  const auto n = static_cast<std::size_t>(state.range(0));
  circ::QuantumCircuit c(n, 0);
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  for (int r = 0; r < 4; ++r) c.cx(0, n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circ::evolve_mps(c).max_bond_dim_reached());
  }
}
BENCHMARK(BM_MpsNonAdjacentCx)->Arg(16)->Arg(32);

}  // namespace

/// Machine-readable obs snapshot of one MPS executor run (collected into
/// BENCH_obs.json alongside the statevector rows; same names as
/// --metrics-json). Metrics are switched off again before the timing
/// benchmarks run.
void print_obs_json() {
  std::printf("=== observability: metric snapshot of one MPS run ===\n");
  namespace obs = qutes::obs;
  obs::set_metrics_enabled(true);
  const std::vector<std::size_t> widths =
      quick_mode() ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 32};
  for (const std::size_t n : widths) {
    obs::reset_metrics();
    qutes::RunConfig options;
    options.backend.name = "mps";
    options.shots = 256;
    options.seed = 7;
    options.backend.max_bond_dim = 32;
    const circ::QuantumCircuit c = brickwork(n);
    (void)circ::Executor(options).run(c);
    std::string metrics = obs::export_metrics_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    std::printf("BENCH_JSON_OBS {\"bench\":\"mps\",\"workload\":"
                "\"brickwork\",\"qubits\":%zu,\"gates\":%zu,\"shots\":%zu,"
                "\"threads\":%d,\"metrics\":%s}\n",
                n, c.gate_count(), options.shots, bench_threads(),
                metrics.c_str());
  }
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
  std::printf("shape check: mps.max_bond_dim tracks bond_reached and "
              "mps.svd_truncations > 0 once the cap binds\n\n");
}

int main(int argc, char** argv) {
  print_mps_sweep_json();
  print_crossover_json();
  print_obs_json();
  benchmark::Initialize(&argc, argv);
  if (!quick_mode()) benchmark::RunSpecifiedBenchmarks();
  return 0;
}
