// E6 — front-end cost: "Qutes translates its syntax directly into
// executable quantum code". Regenerates the compile-throughput table
// (lex+parse+pass1 time vs program size — the shape claim is linear), and
// compares compile cost against simulation cost to show the translation
// layer is not the bottleneck.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "qutes/circuit/pass_manager.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/lexer.hpp"
#include "qutes/lang/parser.hpp"

namespace {

using namespace qutes::lang;

/// Synthetic classical-heavy program with `statements` statements.
std::string synthetic_program(std::size_t statements) {
  std::ostringstream out;
  out << "int acc = 0;\n";
  for (std::size_t i = 1; i + 1 < statements; ++i) {
    switch (i % 4) {
      case 0: out << "acc = acc + " << i << " * 2 - 1;\n"; break;
      case 1: out << "if (acc > " << i << ") { acc -= 1; } else { acc += 2; }\n"; break;
      case 2: out << "int v" << i << " = acc % 97;\n"; break;
      default: out << "acc = (acc << 1) % 1021;\n"; break;
    }
  }
  out << "print acc;\n";
  return out.str();
}

void print_pipeline_summary(const std::string& quantum_source,
                            double compile_us);

void print_summary() {
  std::printf("=== E6: compile throughput vs program size ===\n");
  std::printf("%10s %10s | %12s %14s %14s\n", "statements", "bytes", "tokens",
              "compile_us", "us_per_stmt");
  for (std::size_t n : {10u, 100u, 1000u, 5000u, 10000u}) {
    const std::string source = synthetic_program(n);
    const auto t0 = std::chrono::steady_clock::now();
    const auto tokens = tokenize(source);
    auto compiled = compile_source(source);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    std::printf("%10zu %10zu | %12zu %14.1f %14.3f\n", n, source.size(),
                tokens.size(), us, us / static_cast<double>(n));
    benchmark::DoNotOptimize(compiled.program.statements.size());
  }
  std::printf("shape check: us_per_stmt roughly flat -> linear-time front end\n");

  // Compile vs run for a quantum program: translation cost is negligible
  // next to state-vector simulation.
  const std::string quantum_source =
      "quint<5> x = 0q; hadamard x; quint<5> y = 5q; quint s = x + y; int v = s;";
  const auto c0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    benchmark::DoNotOptimize(compile_source(quantum_source));
  }
  const auto c1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    qutes::RunConfig options;
    options.seed = static_cast<std::uint64_t>(i);
    benchmark::DoNotOptimize(run_source(quantum_source, options));
  }
  const auto c2 = std::chrono::steady_clock::now();
  const double compile_us =
      std::chrono::duration<double, std::micro>(c1 - c0).count() / 20.0;
  const double total_us =
      std::chrono::duration<double, std::micro>(c2 - c1).count() / 20.0;
  std::printf("\n16-qubit arithmetic program: compile %.1f us, "
              "compile+simulate %.1f us (front end = %.2f%%)\n\n",
              compile_us, total_us, 100.0 * compile_us / total_us);

  print_pipeline_summary(quantum_source, compile_us);
}

/// End-to-end source -> lowered circuit through each PassManager preset.
/// Emits one BENCH_JSON_TRANSPILE line per preset (collected by
/// scripts/run_experiments.sh into BENCH_transpile.json) so compile-side
/// pipeline cost sits next to the transpiler ablation numbers.
void print_pipeline_summary(const std::string& quantum_source,
                            double compile_us) {
  using qutes::circ::PassManager;
  using qutes::circ::PassStats;
  using qutes::circ::Preset;
  std::printf("--- compile + pipeline presets (16-qubit arithmetic) ---\n");
  std::printf("%10s | %10s %10s | %14s %14s\n", "preset", "compile_us",
              "passes_us", "depth", "gates");
  for (const Preset preset :
       {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
    const PassManager pipeline = qutes::circ::make_pipeline(preset);
    qutes::RunConfig options;
    options.pipeline.manager = &pipeline;
    const RunResult result = run_source(quantum_source, options);
    const double passes_us = result.properties.total_wall_ms() * 1000.0;
    std::printf("%10s | %10.1f %10.1f | %6zu -> %-5zu %6zu -> %-5zu\n",
                qutes::circ::preset_name(preset), compile_us, passes_us,
                result.circuit.depth(), result.lowered_circuit.depth(),
                result.circuit.gate_count(), result.lowered_circuit.gate_count());
    std::printf("BENCH_JSON_TRANSPILE {\"bench\":\"compiler\","
                "\"workload\":\"arith16\",\"qubits\":%zu,\"preset\":\"%s\","
                "\"compile_us\":%.1f,\"wall_ms\":%.4f,"
                "\"depth_before\":%zu,\"depth_after\":%zu,"
                "\"size_before\":%zu,\"size_after\":%zu,"
                "\"twoq_before\":%zu,\"twoq_after\":%zu,\"passes\":[",
                result.circuit.num_qubits(), qutes::circ::preset_name(preset),
                compile_us, result.properties.total_wall_ms(),
                result.circuit.depth(), result.lowered_circuit.depth(),
                result.circuit.gate_count(), result.lowered_circuit.gate_count(),
                result.circuit.multi_qubit_gate_count(),
                result.lowered_circuit.multi_qubit_gate_count());
    for (std::size_t i = 0; i < result.properties.stats.size(); ++i) {
      const PassStats& s = result.properties.stats[i];
      std::printf("%s{\"name\":\"%s\",\"wall_ms\":%.4f,\"depth_after\":%zu,"
                  "\"size_after\":%zu,\"twoq_after\":%zu}",
                  i ? "," : "", s.name.c_str(), s.wall_ms, s.depth_after,
                  s.size_after, s.twoq_after);
    }
    std::printf("]}\n");
  }
  std::printf("\n");
}

void BM_Lex(benchmark::State& state) {
  const std::string source = synthetic_program(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenize(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Lex)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Parse(benchmark::State& state) {
  const std::string source = synthetic_program(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse(source));
  }
}
BENCHMARK(BM_Parse)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CompileFull(benchmark::State& state) {
  const std::string source = synthetic_program(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_source(source));
  }
}
BENCHMARK(BM_CompileFull)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RunClassicalProgram(benchmark::State& state) {
  const std::string source = synthetic_program(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    qutes::RunConfig options;
    benchmark::DoNotOptimize(run_source(source, options));
  }
}
BENCHMARK(BM_RunClassicalProgram)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
