// E10 (ablation) — what each transpiler pass buys. DESIGN.md calls out the
// lowering/optimization design choices; this bench quantifies them on
// representative workloads (the circuits other experiments use):
//   * peephole optimization: gate-count reduction on redundancy-heavy code;
//   * 1q fusion: gate/depth reduction on basis-lowered circuits;
//   * V-chain MCX lowering: linear Toffoli growth vs control count;
//   * linear routing: SWAP overhead vs circuit connectivity.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "qutes/algorithms/grover.hpp"
#include "qutes/algorithms/qft.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/routing.hpp"  // fuse_single_qubit_gates (not deprecated)
#include "qutes/circuit/transpiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

QuantumCircuit grover_workload(std::size_t n) {
  const std::uint64_t marked[] = {1};
  return algo::build_grover_circuit(n, marked);
}

/// One machine-readable line per (workload, preset): total pipeline wall
/// time, depth/size/2q before and after, and the per-pass breakdown.
/// scripts/run_experiments.sh collects these into BENCH_transpile.json
/// (same convention as the PR-1 BENCH_fusion.json lines).
void emit_bench_json(const char* workload, std::size_t qubits,
                     const QuantumCircuit& circuit, Preset preset) {
  const PassManager pm = make_pipeline(preset);
  PropertySet props;
  const QuantumCircuit lowered = pm.run(circuit, props);
  std::printf("BENCH_JSON_TRANSPILE {\"bench\":\"transpiler\","
              "\"workload\":\"%s\",\"qubits\":%zu,\"preset\":\"%s\","
              "\"wall_ms\":%.4f,"
              "\"depth_before\":%zu,\"depth_after\":%zu,"
              "\"size_before\":%zu,\"size_after\":%zu,"
              "\"twoq_before\":%zu,\"twoq_after\":%zu,\"passes\":[",
              workload, qubits, preset_name(preset), props.total_wall_ms(),
              circuit.depth(), lowered.depth(), circuit.gate_count(),
              lowered.gate_count(), circuit.multi_qubit_gate_count(),
              lowered.multi_qubit_gate_count());
  for (std::size_t i = 0; i < props.stats.size(); ++i) {
    const PassStats& s = props.stats[i];
    std::printf("%s{\"name\":\"%s\",\"wall_ms\":%.4f,\"depth_after\":%zu,"
                "\"size_after\":%zu,\"twoq_after\":%zu}",
                i ? "," : "", s.name.c_str(), s.wall_ms, s.depth_after,
                s.size_after, s.twoq_after);
  }
  std::printf("]}\n");
}

void print_preset_table() {
  std::printf("--- pipeline presets on Grover(5) / QFT(8) ---\n");
  std::printf("%10s %10s | %9s | %14s %14s %12s\n", "workload", "preset",
              "wall_ms", "depth", "gates", "2q");
  const struct { const char* name; std::size_t n; QuantumCircuit circuit; } workloads[] = {
      {"grover", 5, grover_workload(5)},
      {"qft", 8, algo::make_qft(8)},
  };
  for (const auto& w : workloads) {
    for (const Preset preset :
         {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
      const PassManager pm = make_pipeline(preset);
      PropertySet props;
      const QuantumCircuit lowered = pm.run(w.circuit, props);
      std::printf("%10s %10s | %9.3f | %6zu -> %-5zu %6zu -> %-5zu %4zu -> %-5zu\n",
                  w.name, preset_name(preset), props.total_wall_ms(),
                  w.circuit.depth(), lowered.depth(), w.circuit.gate_count(),
                  lowered.gate_count(), w.circuit.multi_qubit_gate_count(),
                  lowered.multi_qubit_gate_count());
      emit_bench_json(w.name, w.n, w.circuit, preset);
    }
  }
  std::printf("\n");
}

void print_summary() {
  std::printf("=== E10: transpiler ablation ===\n");
  std::printf("--- MCX lowering: Toffoli count vs controls (V-chain) ---\n");
  std::printf("%10s | %8s %8s %10s\n", "controls", "ccx", "ancilla", "depth");
  for (std::size_t k : {3u, 5u, 7u, 9u, 11u}) {
    QuantumCircuit c(k + 1);
    std::vector<std::size_t> controls(k);
    for (std::size_t i = 0; i < k; ++i) controls[i] = i;
    c.mcx(controls, k);
    const QuantumCircuit lowered = decompose_multicontrolled(c);
    std::printf("%10zu | %8zu %8zu %10zu\n", k, lowered.count_ops().at("ccx"),
                lowered.num_qubits() - c.num_qubits(), lowered.depth());
  }
  std::printf("shape check: ccx = 2(k-2)+1 — linear, not exponential\n");

  std::printf("\n--- fusion + peephole on basis-lowered Grover circuits ---\n");
  std::printf("%4s | %10s %10s | %10s %10s | %8s\n", "n", "raw_gates",
              "raw_depth", "opt_gates", "opt_depth", "saved");
  for (std::size_t n : {3u, 4u, 5u, 6u}) {
    const QuantumCircuit base = decompose_to_basis(grover_workload(n));
    const QuantumCircuit fused = optimize(fuse_single_qubit_gates(base));
    const double saved =
        100.0 * (1.0 - static_cast<double>(fused.gate_count()) /
                           static_cast<double>(base.gate_count()));
    std::printf("%4zu | %10zu %10zu | %10zu %10zu | %7.1f%%\n", n,
                base.gate_count(), base.depth(), fused.gate_count(),
                fused.depth(), saved);
  }

  std::printf("\n--- linear routing overhead (QFT, all-to-all -> line) ---\n");
  std::printf("%4s | %12s %10s | %12s %10s\n", "n", "gates", "depth",
              "routed_gates", "swaps");
  for (std::size_t n : {4u, 6u, 8u, 10u}) {
    const QuantumCircuit qft = decompose_to_basis(algo::make_qft(n));
    PassManager router;
    router.emplace<Route>();
    PropertySet props;
    const QuantumCircuit routed = router.run(qft, props);
    std::printf("%4zu | %12zu %10zu | %12zu %10zu\n", n, qft.gate_count(),
                qft.depth(), routed.gate_count(), props.swaps_inserted);
  }
  std::printf("shape check: SWAP overhead grows with the QFT's long-range "
              "CX pattern (~n^2 total)\n\n");
}

void BM_PeepholeOptimize(benchmark::State& state) {
  const QuantumCircuit base =
      decompose_to_basis(grover_workload(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize(base));
  }
}
BENCHMARK(BM_PeepholeOptimize)->Arg(3)->Arg(5);

void BM_Fusion(benchmark::State& state) {
  const QuantumCircuit base =
      decompose_to_basis(grover_workload(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse_single_qubit_gates(base));
  }
}
BENCHMARK(BM_Fusion)->Arg(3)->Arg(5);

void BM_BasisLowering(benchmark::State& state) {
  const QuantumCircuit base = grover_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_to_basis(base));
  }
}
BENCHMARK(BM_BasisLowering)->Arg(3)->Arg(5)->Arg(7);

void BM_RouteLinear(benchmark::State& state) {
  const QuantumCircuit qft =
      decompose_to_basis(algo::make_qft(static_cast<std::size_t>(state.range(0))));
  PassManager router;
  router.emplace<Route>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.run(qft));
  }
}
BENCHMARK(BM_RouteLinear)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  print_preset_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
