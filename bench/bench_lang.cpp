// E14 — language-engine throughput: the bytecode compiler + dispatch VM vs
// the tree-walking interpreter on classical-heavy programs (where per-node
// dispatch dominates; quantum-heavy programs are simulator-bound and land in
// E7). Regenerates the frontend table (lower cost, per-engine execute cost,
// speedup) and the artifact-cache row: what a qutesd-style hash hit on a
// saved .qbc costs next to a cold lex+parse+lower.
//
// Machine-readable rows go to stdout as BENCH_JSON_LANG lines;
// scripts/run_experiments.sh collects them into BENCH_lang.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/interpreter.hpp"
#include "qutes/lang/lower.hpp"
#include "qutes/lang/vm.hpp"

namespace {

using namespace qutes::lang;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

/// Classical-heavy workloads: tight loops, branches, calls, arrays. Each
/// executes tens of thousands of statements so engine dispatch cost, not
/// setup, dominates.
struct Workload {
  const char* name;
  std::string source;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"tight_loop",
                 "int acc = 0;\n"
                 "int i = 0;\n"
                 "while (i < 20000) { acc = acc + i * 3 - 1; i = i + 1; }\n"
                 "print acc;\n"});
  out.push_back({"branchy",
                 "int acc = 0;\n"
                 "int i = 0;\n"
                 "while (i < 15000) {\n"
                 "  if (i % 3 == 0) { acc += i; }\n"
                 "  else { if (i % 3 == 1) { acc -= 2; } else { acc = acc * 2 % 1021; } }\n"
                 "  i = i + 1;\n"
                 "}\n"
                 "print acc;\n"});
  out.push_back({"calls",
                 "int step(int a, int b) { return (a * b + 7) % 4093; }\n"
                 "int acc = 1;\n"
                 "int i = 0;\n"
                 "while (i < 8000) { acc = step(acc, i); i = i + 1; }\n"
                 "print acc;\n"});
  std::ostringstream arr;
  arr << "int[] xs = [";
  for (int i = 0; i < 64; ++i) arr << (i ? ", " : "") << (i * 37 % 101);
  arr << "];\n"
         "int acc = 0;\n"
         "int r = 0;\n"
         "while (r < 300) {\n"
         "  foreach x in xs { acc = (acc + x) % 9973; xs[acc % 64] = x + 1; }\n"
         "  r = r + 1;\n"
         "}\n"
         "print acc;\n";
  out.push_back({"arrays", arr.str()});
  return out;
}

/// One engine pass over an already-front-ended program. Fresh engine per
/// run (both are single-use); the AST / bytecode are reused across reps the
/// way a daemon would reuse them.
double time_ast_exec(CompileResult& compiled, int reps) {
  const auto t0 = clock_type::now();
  for (int r = 0; r < reps; ++r) {
    Interpreter interp({.seed = static_cast<std::uint64_t>(r)});
    interp.run(compiled.program, compiled.functions);
    benchmark::DoNotOptimize(interp.captured_output().size());
  }
  return ms_since(t0) / reps;
}

double time_vm_exec(const Bytecode& bc, int reps) {
  const auto t0 = clock_type::now();
  for (int r = 0; r < reps; ++r) {
    Vm vm(bc, {.seed = static_cast<std::uint64_t>(r)});
    vm.run();
    benchmark::DoNotOptimize(vm.runtime().captured_output().size());
  }
  return ms_since(t0) / reps;
}

void print_summary() {
  std::printf("=== E14: language-engine throughput (classical-heavy) ===\n");
  std::printf("%12s | %10s %12s %12s %9s | %12s %14s\n", "workload",
              "lower_ms", "ast_exec_ms", "vm_exec_ms", "speedup",
              "frontend_ms", "cache_hit_ms");
  // Min over independent sweeps: this box is shared and noisy (±10%+ run to
  // run), and min-of-reps is how every other bench here reads a floor.
  const int reps = 5;
  const int sweeps = 3;
  for (const Workload& w : workloads()) {
    // Front end once (shared by both engines), lowering timed separately.
    CompileResult compiled = compile_source(w.source, /*include_stdlib=*/false);
    const auto l0 = clock_type::now();
    const Bytecode bc =
        lower(compiled.program, compiled.functions, fnv1a64(w.source));
    const double lower_ms = ms_since(l0);

    double ast_ms = 1e300;
    double vm_ms = 1e300;
    for (int s = 0; s < sweeps; ++s) {
      ast_ms = std::min(ast_ms, time_ast_exec(compiled, reps));
      vm_ms = std::min(vm_ms, time_vm_exec(bc, reps));
    }
    const double speedup = ast_ms / vm_ms;

    // Cold front end (lex+parse+collect+lower) vs an artifact cache hit
    // (deserialize the saved image + verify the source hash).
    const std::vector<std::uint8_t> image = bc.serialize();
    double frontend_ms = 1e300;
    double cache_hit_ms = 1e300;
    for (int s = 0; s < sweeps; ++s) {
      const auto f0 = clock_type::now();
      for (int r = 0; r < reps; ++r) {
        benchmark::DoNotOptimize(
            lower_source(w.source, /*include_stdlib=*/false).total_ops());
      }
      frontend_ms = std::min(frontend_ms, ms_since(f0) / reps);
      const auto h0 = clock_type::now();
      for (int r = 0; r < reps; ++r) {
        const Bytecode cached =
            Bytecode::deserialize(image.data(), image.size());
        benchmark::DoNotOptimize(cached.source_hash == fnv1a64(w.source));
      }
      cache_hit_ms = std::min(cache_hit_ms, ms_since(h0) / reps);
    }

    std::printf("%12s | %10.3f %12.2f %12.2f %8.2fx | %12.3f %14.3f\n",
                w.name, lower_ms, ast_ms, vm_ms, speedup, frontend_ms,
                cache_hit_ms);
    std::printf("BENCH_JSON_LANG {\"workload\":\"%s\",\"lower_ms\":%.4f,"
                "\"ast_exec_ms\":%.4f,\"vm_exec_ms\":%.4f,\"speedup\":%.3f,"
                "\"frontend_ms\":%.4f,\"cache_hit_ms\":%.4f,\"ops\":%zu}\n",
                w.name, lower_ms, ast_ms, vm_ms, speedup, frontend_ms,
                cache_hit_ms, bc.total_ops());
  }
  std::printf("shape check: vm speedup >= 2x on dispatch-bound workloads; "
              "cache hit << cold front end\n\n");
}

// ---- google-benchmark timings ----------------------------------------------

const Workload& loop_workload() {
  static const Workload w = workloads().front();
  return w;
}

void BM_TreeWalkExecute(benchmark::State& state) {
  CompileResult compiled =
      compile_source(loop_workload().source, /*include_stdlib=*/false);
  for (auto _ : state) {
    Interpreter interp({.seed = 1});
    interp.run(compiled.program, compiled.functions);
    benchmark::DoNotOptimize(interp.captured_output().size());
  }
}
BENCHMARK(BM_TreeWalkExecute)->Unit(benchmark::kMillisecond);

void BM_VmExecute(benchmark::State& state) {
  CompileResult compiled =
      compile_source(loop_workload().source, /*include_stdlib=*/false);
  const Bytecode bc = lower(compiled.program, compiled.functions, 0);
  for (auto _ : state) {
    Vm vm(bc, {.seed = 1});
    vm.run();
    benchmark::DoNotOptimize(vm.runtime().captured_output().size());
  }
}
BENCHMARK(BM_VmExecute)->Unit(benchmark::kMillisecond);

void BM_Lower(benchmark::State& state) {
  CompileResult compiled =
      compile_source(loop_workload().source, /*include_stdlib=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lower(compiled.program, compiled.functions, 0).total_ops());
  }
}
BENCHMARK(BM_Lower);

void BM_ArtifactCacheHit(benchmark::State& state) {
  const Bytecode bc =
      lower_source(loop_workload().source, /*include_stdlib=*/false);
  const std::vector<std::uint8_t> image = bc.serialize();
  for (auto _ : state) {
    const Bytecode cached = Bytecode::deserialize(image.data(), image.size());
    benchmark::DoNotOptimize(cached.total_ops());
  }
}
BENCHMARK(BM_ArtifactCacheHit);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
