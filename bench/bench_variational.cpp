// E17 — variational workloads on symbolic parameters: what bind-before-run
// buys the hybrid loop. Three tables:
//
//   * optimizer throughput — full algo::minimize runs (VQE ground state,
//     QAOA MaxCut) with parameter-shift gradients: iterations/s and
//     energy evaluations/s, plus the converged objective as a shape check.
//   * batched vs sequential binds — N bindings of one symbolic ansatz
//     through Executor::run_bound_batch (pipeline runs once) vs N
//     pipeline+bind+run round trips. Counts are bit-identical by
//     construction; the bench asserts it.
//   * qutesd bind rate — a parameter sweep POSTed to a warm daemon: the
//     unbound artifact compiles once, every request is a cache hit plus a
//     bind. The bench asserts exactly one compile across the sweep.
//
// Machine-readable rows go to stdout as BENCH_JSON_VARIATIONAL lines;
// scripts/run_experiments.sh collects them into BENCH_variational.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qutes/algorithms/variational.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/service/protocol.hpp"
#include "qutes/service/service.hpp"

namespace {

namespace algo = qutes::algo;
namespace circ = qutes::circ;
namespace service = qutes::service;
using clock_type = std::chrono::steady_clock;

bool quick_mode() {
  const char* flag = std::getenv("QUTES_VARIATIONAL_QUICK");
  return flag != nullptr && std::string(flag) != "0";
}

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

// ---- E17a: optimizer throughput ---------------------------------------------

void print_optimizer_json() {
  std::printf("=== E17: variational — optimizer throughput "
              "(parameter-shift Adam) ===\n");
  std::printf("%-22s %8s %8s %10s %10s %12s\n", "problem", "iters", "evals",
              "wall_ms", "evals/s", "objective");

  struct Case {
    const char* name;
    algo::VariationalProblem problem;
    double target;  ///< shape check: objective must land within 0.05
  };
  std::vector<Case> cases;
  {
    algo::VariationalProblem bell;
    bell.ansatz = algo::build_ry_ansatz(2, 1);
    bell.hamiltonian = algo::Hamiltonian{{{-1.0, "XX"}, {-1.0, "ZZ"}}};
    bell.initial_parameters = {0.3, -0.2, 0.5, 0.1};
    cases.push_back({"vqe_bell_2q", bell, -2.0});

    algo::VariationalProblem chain;
    chain.ansatz = algo::build_ry_ansatz(quick_mode() ? 4 : 6, 2);
    chain.hamiltonian = algo::Hamiltonian{{{-1.0, quick_mode() ? "ZZII" : "ZZIIII"},
                                           {-1.0, quick_mode() ? "IZZI" : "IZZIII"},
                                           {-1.0, quick_mode() ? "IIZZ" : "IIZZII"}}};
    qutes::Rng rng(11);
    chain.initial_parameters.resize(chain.ansatz.num_parameters());
    for (double& p : chain.initial_parameters) {
      p = (rng.uniform() - 0.5) * 0.2;
    }
    cases.push_back({quick_mode() ? "vqe_chain_4q" : "vqe_chain_6q", chain,
                     -3.0});

    const algo::MaxCutInstance ring{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
    algo::VariationalProblem qaoa;
    qaoa.ansatz = algo::build_qaoa_ansatz(ring, 2);
    qaoa.hamiltonian = algo::maxcut_hamiltonian(ring);
    qaoa.maximize = true;
    qutes::Rng qrng(23);
    qaoa.initial_parameters.resize(4);
    for (double& a : qaoa.initial_parameters) a = 0.1 + 0.3 * qrng.uniform();
    cases.push_back({"qaoa_ring4_p2", qaoa, 4.0});
  }

  for (Case& c : cases) {
    algo::MinimizeOptions options;
    options.max_iterations = quick_mode() ? 60 : 200;
    const clock_type::time_point t0 = clock_type::now();
    const algo::MinimizeResult result = algo::minimize(c.problem, options);
    const double wall_ms = ms_since(t0);
    const double evals_per_s =
        1e3 * static_cast<double>(result.evaluations) / wall_ms;
    std::printf("%-22s %8zu %8zu %10.1f %10.0f %12.4f\n", c.name,
                result.iterations, result.evaluations, wall_ms, evals_per_s,
                result.value);
    std::printf(
        "BENCH_JSON_VARIATIONAL {\"bench\":\"variational\","
        "\"mode\":\"optimizer\",\"problem\":\"%s\",\"parameters\":%zu,"
        "\"iterations\":%zu,\"evaluations\":%zu,\"wall_ms\":%.3f,"
        "\"evals_per_s\":%.0f,\"objective\":%.6f}\n",
        c.name, c.problem.ansatz.num_parameters(), result.iterations,
        result.evaluations, wall_ms, evals_per_s, result.value);
    if (std::abs(result.value - c.target) > 0.05) {
      std::fprintf(stderr, "bench_variational: %s converged to %.4f, want %.4f\n",
                   c.name, result.value, c.target);
      std::exit(1);
    }
  }
  std::printf("shape check: every objective lands on its exact optimum "
              "(variational convergence)\n\n");
}

// ---- E17b: batched vs sequential binds --------------------------------------

void print_bind_batch_json() {
  std::printf("=== E17: variational — batched binds vs per-binding "
              "compile round trips ===\n");
  const std::size_t qubits = quick_mode() ? 8 : 12;
  const std::size_t n_items = 32;
  circ::QuantumCircuit ansatz = algo::build_ry_ansatz(qubits, 2);
  for (std::size_t q = 0; q < qubits; ++q) {
    ansatz.add_classical_register("m" + std::to_string(q), 1);
  }
  for (std::size_t q = 0; q < qubits; ++q) ansatz.measure(q, q);

  qutes::Rng rng(7);
  std::vector<circ::BindBatchItem> items(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    items[i].params.resize(ansatz.num_parameters());
    for (double& p : items[i].params) p = 0.3 + 2.5 * rng.uniform();
    items[i].seed = 100 + i;
    items[i].shots = 256;
  }

  circ::PassManager pipeline = circ::make_pipeline(circ::Preset::O1);
  qutes::RunConfig config;
  config.pipeline.manager = &pipeline;

  // Sequential: every binding pays the full pipeline on its bound circuit —
  // what a fixed-angle driver that rebuilds per evaluation used to do.
  clock_type::time_point t0 = clock_type::now();
  std::vector<circ::ExecutionResult> sequential;
  for (const circ::BindBatchItem& item : items) {
    qutes::RunConfig per = config;
    per.seed = item.seed;
    per.shots = item.shots;
    sequential.push_back(circ::Executor(per).run(ansatz.bind(item.params)));
  }
  const double sequential_ms = ms_since(t0);

  // Batched: the pipeline runs ONCE on the symbolic ansatz; each item is a
  // cheap bind + execute.
  t0 = clock_type::now();
  const std::vector<circ::ExecutionResult> batched =
      circ::Executor(config).run_bound_batch(ansatz, items);
  const double batched_ms = ms_since(t0);

  for (std::size_t i = 0; i < n_items; ++i) {
    if (batched[i].counts != sequential[i].counts) {
      std::fprintf(stderr,
                   "bench_variational: bound-batch counts diverged at %zu\n",
                   i);
      std::exit(1);
    }
  }

  const double speedup = sequential_ms / batched_ms;
  std::printf("RY(%zuq, 2 layers), %zu bindings x 256 shots under O1: "
              "sequential %.1f ms, batched %.1f ms (%.2fx), counts "
              "bit-identical\n",
              qubits, n_items, sequential_ms, batched_ms, speedup);
  std::printf(
      "BENCH_JSON_VARIATIONAL {\"bench\":\"variational\","
      "\"mode\":\"bind_batch\",\"qubits\":%zu,\"parameters\":%zu,"
      "\"items\":%zu,\"shots\":256,\"sequential_ms\":%.3f,"
      "\"batched_ms\":%.3f,\"speedup\":%.2f}\n",
      qubits, ansatz.num_parameters(), n_items, sequential_ms, batched_ms,
      speedup);
  std::printf("shape check: the batch amortizes the one pipeline run, so "
              "speedup grows with circuit size and item count\n\n");
}

// ---- E17c: qutesd bind rate -------------------------------------------------

void print_service_sweep_json() {
  std::printf("=== E17: variational — parameter sweep through qutesd ===\n");
  const std::size_t requests = quick_mode() ? 100 : 500;
  service::Service svc;
  service::Request request;
  request.op = "run";
  request.source = "qubit q = |0>; ry(param(\"t\"), q); print q;";
  request.shots = 64;

  // Cold request: pays the one compile of the unbound artifact.
  request.params = {0.1};
  request.seed = 1;
  clock_type::time_point t0 = clock_type::now();
  if (service::Response r = svc.handle(request); !r.ok || r.cache != "miss") {
    std::fprintf(stderr, "bench_variational: sweep warmup failed: %s\n",
                 r.error.c_str());
    std::exit(1);
  }
  const double cold_ms = ms_since(t0);

  // Warm sweep: every request re-binds the cached artifact.
  t0 = clock_type::now();
  for (std::size_t i = 0; i < requests; ++i) {
    request.params = {0.01 * static_cast<double>(i + 1)};
    request.seed = i + 2;
    service::Response r = svc.handle(request);
    if (!r.ok || r.cache != "hit") {
      std::fprintf(stderr, "bench_variational: sweep request %zu failed: %s\n",
                   i, r.error.c_str());
      std::exit(1);
    }
  }
  const double sweep_ms = ms_since(t0);
  const double binds_per_s = 1e3 * static_cast<double>(requests) / sweep_ms;

  if (svc.cache().stats().compiles != 1) {
    std::fprintf(stderr,
                 "bench_variational: sweep compiled %zu times, want 1\n",
                 svc.cache().stats().compiles);
    std::exit(1);
  }

  std::printf("%zu bindings in %.1f ms = %.0f binds/s (cold compile %.2f ms, "
              "1 compile total)\n",
              requests, sweep_ms, binds_per_s, cold_ms);
  std::printf(
      "BENCH_JSON_VARIATIONAL {\"bench\":\"variational\","
      "\"mode\":\"service_sweep\",\"requests\":%zu,\"cold_ms\":%.4f,"
      "\"sweep_ms\":%.3f,\"binds_per_s\":%.0f,\"compiles\":1}\n",
      requests, cold_ms, sweep_ms, binds_per_s);
  std::printf("shape check: the whole sweep is ONE compile and N binds — "
              "parameter values are not part of the cache key\n\n");
}

void print_summary() {
  print_optimizer_json();
  print_bind_batch_json();
  print_service_sweep_json();
}

// ---- google-benchmark timings ----------------------------------------------

void BM_ParameterShiftGradient(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const circ::QuantumCircuit ansatz = algo::build_ry_ansatz(n, 2);
  const algo::Hamiltonian h{{{-1.0, std::string(n, 'Z')}}};
  std::vector<double> at(ansatz.num_parameters(), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::parameter_shift_gradient(ansatz, h, at).size());
  }
}
BENCHMARK(BM_ParameterShiftGradient)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BindOnly(benchmark::State& state) {
  const circ::QuantumCircuit ansatz = algo::build_ry_ansatz(8, 2);
  const std::vector<double> values(ansatz.num_parameters(), 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ansatz.bind(values).size());
  }
}
BENCHMARK(BM_BindOnly);

void BM_MinimizeIteration(benchmark::State& state) {
  algo::VariationalProblem problem;
  problem.ansatz = algo::build_ry_ansatz(4, 1);
  problem.hamiltonian = algo::Hamiltonian{{{-1.0, "ZZZZ"}}};
  problem.initial_parameters.assign(problem.ansatz.num_parameters(), 0.3);
  algo::MinimizeOptions options;
  options.max_iterations = 1;
  options.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::minimize(problem, options).evaluations);
  }
}
BENCHMARK(BM_MinimizeIteration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
