// Noise study: how entanglement quality degrades on NISQ-style hardware —
// cross-validating the two noise engines the library ships:
//   * exact channel evolution on the DensityMatrix,
//   * Monte-Carlo trajectories on the StateVector (what the Executor uses).
// The observable is the Bell-pair fidelity under growing depolarizing noise.
#include <cstdio>
#include <iostream>

#include "qutes/common/rng.hpp"
#include "qutes/sim/density_matrix.hpp"
#include "qutes/sim/noise.hpp"
#include "qutes/sim/statevector.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;

/// Ideal Bell pair for fidelity references.
StateVector ideal_bell() {
  StateVector psi(2);
  psi.apply_1q(gates::H(), 0);
  psi.apply_controlled_1q(gates::X(), 0, 1);
  return psi;
}

/// Exact: prepare Bell, depolarize both qubits with probability p.
double exact_fidelity(double p) {
  DensityMatrix rho(2);
  rho.apply_1q(gates::H(), 0);
  const std::size_t c[1] = {0};
  rho.apply_multi_controlled_1q(gates::X(), c, 1);
  rho.apply_depolarizing(0, p);
  rho.apply_depolarizing(1, p);
  return rho.fidelity(ideal_bell());
}

/// Trajectory average of the same experiment.
double trajectory_fidelity(double p, int trials, std::uint64_t seed) {
  const StateVector reference = ideal_bell();
  Rng rng(seed);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    StateVector psi(2);
    psi.apply_1q(gates::H(), 0);
    psi.apply_controlled_1q(gates::X(), 0, 1);
    apply_depolarizing(psi, 0, p, rng);
    apply_depolarizing(psi, 1, p, rng);
    total += psi.fidelity(reference);
  }
  return total / trials;
}

}  // namespace

int main() {
  std::printf("Bell-pair fidelity under per-qubit depolarizing noise\n");
  std::printf("%8s | %14s %20s %10s\n", "p", "exact (rho)", "trajectory (20k avg)",
              "|diff|");
  for (const double p : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const double exact = exact_fidelity(p);
    const double sampled = trajectory_fidelity(p, 20000, 42);
    std::printf("%8.2f | %14.4f %20.4f %10.4f\n", p, exact, sampled,
                std::abs(exact - sampled));
  }
  std::printf("\nThe two noise engines agree: the Monte-Carlo unraveling the\n"
              "Executor uses converges to the exact channel the density\n"
              "matrix computes.\n");
  return 0;
}
