// Entanglement propagation (paper Section 5): the entanglement-swap protocol
// written directly in Qutes — Bell pairs, mid-circuit measurement, and
// classically-conditioned corrections via ordinary if statements — plus the
// library-level chain with its fidelity diagnostics.
#include <iostream>

#include "qutes/algorithms/entanglement.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  try {
    // --- DSL surface -------------------------------------------------------------
    // Two Bell links (a,b) and (c,d); Bell-measure (b,c); correct d. After
    // the protocol, a and d are maximally correlated even though they never
    // interacted.
    const std::string source = R"qutes(
      qubit a = |0>;
      qubit b = |0>;
      qubit c = |0>;
      qubit d = |0>;

      bell(a, b);
      bell(c, d);
      barrier;

      // Bell measurement on the middle qubits.
      cx(b, c);
      hadamard b;
      bool mz = b;     // automatic measurement
      bool mx = c;

      // Corrections on the far endpoint.
      if (mx) { not d; }
      if (mz) { pauliz d; }

      // The endpoints now form a Bell pair: measuring both must agree.
      bool va = a;
      bool vd = d;
      if (va == vd) {
        print "endpoints correlated";
      } else {
        print "endpoints DISAGREE (bug!)";
      }
    )qutes";

    // Run several trajectories: the endpoint agreement must hold for every
    // random measurement outcome.
    std::cout << "--- Qutes program, 5 seeds ---\n";
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      qutes::RunConfig options;
      options.seed = seed;
      const auto run = qutes::lang::run_source(source, options);
      std::cout << "seed " << seed << ": " << run.output;
    }

    // --- library level: longer chains --------------------------------------------
    std::cout << "\n--- entanglement chain (library) ---\n";
    for (std::size_t links : {2u, 4u, 8u}) {
      const auto result = qutes::algo::run_entanglement_chain(links, /*seed=*/links);
      std::cout << links << " links (" << result.chain_qubits << " qubits): "
                << "endpoint <ZZ> = " << result.zz_correlation
                << ", Bell fidelity = " << result.bell_fidelity << "\n";
    }
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
