// Deutsch-Jozsa in Qutes (paper Section 5): a user-defined function takes a
// quantum register, applies the oracle, and one measurement decides
// constant-vs-balanced — versus 2^{n-1}+1 classical queries.
#include <iostream>

#include "qutes/algorithms/deutsch_jozsa.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  try {
    // --- DSL surface: the oracle is a Qutes function over a quint ----------------
    const std::string source = R"qutes(
      // Balanced oracle f(x) = x0 XOR x2, phase-kickback form: the caller
      // prepares y in |-> and the oracle XORs f(x) into it via cx.
      void oracle(quint x, qubit y) {
        cx(x[0], y);
        cx(x[2], y);
      }

      quint<4> x = 0q;
      qubit y = |->;

      hadamard x;
      oracle(x, y);
      hadamard x;

      int verdict = x;     // automatic measurement
      if (verdict == 0) {
        print "constant";
      } else {
        print "balanced";
      }
    )qutes";
    qutes::RunConfig options;
    options.seed = 3;
    const auto run = qutes::lang::run_source(source, options);
    std::cout << "--- Qutes program output ---\n" << run.output << "\n";

    // --- library level: query-count comparison across oracle families ------------
    std::cout << "--- query complexity (n inputs): quantum vs classical ---\n";
    for (std::size_t n : {2u, 4u, 8u, 12u}) {
      const auto balanced = qutes::algo::DjOracle::balanced(1ULL << (n - 1));
      const auto result = qutes::algo::run_deutsch_jozsa(n, balanced);
      const std::size_t classical =
          qutes::algo::classical_deutsch_jozsa_queries(
              n, qutes::algo::DjOracle::constant(false));
      std::cout << "n=" << n << ": quantum verdict "
                << (result.constant ? "constant" : "balanced")
                << " in 1 query; classical worst case " << classical
                << " queries\n";
    }
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
