// Quickstart: run a complete Qutes program from C++ and inspect what it
// compiled to.
//
// The program mirrors the paper's first showcase: quantum types, a
// superposition literal, quantum addition, and automatic measurement when a
// quantum value reaches a classical context (print).
#include <iostream>

#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  const std::string source = R"qutes(
    // Quantum variables: a qubit in |+>, a quint holding 5, and a quint in
    // an equal superposition of 1 and 3.
    qubit q = |+>;
    quint a = 5q;
    quint b = [1, 3]q;

    // Superposition addition: sum becomes (|6> + |8>)/sqrt(2), entangled
    // with b.
    quint sum = a + b;

    // Printing a quantum variable performs an automatic measurement.
    print sum;

    // The measurement collapsed b too (sum is entangled with it): check
    // classical consistency.
    int sv = sum;
    int bv = b;
    if (sv == 5 + bv) {
      print "arithmetic consistent";
    }
  )qutes";

  try {
    qutes::RunConfig options;
    options.seed = 2025;
    const auto result = qutes::lang::run_source(source, options);

    std::cout << "--- program output ---\n" << result.output;
    std::cout << "--- circuit ---\n";
    std::cout << "qubits: " << result.num_qubits << ", depth: " << result.circuit_depth
              << ", gates: " << result.gate_count << "\n";
    std::cout << qutes::circ::draw(result.circuit);
    std::cout << "--- OpenQASM 2.0 (first lines) ---\n";
    const std::string qasm = qutes::circ::qasm::export_circuit(result.circuit);
    std::cout << qasm.substr(0, qasm.find('\n', 200) + 1) << "...\n";
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
