// Hybrid quantum-classical workflow — the motivation the paper gives for
// Qutes' quantum/classical collaboration ("hybrid workflows in fields like
// machine learning"): a classical optimizer steering a parameterized
// quantum circuit to the ground state of a small spin Hamiltonian.
//
// Both loops run through the symbolic-parameter driver (variational.hpp):
// the ansatz is built once with unbound circ::Param angles, each objective
// evaluation is a cheap bind, and gradients come from the exact two-term
// parameter-shift rule.
#include <cstdio>
#include <vector>

#include "qutes/algorithms/qaoa.hpp"
#include "qutes/algorithms/variational.hpp"
#include "qutes/algorithms/vqe.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/rng.hpp"

int main() {
  using qutes::algo::Hamiltonian;
  using qutes::algo::MinimizeOptions;
  using qutes::algo::VariationalProblem;

  struct Case {
    const char* name;
    Hamiltonian hamiltonian;
    std::size_t qubits;
  };
  const Case cases[] = {
      {"ferromagnet  -ZZ", Hamiltonian{{{-1.0, "ZZ"}}}, 2},
      {"Bell target  -XX - ZZ", Hamiltonian{{{-1.0, "XX"}, {-1.0, "ZZ"}}}, 2},
      {"transverse   -ZZ - 0.5(XI + IX)",
       Hamiltonian{{{-1.0, "ZZ"}, {-0.5, "XI"}, {-0.5, "IX"}}}, 2},
      {"3-spin chain -Z0Z1 - Z1Z2 - 0.3 X field",
       Hamiltonian{{{-1.0, "ZZI"},
                    {-1.0, "IZZ"},
                    {-0.3, "XII"},
                    {-0.3, "IXI"},
                    {-0.3, "IIX"}}},
       3},
  };

  std::printf("VQE: symbolic RY-ladder ansatz + parameter-shift Adam "
              "vs exact ground energy\n");
  std::printf("%-42s | %12s %12s %8s %8s\n", "Hamiltonian", "VQE energy",
              "exact E0", "evals", "iters");
  for (const Case& c : cases) {
    VariationalProblem problem;
    problem.ansatz = qutes::algo::build_ry_ansatz(c.qubits, 2);
    problem.hamiltonian = c.hamiltonian;
    qutes::Rng rng(17);
    problem.initial_parameters.resize(problem.ansatz.num_parameters());
    for (double& p : problem.initial_parameters) {
      p = (rng.uniform() - 0.5) * 0.2;
    }
    MinimizeOptions options;
    options.max_iterations = 400;
    const auto result = qutes::algo::minimize(problem, options);
    const double exact = c.hamiltonian.exact_ground_energy(c.qubits);
    std::printf("%-42s | %12.6f %12.6f %8zu %8zu\n", c.name, result.value,
                exact, result.evaluations, result.iterations);
  }
  std::printf("\nThe variational energies sit on (never below) the exact\n"
              "ground energies — the hybrid loop converges.\n");

  // ---- QAOA: the optimization workload -----------------------------------------
  using qutes::algo::MaxCutInstance;

  struct Graph {
    const char* name;
    MaxCutInstance instance;
  };
  const Graph graphs[] = {
      {"4-ring", {4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}}},
      {"triangle", {3, {{0, 1}, {1, 2}, {2, 0}}}},
      {"5-wheel-ish", {5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}}},
  };

  std::printf("\nQAOA (p = 2) on MaxCut instances\n");
  std::printf("%-14s | %12s %10s %10s %8s\n", "graph", "<cut>", "best_cut",
              "optimum", "evals");
  for (const Graph& g : graphs) {
    const std::size_t p = 2;
    VariationalProblem problem;
    problem.ansatz = qutes::algo::build_qaoa_ansatz(g.instance, p);
    problem.hamiltonian = qutes::algo::maxcut_hamiltonian(g.instance);
    problem.maximize = true;
    qutes::Rng rng(23);
    problem.initial_parameters.resize(2 * p);
    for (double& a : problem.initial_parameters) a = 0.1 + 0.3 * rng.uniform();
    MinimizeOptions options;
    options.max_iterations = 300;
    const auto result = qutes::algo::minimize(problem, options);

    // Sample assignments from the optimized state; keep the best cut seen.
    const qutes::circ::QuantumCircuit bound =
        problem.ansatz.bind(result.parameters);
    qutes::circ::Executor ex({.shots = 1, .seed = 2});
    const auto traj = ex.run_single(bound);
    std::size_t best_cut = 0;
    for (std::size_t s = 0; s < 256; ++s) {
      best_cut = std::max(best_cut,
                          g.instance.cut_value(traj.state.sample(rng)));
    }
    std::printf("%-14s | %12.4f %10zu %10zu %8zu\n", g.name, result.value,
                best_cut, g.instance.max_cut_brute_force(),
                result.evaluations);
  }
  std::printf("\nbest_cut matches the brute-force optimum on every instance.\n");
  return 0;
}
