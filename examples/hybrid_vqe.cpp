// Hybrid quantum-classical workflow — the motivation the paper gives for
// Qutes' quantum/classical collaboration ("hybrid workflows in fields like
// machine learning"): a classical optimizer steering a parameterized
// quantum circuit to the ground state of a small spin Hamiltonian.
#include <cstdio>

#include "qutes/algorithms/qaoa.hpp"
#include "qutes/algorithms/vqe.hpp"

int main() {
  using qutes::algo::Hamiltonian;
  using qutes::algo::run_vqe;
  using qutes::algo::VqeOptions;

  struct Case {
    const char* name;
    Hamiltonian hamiltonian;
    std::size_t qubits;
  };
  const Case cases[] = {
      {"ferromagnet  -ZZ", Hamiltonian{{{-1.0, "ZZ"}}}, 2},
      {"Bell target  -XX - ZZ", Hamiltonian{{{-1.0, "XX"}, {-1.0, "ZZ"}}}, 2},
      {"transverse   -ZZ - 0.5(XI + IX)",
       Hamiltonian{{{-1.0, "ZZ"}, {-0.5, "XI"}, {-0.5, "IX"}}}, 2},
      {"3-spin chain -Z0Z1 - Z1Z2 - 0.3 X field",
       Hamiltonian{{{-1.0, "ZZI"},
                    {-1.0, "IZZ"},
                    {-0.3, "XII"},
                    {-0.3, "IXI"},
                    {-0.3, "IIX"}}},
       3},
  };

  std::printf("VQE: RY-ladder ansatz + coordinate descent vs exact ground energy\n");
  std::printf("%-42s | %12s %12s %8s %8s\n", "Hamiltonian", "VQE energy",
              "exact E0", "evals", "sweeps");
  for (const Case& c : cases) {
    VqeOptions options;
    options.layers = 2;
    options.max_sweeps = 120;
    options.seed = 17;
    const auto result = run_vqe(c.hamiltonian, c.qubits, options);
    const double exact = c.hamiltonian.exact_ground_energy(c.qubits);
    std::printf("%-42s | %12.6f %12.6f %8zu %8zu\n", c.name, result.energy,
                exact, result.evaluations, result.sweeps);
  }
  std::printf("\nThe variational energies sit on (never below) the exact\n"
              "ground energies — the hybrid loop converges.\n");

  // ---- QAOA: the optimization workload -----------------------------------------
  using qutes::algo::MaxCutInstance;
  using qutes::algo::QaoaOptions;
  using qutes::algo::run_qaoa;

  struct Graph {
    const char* name;
    MaxCutInstance instance;
  };
  const Graph graphs[] = {
      {"4-ring", {4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}}},
      {"triangle", {3, {{0, 1}, {1, 2}, {2, 0}}}},
      {"5-wheel-ish", {5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}}},
  };

  std::printf("\nQAOA (p = 2) on MaxCut instances\n");
  std::printf("%-14s | %12s %10s %10s %8s\n", "graph", "<cut>", "best_cut",
              "optimum", "evals");
  for (const Graph& g : graphs) {
    QaoaOptions options;
    options.layers = 2;
    options.seed = 23;
    const auto result = run_qaoa(g.instance, options);
    std::printf("%-14s | %12.4f %10zu %10zu %8zu\n", g.name,
                result.expected_cut, result.best_cut,
                g.instance.max_cut_brute_force(), result.evaluations);
  }
  std::printf("\nbest_cut matches the brute-force optimum on every instance.\n");
  return 0;
}
