// Quantum arithmetic and the constant-depth cyclic shift (paper Section 5).
//
// Demonstrates quint arithmetic through the DSL (+=, -=, <<=) and contrasts
// the constant-depth rotation circuit with the linear-depth baseline at the
// library level — the paper's "rotation in constant time" claim.
#include <iostream>

#include "qutes/algorithms/rotation.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  try {
    // --- DSL surface -------------------------------------------------------------
    const std::string source = R"qutes(
      quint<6> x = 5q;     // |000101>
      x += 9;              // Draper constant addition -> 14
      x -= 3;              // -> 11
      print x;             // measures: 11

      quint<8> y = 1q;
      y <<= 3;             // constant-depth cyclic rotation: bit 0 -> bit 3
      print y;             // 8

      y >>= 1;             // rotate right
      print y;             // 4
    )qutes";
    qutes::RunConfig options;
    options.seed = 42;
    const auto run = qutes::lang::run_source(source, options);
    std::cout << "--- Qutes program output ---\n" << run.output;

    // --- library level: depth scaling -------------------------------------------
    std::cout << "\n--- rotation depth: constant-depth vs linear baseline ---\n";
    std::cout << "n   k   const_depth  linear_depth\n";
    for (std::size_t n : {4u, 8u, 12u, 16u, 20u}) {
      const std::size_t k = n / 2;
      std::vector<std::size_t> qubits(n);
      for (std::size_t i = 0; i < n; ++i) qubits[i] = i;

      qutes::circ::QuantumCircuit constant(n);
      qutes::algo::append_rotate_constant_depth(constant, qubits, k);
      qutes::circ::QuantumCircuit linear(n);
      qutes::algo::append_rotate_linear_depth(linear, qubits, k);

      std::cout << n << "  " << k << "   " << constant.depth() << "            "
                << linear.depth() << "\n";
    }
    std::cout << "(SWAP-level depth; the constant construction stays at 2 "
                 "regardless of n)\n";
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
