// Database operations through the DSL — the paper's §6 future-work
// direction ("database operations governed by arbitrary filter functions",
// "native operations for calculating the maximum and minimum of a set"),
// implemented and exercised here at both levels of the stack.
#include <cstdio>
#include <iostream>

#include "qutes/algorithms/database.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  try {
    // --- DSL surface -------------------------------------------------------------
    const std::string source = R"qutes(
      int[] table = [21, 8, 30, 3, 17, 11, 25, 6];

      // Grover-backed aggregate queries (Durr-Hoyer under the hood).
      print qmin(table);
      print qmax(table);

      // Grover equality search: index of the entry equal to 11.
      print qsearch(table, 11);
      print qsearch(table, 99);
    )qutes";
    qutes::RunConfig options;
    options.seed = 12;
    const auto run = qutes::lang::run_source(source, options);
    std::cout << "--- Qutes program output ---\n" << run.output;
    std::cout << "(qsearch compiled into " << run.num_qubits << " qubits, "
              << run.gate_count << " gates)\n\n";

    // --- library level -------------------------------------------------------------
    std::cout << "--- algo::QuantumDatabase diagnostics ---\n";
    const std::vector<std::uint64_t> table = {21, 8, 30, 3, 17, 11, 25, 6};
    const qutes::algo::QuantumDatabase db(table);
    const auto found = db.run_equal(17, 5);
    std::printf("equality search for 17: index %llu, %zu oracle call(s), "
                "P(success) = %.3f, %s\n",
                static_cast<unsigned long long>(found.outcome),
                found.oracle_calls, found.success_probability,
                found.hit ? "verified" : "miss");

    const auto minimum = qutes::algo::find_minimum(table, 5);
    std::printf("minimum: %llu (index %llu) after %zu Grover rounds, "
                "%zu oracle calls, exact=%s\n",
                static_cast<unsigned long long>(minimum.value),
                static_cast<unsigned long long>(minimum.index),
                minimum.grover_rounds, minimum.oracle_calls,
                minimum.exact ? "yes" : "no");
    std::printf("classical baseline: %zu comparisons\n", table.size() - 1);
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
