// Grover substring search — the paper's flagship example: the Qutes `in`
// operator compiles to a Grover search over window positions.
//
// Shows both levels of the stack:
//  1. the DSL surface (`"101" in text` inside a Qutes program), and
//  2. the underlying algo::SubstringSearch API with its iteration /
//     success-probability diagnostics.
#include <iostream>

#include "qutes/algorithms/grover.hpp"
#include "qutes/lang/compiler.hpp"

int main() {
  try {
    // --- DSL surface -----------------------------------------------------------
    const std::string source = R"qutes(
      qustring text = "0110100"q;
      if ("101" in text) {
        print "pattern found";
      } else {
        print "pattern missing";
      }
      print indexof("101", text);
    )qutes";
    qutes::RunConfig options;
    options.seed = 11;
    const auto run = qutes::lang::run_source(source, options);
    std::cout << "--- Qutes program output ---\n" << run.output;
    std::cout << "compiled to " << run.num_qubits << " qubits, "
              << run.gate_count << " gates\n\n";

    // --- library level ----------------------------------------------------------
    std::cout << "--- algo::SubstringSearch diagnostics ---\n";
    const std::string text = "011010011010";
    for (const std::string pattern : {"101", "0110", "111"}) {
      if (pattern.size() > text.size()) continue;
      const qutes::algo::SubstringSearch search(text, pattern);
      if (search.matches().empty()) {
        std::cout << "pattern " << pattern << ": no classical matches";
        const auto r = search.run(/*seed=*/5);
        std::cout << " -> quantum verdict hit=" << r.hit << "\n";
        continue;
      }
      const auto result = search.run(/*seed=*/5);
      std::cout << "pattern " << pattern << ": " << search.matches().size()
                << " match(es), " << result.iterations << " Grover iteration(s), "
                << "P(success) = " << result.success_probability
                << ", measured position = " << result.outcome
                << (result.hit ? " (verified)" : " (miss)") << "\n";
    }
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
