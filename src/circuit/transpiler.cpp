// Legacy transpiler entry points, kept for source compatibility. Each free
// function is a thin wrapper over a one-pass (or preset) PassManager — the
// transform implementations live in circuit/pass_manager.cpp.
#include "qutes/circuit/transpiler.hpp"

#include "qutes/circuit/pass_manager.hpp"

namespace qutes::circ {

QuantumCircuit decompose_multicontrolled(const QuantumCircuit& circuit) {
  PassManager pm;
  pm.emplace<DecomposeMulticontrolled>();
  return pm.run(circuit);
}

QuantumCircuit decompose_to_basis(const QuantumCircuit& circuit) {
  PassManager pm;
  pm.emplace<DecomposeToBasis>();
  return pm.run(circuit);
}

QuantumCircuit optimize(const QuantumCircuit& circuit, int max_passes) {
  PassManager pm;
  pm.emplace<Optimize>(max_passes);
  return pm.run(circuit);
}

QuantumCircuit transpile(const QuantumCircuit& circuit, const TranspileOptions& options) {
  PassManager pm;
  if (options.to_basis) {
    pm.emplace<DecomposeToBasis>();
  } else if (options.lower_multicontrolled) {
    pm.emplace<DecomposeMulticontrolled>();
  }
  if (options.optimization_level > 0) {
    pm.emplace<Optimize>();
  }
  return pm.run(circuit);
}

}  // namespace qutes::circ
