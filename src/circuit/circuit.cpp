#include "qutes/circuit/circuit.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "qutes/common/error.hpp"

namespace qutes::circ {

std::size_t fixed_arity(GateType type) noexcept {
  switch (type) {
    case GateType::H: case GateType::X: case GateType::Y: case GateType::Z:
    case GateType::S: case GateType::Sdg: case GateType::T: case GateType::Tdg:
    case GateType::SX: case GateType::RX: case GateType::RY: case GateType::RZ:
    case GateType::P: case GateType::U:
    case GateType::Measure: case GateType::Reset:
      return 1;
    case GateType::CX: case GateType::CY: case GateType::CZ: case GateType::CH:
    case GateType::CP: case GateType::CRZ: case GateType::SWAP:
      return 2;
    case GateType::CCX: case GateType::CSWAP:
      return 3;
    case GateType::GlobalPhase:
      return 0;
    case GateType::MCX: case GateType::MCZ: case GateType::MCP:
    case GateType::Barrier:
      return 0;  // variadic
  }
  return 0;
}

std::size_t param_count(GateType type) noexcept {
  switch (type) {
    case GateType::RX: case GateType::RY: case GateType::RZ: case GateType::P:
    case GateType::CP: case GateType::CRZ: case GateType::MCP:
    case GateType::GlobalPhase:
      return 1;
    case GateType::U:
      return 3;
    default:
      return 0;
  }
}

const char* gate_name(GateType type) noexcept {
  switch (type) {
    case GateType::H: return "h";
    case GateType::X: return "x";
    case GateType::Y: return "y";
    case GateType::Z: return "z";
    case GateType::S: return "s";
    case GateType::Sdg: return "sdg";
    case GateType::T: return "t";
    case GateType::Tdg: return "tdg";
    case GateType::SX: return "sx";
    case GateType::RX: return "rx";
    case GateType::RY: return "ry";
    case GateType::RZ: return "rz";
    case GateType::P: return "p";
    case GateType::U: return "u";
    case GateType::CX: return "cx";
    case GateType::CY: return "cy";
    case GateType::CZ: return "cz";
    case GateType::CH: return "ch";
    case GateType::CP: return "cp";
    case GateType::CRZ: return "crz";
    case GateType::SWAP: return "swap";
    case GateType::CCX: return "ccx";
    case GateType::CSWAP: return "cswap";
    case GateType::MCX: return "mcx";
    case GateType::MCZ: return "mcz";
    case GateType::MCP: return "mcp";
    case GateType::Measure: return "measure";
    case GateType::Reset: return "reset";
    case GateType::Barrier: return "barrier";
    case GateType::GlobalPhase: return "gphase";
  }
  return "?";
}

bool is_unitary_gate(GateType type) noexcept {
  switch (type) {
    case GateType::Measure: case GateType::Reset: case GateType::Barrier:
      return false;
    default:
      return true;
  }
}

QuantumCircuit::QuantumCircuit(std::size_t num_qubits, std::size_t num_clbits) {
  if (num_qubits > 0) add_register("q", num_qubits);
  if (num_clbits > 0) add_classical_register("c", num_clbits);
}

QuantumRegister QuantumCircuit::add_register(const std::string& name, std::size_t size) {
  if (size == 0) throw CircuitError("empty quantum register '" + name + "'");
  for (const auto& r : qregs_) {
    if (r.name == name) throw CircuitError("duplicate quantum register '" + name + "'");
  }
  qregs_.push_back(QuantumRegister{name, num_qubits_, size});
  num_qubits_ += size;
  return qregs_.back();
}

ClassicalRegister QuantumCircuit::add_classical_register(const std::string& name,
                                                         std::size_t size) {
  if (size == 0) throw CircuitError("empty classical register '" + name + "'");
  for (const auto& r : cregs_) {
    if (r.name == name) throw CircuitError("duplicate classical register '" + name + "'");
  }
  cregs_.push_back(ClassicalRegister{name, num_clbits_, size});
  num_clbits_ += size;
  return cregs_.back();
}

void QuantumCircuit::check_qubit(std::size_t q) const {
  if (q >= num_qubits_) {
    throw CircuitError("qubit " + std::to_string(q) + " out of range (n=" +
                       std::to_string(num_qubits_) + ")");
  }
}

void QuantumCircuit::check_clbit(std::size_t c) const {
  if (c >= num_clbits_) {
    throw CircuitError("clbit " + std::to_string(c) + " out of range (n=" +
                       std::to_string(num_clbits_) + ")");
  }
}

void QuantumCircuit::check_distinct(std::span<const std::size_t> qubits) const {
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    check_qubit(qubits[i]);
    for (std::size_t j = i + 1; j < qubits.size(); ++j) {
      if (qubits[i] == qubits[j]) {
        throw CircuitError("duplicate qubit operand " + std::to_string(qubits[i]));
      }
    }
  }
}

QuantumCircuit& QuantumCircuit::append(Instruction instr) {
  const std::size_t arity = fixed_arity(instr.type);
  if (arity != 0 && instr.qubits.size() != arity) {
    throw CircuitError(std::string("gate ") + gate_name(instr.type) + " expects " +
                       std::to_string(arity) + " qubits, got " +
                       std::to_string(instr.qubits.size()));
  }
  if (instr.params.size() != param_count(instr.type)) {
    throw CircuitError(std::string("gate ") + gate_name(instr.type) + " expects " +
                       std::to_string(param_count(instr.type)) + " params");
  }
  if (!instr.param_refs.empty()) {
    if (instr.param_refs.size() != instr.params.size()) {
      throw CircuitError(std::string("gate ") + gate_name(instr.type) +
                         ": param_refs must be empty or match params length");
    }
    for (int r : instr.param_refs) {
      if (r < -1 || r >= static_cast<int>(param_names_.size())) {
        throw CircuitError(std::string("gate ") + gate_name(instr.type) +
                           ": parameter reference " + std::to_string(r) +
                           " outside the circuit's parameter table (size " +
                           std::to_string(param_names_.size()) + ")");
      }
    }
    if (!instr.is_parameterized()) instr.param_refs.clear();
  }
  switch (instr.type) {
    case GateType::MCX: case GateType::MCZ: case GateType::MCP:
      if (instr.qubits.size() < 2) {
        throw CircuitError("multi-controlled gate needs >= 1 control + target");
      }
      break;
    case GateType::Measure:
      if (instr.clbits.size() != instr.qubits.size()) {
        throw CircuitError("measure needs one clbit per qubit");
      }
      for (std::size_t c : instr.clbits) check_clbit(c);
      break;
    default:
      break;
  }
  if (instr.type == GateType::Barrier) {
    // Barrier over everything when no operands given.
    if (instr.qubits.empty()) {
      instr.qubits.resize(num_qubits_);
      for (std::size_t q = 0; q < num_qubits_; ++q) instr.qubits[q] = q;
    }
  }
  check_distinct(instr.qubits);
  if (instr.condition) check_clbit(instr.condition->clbit);
  instructions_.push_back(std::move(instr));
  return *this;
}

// Small helpers keep the builder bodies one line each.
namespace {
Instruction make(GateType t, std::initializer_list<std::size_t> qs,
                 std::initializer_list<double> ps = {}) {
  Instruction in;
  in.type = t;
  in.qubits = qs;
  in.params = ps;
  return in;
}

/// Variant for angle operands that may be symbolic: params carry the concrete
/// value (0.0 placeholder for unbound), param_refs only materializes when at
/// least one operand is symbolic.
Instruction make_angles(GateType t, std::initializer_list<std::size_t> qs,
                        std::initializer_list<Angle> angles) {
  Instruction in;
  in.type = t;
  in.qubits = qs;
  bool symbolic = false;
  for (const Angle& a : angles) {
    in.params.push_back(a.value);
    symbolic = symbolic || a.is_symbolic();
  }
  if (symbolic) {
    for (const Angle& a : angles) in.param_refs.push_back(a.param);
  }
  return in;
}
}  // namespace

Param QuantumCircuit::parameter(const std::string& name) {
  const auto valid = [&] {
    if (name.empty() || name == "pi") return false;
    if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
      return false;
    }
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
    }
    return true;
  }();
  if (!valid) {
    throw CircuitError("invalid parameter name '" + name +
                       "' (must be an identifier, not \"pi\")");
  }
  for (std::size_t i = 0; i < param_names_.size(); ++i) {
    if (param_names_[i] == name) return Param{name, i};
  }
  param_names_.push_back(name);
  return Param{name, param_names_.size() - 1};
}

std::vector<Param> QuantumCircuit::parameters() const {
  std::vector<Param> out;
  out.reserve(param_names_.size());
  for (std::size_t i = 0; i < param_names_.size(); ++i) {
    out.push_back(Param{param_names_[i], i});
  }
  return out;
}

QuantumCircuit QuantumCircuit::bind(std::span<const double> values) const {
  if (values.size() != param_names_.size()) {
    throw CircuitError("bind: circuit has " + std::to_string(param_names_.size()) +
                       " parameter(s), got " + std::to_string(values.size()) +
                       " value(s)");
  }
  QuantumCircuit bound = *this;
  bound.param_names_.clear();
  for (Instruction& in : bound.instructions_) {
    if (in.param_refs.empty()) continue;
    for (std::size_t i = 0; i < in.param_refs.size(); ++i) {
      if (in.param_refs[i] >= 0) {
        in.params[i] = values[static_cast<std::size_t>(in.param_refs[i])];
      }
    }
    in.param_refs.clear();
  }
  return bound;
}

QuantumCircuit& QuantumCircuit::h(std::size_t q) { return append(make(GateType::H, {q})); }
QuantumCircuit& QuantumCircuit::x(std::size_t q) { return append(make(GateType::X, {q})); }
QuantumCircuit& QuantumCircuit::y(std::size_t q) { return append(make(GateType::Y, {q})); }
QuantumCircuit& QuantumCircuit::z(std::size_t q) { return append(make(GateType::Z, {q})); }
QuantumCircuit& QuantumCircuit::s(std::size_t q) { return append(make(GateType::S, {q})); }
QuantumCircuit& QuantumCircuit::sdg(std::size_t q) { return append(make(GateType::Sdg, {q})); }
QuantumCircuit& QuantumCircuit::t(std::size_t q) { return append(make(GateType::T, {q})); }
QuantumCircuit& QuantumCircuit::tdg(std::size_t q) { return append(make(GateType::Tdg, {q})); }
QuantumCircuit& QuantumCircuit::sx(std::size_t q) { return append(make(GateType::SX, {q})); }

QuantumCircuit& QuantumCircuit::rx(Angle theta, std::size_t q) {
  return append(make_angles(GateType::RX, {q}, {theta}));
}
QuantumCircuit& QuantumCircuit::ry(Angle theta, std::size_t q) {
  return append(make_angles(GateType::RY, {q}, {theta}));
}
QuantumCircuit& QuantumCircuit::rz(Angle theta, std::size_t q) {
  return append(make_angles(GateType::RZ, {q}, {theta}));
}
QuantumCircuit& QuantumCircuit::p(Angle lambda, std::size_t q) {
  return append(make_angles(GateType::P, {q}, {lambda}));
}
QuantumCircuit& QuantumCircuit::u(Angle theta, Angle phi, Angle lambda, std::size_t q) {
  return append(make_angles(GateType::U, {q}, {theta, phi, lambda}));
}
QuantumCircuit& QuantumCircuit::cx(std::size_t c, std::size_t t) {
  return append(make(GateType::CX, {c, t}));
}
QuantumCircuit& QuantumCircuit::cy(std::size_t c, std::size_t t) {
  return append(make(GateType::CY, {c, t}));
}
QuantumCircuit& QuantumCircuit::cz(std::size_t c, std::size_t t) {
  return append(make(GateType::CZ, {c, t}));
}
QuantumCircuit& QuantumCircuit::ch(std::size_t c, std::size_t t) {
  return append(make(GateType::CH, {c, t}));
}
QuantumCircuit& QuantumCircuit::cp(Angle lambda, std::size_t c, std::size_t t) {
  return append(make_angles(GateType::CP, {c, t}, {lambda}));
}
QuantumCircuit& QuantumCircuit::crz(Angle theta, std::size_t c, std::size_t t) {
  return append(make_angles(GateType::CRZ, {c, t}, {theta}));
}
QuantumCircuit& QuantumCircuit::swap(std::size_t a, std::size_t b) {
  return append(make(GateType::SWAP, {a, b}));
}
QuantumCircuit& QuantumCircuit::ccx(std::size_t c0, std::size_t c1, std::size_t t) {
  return append(make(GateType::CCX, {c0, c1, t}));
}
QuantumCircuit& QuantumCircuit::cswap(std::size_t c, std::size_t a, std::size_t b) {
  return append(make(GateType::CSWAP, {c, a, b}));
}

QuantumCircuit& QuantumCircuit::mcx(std::span<const std::size_t> controls,
                                    std::size_t target) {
  Instruction in;
  in.type = GateType::MCX;
  in.qubits.assign(controls.begin(), controls.end());
  in.qubits.push_back(target);
  return append(std::move(in));
}

QuantumCircuit& QuantumCircuit::mcz(std::span<const std::size_t> controls,
                                    std::size_t target) {
  Instruction in;
  in.type = GateType::MCZ;
  in.qubits.assign(controls.begin(), controls.end());
  in.qubits.push_back(target);
  return append(std::move(in));
}

QuantumCircuit& QuantumCircuit::mcp(Angle lambda, std::span<const std::size_t> controls,
                                    std::size_t target) {
  Instruction in;
  in.type = GateType::MCP;
  in.qubits.assign(controls.begin(), controls.end());
  in.qubits.push_back(target);
  in.params = {lambda.value};
  if (lambda.is_symbolic()) in.param_refs = {lambda.param};
  return append(std::move(in));
}

QuantumCircuit& QuantumCircuit::measure(std::size_t qubit, std::size_t clbit) {
  Instruction in;
  in.type = GateType::Measure;
  in.qubits = {qubit};
  in.clbits = {clbit};
  return append(std::move(in));
}

QuantumCircuit& QuantumCircuit::measure(std::span<const std::size_t> qubits,
                                        std::span<const std::size_t> clbits) {
  if (qubits.size() != clbits.size()) {
    throw CircuitError("measure: qubit/clbit count mismatch");
  }
  for (std::size_t i = 0; i < qubits.size(); ++i) measure(qubits[i], clbits[i]);
  return *this;
}

QuantumCircuit& QuantumCircuit::measure_all() {
  if (num_clbits_ < num_qubits_) {
    const std::size_t missing = num_qubits_ - num_clbits_;
    add_classical_register("meas", missing);
  }
  for (std::size_t q = 0; q < num_qubits_; ++q) measure(q, q);
  return *this;
}

QuantumCircuit& QuantumCircuit::reset(std::size_t qubit) {
  return append(make(GateType::Reset, {qubit}));
}

QuantumCircuit& QuantumCircuit::barrier() {
  Instruction in;
  in.type = GateType::Barrier;
  return append(std::move(in));
}

QuantumCircuit& QuantumCircuit::c_if(std::size_t clbit, int value) {
  if (instructions_.empty()) throw CircuitError("c_if on an empty circuit");
  check_clbit(clbit);
  if (value != 0 && value != 1) throw CircuitError("c_if value must be 0 or 1");
  instructions_.back().condition = Condition{clbit, value};
  return *this;
}

QuantumCircuit& QuantumCircuit::c_if_from(std::size_t first, std::size_t clbit,
                                          int value) {
  if (first > instructions_.size()) {
    throw CircuitError("c_if_from: start index " + std::to_string(first) +
                       " past end of circuit");
  }
  check_clbit(clbit);
  if (value != 0 && value != 1) throw CircuitError("c_if value must be 0 or 1");
  for (std::size_t i = first; i < instructions_.size(); ++i) {
    if (instructions_[i].type == GateType::Barrier) continue;
    instructions_[i].condition = Condition{clbit, value};
  }
  return *this;
}

QuantumCircuit& QuantumCircuit::compose(const QuantumCircuit& other,
                                        std::span<const std::size_t> qubit_map,
                                        std::span<const std::size_t> clbit_map) {
  if (qubit_map.size() != other.num_qubits()) {
    throw CircuitError("compose: qubit map size mismatch");
  }
  if (other.num_clbits() > 0 && clbit_map.size() != other.num_clbits()) {
    throw CircuitError("compose: clbit map size mismatch");
  }
  // Parameters merge by name: an inlined sub-circuit's "theta" is this
  // circuit's "theta" (find-or-add), so refs remap through the name table.
  std::vector<int> param_map(other.param_names_.size());
  for (std::size_t i = 0; i < other.param_names_.size(); ++i) {
    param_map[i] = static_cast<int>(parameter(other.param_names_[i]).index);
  }
  for (const Instruction& src : other.instructions_) {
    Instruction in = src;
    for (std::size_t& q : in.qubits) q = qubit_map[q];
    for (std::size_t& c : in.clbits) c = clbit_map[c];
    if (in.condition) in.condition->clbit = clbit_map[in.condition->clbit];
    for (int& r : in.param_refs) {
      if (r >= 0) r = param_map[static_cast<std::size_t>(r)];
    }
    append(std::move(in));
  }
  global_phase_ += other.global_phase_;
  return *this;
}

namespace {

/// Inverse of a single unitary instruction.
Instruction invert_instruction(const Instruction& in) {
  Instruction out = in;
  switch (in.type) {
    case GateType::S: out.type = GateType::Sdg; break;
    case GateType::Sdg: out.type = GateType::S; break;
    case GateType::T: out.type = GateType::Tdg; break;
    case GateType::Tdg: out.type = GateType::T; break;
    case GateType::SX:
      // sqrt(X)^-1 has no named gate here; express as RX(-pi/2) + phase.
      out.type = GateType::RX;
      out.params = {-M_PI / 2};
      break;
    case GateType::RX: case GateType::RY: case GateType::RZ: case GateType::P:
    case GateType::CP: case GateType::CRZ: case GateType::MCP:
    case GateType::GlobalPhase:
      out.params[0] = -in.params[0];
      break;
    case GateType::U:
      // U(t,p,l)^-1 = U(-t,-l,-p)
      out.params = {-in.params[0], -in.params[2], -in.params[1]};
      break;
    default:
      break;  // self-inverse (H, X, Y, Z, CX, CZ, SWAP, CCX, ...)
  }
  return out;
}

}  // namespace

QuantumCircuit QuantumCircuit::inverse() const {
  if (is_parameterized()) {
    throw CircuitError(
        "inverse of a parameterized circuit (bind " +
        std::to_string(param_names_.size()) + " parameter(s) first)");
  }
  QuantumCircuit inv;
  inv.num_qubits_ = num_qubits_;
  inv.num_clbits_ = num_clbits_;
  inv.qregs_ = qregs_;
  inv.cregs_ = cregs_;
  inv.global_phase_ = -global_phase_;
  for (auto it = instructions_.rbegin(); it != instructions_.rend(); ++it) {
    if (!is_unitary_gate(it->type) && it->type != GateType::Barrier) {
      throw CircuitError("inverse of a non-unitary circuit (contains " +
                         std::string(gate_name(it->type)) + ")");
    }
    if (it->condition) throw CircuitError("inverse of a conditioned instruction");
    inv.instructions_.push_back(it->type == GateType::Barrier ? *it
                                                              : invert_instruction(*it));
  }
  // SX inversion may add a global phase of pi/4 per occurrence:
  // SX = e^{i pi/4} RX(pi/2), so SX^-1 = e^{-i pi/4} RX(-pi/2).
  for (const Instruction& in : instructions_) {
    if (in.type == GateType::SX) inv.global_phase_ -= M_PI / 4;
  }
  return inv;
}

QuantumCircuit QuantumCircuit::repeat(std::size_t power) const {
  QuantumCircuit out;
  out.num_qubits_ = num_qubits_;
  out.num_clbits_ = num_clbits_;
  out.qregs_ = qregs_;
  out.cregs_ = cregs_;
  out.param_names_ = param_names_;
  for (std::size_t i = 0; i < power; ++i) {
    out.instructions_.insert(out.instructions_.end(), instructions_.begin(),
                             instructions_.end());
    out.global_phase_ += global_phase_;
  }
  return out;
}

std::size_t QuantumCircuit::depth() const {
  std::vector<std::size_t> qubit_level(num_qubits_, 0);
  std::vector<std::size_t> clbit_level(num_clbits_, 0);
  std::size_t max_depth = 0;
  for (const Instruction& in : instructions_) {
    std::size_t level = 0;
    for (std::size_t q : in.qubits) level = std::max(level, qubit_level[q]);
    for (std::size_t c : in.clbits) level = std::max(level, clbit_level[c]);
    if (in.condition) level = std::max(level, clbit_level[in.condition->clbit]);
    // Barriers synchronize their operands but do not add a layer.
    const std::size_t next = in.type == GateType::Barrier ? level : level + 1;
    for (std::size_t q : in.qubits) qubit_level[q] = next;
    for (std::size_t c : in.clbits) clbit_level[c] = next;
    if (in.condition) clbit_level[in.condition->clbit] = next;
    max_depth = std::max(max_depth, next);
  }
  return max_depth;
}

std::size_t QuantumCircuit::gate_count() const {
  std::size_t n = 0;
  for (const Instruction& in : instructions_) {
    if (in.type != GateType::Barrier) ++n;
  }
  return n;
}

std::map<std::string, std::size_t> QuantumCircuit::count_ops() const {
  std::map<std::string, std::size_t> counts;
  for (const Instruction& in : instructions_) ++counts[gate_name(in.type)];
  return counts;
}

std::size_t QuantumCircuit::multi_qubit_gate_count() const {
  std::size_t n = 0;
  for (const Instruction& in : instructions_) {
    if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase &&
        in.qubits.size() >= 2) {
      ++n;
    }
  }
  return n;
}

}  // namespace qutes::circ
