#include "qutes/circuit/executor.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/circuit/backend.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::circ {

namespace {

using sim::gates::H;
using sim::gates::P;
using sim::gates::RX;
using sim::gates::RY;
using sim::gates::RZ;
using sim::gates::SX;
using sim::gates::U;
using sim::gates::X;
using sim::gates::Y;
using sim::gates::Z;

void apply_controlled(sim::StateVector& sv, const Instruction& in,
                      const sim::Matrix2& u) {
  const auto controls =
      std::span<const std::size_t>(in.qubits.data(), in.qubits.size() - 1);
  sv.apply_multi_controlled_1q(u, controls, in.target());
}

}  // namespace

void apply_instruction(sim::StateVector& sv, const Instruction& in,
                       std::uint64_t& clbits, Rng& rng) {
  switch (in.type) {
    case GateType::H: sv.apply_1q(H(), in.qubits[0]); break;
    case GateType::X: sv.apply_1q(X(), in.qubits[0]); break;
    case GateType::Y: sv.apply_1q(Y(), in.qubits[0]); break;
    case GateType::Z: sv.apply_phase(M_PI, in.qubits[0]); break;
    case GateType::S: sv.apply_phase(M_PI / 2, in.qubits[0]); break;
    case GateType::Sdg: sv.apply_phase(-M_PI / 2, in.qubits[0]); break;
    case GateType::T: sv.apply_phase(M_PI / 4, in.qubits[0]); break;
    case GateType::Tdg: sv.apply_phase(-M_PI / 4, in.qubits[0]); break;
    case GateType::SX: sv.apply_1q(SX(), in.qubits[0]); break;
    case GateType::RX: sv.apply_1q(RX(in.params[0]), in.qubits[0]); break;
    case GateType::RY: sv.apply_1q(RY(in.params[0]), in.qubits[0]); break;
    case GateType::RZ: sv.apply_1q(RZ(in.params[0]), in.qubits[0]); break;
    case GateType::P: sv.apply_phase(in.params[0], in.qubits[0]); break;
    case GateType::U:
      sv.apply_1q(U(in.params[0], in.params[1], in.params[2]), in.qubits[0]);
      break;
    case GateType::CX:
      sv.apply_controlled_1q(X(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CY:
      sv.apply_controlled_1q(Y(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CZ:
      sv.apply_cphase(M_PI, in.qubits[0], in.qubits[1]);
      break;
    case GateType::CH:
      sv.apply_controlled_1q(H(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CP:
      sv.apply_cphase(in.params[0], in.qubits[0], in.qubits[1]);
      break;
    case GateType::CRZ:
      sv.apply_controlled_1q(RZ(in.params[0]), in.qubits[0], in.qubits[1]);
      break;
    case GateType::SWAP:
      sv.apply_swap(in.qubits[0], in.qubits[1]);
      break;
    case GateType::CCX: case GateType::MCX:
      apply_controlled(sv, in, X());
      break;
    case GateType::MCZ:
      apply_controlled(sv, in, Z());
      break;
    case GateType::MCP:
      apply_controlled(sv, in, P(in.params[0]));
      break;
    case GateType::CSWAP: {
      // CSWAP(c; a, b) == CCX(c,a;b) CCX(c,b;a) CCX(c,a;b); use the
      // controlled-X form directly: swap = 3 CX, each gains the control.
      const std::size_t c = in.qubits[0], a = in.qubits[1], b = in.qubits[2];
      const std::size_t ca[2] = {c, a};
      const std::size_t cb[2] = {c, b};
      sv.apply_multi_controlled_1q(X(), ca, b);
      sv.apply_multi_controlled_1q(X(), cb, a);
      sv.apply_multi_controlled_1q(X(), ca, b);
      break;
    }
    case GateType::Measure:
      for (std::size_t i = 0; i < in.qubits.size(); ++i) {
        const int bit = sv.measure(in.qubits[i], rng);
        if (bit) {
          clbits = set_bit(clbits, in.clbits[i]);
        } else {
          clbits = clear_bit(clbits, in.clbits[i]);
        }
      }
      break;
    case GateType::Reset:
      sv.reset_qubit(in.qubits[0], rng);
      break;
    case GateType::Barrier:
      break;
    case GateType::GlobalPhase:
      sv.apply_global_phase(in.params[0]);
      break;
  }
}

bool Executor::is_static(const QuantumCircuit& circuit) {
  // Static = every measurement's qubit is never touched again afterwards and
  // no instruction is conditioned or a reset. We use the simpler sufficient
  // condition: no condition, no reset, and measurements only at positions
  // after which their qubits appear in no further instruction.
  std::vector<std::size_t> last_use(circuit.num_qubits(), 0);
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].condition) return false;
    if (instrs[i].type == GateType::Reset) return false;
    if (instrs[i].type == GateType::Barrier) continue;
    for (std::size_t q : instrs[i].qubits) last_use[q] = i;
  }
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].type != GateType::Measure) continue;
    for (std::size_t q : instrs[i].qubits) {
      if (last_use[q] != i) return false;  // qubit reused after measurement
    }
  }
  return true;
}

namespace {

/// The shared pre-execution stages of run() and run_batch(): the caller's
/// compilation pipeline, backend resolution (after the pipeline, so
/// "--backend auto" sees the prepared circuit), and capability checks.
struct PreparedRun {
  QuantumCircuit lowered;              ///< pipeline output (when one ran)
  const QuantumCircuit* circ = nullptr; ///< the circuit to execute
  std::unique_ptr<Backend> backend;
  std::vector<PassStats> pass_stats;
};

/// Sampling executors require fully bound circuits: an unbound symbolic
/// angle would silently evolve under its 0.0 placeholder. Callers with
/// parameterized circuits go through bind() or run_bound_batch().
void reject_unbound(const QuantumCircuit& circuit, const char* method) {
  if (!circuit.is_parameterized()) return;
  std::string names;
  for (const std::string& p : circuit.parameter_names()) {
    if (!names.empty()) names += ", ";
    names += p;
  }
  throw CircuitError(std::string("Executor::") + method +
                     ": circuit has unbound parameter(s) [" + names +
                     "]; call bind() first or use run_bound_batch()");
}

PreparedRun prepare_run(const QuantumCircuit& circuit, const RunConfig& config) {
  PreparedRun prep;

  // Stage 1: the caller's compilation pipeline (lowering, optimization,
  // routing, ...) runs over the circuit first; we execute its output.
  prep.circ = &circuit;
  if (config.pipeline.manager) {
    PropertySet pipeline_properties;
    prep.lowered = config.pipeline.manager->run(circuit, pipeline_properties);
    prep.pass_stats = std::move(pipeline_properties.stats);
    prep.circ = &prep.lowered;
  }
  const QuantumCircuit& circ = *prep.circ;

  // Backend resolution happens after the pipeline so "--backend auto" can
  // inspect the prepared circuit (lowering may introduce — or eliminate —
  // non-Clifford gates).
  prep.backend =
      make_backend(resolve_backend_name(config.backend.name, circ, config));

  // Stage 2: capability checks, on the prepared circuit (the pipeline may
  // have added ancilla wires). The backend publishes what it can run; the
  // executor enforces it here so every method fails the same way.
  const BackendCapabilities caps = prep.backend->capabilities();
  if (caps.max_qubits != 0 && circ.num_qubits() > caps.max_qubits) {
    std::string message = "circuit has " + std::to_string(circ.num_qubits()) +
                          " qubits but the " + prep.backend->name() +
                          " backend supports at most " +
                          std::to_string(caps.max_qubits);
    if (prep.backend->name() != "mps") {
      message += "; the mps backend scales with entanglement instead of qubit "
                 "count — try --backend mps";
      if (!config.backend.noise.enabled() && is_clifford_circuit(circ)) {
        message += ", or, since this circuit is all-Clifford, the stabilizer "
                   "backend runs it at any width — try --backend stabilizer";
      }
    }
    throw CircuitError(message);
  }
  if (!caps.supports_noise && config.backend.noise.enabled()) {
    throw CircuitError("the " + prep.backend->name() +
                       " backend does not support noise models; use the "
                       "statevector (trajectory) or density (exact channel) "
                       "backend");
  }
  if (!caps.supports_dynamic && !Executor::is_static(circ)) {
    throw CircuitError("the " + prep.backend->name() +
                       " backend only runs static circuits (no reset, no "
                       "conditions, no mid-circuit measurement feeding gates)");
  }
  if (!caps.supported_gates.empty()) {
    for (const Instruction& in : circ.instructions()) {
      if (!is_unitary_gate(in.type) || in.type == GateType::GlobalPhase) {
        continue;  // structural instructions are governed by supports_dynamic
      }
      const std::string mnemonic = gate_name(in.type);
      if (std::find(caps.supported_gates.begin(), caps.supported_gates.end(),
                    mnemonic) == caps.supported_gates.end()) {
        std::string supported;
        for (const std::string& g : caps.supported_gates) {
          if (!supported.empty()) supported += ", ";
          supported += g;
        }
        throw CircuitError(
            "the " + prep.backend->name() + " backend does not implement gate " +
            mnemonic + " (supported gates: " + supported +
            "); transpile to the Clifford set or pick --backend statevector");
      }
    }
  }
  return prep;
}

}  // namespace

ExecutionResult Executor::run(const QuantumCircuit& circuit) const {
  obs::Span run_span("executor.run");
  static obs::Counter& runs_metric =
      obs::metrics().counter(obs::names::kExecutorRuns);
  static obs::Counter& shots_metric =
      obs::metrics().counter(obs::names::kExecutorShots);
  static obs::Gauge& shots_per_sec =
      obs::metrics().gauge(obs::names::kShotsPerSec);

  config_.validate();
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  reject_unbound(circuit, "run");
  ExecutionResult result;

  PreparedRun prep = prepare_run(circuit, config_);
  result.pass_stats = std::move(prep.pass_stats);
  result.backend = prep.backend->name();

  // Stage 3: the backend evolves the state and samples. Fusion planning
  // happens inside, clamped to the backend's capability caps.
  {
    obs::Span backend_span("backend.execute");
    prep.backend->execute(*prep.circ, config_, result);
  }

  runs_metric.add(1);
  shots_metric.add(config_.shots);
  static obs::Counter& trajectories_metric =
      obs::metrics().counter(obs::names::kTrajectories);
  trajectories_metric.add(result.trajectories);
  const double elapsed_ms = run_span.elapsed_ms();
  if (obs::metrics_enabled() && elapsed_ms > 0.0) {
    shots_per_sec.set(static_cast<double>(config_.shots) * 1e3 / elapsed_ms);
  }
  static obs::Counter& fused_blocks_metric =
      obs::metrics().counter(obs::names::kFusedBlocks);
  static obs::Counter& fused_gates_metric =
      obs::metrics().counter(obs::names::kFusedGates);
  fused_blocks_metric.add(result.fused_blocks);
  fused_gates_metric.add(result.fused_gates);
  return result;
}

std::vector<ExecutionResult> Executor::run_batch(
    const QuantumCircuit& circuit, std::span<const ShotBatchItem> items) const {
  obs::Span run_span("executor.run_batch");
  static obs::Counter& runs_metric =
      obs::metrics().counter(obs::names::kExecutorRuns);
  static obs::Counter& shots_metric =
      obs::metrics().counter(obs::names::kExecutorShots);

  config_.validate();
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  reject_unbound(circuit, "run_batch");
  if (items.empty()) return {};

  // Pipeline + resolution + capability checks run once for the whole batch;
  // only seed/shots vary per item, and none of those stages read either.
  PreparedRun prep = prepare_run(circuit, config_);
  std::vector<ExecutionResult> results(items.size());
  for (ExecutionResult& result : results) {
    result.pass_stats = prep.pass_stats;
    result.backend = prep.backend->name();
  }
  {
    obs::Span backend_span("backend.execute_batch");
    prep.backend->execute_batch(*prep.circ, config_, items, results);
  }

  runs_metric.add(items.size());
  std::size_t total_shots = 0;
  std::size_t total_trajectories = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    total_shots += items[i].shots;
    total_trajectories += results[i].trajectories;
  }
  shots_metric.add(total_shots);
  static obs::Counter& trajectories_metric =
      obs::metrics().counter(obs::names::kTrajectories);
  trajectories_metric.add(total_trajectories);
  return results;
}

std::vector<ExecutionResult> Executor::run_bound_batch(
    const QuantumCircuit& circuit, std::span<const BindBatchItem> items) const {
  obs::Span run_span("executor.run_bound_batch");
  static obs::Counter& runs_metric =
      obs::metrics().counter(obs::names::kExecutorRuns);
  static obs::Counter& shots_metric =
      obs::metrics().counter(obs::names::kExecutorShots);
  static obs::Counter& binds_metric =
      obs::metrics().counter(obs::names::kExecutorBinds);
  static obs::Counter& batches_metric =
      obs::metrics().counter(obs::names::kExecutorBoundBatches);

  config_.validate();
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  if (items.empty()) return {};

  // The whole point of bind-before-run: the pipeline, backend resolution,
  // and capability checks run ONCE on the unbound circuit (every pass relays
  // symbolic angles untouched). Each binding then only substitutes concrete
  // values into the prepared instruction list before execution — fusion
  // plans are built per bound circuit inside the backend, so the arithmetic
  // matches the pre-bound path bit for bit.
  PreparedRun prep = prepare_run(circuit, config_);
  batches_metric.add(1);

  std::vector<ExecutionResult> results(items.size());
  std::size_t total_shots = 0;
  std::size_t total_trajectories = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const QuantumCircuit bound = prep.circ->bind(items[i].params);
    RunConfig item_config = config_;
    item_config.seed = items[i].seed;
    item_config.shots = items[i].shots;
    item_config.record_memory = items[i].record_memory;
    ExecutionResult& result = results[i];
    result.pass_stats = prep.pass_stats;
    result.backend = prep.backend->name();
    {
      obs::Span backend_span("backend.execute");
      prep.backend->execute(bound, item_config, result);
    }
    total_shots += items[i].shots;
    total_trajectories += result.trajectories;
  }

  runs_metric.add(items.size());
  binds_metric.add(items.size());
  shots_metric.add(total_shots);
  static obs::Counter& trajectories_metric =
      obs::metrics().counter(obs::names::kTrajectories);
  trajectories_metric.add(total_trajectories);
  return results;
}

Executor::Trajectory Executor::run_single(const QuantumCircuit& circuit) const {
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  reject_unbound(circuit, "run_single");
  Rng rng(config_.seed);
  Trajectory traj{sim::StateVector(circuit.num_qubits()), 0};
  for (const Instruction& in : circuit.instructions()) {
    if (in.condition &&
        static_cast<int>(test_bit(traj.clbits, in.condition->clbit)) !=
            in.condition->value) {
      continue;
    }
    apply_instruction(traj.state, in, traj.clbits, rng);
  }
  if (circuit.global_phase() != 0.0) {
    traj.state.apply_global_phase(circuit.global_phase());
  }
  return traj;
}

}  // namespace qutes::circ
