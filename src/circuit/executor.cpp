#include "qutes/circuit/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>

#include "qutes/circuit/fusion.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::circ {

namespace {

using sim::gates::H;
using sim::gates::I;
using sim::gates::P;
using sim::gates::RX;
using sim::gates::RY;
using sim::gates::RZ;
using sim::gates::S;
using sim::gates::Sdg;
using sim::gates::SX;
using sim::gates::T;
using sim::gates::Tdg;
using sim::gates::U;
using sim::gates::X;
using sim::gates::Y;
using sim::gates::Z;

void apply_controlled(sim::StateVector& sv, const Instruction& in,
                      const sim::Matrix2& u) {
  const auto controls =
      std::span<const std::size_t>(in.qubits.data(), in.qubits.size() - 1);
  sv.apply_multi_controlled_1q(u, controls, in.target());
}

/// True if the noise model attaches a channel after this gate; such gates
/// are noise insertion points and must stay unfused so the channel still
/// fires per gate.
bool gate_acquires_noise(const Instruction& in, const sim::NoiseModel& noise) {
  if (!is_unitary_gate(in.type) || in.type == GateType::GlobalPhase) return false;
  if (noise.amplitude_damping > 0.0) return true;
  if (in.qubits.size() == 1) return noise.depolarizing_1q > 0.0;
  return noise.depolarizing_2q > 0.0;
}

void record_fusion_stats(ExecutionResult& result, const FusionPlan& plan) {
  result.fused_gates = plan.fused_gates;
  result.fused_blocks = plan.fused_blocks();
  result.fused_width_histogram = plan.width_histogram;
}

}  // namespace

void apply_instruction(sim::StateVector& sv, const Instruction& in,
                       std::uint64_t& clbits, Rng& rng) {
  switch (in.type) {
    case GateType::H: sv.apply_1q(H(), in.qubits[0]); break;
    case GateType::X: sv.apply_1q(X(), in.qubits[0]); break;
    case GateType::Y: sv.apply_1q(Y(), in.qubits[0]); break;
    case GateType::Z: sv.apply_phase(M_PI, in.qubits[0]); break;
    case GateType::S: sv.apply_phase(M_PI / 2, in.qubits[0]); break;
    case GateType::Sdg: sv.apply_phase(-M_PI / 2, in.qubits[0]); break;
    case GateType::T: sv.apply_phase(M_PI / 4, in.qubits[0]); break;
    case GateType::Tdg: sv.apply_phase(-M_PI / 4, in.qubits[0]); break;
    case GateType::SX: sv.apply_1q(SX(), in.qubits[0]); break;
    case GateType::RX: sv.apply_1q(RX(in.params[0]), in.qubits[0]); break;
    case GateType::RY: sv.apply_1q(RY(in.params[0]), in.qubits[0]); break;
    case GateType::RZ: sv.apply_1q(RZ(in.params[0]), in.qubits[0]); break;
    case GateType::P: sv.apply_phase(in.params[0], in.qubits[0]); break;
    case GateType::U:
      sv.apply_1q(U(in.params[0], in.params[1], in.params[2]), in.qubits[0]);
      break;
    case GateType::CX:
      sv.apply_controlled_1q(X(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CY:
      sv.apply_controlled_1q(Y(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CZ:
      sv.apply_cphase(M_PI, in.qubits[0], in.qubits[1]);
      break;
    case GateType::CH:
      sv.apply_controlled_1q(H(), in.qubits[0], in.qubits[1]);
      break;
    case GateType::CP:
      sv.apply_cphase(in.params[0], in.qubits[0], in.qubits[1]);
      break;
    case GateType::CRZ:
      sv.apply_controlled_1q(RZ(in.params[0]), in.qubits[0], in.qubits[1]);
      break;
    case GateType::SWAP:
      sv.apply_swap(in.qubits[0], in.qubits[1]);
      break;
    case GateType::CCX: case GateType::MCX:
      apply_controlled(sv, in, X());
      break;
    case GateType::MCZ:
      apply_controlled(sv, in, Z());
      break;
    case GateType::MCP:
      apply_controlled(sv, in, P(in.params[0]));
      break;
    case GateType::CSWAP: {
      // CSWAP(c; a, b) == CCX(c,a;b) CCX(c,b;a) CCX(c,a;b); use the
      // controlled-X form directly: swap = 3 CX, each gains the control.
      const std::size_t c = in.qubits[0], a = in.qubits[1], b = in.qubits[2];
      const std::size_t ca[2] = {c, a};
      const std::size_t cb[2] = {c, b};
      sv.apply_multi_controlled_1q(X(), ca, b);
      sv.apply_multi_controlled_1q(X(), cb, a);
      sv.apply_multi_controlled_1q(X(), ca, b);
      break;
    }
    case GateType::Measure:
      for (std::size_t i = 0; i < in.qubits.size(); ++i) {
        const int bit = sv.measure(in.qubits[i], rng);
        if (bit) {
          clbits = set_bit(clbits, in.clbits[i]);
        } else {
          clbits = clear_bit(clbits, in.clbits[i]);
        }
      }
      break;
    case GateType::Reset:
      sv.reset_qubit(in.qubits[0], rng);
      break;
    case GateType::Barrier:
      break;
    case GateType::GlobalPhase:
      sv.apply_global_phase(in.params[0]);
      break;
  }
}

bool Executor::is_static(const QuantumCircuit& circuit) {
  // Static = every measurement's qubit is never touched again afterwards and
  // no instruction is conditioned or a reset. We use the simpler sufficient
  // condition: no condition, no reset, and measurements only at positions
  // after which their qubits appear in no further instruction.
  std::vector<std::size_t> last_use(circuit.num_qubits(), 0);
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].condition) return false;
    if (instrs[i].type == GateType::Reset) return false;
    if (instrs[i].type == GateType::Barrier) continue;
    for (std::size_t q : instrs[i].qubits) last_use[q] = i;
  }
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].type != GateType::Measure) continue;
    for (std::size_t q : instrs[i].qubits) {
      if (last_use[q] != i) return false;  // qubit reused after measurement
    }
  }
  return true;
}

ExecutionResult Executor::run(const QuantumCircuit& circuit) const {
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  ExecutionResult result;

  // Stage 1: the caller's compilation pipeline (lowering, optimization,
  // routing, ...) runs over the circuit first; we execute its output.
  QuantumCircuit prepared;
  const QuantumCircuit* target = &circuit;
  if (options_.pipeline) {
    PropertySet pipeline_properties;
    prepared = options_.pipeline->run(circuit, pipeline_properties);
    result.pass_stats = std::move(pipeline_properties.stats);
    target = &prepared;
  }
  const QuantumCircuit& circ = *target;

  // Stage 2: runtime gate-fusion planning via the FuseGates pass. Options
  // depend on the execution path (the noisy path pins noise insertion
  // points), so the executor always plans fusion itself rather than trusting
  // a plan from the caller's pipeline.
  FusionOptions fusion_options;
  fusion_options.max_fused_qubits = options_.max_fused_qubits;

  const bool fast = !options_.noise.enabled() && is_static(circ);
  if (!fast) {
    // Gates that acquire noise are fusion barriers, so blocks form only
    // between noise insertion points.
    fusion_options.keep_raw = [this](const Instruction& in) {
      return gate_acquires_noise(in, options_.noise);
    };
  }
  PassManager fuser;
  fuser.emplace<FuseGates>(fusion_options);
  PropertySet fusion_properties;
  (void)fuser.run(circ, fusion_properties);
  const FusionPlan& plan = *fusion_properties.fusion_plan;
  record_fusion_stats(result, plan);

  const auto& instrs = circ.instructions();
  if (fast) {
    // Evolve once, skipping measurements (a static circuit never reuses a
    // measured qubit, so a measure only records the clbit -> qubit wiring),
    // then sample the measured qubits from the final distribution.
    Rng rng(options_.seed);
    sim::StateVector sv(circ.num_qubits());
    std::uint64_t scratch = 0;
    std::vector<std::optional<std::size_t>> wire(circ.num_clbits());
    for (const FusedOp& op : plan.ops) {
      if (op.fused) {
        sv.apply_kq(op.matrix, op.qubits);
        continue;
      }
      const Instruction& in = instrs[op.instruction];
      if (in.type == GateType::Measure) {
        for (std::size_t i = 0; i < in.qubits.size(); ++i) {
          wire[in.clbits[i]] = in.qubits[i];
        }
        continue;
      }
      apply_instruction(sv, in, scratch, rng);
    }

    // Sample shots: build the CDF once and binary-search per shot instead
    // of an O(dim) linear scan.
    const auto amps = sv.amplitudes();
    std::vector<double> cdf(amps.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
      acc += std::norm(amps[i]);
      cdf[i] = acc;
    }
    for (std::size_t s = 0; s < options_.shots; ++s) {
      const double r = rng.uniform() * acc;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
      std::uint64_t basis = static_cast<std::uint64_t>(it - cdf.begin());
      if (basis >= sv.dim()) basis = sv.dim() - 1;
      std::string key(circ.num_clbits(), '0');
      for (std::size_t c = 0; c < circ.num_clbits(); ++c) {
        const bool bit = wire[c] && test_bit(basis, *wire[c]);
        key[circ.num_clbits() - 1 - c] = bit ? '1' : '0';
      }
      ++result.counts[key];
      if (options_.record_memory) result.memory.push_back(key);
    }
    result.trajectories = 1;
    result.fast_path = true;
    return result;
  }

  // Dynamic/noisy path: one trajectory per shot.

  const auto shots = static_cast<std::int64_t>(options_.shots);
  if (options_.record_memory) result.memory.assign(options_.shots, {});

  // Each shot owns a counter-derived RNG stream, so the loop can run on any
  // number of threads and still produce bit-identical counts: per-shot
  // outcomes depend only on (seed, shot), memory slots are indexed by shot,
  // and merging per-thread histograms is an order-independent sum.
  const auto run_shot = [&](std::size_t s) {
    Rng rng(options_.seed, s);
    sim::StateVector sv(circ.num_qubits());
    std::uint64_t clbits = 0;
    for (const FusedOp& op : plan.ops) {
      if (op.fused) {
        sv.apply_kq(op.matrix, op.qubits);
        continue;
      }
      const Instruction& in = instrs[op.instruction];
      if (in.condition &&
          static_cast<int>(test_bit(clbits, in.condition->clbit)) !=
              in.condition->value) {
        continue;
      }
      if (in.type == GateType::Measure && options_.noise.readout_error > 0.0) {
        for (std::size_t i = 0; i < in.qubits.size(); ++i) {
          int bit = sv.measure(in.qubits[i], rng);
          bit = sim::apply_readout_error(bit, options_.noise.readout_error, rng);
          clbits = bit ? set_bit(clbits, in.clbits[i]) : clear_bit(clbits, in.clbits[i]);
        }
      } else {
        apply_instruction(sv, in, clbits, rng);
      }
      if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
        if (in.qubits.size() == 1 && options_.noise.depolarizing_1q > 0.0) {
          sim::apply_depolarizing(sv, in.qubits[0], options_.noise.depolarizing_1q, rng);
        } else if (in.qubits.size() >= 2 && options_.noise.depolarizing_2q > 0.0) {
          for (std::size_t q : in.qubits) {
            sim::apply_depolarizing(sv, q, options_.noise.depolarizing_2q, rng);
          }
        }
        if (options_.noise.amplitude_damping > 0.0) {
          for (std::size_t q : in.qubits) {
            sim::apply_amplitude_damping(sv, q, options_.noise.amplitude_damping, rng);
          }
        }
      }
    }
    return to_bitstring(clbits, circ.num_clbits());
  };

  std::atomic<bool> failed{false};
  std::exception_ptr error;
#pragma omp parallel if (options_.parallel_shots && shots > 1)
  {
    sim::Counts local;
#pragma omp for schedule(static)
    for (std::int64_t s = 0; s < shots; ++s) {
      if (failed.load(std::memory_order_relaxed)) continue;
      try {
        const std::string key = run_shot(static_cast<std::size_t>(s));
        ++local[key];
        if (options_.record_memory) {
          result.memory[static_cast<std::size_t>(s)] = key;
        }
      } catch (...) {
        // OpenMP loops cannot propagate exceptions; capture the first one
        // and rethrow after the region.
        if (!failed.exchange(true)) {
#pragma omp critical(qutes_executor_error)
          error = std::current_exception();
        }
      }
    }
#pragma omp critical(qutes_executor_merge)
    for (const auto& [key, n] : local) result.counts[key] += n;
  }
  if (error) std::rethrow_exception(error);

  result.trajectories = options_.shots;
  result.fast_path = false;
  return result;
}

Executor::Trajectory Executor::run_single(const QuantumCircuit& circuit) const {
  if (circuit.num_qubits() == 0) throw CircuitError("executing an empty circuit");
  Rng rng(options_.seed);
  Trajectory traj{sim::StateVector(circuit.num_qubits()), 0};
  for (const Instruction& in : circuit.instructions()) {
    if (in.condition &&
        static_cast<int>(test_bit(traj.clbits, in.condition->clbit)) !=
            in.condition->value) {
      continue;
    }
    apply_instruction(traj.state, in, traj.clbits, rng);
  }
  if (circuit.global_phase() != 0.0) {
    traj.state.apply_global_phase(circuit.global_phase());
  }
  return traj;
}

}  // namespace qutes::circ
