#include "qutes/circuit/draw.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace qutes::circ {

namespace {

/// Label for the "body" cell of an instruction on its target qubit.
std::string body_label(const QuantumCircuit& circuit, const Instruction& in) {
  switch (in.type) {
    case GateType::Measure: return "M";
    case GateType::Reset: return "|0>";
    case GateType::Barrier: return "|";
    case GateType::CX: case GateType::CCX: case GateType::MCX: return "(+)";
    case GateType::CZ: case GateType::MCZ: return "Z";
    case GateType::CY: return "Y";
    case GateType::CH: return "H";
    case GateType::SWAP: case GateType::CSWAP: return "x";
    default: break;
  }
  std::string name = gate_name(in.type);
  for (char& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (!in.params.empty()) {
    // Unbound symbolic angles render by parameter name: "RX(theta)".
    const int ref = in.param_ref(0);
    if (ref >= 0) {
      name += "(" + circuit.parameter_names()[static_cast<std::size_t>(ref)] + ")";
    } else {
      char buf[24];
      std::snprintf(buf, sizeof buf, "(%.3g", in.params[0]);
      name += buf;
      name += ")";
    }
  }
  return name;
}

/// Which operands of the instruction are controls (render '*')?
std::size_t control_count(const Instruction& in) {
  switch (in.type) {
    case GateType::CX: case GateType::CY: case GateType::CZ: case GateType::CH:
    case GateType::CP: case GateType::CRZ:
      return 1;
    case GateType::CCX:
      return 2;
    case GateType::CSWAP:
      return 1;
    case GateType::MCX: case GateType::MCZ: case GateType::MCP:
      return in.qubits.size() - 1;
    default:
      return 0;
  }
}

}  // namespace

std::string draw(const QuantumCircuit& circuit) {
  const std::size_t n = circuit.num_qubits();
  if (n == 0) return "(empty circuit)\n";

  // Layer assignment identical to depth(): an instruction goes one past the
  // deepest layer currently occupied on any of its operands.
  std::vector<std::size_t> qubit_level(n, 0);
  std::vector<std::vector<const Instruction*>> layers;
  for (const Instruction& in : circuit.instructions()) {
    std::size_t level = 0;
    for (std::size_t q : in.qubits) level = std::max(level, qubit_level[q]);
    if (layers.size() <= level) layers.resize(level + 1);
    layers[level].push_back(&in);
    for (std::size_t q : in.qubits) qubit_level[q] = level + 1;
  }

  // Row labels: "name[i]: ".
  std::vector<std::string> labels(n);
  for (const auto& r : circuit.qregs()) {
    for (std::size_t i = 0; i < r.size; ++i) {
      labels[r[i]] = r.name + "[" + std::to_string(i) + "]";
    }
  }
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());

  // Cells: per layer, per qubit, a label; empty = wire.
  std::vector<std::string> rows(n);
  for (std::size_t q = 0; q < n; ++q) {
    std::string padded = labels[q];
    padded.resize(label_width, ' ');
    rows[q] = padded + ": -";
  }

  for (const auto& layer : layers) {
    std::vector<std::string> cells(n);
    for (const Instruction* in : layer) {
      const std::size_t ctrls = control_count(*in);
      for (std::size_t i = 0; i < in->qubits.size(); ++i) {
        const std::size_t q = in->qubits[i];
        if (in->type == GateType::Barrier) {
          cells[q] = "|";
        } else if (i < ctrls) {
          cells[q] = "*";
        } else if ((in->type == GateType::SWAP) ||
                   (in->type == GateType::CSWAP && i >= 1)) {
          cells[q] = "x";
        } else {
          cells[q] = body_label(circuit, *in);
        }
      }
    }
    std::size_t width = 1;
    for (const auto& c : cells) width = std::max(width, c.size());
    for (std::size_t q = 0; q < n; ++q) {
      std::string cell = cells[q].empty() ? std::string(width, '-') : cells[q];
      while (cell.size() < width) cell += '-';
      rows[q] += cell + "-";
    }
  }

  std::ostringstream out;
  for (const auto& row : rows) out << row << "\n";
  if (circuit.num_clbits() > 0) {
    out << std::string(label_width, ' ') << "  c: " << circuit.num_clbits()
        << " classical bit(s)\n";
  }
  return out.str();
}

}  // namespace qutes::circ
