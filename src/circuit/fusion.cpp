#include "qutes/circuit/fusion.hpp"

#include <algorithm>

#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::circ {

namespace {

/// A block still accepting gates. `qubits[j]` is the wire local bit j acts
/// on; `sources` are the absorbed instruction indices in source order.
struct OpenBlock {
  std::vector<std::size_t> qubits;
  sim::MatrixN matrix;
  std::vector<std::size_t> sources;
};

/// Positions of `qubits` within `within` (which must contain them all).
std::vector<std::size_t> positions_in(const std::vector<std::size_t>& qubits,
                                      const std::vector<std::size_t>& within) {
  std::vector<std::size_t> pos(qubits.size());
  for (std::size_t j = 0; j < qubits.size(); ++j) {
    const auto it = std::find(within.begin(), within.end(), qubits[j]);
    pos[j] = static_cast<std::size_t>(it - within.begin());
  }
  return pos;
}

bool intersects(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
  for (std::size_t q : a) {
    if (std::find(b.begin(), b.end(), q) != b.end()) return true;
  }
  return false;
}

/// True if the (distinct) wires form a contiguous run.
bool wires_contiguous(const std::vector<std::size_t>& qubits) {
  const auto [lo, hi] = std::minmax_element(qubits.begin(), qubits.end());
  return *hi - *lo + 1 == qubits.size();
}

}  // namespace

sim::MatrixN instruction_matrix(const Instruction& in) {
  if (!is_unitary_gate(in.type) || in.type == GateType::GlobalPhase ||
      in.qubits.empty()) {
    throw CircuitError(std::string("instruction_matrix: not a wire-local unitary: ") +
                       gate_name(in.type));
  }
  if (in.is_parameterized()) {
    throw CircuitError(std::string("instruction_matrix: ") + gate_name(in.type) +
                       " has unbound symbolic parameters");
  }
  const std::size_t k = in.qubits.size();
  if (k > sim::MatrixN::kMaxQubits) {
    throw CircuitError("instruction_matrix: gate spans " + std::to_string(k) +
                       " qubits (> MatrixN::kMaxQubits)");
  }
  // Remap onto local wires 0..k-1 and read the matrix off basis columns via
  // the regular instruction interpreter, so fusion agrees with unfused
  // execution gate type by gate type.
  Instruction local = in;
  local.condition.reset();
  for (std::size_t j = 0; j < k; ++j) local.qubits[j] = j;
  sim::MatrixN mat(k);
  std::uint64_t scratch = 0;
  Rng dummy(0);
  for (std::size_t col = 0; col < (std::size_t{1} << k); ++col) {
    sim::StateVector sv(k);
    sv.set_basis_state(col);
    apply_instruction(sv, local, scratch, dummy);
    for (std::size_t row = 0; row < (std::size_t{1} << k); ++row) {
      mat.at(row, col) = sv.amplitude(row);
    }
  }
  return mat;
}

bool is_fusable(const Instruction& in, std::size_t max_fused_qubits) {
  return is_unitary_gate(in.type) && in.type != GateType::GlobalPhase &&
         !in.condition && !in.qubits.empty() && !in.is_parameterized() &&
         in.qubits.size() <= max_fused_qubits;
}

FusionPlan build_fusion_plan(std::span<const Instruction> instructions,
                             const FusionOptions& options) {
  FusionPlan plan;
  plan.source_instructions = instructions.size();
  const std::size_t max_width =
      std::min(options.max_fused_qubits, sim::MatrixN::kMaxQubits);

  if (max_width <= 1) {
    // Fusion disabled: replay the source verbatim.
    plan.ops.reserve(instructions.size());
    for (std::size_t i = 0; i < instructions.size(); ++i) {
      FusedOp op;
      op.instruction = i;
      plan.ops.push_back(std::move(op));
    }
    return plan;
  }

  std::vector<OpenBlock> open;  // pairwise-disjoint wire sets, creation order

  const auto emit_raw = [&](std::size_t i) {
    FusedOp op;
    op.instruction = i;
    plan.ops.push_back(std::move(op));
  };
  const auto emit_block = [&](OpenBlock&& b) {
    if (b.sources.size() == 1) {
      // A lone gate gains nothing from the dense kernel; keep the
      // specialized per-gate kernel instead.
      emit_raw(b.sources[0]);
      return;
    }
    FusedOp op;
    op.fused = true;
    op.matrix = std::move(b.matrix);
    op.qubits = std::move(b.qubits);
    op.gate_count = b.sources.size();
    plan.fused_gates += op.gate_count;
    ++plan.width_histogram[op.qubits.size()];
    plan.ops.push_back(std::move(op));
  };
  // Emit a batch of blocks that flush together. Open blocks are pairwise
  // disjoint, hence commuting, so first-fit packing them into wider blocks
  // (creation order, product composed via embedding) is exact — and a layer
  // of narrow blocks becomes one sweep instead of one per block.
  const auto emit_group = [&](std::vector<OpenBlock>&& group) {
    if (options.coalesce_blocks && group.size() > 1) {
      std::vector<OpenBlock> bins;
      bins.reserve(group.size());
      for (OpenBlock& b : group) {
        bool placed = false;
        for (OpenBlock& bin : bins) {
          std::vector<std::size_t> merged = bin.qubits;
          merged.insert(merged.end(), b.qubits.begin(), b.qubits.end());
          if (merged.size() > max_width) continue;
          if (options.require_adjacent_wires && !wires_contiguous(merged)) {
            continue;
          }
          sim::MatrixN widened =
              bin.matrix.embedded(merged.size(), positions_in(bin.qubits, merged));
          bin.matrix =
              b.matrix.embedded(merged.size(), positions_in(b.qubits, merged)) *
              widened;
          bin.qubits = std::move(merged);
          bin.sources.insert(bin.sources.end(), b.sources.begin(),
                             b.sources.end());
          placed = true;
          break;
        }
        if (!placed) bins.push_back(std::move(b));
      }
      for (OpenBlock& bin : bins) emit_block(std::move(bin));
      return;
    }
    for (OpenBlock& b : group) emit_block(std::move(b));
  };
  const auto flush_intersecting = [&](const std::vector<std::size_t>& qubits) {
    std::vector<OpenBlock> keep;
    std::vector<OpenBlock> flushed;
    keep.reserve(open.size());
    for (OpenBlock& b : open) {
      if (intersects(b.qubits, qubits)) {
        flushed.push_back(std::move(b));
      } else {
        keep.push_back(std::move(b));
      }
    }
    open = std::move(keep);
    emit_group(std::move(flushed));
  };
  const auto flush_all = [&] {
    emit_group(std::move(open));
    open.clear();
  };

  for (std::size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& in = instructions[i];
    if (in.type == GateType::Barrier) {
      flush_all();
      emit_raw(i);
      continue;
    }
    const bool fusable = is_fusable(in, max_width) &&
                         !(options.keep_raw && options.keep_raw(in));
    if (!fusable) {
      // GlobalPhase is a scalar and commutes with everything; every other
      // raw instruction must order after the blocks it touches.
      if (in.type != GateType::GlobalPhase) flush_intersecting(in.qubits);
      emit_raw(i);
      continue;
    }

    // Try to merge the gate with every open block it overlaps.
    std::vector<std::size_t> merged_qubits;
    std::vector<std::size_t> touching;  // indices into `open`
    for (std::size_t b = 0; b < open.size(); ++b) {
      if (intersects(open[b].qubits, in.qubits)) {
        touching.push_back(b);
        merged_qubits.insert(merged_qubits.end(), open[b].qubits.begin(),
                             open[b].qubits.end());
      }
    }
    for (std::size_t q : in.qubits) {
      if (std::find(merged_qubits.begin(), merged_qubits.end(), q) ==
          merged_qubits.end()) {
        merged_qubits.push_back(q);
      }
    }

    if (!touching.empty() && merged_qubits.size() <= max_width &&
        (!options.require_adjacent_wires || wires_contiguous(merged_qubits))) {
      OpenBlock combined;
      combined.qubits = std::move(merged_qubits);
      combined.matrix = sim::MatrixN::identity(combined.qubits.size());
      for (std::size_t b : touching) {
        // Overlapping blocks are disjoint from each other, so composing them
        // in creation order is exact.
        combined.matrix =
            open[b].matrix.embedded(combined.qubits.size(),
                                    positions_in(open[b].qubits, combined.qubits)) *
            combined.matrix;
        combined.sources.insert(combined.sources.end(), open[b].sources.begin(),
                                open[b].sources.end());
      }
      combined.matrix =
          instruction_matrix(in).embedded(combined.qubits.size(),
                                          positions_in(in.qubits, combined.qubits)) *
          combined.matrix;
      combined.sources.push_back(i);
      for (std::size_t t = touching.size(); t-- > 0;) {
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(touching[t]));
      }
      open.push_back(std::move(combined));
      continue;
    }

    if (!touching.empty()) flush_intersecting(in.qubits);
    if (options.require_adjacent_wires && !wires_contiguous(in.qubits)) {
      // A scattered-wire gate can never seed an adjacent-only block; replay
      // it raw (ordered after any block it touches, which just flushed).
      emit_raw(i);
      continue;
    }
    OpenBlock fresh;
    fresh.qubits = in.qubits;
    fresh.matrix = instruction_matrix(in);
    fresh.sources = {i};
    open.push_back(std::move(fresh));
  }
  flush_all();
  return plan;
}

}  // namespace qutes::circ
