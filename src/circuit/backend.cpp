#include "qutes/circuit/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <map>
#include <utility>

#include "qutes/circuit/fusion.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/sim/density_matrix.hpp"

namespace qutes::circ {

namespace {

using sim::gates::H;
using sim::gates::P;
using sim::gates::RX;
using sim::gates::RY;
using sim::gates::RZ;
using sim::gates::S;
using sim::gates::Sdg;
using sim::gates::SX;
using sim::gates::T;
using sim::gates::Tdg;
using sim::gates::U;
using sim::gates::X;
using sim::gates::Y;
using sim::gates::Z;

/// True if the noise model attaches a channel after this gate; such gates
/// are noise insertion points and must stay unfused so the channel still
/// fires per gate.
bool gate_acquires_noise(const Instruction& in, const sim::NoiseModel& noise) {
  if (!is_unitary_gate(in.type) || in.type == GateType::GlobalPhase) return false;
  if (noise.amplitude_damping > 0.0) return true;
  if (in.qubits.size() == 1) return noise.depolarizing_1q > 0.0;
  return noise.depolarizing_2q > 0.0;
}

void record_fusion_stats(ExecutionResult& result, const FusionPlan& plan) {
  result.fused_gates = plan.fused_gates;
  result.fused_blocks = plan.fused_blocks();
  result.fused_width_histogram = plan.width_histogram;
}

/// Plan runtime gate fusion for `circ` under the backend's capability caps.
FusionPlan plan_fusion(const QuantumCircuit& circ, const RunConfig& config,
                       const BackendCapabilities& caps,
                       bool pin_noise_insertion_points) {
  obs::Span span("fusion.plan");
  FusionOptions fusion_options;
  fusion_options.max_fused_qubits =
      std::min(config.backend.max_fused_qubits, caps.max_fused_qubits);
  fusion_options.require_adjacent_wires = caps.fused_adjacent_only;
  if (pin_noise_insertion_points) {
    // Gates that acquire noise are fusion barriers, so blocks form only
    // between noise insertion points.
    fusion_options.keep_raw = [&config](const Instruction& in) {
      return gate_acquires_noise(in, config.backend.noise);
    };
  }
  PassManager fuser;
  fuser.emplace<FuseGates>(fusion_options);
  PropertySet properties;
  (void)fuser.run(circ, properties);
  return std::move(*properties.fusion_plan);
}

/// True if any wire-local unitary spans more than two qubits (which the MPS
/// cannot apply directly; such circuits are lowered to {u, cx} first).
bool has_wide_unitary(const QuantumCircuit& circ) {
  for (const Instruction& in : circ.instructions()) {
    if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase &&
        in.qubits.size() > 2) {
      return true;
    }
  }
  return false;
}

/// Apply one instruction to an MPS (measure writes into `clbits`). The MPS
/// analog of apply_instruction(StateVector&, ...); expects gates of at most
/// two qubits (wider circuits are lowered before reaching this point).
void apply_instruction_mps(sim::Mps& mps, const Instruction& in,
                           std::uint64_t& clbits, Rng& rng) {
  const auto controlled = [&](const sim::Matrix2& u) {
    if (in.qubits.size() != 2) {
      throw CircuitError(std::string("mps backend: gate ") + gate_name(in.type) +
                         " spans " + std::to_string(in.qubits.size()) +
                         " qubits and was not lowered to the {u, cx} basis");
    }
    mps.apply_controlled_1q(u, in.qubits[0], in.qubits[1]);
  };
  switch (in.type) {
    case GateType::H: mps.apply_1q(H(), in.qubits[0]); break;
    case GateType::X: mps.apply_1q(X(), in.qubits[0]); break;
    case GateType::Y: mps.apply_1q(Y(), in.qubits[0]); break;
    case GateType::Z: mps.apply_1q(Z(), in.qubits[0]); break;
    case GateType::S: mps.apply_1q(S(), in.qubits[0]); break;
    case GateType::Sdg: mps.apply_1q(Sdg(), in.qubits[0]); break;
    case GateType::T: mps.apply_1q(T(), in.qubits[0]); break;
    case GateType::Tdg: mps.apply_1q(Tdg(), in.qubits[0]); break;
    case GateType::SX: mps.apply_1q(SX(), in.qubits[0]); break;
    case GateType::RX: mps.apply_1q(RX(in.params[0]), in.qubits[0]); break;
    case GateType::RY: mps.apply_1q(RY(in.params[0]), in.qubits[0]); break;
    case GateType::RZ: mps.apply_1q(RZ(in.params[0]), in.qubits[0]); break;
    case GateType::P: mps.apply_1q(P(in.params[0]), in.qubits[0]); break;
    case GateType::U:
      mps.apply_1q(U(in.params[0], in.params[1], in.params[2]), in.qubits[0]);
      break;
    case GateType::CX: controlled(X()); break;
    case GateType::CY: controlled(Y()); break;
    case GateType::CZ: controlled(Z()); break;
    case GateType::CH: controlled(H()); break;
    case GateType::CP: controlled(P(in.params[0])); break;
    case GateType::CRZ: controlled(RZ(in.params[0])); break;
    case GateType::SWAP: mps.apply_swap(in.qubits[0], in.qubits[1]); break;
    case GateType::CCX: case GateType::MCX: controlled(X()); break;
    case GateType::MCZ: controlled(Z()); break;
    case GateType::MCP: controlled(P(in.params[0])); break;
    case GateType::CSWAP:
      throw CircuitError(
          "mps backend: CSWAP was not lowered to the {u, cx} basis");
    case GateType::Measure:
      for (std::size_t i = 0; i < in.qubits.size(); ++i) {
        const int bit = mps.measure(in.qubits[i], rng);
        clbits = bit ? set_bit(clbits, in.clbits[i]) : clear_bit(clbits, in.clbits[i]);
      }
      break;
    case GateType::Reset:
      mps.reset_qubit(in.qubits[0], rng);
      break;
    case GateType::Barrier:
      break;
    case GateType::GlobalPhase:
      mps.apply_global_phase(in.params[0]);
      break;
  }
}

/// The stabilizer gate set: every Clifford-group generator the tableau
/// implements directly. This doubles as the BackendCapabilities allowlist
/// and the `--backend auto` dispatch predicate.
constexpr const char* kCliffordGateNames[] = {"h",  "s",  "sdg", "x", "y",
                                              "z",  "cx", "cz",  "swap"};

bool is_clifford_gate(GateType type) noexcept {
  switch (type) {
    case GateType::H: case GateType::S: case GateType::Sdg: case GateType::X:
    case GateType::Y: case GateType::Z: case GateType::CX: case GateType::CZ:
    case GateType::SWAP:
      return true;
    default:
      return false;
  }
}

/// Apply one instruction to a stabilizer tableau (measure writes into
/// `clbits`, one byte per classical bit — the tableau runs at widths far
/// past what a packed uint64 register could hold). The tableau analog of
/// apply_instruction(StateVector&, ...); non-Clifford gates cannot reach it
/// (the executor rejects them by name first) but throw defensively anyway.
void apply_instruction_stab(sim::Stabilizer& tab, const Instruction& in,
                            std::vector<std::uint8_t>& clbits, Rng& rng) {
  switch (in.type) {
    case GateType::H: tab.apply_h(in.qubits[0]); break;
    case GateType::S: tab.apply_s(in.qubits[0]); break;
    case GateType::Sdg: tab.apply_sdg(in.qubits[0]); break;
    case GateType::X: tab.apply_x(in.qubits[0]); break;
    case GateType::Y: tab.apply_y(in.qubits[0]); break;
    case GateType::Z: tab.apply_z(in.qubits[0]); break;
    case GateType::CX: tab.apply_cx(in.qubits[0], in.qubits[1]); break;
    case GateType::CZ: tab.apply_cz(in.qubits[0], in.qubits[1]); break;
    case GateType::SWAP: tab.apply_swap(in.qubits[0], in.qubits[1]); break;
    case GateType::Measure:
      for (std::size_t i = 0; i < in.qubits.size(); ++i) {
        clbits[in.clbits[i]] =
            static_cast<std::uint8_t>(tab.measure(in.qubits[i], rng));
      }
      break;
    case GateType::Reset:
      tab.reset_qubit(in.qubits[0], rng);
      break;
    case GateType::Barrier:
      break;
    case GateType::GlobalPhase:
      break;  // a tableau is phase-free; counts and Paulis are unaffected
    default:
      throw CircuitError(std::string("stabilizer backend: non-Clifford gate ") +
                         gate_name(in.type) +
                         " reached the dispatcher (executor capability check "
                         "missed it)");
  }
}

/// Bitstring for the classical register given a sampled basis state and the
/// measure wiring (wire[c] = qubit feeding clbit c, if any). MSB-first,
/// matching sim::Counts keys.
std::string key_from_basis(std::uint64_t basis,
                           const std::vector<std::optional<std::size_t>>& wire) {
  std::string key(wire.size(), '0');
  for (std::size_t c = 0; c < wire.size(); ++c) {
    if (wire[c] && test_bit(basis, *wire[c])) key[wire.size() - 1 - c] = '1';
  }
  return key;
}

// ---- statevector ------------------------------------------------------------

/// Dense 2^n-amplitude simulation: the original executor engine, verbatim.
/// Static noiseless circuits evolve once and sample from the final
/// distribution; everything else runs one trajectory per shot with
/// Monte-Carlo noise, OpenMP-parallel over counter-derived RNG streams.
class StatevectorBackend final : public Backend {
public:
  std::string name() const override { return "statevector"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_qubits = sim::StateVector::kMaxQubits;
    return caps;
  }

  void execute(const QuantumCircuit& circ, const RunConfig& config,
               ExecutionResult& result) const override {
    static obs::Counter& gates_metric =
        obs::metrics().counter(obs::names::kSvGatesApplied);
    static obs::Gauge& peak_bytes =
        obs::metrics().gauge(obs::names::kSvPeakBytes);
    const bool fast = !config.backend.noise.enabled() && Executor::is_static(circ);
    const FusionPlan plan =
        plan_fusion(circ, config, capabilities(), /*pin_noise=*/!fast);
    record_fusion_stats(result, plan);
    const auto& instrs = circ.instructions();
    peak_bytes.set_max(16.0 * std::pow(2.0, static_cast<double>(circ.num_qubits())));

    if (fast) {
      sim::StateVector sv(circ.num_qubits());
      std::vector<std::optional<std::size_t>> wire(circ.num_clbits());
      const std::vector<double> cdf = evolve_static(circ, plan, sv, wire);
      sample_static(cdf, sv.dim(), wire, config.seed, config.shots,
                    config.record_memory, result);
      result.trajectories = 1;
      result.fast_path = true;
      return;
    }

    // Dynamic/noisy path: one trajectory per shot.
    obs::Span shots_span("sv.shots");

    const auto shots = static_cast<std::int64_t>(config.shots);
    if (config.record_memory) result.memory.assign(config.shots, {});

    // Each shot owns a counter-derived RNG stream, so the loop can run on any
    // number of threads and still produce bit-identical counts: per-shot
    // outcomes depend only on (seed, shot), memory slots are indexed by shot,
    // and merging per-thread histograms is an order-independent sum.
    const sim::NoiseModel& noise = config.backend.noise;
    const auto run_shot = [&](std::size_t s, std::size_t& applied) {
      obs::Span span("sv.shot");
      Rng rng(config.seed, s);
      sim::StateVector sv(circ.num_qubits());
      std::uint64_t clbits = 0;
      for (const FusedOp& op : plan.ops) {
        if (op.fused) {
          sv.apply_kq(op.matrix, op.qubits);
          ++applied;
          continue;
        }
        const Instruction& in = instrs[op.instruction];
        if (in.condition &&
            static_cast<int>(test_bit(clbits, in.condition->clbit)) !=
                in.condition->value) {
          continue;
        }
        if (in.type == GateType::Measure && noise.readout_error > 0.0) {
          for (std::size_t i = 0; i < in.qubits.size(); ++i) {
            int bit = sv.measure(in.qubits[i], rng);
            bit = sim::apply_readout_error(bit, noise.readout_error, rng);
            clbits = bit ? set_bit(clbits, in.clbits[i]) : clear_bit(clbits, in.clbits[i]);
          }
        } else {
          apply_instruction(sv, in, clbits, rng);
        }
        if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
          ++applied;
          if (in.qubits.size() == 1 && noise.depolarizing_1q > 0.0) {
            sim::apply_depolarizing(sv, in.qubits[0], noise.depolarizing_1q, rng);
          } else if (in.qubits.size() >= 2 && noise.depolarizing_2q > 0.0) {
            for (std::size_t q : in.qubits) {
              sim::apply_depolarizing(sv, q, noise.depolarizing_2q, rng);
            }
          }
          if (noise.amplitude_damping > 0.0) {
            for (std::size_t q : in.qubits) {
              sim::apply_amplitude_damping(sv, q, noise.amplitude_damping, rng);
            }
          }
        }
      }
      return to_bitstring(clbits, circ.num_clbits());
    };

    std::atomic<bool> failed{false};
    std::exception_ptr error;
#pragma omp parallel if (config.backend.parallel_shots && shots > 1)
    {
      sim::Counts local;
      std::size_t local_applied = 0;
#pragma omp for schedule(static)
      for (std::int64_t s = 0; s < shots; ++s) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          const std::string key =
              run_shot(static_cast<std::size_t>(s), local_applied);
          ++local[key];
          if (config.record_memory) {
            result.memory[static_cast<std::size_t>(s)] = key;
          }
        } catch (...) {
          // OpenMP loops cannot propagate exceptions; capture the first one
          // and rethrow after the region.
          if (!failed.exchange(true)) {
#pragma omp critical(qutes_executor_error)
            error = std::current_exception();
          }
        }
      }
#pragma omp critical(qutes_executor_merge)
      {
        for (const auto& [key, n] : local) result.counts[key] += n;
        gates_metric.add(local_applied);
      }
    }
    if (error) std::rethrow_exception(error);

    result.trajectories = config.shots;
    result.fast_path = false;
  }

  void execute_batch(const QuantumCircuit& circ, const RunConfig& config,
                     std::span<const ShotBatchItem> items,
                     std::vector<ExecutionResult>& results) const override {
    const bool fast = !config.backend.noise.enabled() && Executor::is_static(circ);
    if (!fast) {
      // The dynamic/noisy path is per-shot trajectories either way; there is
      // no seed-independent work worth sharing. The base loop is already
      // bit-identical to sequential execution.
      Backend::execute_batch(circ, config, items, results);
      return;
    }
    static obs::Gauge& peak_bytes =
        obs::metrics().gauge(obs::names::kSvPeakBytes);
    const FusionPlan plan =
        plan_fusion(circ, config, capabilities(), /*pin_noise=*/false);
    peak_bytes.set_max(16.0 * std::pow(2.0, static_cast<double>(circ.num_qubits())));

    // The batch payoff: one state evolution (the 2^n-amplitude sweeps) for
    // the whole batch; each item then samples from the shared CDF with its
    // own Rng(seed) — exactly the stream execute() would use, since the
    // static evolution consumes no randomness.
    sim::StateVector sv(circ.num_qubits());
    std::vector<std::optional<std::size_t>> wire(circ.num_clbits());
    const std::vector<double> cdf = evolve_static(circ, plan, sv, wire);
    for (std::size_t i = 0; i < items.size(); ++i) {
      record_fusion_stats(results[i], plan);
      sample_static(cdf, sv.dim(), wire, items[i].seed, items[i].shots,
                    items[i].record_memory, results[i]);
      results[i].trajectories = 1;
      results[i].fast_path = true;
    }
  }

private:
  /// Evolve the unitary prefix of a static circuit once, skipping
  /// measurements (a static circuit never reuses a measured qubit, so a
  /// measure only records the clbit -> qubit wiring into `wire`), and return
  /// the cumulative distribution over the final state. No randomness is
  /// consumed, so callers may seed their sampling Rng afterwards.
  static std::vector<double> evolve_static(
      const QuantumCircuit& circ, const FusionPlan& plan, sim::StateVector& sv,
      std::vector<std::optional<std::size_t>>& wire) {
    static obs::Counter& gates_metric =
        obs::metrics().counter(obs::names::kSvGatesApplied);
    const auto& instrs = circ.instructions();
    Rng rng(0);  // never drawn from: no measure/reset reaches apply_instruction
    std::uint64_t scratch = 0;
    {
      obs::Span span("sv.evolve");
      std::size_t applied = 0;
      for (const FusedOp& op : plan.ops) {
        if (op.fused) {
          sv.apply_kq(op.matrix, op.qubits);
          ++applied;
          continue;
        }
        const Instruction& in = instrs[op.instruction];
        if (in.type == GateType::Measure) {
          for (std::size_t i = 0; i < in.qubits.size(); ++i) {
            wire[in.clbits[i]] = in.qubits[i];
          }
          continue;
        }
        apply_instruction(sv, in, scratch, rng);
        if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
          ++applied;
        }
      }
      gates_metric.add(applied);
    }
    const auto amps = sv.amplitudes();
    std::vector<double> cdf(amps.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
      acc += std::norm(amps[i]);
      cdf[i] = acc;
    }
    return cdf;
  }

  /// Sample `shots` outcomes from the CDF by binary search, drawing from a
  /// fresh Rng(seed) — the stream the single-run fast path uses.
  static void sample_static(const std::vector<double>& cdf, std::uint64_t dim,
                            const std::vector<std::optional<std::size_t>>& wire,
                            std::uint64_t seed, std::size_t shots,
                            bool record_memory, ExecutionResult& result) {
    obs::Span span("sv.sample");
    Rng rng(seed);
    const double acc = cdf.empty() ? 0.0 : cdf.back();
    for (std::size_t s = 0; s < shots; ++s) {
      const double r = rng.uniform() * acc;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
      std::uint64_t basis = static_cast<std::uint64_t>(it - cdf.begin());
      if (basis >= dim) basis = dim - 1;
      const std::string key = key_from_basis(basis, wire);
      ++result.counts[key];
      if (record_memory) result.memory.push_back(key);
    }
  }
};

// ---- density matrix ---------------------------------------------------------

/// Exact mixed-state simulation: rho evolves once with noise applied as
/// closed-form channels at the same insertion points the trajectory path
/// uses, then shots sample the diagonal. Static circuits only — rho has no
/// per-shot branch to condition a c_if on.
class DensityBackend final : public Backend {
public:
  std::string name() const override { return "density"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_fused_qubits = 1;  // gate-at-a-time; channels attach per gate
    caps.supports_dynamic = false;
    caps.max_qubits = sim::DensityMatrix::kMaxQubits;
    return caps;
  }

  void execute(const QuantumCircuit& circ, const RunConfig& config,
               ExecutionResult& result) const override {
    static obs::Counter& gates_metric =
        obs::metrics().counter(obs::names::kDensityGatesApplied);
    static obs::Gauge& peak_bytes =
        obs::metrics().gauge(obs::names::kDensityPeakBytes);
    peak_bytes.set_max(16.0 * std::pow(4.0, static_cast<double>(circ.num_qubits())));
    sim::DensityMatrix rho(circ.num_qubits());
    std::vector<std::optional<std::size_t>> wire(circ.num_clbits());
    {
      obs::Span span("density.evolve");
      std::size_t applied = 0;
      for (const Instruction& in : circ.instructions()) {
        if (in.type == GateType::Measure) {
          for (std::size_t i = 0; i < in.qubits.size(); ++i) {
            wire[in.clbits[i]] = in.qubits[i];
          }
          continue;
        }
        apply_gate(rho, in);
        if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
          ++applied;
          apply_noise(rho, in, config.backend.noise);
        }
      }
      gates_metric.add(applied);
    }

    // Sample the diagonal: exact outcome distribution, one CDF, binary
    // search per shot; readout error flips each reported bit independently.
    obs::Span span("density.sample");
    Rng rng(config.seed);
    const auto probs = rho.probabilities();
    std::vector<double> cdf(probs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      acc += probs[i];
      cdf[i] = acc;
    }
    for (std::size_t s = 0; s < config.shots; ++s) {
      const double r = rng.uniform() * acc;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
      std::uint64_t basis = static_cast<std::uint64_t>(it - cdf.begin());
      if (basis >= rho.dim()) basis = rho.dim() - 1;
      std::string key(circ.num_clbits(), '0');
      for (std::size_t c = 0; c < circ.num_clbits(); ++c) {
        int bit = wire[c] && test_bit(basis, *wire[c]) ? 1 : 0;
        if (config.backend.noise.readout_error > 0.0) {
          bit = sim::apply_readout_error(bit, config.backend.noise.readout_error, rng);
        }
        key[circ.num_clbits() - 1 - c] = bit ? '1' : '0';
      }
      ++result.counts[key];
      if (config.record_memory) result.memory.push_back(key);
    }
    result.trajectories = 1;
    result.fast_path = true;
  }

private:
  static void apply_gate(sim::DensityMatrix& rho, const Instruction& in) {
    const auto controlled = [&](const sim::Matrix2& u) {
      const auto controls =
          std::span<const std::size_t>(in.qubits.data(), in.qubits.size() - 1);
      rho.apply_multi_controlled_1q(u, controls, in.qubits.back());
    };
    switch (in.type) {
      case GateType::H: rho.apply_1q(H(), in.qubits[0]); break;
      case GateType::X: rho.apply_1q(X(), in.qubits[0]); break;
      case GateType::Y: rho.apply_1q(Y(), in.qubits[0]); break;
      case GateType::Z: rho.apply_1q(Z(), in.qubits[0]); break;
      case GateType::S: rho.apply_1q(S(), in.qubits[0]); break;
      case GateType::Sdg: rho.apply_1q(Sdg(), in.qubits[0]); break;
      case GateType::T: rho.apply_1q(T(), in.qubits[0]); break;
      case GateType::Tdg: rho.apply_1q(Tdg(), in.qubits[0]); break;
      case GateType::SX: rho.apply_1q(SX(), in.qubits[0]); break;
      case GateType::RX: rho.apply_1q(RX(in.params[0]), in.qubits[0]); break;
      case GateType::RY: rho.apply_1q(RY(in.params[0]), in.qubits[0]); break;
      case GateType::RZ: rho.apply_1q(RZ(in.params[0]), in.qubits[0]); break;
      case GateType::P: rho.apply_1q(P(in.params[0]), in.qubits[0]); break;
      case GateType::U:
        rho.apply_1q(U(in.params[0], in.params[1], in.params[2]), in.qubits[0]);
        break;
      case GateType::CX: case GateType::CCX: case GateType::MCX:
        controlled(X());
        break;
      case GateType::CY: controlled(Y()); break;
      case GateType::CZ: case GateType::MCZ: controlled(Z()); break;
      case GateType::CH: controlled(H()); break;
      case GateType::CP: case GateType::MCP: controlled(P(in.params[0])); break;
      case GateType::CRZ: controlled(RZ(in.params[0])); break;
      case GateType::SWAP: rho.apply_swap(in.qubits[0], in.qubits[1]); break;
      case GateType::CSWAP: {
        // Same 3-CX expansion the statevector interpreter uses.
        const std::size_t c = in.qubits[0], a = in.qubits[1], b = in.qubits[2];
        const std::size_t ca[2] = {c, a};
        const std::size_t cb[2] = {c, b};
        rho.apply_multi_controlled_1q(X(), ca, b);
        rho.apply_multi_controlled_1q(X(), cb, a);
        rho.apply_multi_controlled_1q(X(), ca, b);
        break;
      }
      case GateType::Measure: case GateType::Reset:
        throw CircuitError("density backend: dynamic instruction reached the "
                           "gate dispatcher (executor capability check missed it)");
      case GateType::Barrier:
        break;
      case GateType::GlobalPhase:
        break;  // cancels in U rho U^dagger
    }
  }

  /// Exact counterparts of the trajectory path's noise insertion points.
  static void apply_noise(sim::DensityMatrix& rho, const Instruction& in,
                          const sim::NoiseModel& noise) {
    if (in.qubits.size() == 1 && noise.depolarizing_1q > 0.0) {
      rho.apply_depolarizing(in.qubits[0], noise.depolarizing_1q);
    } else if (in.qubits.size() >= 2 && noise.depolarizing_2q > 0.0) {
      for (std::size_t q : in.qubits) rho.apply_depolarizing(q, noise.depolarizing_2q);
    }
    if (noise.amplitude_damping > 0.0) {
      for (std::size_t q : in.qubits) {
        rho.apply_amplitude_damping(q, noise.amplitude_damping);
      }
    }
  }
};

// ---- matrix product state ---------------------------------------------------

/// Tensor-network simulation. Gates wider than two qubits are lowered to
/// {u, cx} first; fusion is capped at contiguous 2q blocks by the capability
/// query. Static circuits evolve one MPS and draw shots from a shared
/// Sampler; dynamic circuits run one MPS trajectory per shot. Both shot
/// loops use Rng(seed, shot) streams, so counts are thread-count-invariant.
class MpsBackend final : public Backend {
public:
  std::string name() const override { return "mps"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_fused_qubits = 2;
    caps.fused_adjacent_only = true;
    caps.supports_noise = false;  // no trajectory channels on an MPS (yet)
    caps.max_qubits = 64;         // sampling packs outcomes into a uint64
    caps.prefers_linear_layout = true;
    return caps;
  }

  void execute(const QuantumCircuit& circuit, const RunConfig& config,
               ExecutionResult& result) const override {
    static obs::Counter& gates_metric =
        obs::metrics().counter(obs::names::kMpsGatesApplied);
    static obs::Counter& truncations_metric =
        obs::metrics().counter(obs::names::kMpsSvdTruncations);
    static obs::Gauge& bond_gauge =
        obs::metrics().gauge(obs::names::kMpsMaxBondDim);
    static obs::Gauge& trunc_gauge =
        obs::metrics().gauge(obs::names::kMpsTruncationError);
    // The MPS applies at most 2q unitaries; anything wider is lowered to the
    // {u, cx} basis up front (this may append ancilla wires for gates with
    // >= 3 controls).
    QuantumCircuit lowered;
    const QuantumCircuit* target = &circuit;
    if (has_wide_unitary(circuit)) {
      obs::Span span("mps.lower");
      PassManager lowerer;
      lowerer.emplace<DecomposeToBasis>();
      lowered = lowerer.run(circuit);
      target = &lowered;
    }
    const QuantumCircuit& circ = *target;

    const FusionPlan plan =
        plan_fusion(circ, config, capabilities(), /*pin_noise=*/false);
    record_fusion_stats(result, plan);
    const auto& instrs = circ.instructions();

    sim::MpsOptions mps_options;
    mps_options.max_bond_dim = config.backend.max_bond_dim;
    mps_options.truncation_threshold = config.backend.truncation_threshold;

    const auto shots = static_cast<std::int64_t>(config.shots);
    if (config.record_memory) result.memory.assign(config.shots, {});

    if (Executor::is_static(circ)) {
      // Evolve one MPS, then sample every shot from a shared read-only
      // Sampler — per-shot cost is O(n chi^3), independent of shot history.
      Rng rng(config.seed);
      sim::Mps mps(circ.num_qubits(), mps_options);
      std::uint64_t scratch = 0;
      std::vector<std::optional<std::size_t>> wire(circ.num_clbits());
      {
        obs::Span span("mps.evolve");
        std::size_t applied = 0;
        for (const FusedOp& op : plan.ops) {
          if (op.fused) {
            mps.apply_kq(op.matrix, op.qubits);
            ++applied;
            continue;
          }
          const Instruction& in = instrs[op.instruction];
          if (in.type == GateType::Measure) {
            for (std::size_t i = 0; i < in.qubits.size(); ++i) {
              wire[in.clbits[i]] = in.qubits[i];
            }
            continue;
          }
          apply_instruction_mps(mps, in, scratch, rng);
          if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
            ++applied;
          }
        }
        gates_metric.add(applied);
      }
      result.truncation_error = mps.truncation_error();
      result.max_bond_dim_reached = mps.max_bond_dim_reached();
      truncations_metric.add(mps.svd_truncations());
      bond_gauge.set_max(static_cast<double>(result.max_bond_dim_reached));
      trunc_gauge.set_max(result.truncation_error);

      obs::Span sample_span("mps.sample");
      const sim::Mps::Sampler sampler = mps.make_sampler();
      std::atomic<bool> failed{false};
      std::exception_ptr error;
#pragma omp parallel if (config.backend.parallel_shots && shots > 1)
      {
        sim::Counts local;
#pragma omp for schedule(static)
        for (std::int64_t s = 0; s < shots; ++s) {
          if (failed.load(std::memory_order_relaxed)) continue;
          try {
            Rng shot_rng(config.seed, static_cast<std::uint64_t>(s));
            const std::uint64_t basis = mps.sample(sampler, shot_rng);
            const std::string key = key_from_basis(basis, wire);
            ++local[key];
            if (config.record_memory) {
              result.memory[static_cast<std::size_t>(s)] = key;
            }
          } catch (...) {
            if (!failed.exchange(true)) {
#pragma omp critical(qutes_mps_error)
              error = std::current_exception();
            }
          }
        }
#pragma omp critical(qutes_mps_merge)
        for (const auto& [key, n] : local) result.counts[key] += n;
      }
      if (error) std::rethrow_exception(error);

      result.trajectories = 1;
      result.fast_path = true;
      return;
    }

    // Dynamic path: one MPS trajectory per shot, same counter-derived RNG
    // discipline as the statevector backend.
    obs::Span shots_span("mps.shots");
    const auto run_shot = [&](std::size_t s, double& trunc, std::size_t& bond,
                              std::size_t& applied, std::size_t& truncations) {
      obs::Span span("mps.shot");
      Rng rng(config.seed, s);
      sim::Mps mps(circ.num_qubits(), mps_options);
      std::uint64_t clbits = 0;
      for (const FusedOp& op : plan.ops) {
        if (op.fused) {
          mps.apply_kq(op.matrix, op.qubits);
          ++applied;
          continue;
        }
        const Instruction& in = instrs[op.instruction];
        if (in.condition &&
            static_cast<int>(test_bit(clbits, in.condition->clbit)) !=
                in.condition->value) {
          continue;
        }
        apply_instruction_mps(mps, in, clbits, rng);
        if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
          ++applied;
        }
      }
      trunc = std::max(trunc, mps.truncation_error());
      bond = std::max(bond, mps.max_bond_dim_reached());
      truncations += mps.svd_truncations();
      return to_bitstring(clbits, circ.num_clbits());
    };

    std::atomic<bool> failed{false};
    std::exception_ptr error;
#pragma omp parallel if (config.backend.parallel_shots && shots > 1)
    {
      sim::Counts local;
      double local_trunc = 0.0;
      std::size_t local_bond = 0;
      std::size_t local_applied = 0;
      std::size_t local_truncations = 0;
#pragma omp for schedule(static)
      for (std::int64_t s = 0; s < shots; ++s) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          const std::string key =
              run_shot(static_cast<std::size_t>(s), local_trunc, local_bond,
                       local_applied, local_truncations);
          ++local[key];
          if (config.record_memory) {
            result.memory[static_cast<std::size_t>(s)] = key;
          }
        } catch (...) {
          if (!failed.exchange(true)) {
#pragma omp critical(qutes_mps_error)
            error = std::current_exception();
          }
        }
      }
#pragma omp critical(qutes_mps_merge)
      {
        for (const auto& [key, n] : local) result.counts[key] += n;
        result.truncation_error = std::max(result.truncation_error, local_trunc);
        result.max_bond_dim_reached =
            std::max(result.max_bond_dim_reached, local_bond);
        gates_metric.add(local_applied);
        truncations_metric.add(local_truncations);
      }
    }
    if (error) std::rethrow_exception(error);

    bond_gauge.set_max(static_cast<double>(result.max_bond_dim_reached));
    trunc_gauge.set_max(result.truncation_error);
    result.trajectories = config.shots;
    result.fast_path = false;
  }
};

// ---- stabilizer -------------------------------------------------------------

/// Phase-tableau (Aaronson–Gottesman) simulation: polynomial in the qubit
/// count, Clifford gates only (published via capabilities().supported_gates,
/// so the executor rejects anything else by name and fusion is clamped to
/// width 1 — no dense blocks ever reach the tableau). Static circuits evolve
/// the unitary prefix once, then every shot copies the evolved tableau and
/// measures it; dynamic circuits run one tableau trajectory per shot. Both
/// shot loops draw from Rng(seed, shot) streams, so counts are bit-identical
/// at any thread count.
class StabilizerBackend final : public Backend {
public:
  std::string name() const override { return "stabilizer"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.max_fused_qubits = 1;  // a tableau cannot replay dense matrices
    caps.supports_noise = false;
    caps.max_qubits = 0;  // polynomial scaling: no backend-specific ceiling
    caps.supported_gates.assign(std::begin(kCliffordGateNames),
                                std::end(kCliffordGateNames));
    return caps;
  }

  void execute(const QuantumCircuit& circ, const RunConfig& config,
               ExecutionResult& result) const override {
    static obs::Counter& gates_metric =
        obs::metrics().counter(obs::names::kStabGatesApplied);
    static obs::Counter& measurements_metric =
        obs::metrics().counter(obs::names::kStabMeasurements);
    static obs::Counter& random_metric =
        obs::metrics().counter(obs::names::kStabRandomOutcomes);
    static obs::Gauge& peak_bytes =
        obs::metrics().gauge(obs::names::kStabPeakBytes);

    // Fusion is capability-clamped to width 1, so the plan is always
    // gate-at-a-time; run it anyway so fusion stats land in the result the
    // same way they do for every other backend.
    const FusionPlan plan =
        plan_fusion(circ, config, capabilities(), /*pin_noise=*/false);
    record_fusion_stats(result, plan);
    const auto& instrs = circ.instructions();

    const auto shots = static_cast<std::int64_t>(config.shots);
    if (config.record_memory) result.memory.assign(config.shots, {});

    const auto key_of = [&](const std::vector<std::uint8_t>& clbits) {
      std::string key(circ.num_clbits(), '0');
      for (std::size_t c = 0; c < clbits.size(); ++c) {
        if (clbits[c]) key[circ.num_clbits() - 1 - c] = '1';
      }
      return key;
    };

    const auto run_instruction = [&](sim::Stabilizer& tab, const Instruction& in,
                                     std::vector<std::uint8_t>& clbits,
                                     Rng& rng, std::size_t& applied) {
      if (in.condition && static_cast<int>(clbits[in.condition->clbit]) !=
                              in.condition->value) {
        return;
      }
      apply_instruction_stab(tab, in, clbits, rng);
      if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase) {
        ++applied;
      }
    };

    if (Executor::is_static(circ)) {
      // Evolve the unitary prefix once (a static circuit's measurements only
      // record wiring), then each shot copies the evolved tableau and
      // performs its measurements with its own Rng(seed, shot) stream — a
      // copy is O(n^2 / 64) bytes, far cheaper than replaying the gates.
      sim::Stabilizer evolved(circ.num_qubits());
      std::vector<std::pair<std::size_t, std::size_t>> wire;  // (qubit, clbit)
      {
        obs::Span span("stab.evolve");
        Rng rng(config.seed);
        std::vector<std::uint8_t> scratch(circ.num_clbits(), 0);
        std::size_t applied = 0;
        for (const FusedOp& op : plan.ops) {
          if (op.fused) {
            throw CircuitError(
                "stabilizer backend received a fused dense block (fusion "
                "should be capability-clamped to width 1)");
          }
          const Instruction& in = instrs[op.instruction];
          if (in.type == GateType::Measure) {
            for (std::size_t i = 0; i < in.qubits.size(); ++i) {
              wire.emplace_back(in.qubits[i], in.clbits[i]);
            }
            continue;
          }
          run_instruction(evolved, in, scratch, rng, applied);
        }
        gates_metric.add(applied);
      }
      peak_bytes.set_max(static_cast<double>(evolved.memory_bytes()));

      obs::Span sample_span("stab.sample");
      std::atomic<bool> failed{false};
      std::exception_ptr error;
      std::size_t total_measurements = 0, total_random = 0;
#pragma omp parallel if (config.backend.parallel_shots && shots > 1)
      {
        sim::Counts local;
        std::size_t local_measurements = 0, local_random = 0;
#pragma omp for schedule(static)
        for (std::int64_t s = 0; s < shots; ++s) {
          if (failed.load(std::memory_order_relaxed)) continue;
          try {
            Rng rng(config.seed, static_cast<std::uint64_t>(s));
            sim::Stabilizer tab = evolved;
            std::vector<std::uint8_t> clbits(circ.num_clbits(), 0);
            for (const auto& [qubit, clbit] : wire) {
              clbits[clbit] = static_cast<std::uint8_t>(tab.measure(qubit, rng));
            }
            const std::string key = key_of(clbits);
            ++local[key];
            local_measurements += tab.measurements();
            local_random += tab.random_outcomes();
            if (config.record_memory) {
              result.memory[static_cast<std::size_t>(s)] = key;
            }
          } catch (...) {
            if (!failed.exchange(true)) {
#pragma omp critical(qutes_stab_error)
              error = std::current_exception();
            }
          }
        }
#pragma omp critical(qutes_stab_merge)
        {
          for (const auto& [key, n] : local) result.counts[key] += n;
          total_measurements += local_measurements;
          total_random += local_random;
        }
      }
      if (error) std::rethrow_exception(error);
      measurements_metric.add(total_measurements);
      random_metric.add(total_random);

      result.trajectories = 1;
      result.fast_path = true;
      return;
    }

    // Dynamic path (mid-circuit measurement feeding gates, reset, c_if): one
    // tableau trajectory per shot, same counter-derived RNG discipline as
    // the statevector backend.
    obs::Span shots_span("stab.shots");
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::size_t total_measurements = 0, total_random = 0;
#pragma omp parallel if (config.backend.parallel_shots && shots > 1)
    {
      sim::Counts local;
      std::size_t local_applied = 0;
      std::size_t local_measurements = 0, local_random = 0;
#pragma omp for schedule(static)
      for (std::int64_t s = 0; s < shots; ++s) {
        if (failed.load(std::memory_order_relaxed)) continue;
        try {
          obs::Span span("stab.shot");
          Rng rng(config.seed, static_cast<std::uint64_t>(s));
          sim::Stabilizer tab(circ.num_qubits());
          std::vector<std::uint8_t> clbits(circ.num_clbits(), 0);
          for (const FusedOp& op : plan.ops) {
            if (op.fused) {
              throw CircuitError(
                  "stabilizer backend received a fused dense block (fusion "
                  "should be capability-clamped to width 1)");
            }
            run_instruction(tab, instrs[op.instruction], clbits, rng,
                            local_applied);
          }
          const std::string key = key_of(clbits);
          ++local[key];
          local_measurements += tab.measurements();
          local_random += tab.random_outcomes();
          if (s == 0) {
            peak_bytes.set_max(static_cast<double>(tab.memory_bytes()));
          }
          if (config.record_memory) {
            result.memory[static_cast<std::size_t>(s)] = key;
          }
        } catch (...) {
          if (!failed.exchange(true)) {
#pragma omp critical(qutes_stab_error)
            error = std::current_exception();
          }
        }
      }
#pragma omp critical(qutes_stab_merge)
      {
        for (const auto& [key, n] : local) result.counts[key] += n;
        gates_metric.add(local_applied);
        total_measurements += local_measurements;
        total_random += local_random;
      }
    }
    if (error) std::rethrow_exception(error);
    measurements_metric.add(total_measurements);
    random_metric.add(total_random);

    result.trajectories = config.shots;
    result.fast_path = false;
  }
};

// ---- registry ---------------------------------------------------------------

std::map<std::string, BackendFactory>& registry() {
  static std::map<std::string, BackendFactory> backends = {
      {"statevector",
       +[]() -> std::unique_ptr<Backend> { return std::make_unique<StatevectorBackend>(); }},
      {"density",
       +[]() -> std::unique_ptr<Backend> { return std::make_unique<DensityBackend>(); }},
      {"mps",
       +[]() -> std::unique_ptr<Backend> { return std::make_unique<MpsBackend>(); }},
      {"stabilizer",
       +[]() -> std::unique_ptr<Backend> { return std::make_unique<StabilizerBackend>(); }},
  };
  return backends;
}

}  // namespace

void Backend::execute_batch(const QuantumCircuit& circuit,
                            const RunConfig& config,
                            std::span<const ShotBatchItem> items,
                            std::vector<ExecutionResult>& results) const {
  // Reference implementation: per-item execute() with the item's own
  // seed/shots/record_memory. Bit-identity to sequential runs is trivial;
  // backends override this only when they can share seed-independent work.
  for (std::size_t i = 0; i < items.size(); ++i) {
    RunConfig item_config = config;
    item_config.seed = items[i].seed;
    item_config.shots = items[i].shots;
    item_config.record_memory = items[i].record_memory;
    execute(circuit, item_config, results[i]);
  }
}

void register_backend(const std::string& name, BackendFactory factory) {
  if (name.empty() || factory == nullptr) {
    throw CircuitError("register_backend: empty name or null factory");
  }
  registry()[name] = factory;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool backend_known(const std::string& name) {
  return registry().count(name) != 0;
}

std::unique_ptr<Backend> make_backend(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const std::string& n : backend_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw CircuitError("unknown backend \"" + name + "\"; known backends: " + known);
  }
  return it->second();
}

sim::Mps evolve_mps(const QuantumCircuit& circuit, sim::MpsOptions options) {
  QuantumCircuit lowered;
  const QuantumCircuit* target = &circuit;
  if (has_wide_unitary(circuit)) {
    PassManager lowerer;
    lowerer.emplace<DecomposeToBasis>();
    lowered = lowerer.run(circuit);
    target = &lowered;
  }
  const QuantumCircuit& circ = *target;

  sim::Mps mps(circ.num_qubits(), options);
  Rng rng(0);
  std::uint64_t scratch = 0;
  for (const Instruction& in : circ.instructions()) {
    if (in.condition || in.type == GateType::Measure || in.type == GateType::Reset) {
      throw CircuitError(
          "evolve_mps: circuit has measurement/reset/conditions; use the "
          "executor's mps backend instead");
    }
    apply_instruction_mps(mps, in, scratch, rng);
  }
  if (circ.global_phase() != 0.0) mps.apply_global_phase(circ.global_phase());
  return mps;
}

sim::Stabilizer evolve_stabilizer(const QuantumCircuit& circuit) {
  sim::Stabilizer tab(circuit.num_qubits());
  Rng rng(0);
  std::vector<std::uint8_t> scratch;
  for (const Instruction& in : circuit.instructions()) {
    if (in.condition || in.type == GateType::Measure ||
        in.type == GateType::Reset) {
      throw CircuitError(
          "evolve_stabilizer: circuit has measurement/reset/conditions; use "
          "the executor's stabilizer backend instead");
    }
    if (is_unitary_gate(in.type) && in.type != GateType::GlobalPhase &&
        !is_clifford_gate(in.type)) {
      throw CircuitError("evolve_stabilizer: non-Clifford gate " +
                         std::string(gate_name(in.type)));
    }
    apply_instruction_stab(tab, in, scratch, rng);
  }
  // Global phase is unobservable on a tableau; nothing to record.
  return tab;
}

bool is_clifford_circuit(const QuantumCircuit& circuit) {
  for (const Instruction& in : circuit.instructions()) {
    if (!is_unitary_gate(in.type) || in.type == GateType::GlobalPhase) {
      continue;  // measure/reset/barrier/phase are tableau-representable
    }
    if (!is_clifford_gate(in.type)) return false;
  }
  return true;
}

std::string resolve_backend_name(const std::string& name,
                                 const QuantumCircuit& circuit,
                                 const RunConfig& config) {
  if (name != "auto") return name;
  static obs::Counter& auto_stab =
      obs::metrics().counter(obs::names::kAutoStabilizer);
  static obs::Counter& auto_sv =
      obs::metrics().counter(obs::names::kAutoStatevector);
  if (!config.backend.noise.enabled() && is_clifford_circuit(circuit)) {
    auto_stab.add(1);
    return "stabilizer";
  }
  auto_sv.add(1);
  return "statevector";
}

}  // namespace qutes::circ
