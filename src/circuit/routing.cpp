// 1q-unitary utilities plus the legacy hardware-aware entry points.
// fuse_single_qubit_gates() and route_linear() are thin wrappers over
// one-pass PassManagers (see circuit/pass_manager.cpp for the transforms);
// the ZYZ decomposition and gate-matrix lookup stay here as shared
// utilities.
#include "qutes/circuit/routing.hpp"

#include <cmath>

#include "qutes/circuit/pass_manager.hpp"
#include "qutes/common/error.hpp"

namespace qutes::circ {

EulerAngles decompose_1q_unitary(const sim::Matrix2& u) {
  if (!u.is_unitary(1e-9)) {
    throw CircuitError("decompose_1q_unitary: matrix is not unitary");
  }
  const sim::cplx a = u.m[0], b = u.m[1], c = u.m[2];
  EulerAngles angles;
  angles.theta = 2.0 * std::atan2(std::abs(c), std::abs(a));
  if (std::abs(c) < 1e-12) {
    // Diagonal: U = e^{i alpha} diag(1, e^{i lambda}).
    angles.phase = std::arg(a);
    angles.phi = 0.0;
    angles.lambda = std::arg(u.m[3]) - angles.phase;
  } else if (std::abs(a) < 1e-12) {
    // Anti-diagonal: theta = pi; split the off-diagonal phases.
    angles.lambda = 0.0;
    angles.phase = std::arg(-b);
    angles.phi = std::arg(c) - angles.phase;
  } else {
    angles.phase = std::arg(a);
    angles.phi = std::arg(c) - angles.phase;
    angles.lambda = std::arg(-b) - angles.phase;
  }
  return angles;
}

sim::Matrix2 matrix_of_1q(const Instruction& in) {
  using namespace sim::gates;
  switch (in.type) {
    case GateType::H: return H();
    case GateType::X: return X();
    case GateType::Y: return Y();
    case GateType::Z: return Z();
    case GateType::S: return S();
    case GateType::Sdg: return Sdg();
    case GateType::T: return T();
    case GateType::Tdg: return Tdg();
    case GateType::SX: return SX();
    case GateType::RX: return RX(in.params[0]);
    case GateType::RY: return RY(in.params[0]);
    case GateType::RZ: return RZ(in.params[0]);
    case GateType::P: return P(in.params[0]);
    case GateType::U: return U(in.params[0], in.params[1], in.params[2]);
    default:
      throw CircuitError(std::string("matrix_of_1q: not a 1-qubit unitary: ") +
                         gate_name(in.type));
  }
}

QuantumCircuit fuse_single_qubit_gates(const QuantumCircuit& circuit) {
  PassManager pm;
  pm.emplace<FuseSingleQubitGates>();
  return pm.run(circuit);
}

RoutingResult route_linear(const QuantumCircuit& circuit, bool restore_layout) {
  PassManager pm;
  pm.emplace<Route>(CouplingMap::line(), restore_layout);
  PropertySet properties;
  RoutingResult result;
  result.circuit = pm.run(circuit, properties);
  result.final_layout = std::move(properties.final_layout);
  result.swaps_inserted = properties.swaps_inserted;
  return result;
}

}  // namespace qutes::circ
