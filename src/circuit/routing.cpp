#include "qutes/circuit/routing.hpp"

#include <cmath>
#include <optional>

#include "qutes/common/error.hpp"

namespace qutes::circ {

namespace {

bool near_zero(double v) { return std::abs(v) < 1e-12; }

}  // namespace

EulerAngles decompose_1q_unitary(const sim::Matrix2& u) {
  if (!u.is_unitary(1e-9)) {
    throw CircuitError("decompose_1q_unitary: matrix is not unitary");
  }
  const sim::cplx a = u.m[0], b = u.m[1], c = u.m[2];
  EulerAngles angles;
  angles.theta = 2.0 * std::atan2(std::abs(c), std::abs(a));
  if (std::abs(c) < 1e-12) {
    // Diagonal: U = e^{i alpha} diag(1, e^{i lambda}).
    angles.phase = std::arg(a);
    angles.phi = 0.0;
    angles.lambda = std::arg(u.m[3]) - angles.phase;
  } else if (std::abs(a) < 1e-12) {
    // Anti-diagonal: theta = pi; split the off-diagonal phases.
    angles.lambda = 0.0;
    angles.phase = std::arg(-b);
    angles.phi = std::arg(c) - angles.phase;
  } else {
    angles.phase = std::arg(a);
    angles.phi = std::arg(c) - angles.phase;
    angles.lambda = std::arg(-b) - angles.phase;
  }
  return angles;
}

sim::Matrix2 matrix_of_1q(const Instruction& in) {
  using namespace sim::gates;
  switch (in.type) {
    case GateType::H: return H();
    case GateType::X: return X();
    case GateType::Y: return Y();
    case GateType::Z: return Z();
    case GateType::S: return S();
    case GateType::Sdg: return Sdg();
    case GateType::T: return T();
    case GateType::Tdg: return Tdg();
    case GateType::SX: return SX();
    case GateType::RX: return RX(in.params[0]);
    case GateType::RY: return RY(in.params[0]);
    case GateType::RZ: return RZ(in.params[0]);
    case GateType::P: return P(in.params[0]);
    case GateType::U: return U(in.params[0], in.params[1], in.params[2]);
    default:
      throw CircuitError(std::string("matrix_of_1q: not a 1-qubit unitary: ") +
                         gate_name(in.type));
  }
}

QuantumCircuit fuse_single_qubit_gates(const QuantumCircuit& circuit) {
  QuantumCircuit out;
  for (const auto& r : circuit.qregs()) out.add_register(r.name, r.size);
  for (const auto& r : circuit.cregs()) out.add_classical_register(r.name, r.size);
  out.add_global_phase(circuit.global_phase());

  std::vector<std::optional<sim::Matrix2>> pending(circuit.num_qubits());

  const auto flush = [&](std::size_t q) {
    if (!pending[q]) return;
    const EulerAngles angles = decompose_1q_unitary(*pending[q]);
    pending[q].reset();
    if (!near_zero(angles.phase)) out.add_global_phase(angles.phase);
    if (near_zero(angles.theta) && near_zero(angles.phi) && near_zero(angles.lambda)) {
      return;  // run multiplied to the identity
    }
    out.u(angles.theta, angles.phi, angles.lambda, q);
  };

  for (const Instruction& in : circuit.instructions()) {
    const bool fusable = in.qubits.size() == 1 && is_unitary_gate(in.type) &&
                         in.type != GateType::GlobalPhase && !in.condition;
    if (fusable) {
      const sim::Matrix2 m = matrix_of_1q(in);
      const std::size_t q = in.qubits[0];
      pending[q] = pending[q] ? (m * *pending[q]) : m;
      continue;
    }
    for (std::size_t q : in.qubits) flush(q);
    out.append(in);
  }
  for (std::size_t q = 0; q < circuit.num_qubits(); ++q) flush(q);
  return out;
}

RoutingResult route_linear(const QuantumCircuit& circuit, bool restore_layout) {
  const std::size_t n = circuit.num_qubits();
  RoutingResult result;
  QuantumCircuit& out = result.circuit;
  for (const auto& r : circuit.qregs()) out.add_register(r.name, r.size);
  for (const auto& r : circuit.cregs()) out.add_classical_register(r.name, r.size);
  out.add_global_phase(circuit.global_phase());

  std::vector<std::size_t> l2p(n), p2l(n);
  for (std::size_t i = 0; i < n; ++i) l2p[i] = p2l[i] = i;

  const auto physical_swap = [&](std::size_t pa, std::size_t pb) {
    out.swap(pa, pb);
    ++result.swaps_inserted;
    const std::size_t la = p2l[pa];
    const std::size_t lb = p2l[pb];
    std::swap(p2l[pa], p2l[pb]);
    l2p[la] = pb;
    l2p[lb] = pa;
  };

  for (const Instruction& src : circuit.instructions()) {
    if (src.type == GateType::Barrier) {
      Instruction in = src;
      for (std::size_t& q : in.qubits) q = l2p[q];
      out.append(std::move(in));
      continue;
    }
    if (src.qubits.size() > 2) {
      throw CircuitError(std::string("route_linear: lower ") + gate_name(src.type) +
                         " to <= 2-qubit gates first");
    }
    if (src.qubits.size() == 2 && is_unitary_gate(src.type)) {
      std::size_t pa = l2p[src.qubits[0]];
      const std::size_t pb = l2p[src.qubits[1]];
      // Bubble the first operand next to the second.
      while (pa + 1 < pb) {
        physical_swap(pa, pa + 1);
        ++pa;
      }
      while (pa > pb + 1) {
        physical_swap(pa, pa - 1);
        --pa;
      }
    }
    Instruction in = src;
    for (std::size_t& q : in.qubits) q = l2p[q];
    out.append(std::move(in));
  }

  if (restore_layout) {
    // Bubble every logical qubit back to its home wire with adjacent swaps.
    for (std::size_t home = 0; home < n; ++home) {
      std::size_t at = l2p[home];
      while (at > home) {
        physical_swap(at, at - 1);
        --at;
      }
      // l2p[home] can only be >= home here: wires below `home` already hold
      // their final logical qubits.
    }
  }
  result.final_layout = l2p;
  return result;
}

}  // namespace qutes::circ
