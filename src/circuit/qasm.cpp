#include "qutes/circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/error.hpp"

namespace qutes::circ::qasm {

namespace {

std::string format_param(double v) {
  // Render common multiples of pi symbolically for readability; otherwise
  // full-precision decimal.
  static const struct { double value; const char* text; } table[] = {
      {M_PI, "pi"},         {-M_PI, "-pi"},       {M_PI / 2, "pi/2"},
      {-M_PI / 2, "-pi/2"}, {M_PI / 4, "pi/4"},   {-M_PI / 4, "-pi/4"},
      {M_PI / 8, "pi/8"},   {-M_PI / 8, "-pi/8"}, {2 * M_PI, "2*pi"},
  };
  for (const auto& e : table) {
    if (std::abs(v - e.value) < 1e-15) return e.text;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Map a flat qubit index to "regname[i]".
std::string qubit_ref(const QuantumCircuit& c, std::size_t q) {
  for (const auto& r : c.qregs()) {
    if (q >= r.offset && q < r.offset + r.size) {
      return r.name + "[" + std::to_string(q - r.offset) + "]";
    }
  }
  throw CircuitError("qubit " + std::to_string(q) + " not in any register");
}

std::string clbit_ref(const QuantumCircuit& c, std::size_t b) {
  for (const auto& r : c.cregs()) {
    if (b >= r.offset && b < r.offset + r.size) {
      return r.name + "[" + std::to_string(b - r.offset) + "]";
    }
  }
  throw CircuitError("clbit " + std::to_string(b) + " not in any register");
}

}  // namespace

std::string export_circuit(const QuantumCircuit& circuit) {
  // QASM 2 has no multi-controlled primitives: lower them first.
  const QuantumCircuit c = decompose_multicontrolled(circuit);

  std::ostringstream out;
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  for (const auto& r : c.qregs()) {
    out << "qreg " << r.name << "[" << r.size << "];\n";
  }
  for (const auto& r : c.cregs()) {
    out << "creg " << r.name << "[" << r.size << "];\n";
  }
  for (const Instruction& in : c.instructions()) {
    if (in.condition) {
      out << "if (" << clbit_ref(c, in.condition->clbit) << " == "
          << in.condition->value << ") ";
    }
    switch (in.type) {
      case GateType::Measure:
        for (std::size_t i = 0; i < in.qubits.size(); ++i) {
          out << "measure " << qubit_ref(c, in.qubits[i]) << " -> "
              << clbit_ref(c, in.clbits[i]) << ";\n";
        }
        continue;
      case GateType::Barrier: {
        out << "barrier";
        for (std::size_t i = 0; i < in.qubits.size(); ++i) {
          out << (i ? ", " : " ") << qubit_ref(c, in.qubits[i]);
        }
        out << ";\n";
        continue;
      }
      case GateType::GlobalPhase:
        // No QASM2 representation; drop (unobservable).
        continue;
      default:
        break;
    }
    out << gate_name(in.type);
    if (!in.params.empty()) {
      out << "(";
      for (std::size_t i = 0; i < in.params.size(); ++i) {
        out << (i ? ", " : "");
        // Unbound symbolic angles export as their parameter name (the same
        // extension Qiskit uses for unbound ParameterExpressions); the
        // importer resolves identifiers back into the parameter table, so
        // unbound circuits round-trip.
        const int ref = in.param_ref(i);
        if (ref >= 0) {
          out << c.parameter_names()[static_cast<std::size_t>(ref)];
        } else {
          out << format_param(in.params[i]);
        }
      }
      out << ")";
    }
    for (std::size_t i = 0; i < in.qubits.size(); ++i) {
      out << (i ? ", " : " ") << qubit_ref(c, in.qubits[i]);
    }
    out << ";\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Importer
// ---------------------------------------------------------------------------

namespace {

/// Minimal arithmetic-expression evaluator for gate parameters: numbers,
/// `pi`, + - * /, unary minus, parentheses.
class ParamParser {
public:
  explicit ParamParser(const std::string& text) : text_(text) {}

  double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != text_.size()) throw CircuitError("trailing junk in parameter: " + text_);
    return v;
  }

private:
  double expr() {
    double v = term();
    for (;;) {
      skip_ws();
      if (consume('+')) v += term();
      else if (consume('-')) v -= term();
      else return v;
    }
  }
  double term() {
    double v = unary();
    for (;;) {
      skip_ws();
      if (consume('*')) v *= unary();
      else if (consume('/')) v /= unary();
      else return v;
    }
  }
  double unary() {
    skip_ws();
    if (consume('-')) return -unary();
    if (consume('+')) return unary();
    return primary();
  }
  double primary() {
    skip_ws();
    if (consume('(')) {
      const double v = expr();
      skip_ws();
      if (!consume(')')) throw CircuitError("expected ')' in parameter");
      return v;
    }
    if (pos_ + 1 < text_.size() && text_.compare(pos_, 2, "pi") == 0) {
      pos_ += 2;
      return M_PI;
    }
    std::size_t used = 0;
    const double v = std::stod(text_.substr(pos_), &used);
    if (used == 0) throw CircuitError("bad parameter: " + text_);
    pos_ += used;
    return v;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct BitRef {
  std::string reg;
  long index = -1;  // -1 = whole register
};

/// "q[3]" or "q" -> BitRef.
BitRef parse_bit_ref(const std::string& text, std::size_t line_no) {
  const auto lb = text.find('[');
  if (lb == std::string::npos) return BitRef{text, -1};
  const auto rb = text.find(']', lb);
  if (rb == std::string::npos) {
    throw CircuitError("line " + std::to_string(line_no) + ": missing ']'");
  }
  return BitRef{text.substr(0, lb), std::stol(text.substr(lb + 1, rb - lb - 1))};
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, delim)) parts.push_back(part);
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

const std::map<std::string, GateType>& name_to_gate() {
  static const std::map<std::string, GateType> table = {
      {"h", GateType::H},       {"x", GateType::X},     {"y", GateType::Y},
      {"z", GateType::Z},       {"s", GateType::S},     {"sdg", GateType::Sdg},
      {"t", GateType::T},       {"tdg", GateType::Tdg}, {"sx", GateType::SX},
      {"rx", GateType::RX},     {"ry", GateType::RY},   {"rz", GateType::RZ},
      {"p", GateType::P},       {"u1", GateType::P},    {"u", GateType::U},
      {"u3", GateType::U},      {"cx", GateType::CX},   {"CX", GateType::CX},
      {"cy", GateType::CY},     {"cz", GateType::CZ},   {"ch", GateType::CH},
      {"cp", GateType::CP},     {"cu1", GateType::CP},  {"crz", GateType::CRZ},
      {"swap", GateType::SWAP}, {"ccx", GateType::CCX}, {"cswap", GateType::CSWAP},
  };
  return table;
}

}  // namespace

QuantumCircuit import_circuit(const std::string& source) {
  QuantumCircuit circuit;
  std::map<std::string, QuantumRegister> qregs;
  std::map<std::string, ClassicalRegister> cregs;

  auto resolve_q = [&](const BitRef& ref, std::size_t line_no) -> std::vector<std::size_t> {
    const auto it = qregs.find(ref.reg);
    if (it == qregs.end()) {
      throw CircuitError("line " + std::to_string(line_no) + ": unknown qreg '" +
                         ref.reg + "'");
    }
    if (ref.index < 0) {
      std::vector<std::size_t> all(it->second.size);
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = it->second[i];
      return all;
    }
    if (static_cast<std::size_t>(ref.index) >= it->second.size) {
      throw CircuitError("line " + std::to_string(line_no) + ": index out of range");
    }
    return {it->second[static_cast<std::size_t>(ref.index)]};
  };
  auto resolve_c = [&](const BitRef& ref, std::size_t line_no) -> std::vector<std::size_t> {
    const auto it = cregs.find(ref.reg);
    if (it == cregs.end()) {
      throw CircuitError("line " + std::to_string(line_no) + ": unknown creg '" +
                         ref.reg + "'");
    }
    if (ref.index < 0) {
      std::vector<std::size_t> all(it->second.size);
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = it->second[i];
      return all;
    }
    if (static_cast<std::size_t>(ref.index) >= it->second.size) {
      throw CircuitError("line " + std::to_string(line_no) + ": index out of range");
    }
    return {it->second[static_cast<std::size_t>(ref.index)]};
  };

  // Strip comments, then split on ';'. Track line numbers approximately by
  // counting newlines up to each statement.
  std::string clean;
  clean.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      if (i < source.size()) clean += '\n';
      continue;
    }
    clean += source[i];
  }

  std::size_t line_no = 1;
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i <= clean.size(); ++i) {
    if (i < clean.size() && clean[i] != ';') {
      if (clean[i] == '\n') ++line_no;
      continue;
    }
    std::string stmt = trim(clean.substr(stmt_start, i - stmt_start));
    stmt_start = i + 1;
    if (stmt.empty()) continue;

    // Header and include lines.
    if (stmt.rfind("OPENQASM", 0) == 0 || stmt.rfind("include", 0) == 0) continue;

    // Optional if(...) prefix.
    std::optional<Condition> condition;
    if (stmt.rfind("if", 0) == 0) {
      const auto lp = stmt.find('(');
      const auto rp = stmt.find(')', lp);
      if (lp == std::string::npos || rp == std::string::npos) {
        throw CircuitError("line " + std::to_string(line_no) + ": malformed if");
      }
      const std::string cond = stmt.substr(lp + 1, rp - lp - 1);
      const auto eq = cond.find("==");
      if (eq == std::string::npos) {
        throw CircuitError("line " + std::to_string(line_no) + ": if needs ==");
      }
      const BitRef ref = parse_bit_ref(trim(cond.substr(0, eq)), line_no);
      const int value = std::stoi(trim(cond.substr(eq + 2)));
      const auto bits = resolve_c(ref, line_no);
      if (bits.size() != 1) {
        throw CircuitError("line " + std::to_string(line_no) +
                           ": only single-bit conditions are supported");
      }
      condition = Condition{bits[0], value};
      stmt = trim(stmt.substr(rp + 1));
    }

    // Declarations.
    if (stmt.rfind("qreg", 0) == 0 || stmt.rfind("creg", 0) == 0) {
      const bool quantum = stmt[0] == 'q';
      const BitRef ref = parse_bit_ref(trim(stmt.substr(4)), line_no);
      if (ref.index < 0) {
        throw CircuitError("line " + std::to_string(line_no) + ": register needs a size");
      }
      const auto size = static_cast<std::size_t>(ref.index);
      if (quantum) {
        qregs[ref.reg] = circuit.add_register(ref.reg, size);
      } else {
        cregs[ref.reg] = circuit.add_classical_register(ref.reg, size);
      }
      continue;
    }

    // measure q[i] -> c[j]
    if (stmt.rfind("measure", 0) == 0) {
      const auto arrow = stmt.find("->");
      if (arrow == std::string::npos) {
        throw CircuitError("line " + std::to_string(line_no) + ": measure needs ->");
      }
      const auto qs = resolve_q(parse_bit_ref(trim(stmt.substr(7, arrow - 7)), line_no),
                                line_no);
      const auto cs = resolve_c(parse_bit_ref(trim(stmt.substr(arrow + 2)), line_no),
                                line_no);
      if (qs.size() != cs.size()) {
        throw CircuitError("line " + std::to_string(line_no) +
                           ": measure width mismatch");
      }
      for (std::size_t k = 0; k < qs.size(); ++k) {
        circuit.measure(qs[k], cs[k]);
        if (condition) circuit.c_if(condition->clbit, condition->value);
      }
      continue;
    }

    if (stmt.rfind("reset", 0) == 0) {
      for (std::size_t q : resolve_q(parse_bit_ref(trim(stmt.substr(5)), line_no),
                                     line_no)) {
        circuit.reset(q);
        if (condition) circuit.c_if(condition->clbit, condition->value);
      }
      continue;
    }

    if (stmt.rfind("barrier", 0) == 0) {
      Instruction in;
      in.type = GateType::Barrier;
      const std::string args = trim(stmt.substr(7));
      if (!args.empty()) {
        for (const std::string& piece : split(args, ',')) {
          for (std::size_t q : resolve_q(parse_bit_ref(trim(piece), line_no), line_no)) {
            in.qubits.push_back(q);
          }
        }
      }
      circuit.append(std::move(in));
      continue;
    }

    // Plain gate: name[(params)] operand(, operand)*
    std::size_t name_end = 0;
    while (name_end < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[name_end])) ||
            stmt[name_end] == '_')) {
      ++name_end;
    }
    const std::string name = stmt.substr(0, name_end);
    const auto git = name_to_gate().find(name);
    if (git == name_to_gate().end()) {
      throw CircuitError("line " + std::to_string(line_no) + ": unknown gate '" +
                         name + "'");
    }
    std::string rest = trim(stmt.substr(name_end));
    std::vector<double> params;
    std::vector<int> param_refs;
    bool any_symbolic = false;
    if (!rest.empty() && rest[0] == '(') {
      const auto rp = rest.find(')');
      if (rp == std::string::npos) {
        throw CircuitError("line " + std::to_string(line_no) + ": missing ')'");
      }
      for (const std::string& piece : split(rest.substr(1, rp - 1), ',')) {
        const std::string text = trim(piece);
        // A bare identifier (other than "pi") is a symbolic parameter
        // reference; find-or-add it in the circuit's table so repeated uses
        // share one index.
        if (is_identifier(text) && text != "pi") {
          const Param p = circuit.parameter(text);
          params.push_back(0.0);
          param_refs.push_back(static_cast<int>(p.index));
          any_symbolic = true;
        } else {
          params.push_back(ParamParser(text).parse());
          param_refs.push_back(-1);
        }
      }
      rest = trim(rest.substr(rp + 1));
    }
    Instruction in;
    in.type = git->second;
    in.params = std::move(params);
    if (any_symbolic) in.param_refs = std::move(param_refs);
    for (const std::string& piece : split(rest, ',')) {
      const auto qs = resolve_q(parse_bit_ref(trim(piece), line_no), line_no);
      if (qs.size() != 1) {
        throw CircuitError("line " + std::to_string(line_no) +
                           ": whole-register gate broadcast is not supported");
      }
      in.qubits.push_back(qs[0]);
    }
    in.condition = condition;
    circuit.append(std::move(in));
  }
  return circuit;
}

}  // namespace qutes::circ::qasm
