#include "qutes/run_config.hpp"

#include "qutes/circuit/backend.hpp"
#include "qutes/common/error.hpp"

namespace qutes {

// Lives in the circuit library (not a header) because the backend-name check
// needs the registry; the executor and the language front end both funnel
// through here so "unknown backend" / "max_bond_dim" fail identically from
// every entry point.
void RunConfig::validate() const {
  // "auto" is not a registry entry: the executor resolves it against the
  // prepared circuit (stabilizer when all-Clifford and noiseless, statevector
  // otherwise) after the pipeline runs.
  if (backend.name != "auto" && !circ::backend_known(backend.name)) {
    std::string known;
    for (const std::string& n : circ::backend_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw CircuitError("unknown backend \"" + backend.name +
                       "\"; known backends: " + known + ", auto");
  }
  if (backend.max_bond_dim == 0) {
    throw CircuitError("RunConfig::backend.max_bond_dim must be >= 1 (an MPS "
                       "bond cannot be empty)");
  }
  if (backend.max_fused_qubits == 0) {
    throw CircuitError("RunConfig::backend.max_fused_qubits must be >= 1 "
                       "(1 disables fusion)");
  }
  if (backend.truncation_threshold < 0.0) {
    throw CircuitError(
        "RunConfig::backend.truncation_threshold must be >= 0");
  }
}

}  // namespace qutes
