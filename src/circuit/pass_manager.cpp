#include "qutes/circuit/pass_manager.hpp"

#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>

#include "qutes/circuit/routing.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::circ {

// ---- PassManager -----------------------------------------------------------

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  if (!pass) throw InvalidArgument("PassManager::add: null pass");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

QuantumCircuit PassManager::run(const QuantumCircuit& circuit,
                                PropertySet& properties) const {
  obs::Span pipeline_span("pipeline.run");
  static obs::Counter& passes_metric =
      obs::metrics().counter(obs::names::kPassesRun);
  static obs::Histogram& pass_ms_metric =
      obs::metrics().histogram(obs::names::kPassWallMs);
  static obs::Counter& gates_removed_metric =
      obs::metrics().counter(obs::names::kGatesRemoved);
  static obs::Counter& swaps_metric =
      obs::metrics().counter(obs::names::kSwapsInserted);

  QuantumCircuit current = circuit;
  for (const auto& pass : passes_) {
    PassStats stats;
    stats.name = pass->name();
    stats.depth_before = current.depth();
    stats.size_before = current.gate_count();
    stats.twoq_before = current.multi_qubit_gate_count();
    const std::size_t swaps_before = properties.swaps_inserted;
    {
      // One timing mechanism for both consumers: the span lands in the trace
      // (as "pass.<name>") when tracing is on, and its elapsed_ms() is the
      // per-pass wall time PropertySet has always reported.
      obs::Span span("pass." + stats.name);
      pass->run(current, properties);
      stats.wall_ms = span.elapsed_ms();
    }
    stats.depth_after = current.depth();
    stats.size_after = current.gate_count();
    stats.twoq_after = current.multi_qubit_gate_count();
    passes_metric.add(1);
    pass_ms_metric.record(stats.wall_ms);
    if (stats.size_after < stats.size_before) {
      gates_removed_metric.add(stats.size_before - stats.size_after);
    }
    swaps_metric.add(properties.swaps_inserted - swaps_before);
    properties.stats.push_back(std::move(stats));
  }
  return current;
}

QuantumCircuit PassManager::run(const QuantumCircuit& circuit) const {
  PropertySet properties;
  return run(circuit, properties);
}

// ---- shared lowering helpers ----------------------------------------------

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Angle folded into (-pi, pi]; used to detect identity rotations.
double fold_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a > M_PI) a -= kTwoPi;
  if (a <= -M_PI) a += kTwoPi;
  return a;
}

bool is_identity_angle(double a) { return std::abs(fold_angle(a)) < 1e-12; }

bool near_zero(double v) { return std::abs(v) < 1e-12; }

/// Copy circuit structure (registers, sizes, parameter table) without
/// instructions. The parameter table must come along so relayed symbolic
/// refs stay valid in the rebuilt circuit.
QuantumCircuit clone_shell(const QuantumCircuit& src) {
  QuantumCircuit out;
  for (const auto& r : src.qregs()) out.add_register(r.name, r.size);
  for (const auto& r : src.cregs()) out.add_classical_register(r.name, r.size);
  out.add_global_phase(src.global_phase());
  for (const std::string& name : src.parameter_names()) out.parameter(name);
  return out;
}

/// Ancilla count the lowering needs: MCX/MCZ with k >= 3 controls use k-2
/// V-chain scratch qubits; MCP with k >= 2 controls folds the controls into
/// one AND ancilla whose own V-chain needs k-2 more, so k-1 total.
std::size_t ancillas_needed(const QuantumCircuit& circuit) {
  std::size_t needed = 0;
  for (const Instruction& in : circuit.instructions()) {
    const std::size_t k = in.qubits.empty() ? 0 : in.qubits.size() - 1;
    switch (in.type) {
      case GateType::MCX: case GateType::MCZ:
        if (k >= 3) needed = std::max(needed, k - 2);
        break;
      case GateType::MCP:
        if (k >= 2) needed = std::max(needed, k - 1);
        break;
      default:
        break;
    }
  }
  return needed;
}

/// V-chain MCX: controls -> target using clean ancillas (>= controls-2 of
/// them). 2(k-2)+1 Toffolis; ancillas are returned to |0>.
void emit_mcx_vchain(QuantumCircuit& out, std::span<const std::size_t> controls,
                     std::size_t target, std::span<const std::size_t> ancillas) {
  const std::size_t k = controls.size();
  if (k == 0) { out.x(target); return; }
  if (k == 1) { out.cx(controls[0], target); return; }
  if (k == 2) { out.ccx(controls[0], controls[1], target); return; }
  if (ancillas.size() < k - 2) {
    throw CircuitError("V-chain MCX needs " + std::to_string(k - 2) + " ancillas");
  }
  // Compute chain: a[0] = c0 & c1, a[i] = a[i-1] & c[i+1].
  out.ccx(controls[0], controls[1], ancillas[0]);
  for (std::size_t i = 2; i + 1 < k; ++i) {
    out.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
  }
  out.ccx(controls[k - 1], ancillas[k - 3], target);
  // Uncompute.
  for (std::size_t i = k - 1; i-- > 2;) {
    out.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
  }
  out.ccx(controls[0], controls[1], ancillas[0]);
}

void emit_lowered_mc(QuantumCircuit& out, const Instruction& in,
                     std::span<const std::size_t> ancillas) {
  const std::size_t target = in.target();
  const auto controls =
      std::span<const std::size_t>(in.qubits.data(), in.qubits.size() - 1);
  switch (in.type) {
    case GateType::MCX:
      emit_mcx_vchain(out, controls, target, ancillas);
      break;
    case GateType::MCZ:
      // MCZ = H(t) MCX H(t).
      out.h(target);
      emit_mcx_vchain(out, controls, target, ancillas);
      out.h(target);
      break;
    case GateType::MCP: {
      // angle_of keeps a symbolic lambda symbolic through the lowering.
      const Angle lambda = angle_of(in, 0);
      if (controls.size() == 1) {
        out.cp(lambda, controls[0], target);
        return;
      }
      // Fold all but one control into an ancilla AND, then CP from it.
      // and_anc = AND(controls); CP(lambda, and_anc, target); uncompute.
      const std::size_t and_anc = ancillas[0];
      const auto rest = ancillas.subspan(1);
      emit_mcx_vchain(out, controls, and_anc, rest);
      out.cp(lambda, and_anc, target);
      emit_mcx_vchain(out, controls, and_anc, rest);
      break;
    }
    default:
      throw CircuitError("emit_lowered_mc: not a multi-controlled gate");
  }
}

/// A classical condition on a source gate is legal on every instruction of
/// its decomposition: the bit cannot change mid-decomposition (no measure is
/// emitted), so conditioning each piece equals conditioning the whole.
void propagate_condition(QuantumCircuit& out, std::size_t first,
                         const std::optional<Condition>& condition) {
  if (!condition) return;
  out.c_if_from(first, condition->clbit, condition->value);
}

QuantumCircuit lower_multicontrolled(const QuantumCircuit& circuit) {
  QuantumCircuit out = clone_shell(circuit);
  std::vector<std::size_t> ancillas;
  const std::size_t needed = ancillas_needed(circuit);
  if (needed > 0) {
    const auto& anc = out.add_register("anc", needed);
    for (std::size_t i = 0; i < needed; ++i) ancillas.push_back(anc[i]);
  }
  for (const Instruction& in : circuit.instructions()) {
    const std::size_t first = out.size();
    switch (in.type) {
      case GateType::MCX:
        if (in.qubits.size() - 1 <= 2) {
          if (in.qubits.size() == 2) out.cx(in.qubits[0], in.qubits[1]);
          else out.ccx(in.qubits[0], in.qubits[1], in.qubits[2]);
        } else {
          emit_lowered_mc(out, in, ancillas);
        }
        break;
      case GateType::MCZ:
        if (in.qubits.size() == 2) {
          out.cz(in.qubits[0], in.qubits[1]);
        } else {
          emit_lowered_mc(out, in, ancillas);
        }
        break;
      case GateType::MCP:
        emit_lowered_mc(out, in, ancillas);
        break;
      case GateType::CSWAP: {
        const std::size_t c = in.qubits[0], a = in.qubits[1], b = in.qubits[2];
        out.cx(b, a);
        out.ccx(c, a, b);
        out.cx(b, a);
        break;
      }
      default:
        out.append(in);
        continue;  // append keeps the condition itself
    }
    propagate_condition(out, first, in.condition);
  }
  return out;
}

/// Emit the {u, cx} lowering of one non-MC instruction.
void emit_basis(QuantumCircuit& out, const Instruction& in) {
  if (in.is_parameterized()) {
    // RZ/CP/CRZ lowerings do arithmetic on the angle (halving, phase
    // correction) that a symbolic reference cannot express, and relaying
    // only some gates would make basis coverage depend on which operands
    // are symbolic. Parameterized gates therefore pass through unchanged;
    // every backend executes them natively.
    out.append(in);
    return;
  }
  const auto u1 = [&](double lambda, std::size_t q) { out.u(0, 0, lambda, q); };
  switch (in.type) {
    case GateType::H: out.u(M_PI / 2, 0, M_PI, in.qubits[0]); break;
    case GateType::X: out.u(M_PI, 0, M_PI, in.qubits[0]); break;
    case GateType::Y: out.u(M_PI, M_PI / 2, M_PI / 2, in.qubits[0]); break;
    case GateType::Z: u1(M_PI, in.qubits[0]); break;
    case GateType::S: u1(M_PI / 2, in.qubits[0]); break;
    case GateType::Sdg: u1(-M_PI / 2, in.qubits[0]); break;
    case GateType::T: u1(M_PI / 4, in.qubits[0]); break;
    case GateType::Tdg: u1(-M_PI / 4, in.qubits[0]); break;
    case GateType::SX:
      // SX = e^{i pi/4} RX(pi/2) = global_phase(pi/4) U(pi/2, -pi/2, pi/2)
      out.u(M_PI / 2, -M_PI / 2, M_PI / 2, in.qubits[0]);
      out.add_global_phase(M_PI / 4);
      break;
    case GateType::RX:
      out.u(in.params[0], -M_PI / 2, M_PI / 2, in.qubits[0]);
      break;
    case GateType::RY: out.u(in.params[0], 0, 0, in.qubits[0]); break;
    case GateType::RZ:
      // RZ(t) = e^{-it/2} P(t)
      u1(in.params[0], in.qubits[0]);
      out.add_global_phase(-in.params[0] / 2);
      break;
    case GateType::P: u1(in.params[0], in.qubits[0]); break;
    case GateType::U: out.append(in); break;
    case GateType::CX: out.append(in); break;
    case GateType::CY:
      u1(-M_PI / 2, in.qubits[1]);
      out.cx(in.qubits[0], in.qubits[1]);
      u1(M_PI / 2, in.qubits[1]);
      break;
    case GateType::CZ:
      out.u(M_PI / 2, 0, M_PI, in.qubits[1]);
      out.cx(in.qubits[0], in.qubits[1]);
      out.u(M_PI / 2, 0, M_PI, in.qubits[1]);
      break;
    case GateType::CP: {
      const double l = in.params[0];
      u1(l / 2, in.qubits[0]);
      out.cx(in.qubits[0], in.qubits[1]);
      u1(-l / 2, in.qubits[1]);
      out.cx(in.qubits[0], in.qubits[1]);
      u1(l / 2, in.qubits[1]);
      break;
    }
    case GateType::CRZ: {
      const double t = in.params[0];
      u1(t / 2, in.qubits[1]);
      out.cx(in.qubits[0], in.qubits[1]);
      u1(-t / 2, in.qubits[1]);
      out.cx(in.qubits[0], in.qubits[1]);
      break;
    }
    case GateType::SWAP:
      out.cx(in.qubits[0], in.qubits[1]);
      out.cx(in.qubits[1], in.qubits[0]);
      out.cx(in.qubits[0], in.qubits[1]);
      break;
    case GateType::CH: {
      // Exact CH decomposition (qelib1): ch a,b { h b; sdg b; cx a,b; h b;
      // t b; cx a,b; t b; h b; s b; x b; s a; }
      const std::size_t a = in.qubits[0], b = in.qubits[1];
      out.u(M_PI / 2, 0, M_PI, b);
      out.u(0, 0, -M_PI / 2, b);
      out.cx(a, b);
      out.u(M_PI / 2, 0, M_PI, b);
      out.u(0, 0, M_PI / 4, b);
      out.cx(a, b);
      out.u(0, 0, M_PI / 4, b);
      out.u(M_PI / 2, 0, M_PI, b);
      out.u(0, 0, M_PI / 2, b);
      out.u(M_PI, 0, M_PI, b);
      out.u(0, 0, M_PI / 2, a);
      break;
    }
    case GateType::CCX: {
      // Standard 6-CX Toffoli.
      const std::size_t a = in.qubits[0], b = in.qubits[1], c = in.qubits[2];
      out.u(M_PI / 2, 0, M_PI, c);  // h
      out.cx(b, c);
      u1(-M_PI / 4, c);  // tdg
      out.cx(a, c);
      u1(M_PI / 4, c);  // t
      out.cx(b, c);
      u1(-M_PI / 4, c);  // tdg
      out.cx(a, c);
      u1(M_PI / 4, b);  // t
      u1(M_PI / 4, c);  // t
      out.u(M_PI / 2, 0, M_PI, c);  // h
      out.cx(a, b);
      u1(M_PI / 4, a);   // t
      u1(-M_PI / 4, b);  // tdg
      out.cx(a, b);
      break;
    }
    default:
      out.append(in);  // measure/reset/barrier/global phase pass through
      break;
  }
}

QuantumCircuit lower_to_basis(const QuantumCircuit& circuit) {
  const QuantumCircuit lowered = lower_multicontrolled(circuit);
  QuantumCircuit out = clone_shell(lowered);
  for (const Instruction& in : lowered.instructions()) {
    const std::size_t first = out.size();
    emit_basis(out, in);
    propagate_condition(out, first, in.condition);
  }
  return out;
}

bool self_inverse(GateType t) {
  switch (t) {
    case GateType::H: case GateType::X: case GateType::Y: case GateType::Z:
    case GateType::CX: case GateType::CY: case GateType::CZ: case GateType::CH:
    case GateType::SWAP: case GateType::CCX: case GateType::CSWAP:
    case GateType::MCX: case GateType::MCZ:
      return true;
    default:
      return false;
  }
}

bool is_phase_like(GateType t) {
  return t == GateType::P || t == GateType::RZ;
}

/// One peephole sweep; returns true if anything changed.
bool peephole_once(std::vector<Instruction>& instrs) {
  bool changed = false;
  std::vector<bool> dead(instrs.size(), false);
  // last_open[q] = index of the most recent surviving instruction touching q.
  std::vector<std::optional<std::size_t>> last_open;

  auto touches = [](const Instruction& in, auto&& fn) {
    for (std::size_t q : in.qubits) fn(q);
  };

  for (std::size_t i = 0; i < instrs.size(); ++i) {
    Instruction& cur = instrs[i];
    if (cur.type == GateType::Barrier) {
      touches(cur, [&](std::size_t q) {
        if (q >= last_open.size()) last_open.resize(q + 1);
        last_open[q] = std::nullopt;  // barrier blocks cancellation
      });
      continue;
    }
    if (cur.condition) {
      touches(cur, [&](std::size_t q) {
        if (q >= last_open.size()) last_open.resize(q + 1);
        last_open[q] = std::nullopt;
      });
      continue;
    }
    // Find the unique previous open instruction across all operands.
    std::optional<std::size_t> prev;
    bool prev_consistent = true;
    touches(cur, [&](std::size_t q) {
      if (q >= last_open.size()) last_open.resize(q + 1);
      if (!last_open[q]) { prev_consistent = false; return; }
      if (!prev) prev = last_open[q];
      else if (*prev != *last_open[q]) prev_consistent = false;
    });
    if (prev && prev_consistent && !dead[*prev]) {
      Instruction& p = instrs[*prev];
      const bool same_operands = p.qubits == cur.qubits;
      if (same_operands && p.type == cur.type && self_inverse(cur.type)) {
        dead[*prev] = dead[i] = true;
        changed = true;
        touches(cur, [&](std::size_t q) { last_open[q] = std::nullopt; });
        continue;
      }
      // S·Sdg / T·Tdg cancellation.
      const auto cancels = [](GateType a, GateType b) {
        return (a == GateType::S && b == GateType::Sdg) ||
               (a == GateType::Sdg && b == GateType::S) ||
               (a == GateType::T && b == GateType::Tdg) ||
               (a == GateType::Tdg && b == GateType::T);
      };
      if (same_operands && cancels(p.type, cur.type)) {
        dead[*prev] = dead[i] = true;
        changed = true;
        touches(cur, [&](std::size_t q) { last_open[q] = std::nullopt; });
        continue;
      }
      // Fuse consecutive phase rotations on one qubit. Symbolic angles have
      // no value to add yet, so parameterized instructions never merge.
      if (same_operands && cur.qubits.size() == 1 && is_phase_like(p.type) &&
          p.type == cur.type && !p.is_parameterized() &&
          !cur.is_parameterized()) {
        p.params[0] += cur.params[0];
        dead[i] = true;
        changed = true;
        if (is_identity_angle(p.params[0])) {
          dead[*prev] = true;
          touches(cur, [&](std::size_t q) { last_open[q] = std::nullopt; });
        }
        continue;
      }
    }
    touches(cur, [&](std::size_t q) { last_open[q] = i; });
  }

  // Drop identity rotations outright.
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (dead[i]) continue;
    const Instruction& in = instrs[i];
    if ((in.type == GateType::P || in.type == GateType::RZ ||
         in.type == GateType::RX || in.type == GateType::RY ||
         in.type == GateType::CP || in.type == GateType::CRZ ||
         in.type == GateType::MCP) &&
        !in.is_parameterized() && is_identity_angle(in.params[0])) {
      dead[i] = true;
      changed = true;
    }
  }

  if (changed) {
    std::vector<Instruction> kept;
    kept.reserve(instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(instrs[i]));
    }
    instrs = std::move(kept);
  }
  return changed;
}

/// Gates diagonal in the computational basis. Two diagonal gates commute
/// even on shared wires (diagonal matrices commute entrywise), which is the
/// only same-wire exchange ReorderCommuting performs.
bool is_diagonal_gate(GateType type) {
  switch (type) {
    case GateType::Z:
    case GateType::S:
    case GateType::Sdg:
    case GateType::T:
    case GateType::Tdg:
    case GateType::RZ:
    case GateType::P:
    case GateType::CZ:
    case GateType::CP:
    case GateType::CRZ:
    case GateType::MCZ:
    case GateType::MCP:
    case GateType::GlobalPhase:
      return true;
    default:
      return false;
  }
}

bool shares_wire(const Instruction& a, const Instruction& b) {
  for (std::size_t q : a.qubits) {
    for (std::size_t p : b.qubits) {
      if (p == q) return true;
    }
  }
  return false;
}

/// Instructions no gate may move across: they touch classical state or are
/// explicit ordering fences.
bool is_reorder_fence(const Instruction& in) {
  return in.condition.has_value() || in.type == GateType::Barrier ||
         in.type == GateType::Measure || in.type == GateType::Reset;
}

/// Sufficient (conservative) commutation test for two non-fence gates:
/// disjoint wire sets always commute; on shared wires only diagonal-diagonal
/// pairs do; GlobalPhase is a scalar and commutes with everything.
bool gates_commute(const Instruction& a, const Instruction& b) {
  if (a.type == GateType::GlobalPhase || b.type == GateType::GlobalPhase) {
    return true;
  }
  if (!shares_wire(a, b)) return true;
  return is_diagonal_gate(a.type) && is_diagonal_gate(b.type);
}

}  // namespace

// ---- concrete passes -------------------------------------------------------

std::string DecomposeMulticontrolled::name() const {
  return "decompose-multicontrolled";
}

void DecomposeMulticontrolled::run(QuantumCircuit& circuit, PropertySet&) {
  circuit = lower_multicontrolled(circuit);
}

std::string DecomposeToBasis::name() const { return "decompose-to-basis"; }

void DecomposeToBasis::run(QuantumCircuit& circuit, PropertySet&) {
  circuit = lower_to_basis(circuit);
}

std::string Optimize::name() const { return "optimize"; }

void Optimize::run(QuantumCircuit& circuit, PropertySet&) {
  std::vector<Instruction> instrs(circuit.instructions().begin(),
                                  circuit.instructions().end());
  for (int pass = 0; pass < max_passes_; ++pass) {
    if (!peephole_once(instrs)) break;
  }
  QuantumCircuit out = clone_shell(circuit);
  for (Instruction& in : instrs) out.append(std::move(in));
  circuit = std::move(out);
}

std::string ReorderCommuting::name() const { return "reorder-commuting"; }

void ReorderCommuting::run(QuantumCircuit& circuit, PropertySet&) {
  // Single forward insertion pass. Each gate scans left across neighbors it
  // commutes with, so the final placement is reachable through legal
  // adjacent transpositions only — semantics are preserved by construction.
  // A gate with a commuting same-wire neighbor (necessarily diagonal-
  // diagonal) lands right after the earliest such mate, clustering diagonal
  // chains for the peephole and fusion passes; otherwise it sinks as far
  // left as legality allows, pulling gates of one layer next to each other.
  std::vector<Instruction> out;
  out.reserve(circuit.size());
  for (const Instruction& in : circuit.instructions()) {
    if (is_reorder_fence(in) || in.type == GateType::GlobalPhase) {
      out.push_back(in);
      continue;
    }
    std::size_t pos = out.size();
    std::size_t after_mate = out.size();
    bool found_mate = false;
    while (pos > 0) {
      const Instruction& prev = out[pos - 1];
      if (is_reorder_fence(prev) || !gates_commute(prev, in)) break;
      if (shares_wire(prev, in)) {
        after_mate = pos;
        found_mate = true;
      }
      --pos;
    }
    const std::size_t dest = found_mate ? after_mate : pos;
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(dest), in);
  }
  QuantumCircuit rebuilt = clone_shell(circuit);
  for (Instruction& in : out) rebuilt.append(std::move(in));
  circuit = std::move(rebuilt);
}

std::string FuseSingleQubitGates::name() const { return "fuse-1q"; }

void FuseSingleQubitGates::run(QuantumCircuit& circuit, PropertySet&) {
  QuantumCircuit out = clone_shell(circuit);
  std::vector<std::optional<sim::Matrix2>> pending(circuit.num_qubits());

  const auto flush = [&](std::size_t q) {
    if (!pending[q]) return;
    const EulerAngles angles = decompose_1q_unitary(*pending[q]);
    pending[q].reset();
    if (!near_zero(angles.phase)) out.add_global_phase(angles.phase);
    if (near_zero(angles.theta) && near_zero(angles.phi) && near_zero(angles.lambda)) {
      return;  // run multiplied to the identity
    }
    out.u(angles.theta, angles.phi, angles.lambda, q);
  };

  for (const Instruction& in : circuit.instructions()) {
    const bool fusable = in.qubits.size() == 1 && is_unitary_gate(in.type) &&
                         in.type != GateType::GlobalPhase && !in.condition &&
                         !in.is_parameterized();
    if (fusable) {
      const sim::Matrix2 m = matrix_of_1q(in);
      const std::size_t q = in.qubits[0];
      pending[q] = pending[q] ? (m * *pending[q]) : m;
      continue;
    }
    for (std::size_t q : in.qubits) flush(q);
    out.append(in);
  }
  for (std::size_t q = 0; q < circuit.num_qubits(); ++q) flush(q);
  circuit = std::move(out);
}

std::string Route::name() const {
  return std::string("route-") + coupling_.name();
}

void Route::run(QuantumCircuit& circuit, PropertySet& properties) {
  const std::size_t n = circuit.num_qubits();
  properties.coupling_map = coupling_;

  if (!coupling_.constrained()) {
    // All-to-all target: nothing to move; publish the identity layout.
    properties.final_layout.resize(n);
    for (std::size_t i = 0; i < n; ++i) properties.final_layout[i] = i;
    return;
  }

  QuantumCircuit out = clone_shell(circuit);
  std::vector<std::size_t> l2p(n), p2l(n);
  for (std::size_t i = 0; i < n; ++i) l2p[i] = p2l[i] = i;
  std::size_t swaps = 0;

  const auto physical_swap = [&](std::size_t pa, std::size_t pb) {
    out.swap(pa, pb);
    ++swaps;
    const std::size_t la = p2l[pa];
    const std::size_t lb = p2l[pb];
    std::swap(p2l[pa], p2l[pb]);
    l2p[la] = pb;
    l2p[lb] = pa;
  };

  for (const Instruction& src : circuit.instructions()) {
    // Non-unitary instructions (measure, reset, barrier) never need
    // adjacency — remap their qubits through the live layout and move on.
    // Only unitary gates on 3+ wires are unroutable.
    if (src.qubits.size() > 2 && is_unitary_gate(src.type)) {
      throw CircuitError(std::string("route_linear: lower ") + gate_name(src.type) +
                         " to <= 2-qubit gates first");
    }
    if (src.qubits.size() == 2 && is_unitary_gate(src.type)) {
      std::size_t pa = l2p[src.qubits[0]];
      const std::size_t pb = l2p[src.qubits[1]];
      // Bubble the first operand next to the second.
      while (pa + 1 < pb) {
        physical_swap(pa, pa + 1);
        ++pa;
      }
      while (pa > pb + 1) {
        physical_swap(pa, pa - 1);
        --pa;
      }
    }
    Instruction in = src;
    for (std::size_t& q : in.qubits) q = l2p[q];
    out.append(std::move(in));
  }

  if (restore_layout_) {
    // Bubble every logical qubit back to its home wire with adjacent swaps.
    for (std::size_t home = 0; home < n; ++home) {
      std::size_t at = l2p[home];
      while (at > home) {
        physical_swap(at, at - 1);
        --at;
      }
      // l2p[home] can only be >= home here: wires below `home` already hold
      // their final logical qubits.
    }
  }
  properties.final_layout = l2p;
  properties.swaps_inserted += swaps;
  circuit = std::move(out);
}

std::string FuseGates::name() const { return "fuse-gates"; }

void FuseGates::run(QuantumCircuit& circuit, PropertySet& properties) {
  properties.fusion_plan = build_fusion_plan(circuit.instructions(), options_);
}

// ---- presets ---------------------------------------------------------------

const char* preset_name(Preset preset) noexcept {
  switch (preset) {
    case Preset::O0: return "O0";
    case Preset::O1: return "O1";
    case Preset::Basis: return "basis";
    case Preset::Hardware: return "hardware";
  }
  return "?";
}

std::optional<Preset> parse_preset(std::string_view text) noexcept {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "o0") return Preset::O0;
  if (lower == "o1") return Preset::O1;
  if (lower == "basis") return Preset::Basis;
  if (lower == "hardware") return Preset::Hardware;
  return std::nullopt;
}

PassManager make_pipeline(Preset preset, CouplingMap coupling) {
  PassManager pm;
  switch (preset) {
    case Preset::O0:
      pm.emplace<DecomposeMulticontrolled>();
      break;
    case Preset::O1:
      pm.emplace<DecomposeMulticontrolled>();
      // Reorder before the peephole so newly adjacent pairs can cancel, and
      // before any fusion planning so the planner sees clustered layers.
      pm.emplace<ReorderCommuting>();
      pm.emplace<Optimize>();
      break;
    case Preset::Basis:
      pm.emplace<DecomposeToBasis>();
      pm.emplace<FuseSingleQubitGates>();
      pm.emplace<Optimize>();
      break;
    case Preset::Hardware:
      pm.emplace<DecomposeToBasis>();
      pm.emplace<FuseSingleQubitGates>();
      pm.emplace<Optimize>();
      pm.emplace<Route>(coupling, /*restore_layout=*/true);
      // Routing inserts SWAPs; re-lower them to CX and clean up.
      pm.emplace<DecomposeToBasis>();
      pm.emplace<Optimize>();
      break;
  }
  return pm;
}

std::string format_pass_table(const PropertySet& properties) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof line, "%-26s %9s %14s %14s %12s\n", "pass",
                "wall_ms", "depth", "gates", "2q");
  out << line;
  for (const PassStats& s : properties.stats) {
    std::snprintf(line, sizeof line,
                  "%-26s %9.3f %6zu -> %-6zu %6zu -> %-6zu %5zu -> %-5zu\n",
                  s.name.c_str(), s.wall_ms, s.depth_before, s.depth_after,
                  s.size_before, s.size_after, s.twoq_before, s.twoq_after);
    out << line;
  }
  std::snprintf(line, sizeof line, "%-26s %9.3f\n", "total",
                properties.total_wall_ms());
  out << line;
  return out.str();
}

}  // namespace qutes::circ
