#include "qutes/testing/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "qutes/common/rng.hpp"

namespace qutes::testing {

namespace {

using circ::GateType;
using circ::QuantumCircuit;

double angle(Rng& rng) { return (rng.uniform() - 0.5) * 4.0 * M_PI; }

/// `k` distinct qubits of an n-qubit register, in random order.
std::vector<std::size_t> pick_qubits(Rng& rng, std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + rng.below(n - i)]);
  }
  all.resize(k);
  return all;
}

/// Append one random unitary gate drawn from the full builder surface.
void random_gate(QuantumCircuit& c, Rng& rng, bool allow_wide) {
  const std::size_t n = c.num_qubits();
  // 1-qubit registers can only draw single-qubit kinds; 2-qubit gates need
  // n >= 2 and the wide kinds n >= 3.
  const std::uint64_t kinds = (allow_wide && n >= 3) ? 24 : (n >= 2 ? 19 : 13);
  const std::uint64_t kind = rng.below(kinds);
  const auto q = pick_qubits(rng, n, std::min<std::size_t>(n, 3));
  switch (kind) {
    case 0: c.h(q[0]); break;
    case 1: c.x(q[0]); break;
    case 2: c.y(q[0]); break;
    case 3: c.z(q[0]); break;
    case 4: c.s(q[0]); break;
    case 5: c.sdg(q[0]); break;
    case 6: c.t(q[0]); break;
    case 7: rng.below(2) ? c.tdg(q[0]) : c.sx(q[0]); break;
    case 8: c.rx(angle(rng), q[0]); break;
    case 9: c.ry(angle(rng), q[0]); break;
    case 10: c.rz(angle(rng), q[0]); break;
    case 11: c.p(angle(rng), q[0]); break;
    case 12: c.u(angle(rng), angle(rng), angle(rng), q[0]); break;
    case 13: c.cx(q[0], q[1]); break;
    case 14: rng.below(2) ? c.cz(q[0], q[1]) : c.cy(q[0], q[1]); break;
    case 15: c.ch(q[0], q[1]); break;
    case 16: c.cp(angle(rng), q[0], q[1]); break;
    case 17: c.crz(angle(rng), q[0], q[1]); break;
    case 18: c.swap(q[0], q[1]); break;
    case 19: c.ccx(q[0], q[1], q[2]); break;
    case 20: c.cswap(q[0], q[1], q[2]); break;
    default: {
      // Multi-controlled over a random control set of 1..n-1 controls.
      const auto wide = pick_qubits(rng, n, 2 + rng.below(n - 1));
      const std::size_t target = wide.back();
      const std::vector<std::size_t> controls(wide.begin(), wide.end() - 1);
      switch (kind) {
        case 21: c.mcx(controls, target); break;
        case 22: c.mcz(controls, target); break;
        default: c.mcp(angle(rng), controls, target); break;
      }
      break;
    }
  }
}

}  // namespace

QuantumCircuit random_circuit(std::uint64_t seed, const CircuitGenOptions& options) {
  Rng rng(seed);
  const std::size_t n = options.num_qubits;
  QuantumCircuit c(n, n);
  // Clbits a conditioned gate may legally read: only bits a measurement has
  // already written (matches what the Qutes compiler can emit).
  std::vector<std::size_t> written;

  for (std::size_t g = 0; g < options.gates; ++g) {
    if (options.allow_barrier && rng.below(16) == 0) {
      c.barrier();
      continue;
    }
    if (options.allow_global_phase && rng.below(8) == 0) {
      c.append({GateType::GlobalPhase, {}, {angle(rng)}, {}, {}, {}});
      continue;
    }
    if (options.allow_dynamic && rng.below(8) == 0) {
      const std::size_t q = rng.below(n);
      if (rng.below(4) == 0) {
        c.reset(q);
      } else {
        const std::size_t bit = rng.below(n);
        c.measure(q, bit);
        written.push_back(bit);
      }
      continue;
    }
    random_gate(c, rng, options.allow_wide);
    if (options.allow_dynamic && !written.empty() && rng.below(4) == 0) {
      c.c_if(written[rng.below(written.size())], static_cast<int>(rng.below(2)));
    }
  }
  if (options.measure_all) c.measure_all();
  return c;
}

QuantumCircuit random_clifford_circuit(std::uint64_t seed, std::size_t num_qubits,
                                       std::size_t gates) {
  Rng rng(seed);
  QuantumCircuit c(num_qubits, num_qubits);
  for (std::size_t g = 0; g < gates; ++g) {
    const std::size_t q = rng.below(num_qubits);
    switch (rng.below(9)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.sdg(q); break;
      case 3: c.x(q); break;
      case 4: c.y(q); break;
      case 5: c.z(q); break;
      default: {
        if (num_qubits < 2) {
          c.h(q);
          break;
        }
        const std::size_t r = (q + 1 + rng.below(num_qubits - 1)) % num_qubits;
        switch (rng.below(3)) {
          case 0: c.cx(q, r); break;
          case 1: c.cz(q, r); break;
          default: c.swap(q, r); break;
        }
        break;
      }
    }
  }
  return c;
}

QuantumCircuit brickwork_circuit(std::size_t num_qubits, std::size_t depth,
                                 std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit c(num_qubits, num_qubits);
  const auto a = [&] { return rng.uniform() * 6.0 - 3.0; };
  for (std::size_t layer = 0; layer < depth; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) c.u(a(), a(), a(), q);
    for (std::size_t q = layer % 2; q + 1 < num_qubits; q += 2) c.cx(q, q + 1);
  }
  return c;
}

QuantumCircuit random_nearest_neighbor_circuit(std::uint64_t seed,
                                               std::size_t num_qubits,
                                               std::size_t gates) {
  Rng rng(seed);
  QuantumCircuit c(num_qubits, num_qubits);
  for (std::size_t g = 0; g < gates; ++g) {
    const bool two_qubit = num_qubits >= 2 && rng.below(5) < 2;
    if (!two_qubit) {
      const std::size_t q = rng.below(num_qubits);
      switch (rng.below(9)) {
        case 0: c.h(q); break;
        case 1: c.x(q); break;
        case 2: c.s(q); break;
        case 3: c.t(q); break;
        case 4: c.sx(q); break;
        case 5: c.rx(angle(rng), q); break;
        case 6: c.rz(angle(rng), q); break;
        case 7: c.p(angle(rng), q); break;
        default: c.u(angle(rng), angle(rng), angle(rng), q); break;
      }
      continue;
    }
    const std::size_t q = rng.below(num_qubits - 1);
    const std::size_t lo = rng.below(2) ? q : q + 1;  // random control direction
    const std::size_t hi = lo == q ? q + 1 : q;
    switch (rng.below(7)) {
      case 0: c.cx(lo, hi); break;
      case 1: c.cy(lo, hi); break;
      case 2: c.cz(lo, hi); break;
      case 3: c.ch(lo, hi); break;
      case 4: c.cp(angle(rng), lo, hi); break;
      case 5: c.crz(angle(rng), lo, hi); break;
      default: c.swap(q, q + 1); break;
    }
  }
  return c;
}

// ---- Qutes program generator -------------------------------------------------

namespace {

/// Grammar-driven program builder. Tracks declared variables per kind so
/// generated statements are usually well-typed; runtime LangErrors (e.g.
/// division by zero) remain possible and acceptable.
class ProgramBuilder {
public:
  ProgramBuilder(Rng& rng, const ProgramGenOptions& options)
      : rng_(rng), options_(options) {}

  std::string build() {
    for (std::size_t s = 0; s < options_.statements; ++s) statement(0);
    return std::move(out_);
  }

private:
  std::string fresh(char prefix) {
    return std::string(1, prefix) + std::to_string(counter_++);
  }

  std::string pick(const std::vector<std::string>& pool) {
    return pool[rng_.below(pool.size())];
  }

  std::string int_literal() { return std::to_string(rng_.below(16)); }

  std::string int_expr(std::size_t depth) {
    if (depth >= 2 || ints_.empty() || rng_.below(3) == 0) {
      return ints_.empty() || rng_.below(2) == 0 ? int_literal() : pick(ints_);
    }
    static const char* ops[] = {" + ", " - ", " * ", " % "};
    const std::uint64_t op = rng_.below(3 + (rng_.below(4) == 0));
    // Modulo gets a nonzero literal divisor: a zero RHS is a runtime
    // LangError, and this generator promises runnable programs.
    std::string e = int_expr(depth + 1) + ops[op] +
                    (op == 3 ? std::to_string(1 + rng_.below(9))
                             : int_expr(depth + 1));
    if (rng_.below(4) == 0) e = "(" + e + ")";
    return e;
  }

  std::string bool_expr(std::size_t depth) {
    switch (rng_.below(4)) {
      case 0: return rng_.below(2) ? "true" : "false";
      case 1:
        if (!bools_.empty()) return pick(bools_);
        [[fallthrough]];
      case 2: {
        static const char* cmp[] = {" == ", " != ", " < ", " <= ", " > ", " >= "};
        return int_expr(depth + 1) + cmp[rng_.below(6)] + int_expr(depth + 1);
      }
      default:
        if (depth < 2 && rng_.below(2) == 0) {
          return "(" + bool_expr(depth + 1) +
                 (rng_.below(2) ? " && " : " || ") + bool_expr(depth + 1) + ")";
        }
        return "!" + bool_expr(depth + 1);
    }
  }

  void line(std::size_t depth, const std::string& text) {
    out_.append(depth * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  /// Snapshot of the declared-variable pools; names declared inside a block
  /// are scoped to it, so pools roll back when the block closes.
  struct ScopeMark {
    std::size_t ints, bools, qubits, quints;
  };
  ScopeMark mark() const {
    return {ints_.size(), bools_.size(), qubits_.size(), quints_.size()};
  }
  void restore(const ScopeMark& m) {
    ints_.resize(m.ints);
    bools_.resize(m.bools);
    qubits_.resize(m.qubits);
    quints_.resize(m.quints);
  }

  /// Reserve simulator qubits for a declaration; the interpreter rejects
  /// programs beyond its qubit budget, so the generator stays well under it.
  bool reserve_qubits(std::size_t width) {
    if (qubits_declared_ + width > kMaxProgramQubits) return false;
    qubits_declared_ += width;
    return true;
  }

  void statement(std::size_t depth) {
    const std::uint64_t kinds = options_.quantum ? 14 : 9;
    switch (rng_.below(kinds)) {
      case 0: {  // int declaration
        const std::string name = fresh('v');
        line(depth, "int " + name + " = " + int_expr(0) + ";");
        ints_.push_back(name);
        break;
      }
      case 1: {  // bool declaration
        const std::string name = fresh('b');
        line(depth, "bool " + name + " = " + bool_expr(0) + ";");
        bools_.push_back(name);
        break;
      }
      case 2:  // assignment / compound assignment
        if (!ints_.empty()) {
          static const char* ops[] = {" = ", " += ", " -= ", " *= "};
          line(depth, pick(ints_) + ops[rng_.below(4)] + int_expr(0) + ";");
        } else {
          line(depth, "print " + int_expr(0) + ";");
        }
        break;
      case 3:  // print
        switch (rng_.below(3)) {
          case 0: line(depth, "print " + int_expr(0) + ";"); break;
          case 1: line(depth, "print " + bool_expr(0) + ";"); break;
          default: line(depth, "print \"s" + int_literal() + "\";"); break;
        }
        break;
      case 4: {  // if / if-else
        if (depth >= options_.max_depth) {
          line(depth, "print " + int_expr(0) + ";");
          break;
        }
        line(depth, "if (" + bool_expr(0) + ") {");
        const ScopeMark m = mark();
        statement(depth + 1);
        restore(m);
        if (rng_.below(2) == 0) {
          line(depth, "} else {");
          statement(depth + 1);
          restore(m);
        }
        line(depth, "}");
        break;
      }
      case 5: {  // bounded while loop
        if (depth >= options_.max_depth) {
          line(depth, "print " + bool_expr(0) + ";");
          break;
        }
        // The counter is deliberately NOT registered in ints_: a generated
        // assignment targeting it (c += ...) could un-bound the loop and
        // trip the interpreter's iteration budget.
        const std::string counter = fresh('c');
        line(depth, "int " + counter + " = " + std::to_string(1 + rng_.below(4)) + ";");
        line(depth, "while (" + counter + " > 0) {");
        line(depth + 1, counter + " -= 1;");
        const ScopeMark m = mark();
        statement(depth + 1);
        restore(m);
        line(depth, "}");
        break;
      }
      case 6: {  // foreach over a literal list
        if (depth >= options_.max_depth) {
          line(depth, "print " + int_expr(0) + ";");
          break;
        }
        const std::string it = fresh('e');
        line(depth, "foreach " + it + " in [" + int_literal() + ", " +
                        int_literal() + ", " + int_literal() + "] {");
        line(depth + 1, "print " + it + ";");
        line(depth, "}");
        break;
      }
      case 7: {  // nested block with a scoped declaration
        if (depth >= options_.max_depth) {
          line(depth, "barrier;");
          break;
        }
        line(depth, "{");
        line(depth + 1, "int " + fresh('s') + " = " + int_expr(0) + ";");
        const ScopeMark m = mark();
        statement(depth + 1);
        restore(m);
        line(depth, "}");
        break;
      }
      case 8:
        line(depth, "barrier;");
        break;
      case 9: {  // qubit declaration
        if (!reserve_qubits(1)) {
          line(depth, "print " + int_expr(0) + ";");
          break;
        }
        static const char* kets[] = {"|0>", "|1>", "|+>", "|->"};
        const std::string name = fresh('q');
        line(depth, "qubit " + name + " = " + kets[rng_.below(4)] + ";");
        qubits_.push_back(name);
        break;
      }
      case 10: {  // quint declaration
        const std::size_t width = 1 + rng_.below(3);
        if (!reserve_qubits(width)) {
          line(depth, "print " + bool_expr(0) + ";");
          break;
        }
        const std::string name = fresh('u');
        line(depth, "quint<" + std::to_string(width) + "> " + name + " = " +
                        std::to_string(rng_.below(std::uint64_t{1} << width)) + "q;");
        quints_.push_back(name);
        break;
      }
      case 11: {  // gate statement on a quantum variable
        if (qubits_.empty() && quints_.empty()) {
          if (reserve_qubits(1)) {
            const std::string name = fresh('q');
            line(depth, "qubit " + name + " = |+>;");
            qubits_.push_back(name);
          } else {
            line(depth, "barrier;");
          }
          break;
        }
        static const char* gate[] = {"hadamard", "not",   "pauliy", "pauliz",
                                     "phase",    "sgate", "tgate"};
        const std::string target = (quints_.empty() || (!qubits_.empty() && rng_.below(2)))
                                       ? pick(qubits_)
                                       : pick(quints_);
        line(depth, std::string(gate[rng_.below(7)]) + " " + target + ";");
        break;
      }
      case 12:  // measurement via cast
        if (!qubits_.empty() && rng_.below(2) == 0) {
          const std::string name = fresh('m');
          line(depth, "bool " + name + " = " + pick(qubits_) + ";");
          bools_.push_back(name);
        } else if (!quints_.empty()) {
          const std::string name = fresh('m');
          line(depth, "int " + name + " = " + pick(quints_) + ";");
          ints_.push_back(name);
        } else {
          line(depth, "print " + bool_expr(0) + ";");
        }
        break;
      default: {  // quint arithmetic / shifts
        if (quints_.empty()) {
          if (reserve_qubits(2)) {
            const std::string name = fresh('u');
            line(depth, "quint<2> " + name + " = 1q;");
            quints_.push_back(name);
          } else {
            line(depth, "barrier;");
          }
          break;
        }
        static const char* ops[] = {" <<= 1;", " >>= 1;", " += 1;"};
        line(depth, pick(quints_) + ops[rng_.below(3)]);
        break;
      }
    }
  }

  // Well under the interpreter's simulator budget (26 qubits): quint
  // arithmetic and measurement casts allocate ancilla/temporary qubits on
  // top of the declared registers, so leave most of the budget to them.
  static constexpr std::size_t kMaxProgramQubits = 8;

  Rng& rng_;
  const ProgramGenOptions& options_;
  std::string out_;
  int counter_ = 0;
  std::size_t qubits_declared_ = 0;
  std::vector<std::string> ints_, bools_, qubits_, quints_;
};

}  // namespace

std::string random_qutes_program(std::uint64_t seed,
                                 const ProgramGenOptions& options) {
  Rng rng(seed);
  return ProgramBuilder(rng, options).build();
}

std::string mutate_source(std::string source, std::uint64_t seed) {
  Rng rng(seed);
  static const char* injections[] = {
      ";", "{", "}", "(", ")", "[", "]", "\"", "|", "<<=", "==", "q", "int",
      "while", "foreach", "quint<", "|+>", "\x01", "$", "0x", "9999999999999999999",
  };
  const std::size_t rounds = 1 + rng.below(4);
  for (std::size_t m = 0; m < rounds; ++m) {
    if (source.empty()) break;
    const std::size_t at = rng.below(source.size());
    switch (rng.below(6)) {
      case 0:  // delete a span
        source.erase(at, 1 + rng.below(8));
        break;
      case 1:  // duplicate a span
        source.insert(at, source.substr(at, 1 + rng.below(8)));
        break;
      case 2:  // overwrite one byte with an arbitrary byte
        source[at] = static_cast<char>(rng.below(256));
        break;
      case 3:  // inject a token fragment
        source.insert(at, injections[rng.below(std::size(injections))]);
        break;
      case 4:  // transpose two bytes
        std::swap(source[at], source[rng.below(source.size())]);
        break;
      default:  // truncate
        source.resize(at);
        break;
    }
  }
  return source;
}

}  // namespace qutes::testing
