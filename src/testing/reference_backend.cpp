#include "qutes/testing/reference_backend.hpp"

#include <cmath>
#include <complex>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::testing {

namespace {

// Textbook 2x2 gate matrices, written out independently of sim::gates so a
// transcription error in either copy surfaces as a backend diff instead of
// cancelling out.
struct Mat2 {
  cplx m00, m01, m10, m11;
};

constexpr cplx kI{0.0, 1.0};

Mat2 ref_matrix_1q(circ::GateType type, std::span<const double> params) {
  using circ::GateType;
  switch (type) {
    case GateType::H: case GateType::CH: {
      const double r = 1.0 / std::sqrt(2.0);
      return {r, r, r, -r};
    }
    case GateType::X: case GateType::CX: case GateType::CCX:
    case GateType::MCX:
      return {0, 1, 1, 0};
    case GateType::Y: case GateType::CY:
      return {0, -kI, kI, 0};
    case GateType::Z: case GateType::CZ: case GateType::MCZ:
      return {1, 0, 0, -1};
    case GateType::S: return {1, 0, 0, kI};
    case GateType::Sdg: return {1, 0, 0, -kI};
    case GateType::T: return {1, 0, 0, std::exp(kI * (M_PI / 4))};
    case GateType::Tdg: return {1, 0, 0, std::exp(-kI * (M_PI / 4))};
    case GateType::SX:
      return {cplx{0.5, 0.5}, cplx{0.5, -0.5}, cplx{0.5, -0.5}, cplx{0.5, 0.5}};
    case GateType::RX: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return {c, -kI * s, -kI * s, c};
    }
    case GateType::RY: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return {c, -s, s, c};
    }
    case GateType::RZ: case GateType::CRZ:
      return {std::exp(-kI * (params[0] / 2)), 0, 0, std::exp(kI * (params[0] / 2))};
    case GateType::P: case GateType::CP: case GateType::MCP:
      return {1, 0, 0, std::exp(kI * params[0])};
    case GateType::U: {
      const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
      return {c, -std::exp(kI * params[2]) * s, std::exp(kI * params[1]) * s,
              std::exp(kI * (params[1] + params[2])) * c};
    }
    default:
      throw CircuitError(std::string("reference backend: no 1q matrix for ") +
                         circ::gate_name(type));
  }
}

bool controls_satisfied(std::uint64_t basis, std::span<const std::size_t> controls) {
  for (std::size_t c : controls) {
    if (!test_bit(basis, c)) return false;
  }
  return true;
}

}  // namespace

DenseUnitary::DenseUnitary(std::size_t num_qubits)
    : num_qubits_(num_qubits), m_(dim() * dim(), cplx{0.0}) {
  for (std::size_t i = 0; i < dim(); ++i) at(i, i) = 1.0;
}

DenseUnitary DenseUnitary::operator*(const DenseUnitary& rhs) const {
  if (num_qubits_ != rhs.num_qubits_) {
    throw CircuitError("DenseUnitary: dimension mismatch in product");
  }
  const std::size_t d = dim();
  DenseUnitary out(num_qubits_);
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      cplx acc{0.0};
      for (std::size_t k = 0; k < d; ++k) acc += (*this)(r, k) * rhs(k, c);
      out.at(r, c) = acc;
    }
  }
  return out;
}

std::vector<cplx> DenseUnitary::apply(std::span<const cplx> amps) const {
  const std::size_t d = dim();
  if (amps.size() != d) {
    throw CircuitError("DenseUnitary::apply: state dimension mismatch");
  }
  std::vector<cplx> out(d, cplx{0.0});
  for (std::size_t r = 0; r < d; ++r) {
    cplx acc{0.0};
    for (std::size_t c = 0; c < d; ++c) acc += (*this)(r, c) * amps[c];
    out[r] = acc;
  }
  return out;
}

double DenseUnitary::unitarity_defect() const {
  const std::size_t d = dim();
  double worst = 0.0;
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      cplx acc{0.0};
      for (std::size_t k = 0; k < d; ++k) {
        acc += (*this)(r, k) * std::conj((*this)(c, k));
      }
      const cplx want = (r == c) ? cplx{1.0} : cplx{0.0};
      worst = std::max(worst, std::abs(acc - want));
    }
  }
  return worst;
}

DenseUnitary instruction_unitary(const circ::Instruction& in,
                                 std::size_t num_qubits) {
  using circ::GateType;
  if (!circ::is_unitary_gate(in.type)) {
    throw CircuitError(std::string("instruction_unitary: non-unitary instruction ") +
                       circ::gate_name(in.type));
  }
  const std::size_t d = std::size_t{1} << num_qubits;
  DenseUnitary u(num_qubits);

  if (in.type == GateType::GlobalPhase) {
    const cplx phase = std::exp(kI * in.params[0]);
    for (std::size_t i = 0; i < d; ++i) u.at(i, i) = phase;
    return u;
  }

  if (in.type == GateType::SWAP || in.type == GateType::CSWAP) {
    const bool controlled = in.type == GateType::CSWAP;
    const std::size_t a = controlled ? in.qubits[1] : in.qubits[0];
    const std::size_t b = controlled ? in.qubits[2] : in.qubits[1];
    for (std::size_t col = 0; col < d; ++col) {
      if (controlled && !test_bit(col, in.qubits[0])) continue;
      std::uint64_t row = col;
      const bool ba = test_bit(col, a), bb = test_bit(col, b);
      row = ba ? set_bit(row, b) : clear_bit(row, b);
      row = bb ? set_bit(row, a) : clear_bit(row, a);
      u.at(col, col) = 0.0;
      u.at(row, col) = 1.0;
    }
    return u;
  }

  // Everything else is a (multi-)controlled single-qubit matrix: the last
  // operand is the target, all preceding operands are controls.
  const Mat2 g = ref_matrix_1q(in.type, in.params);
  const std::size_t target = in.target();
  const std::span<const std::size_t> controls(in.qubits.data(),
                                              in.qubits.size() - 1);
  for (std::size_t col = 0; col < d; ++col) {
    if (!controls_satisfied(col, controls)) continue;
    const std::uint64_t c0 = clear_bit(col, target);
    const std::uint64_t c1 = set_bit(col, target);
    const bool bit = test_bit(col, target);
    u.at(col, col) = 0.0;
    u.at(c0, col) += bit ? g.m01 : g.m00;
    u.at(c1, col) += bit ? g.m11 : g.m10;
  }
  return u;
}

DenseUnitary circuit_unitary(const circ::QuantumCircuit& circuit) {
  using circ::GateType;
  DenseUnitary u(circuit.num_qubits());
  for (const circ::Instruction& in : circuit.instructions()) {
    if (in.type == GateType::Barrier) continue;
    if (!circ::is_unitary_gate(in.type) || in.condition) {
      throw CircuitError(
          "circuit_unitary: circuit is dynamic (measure/reset/condition); "
          "use enumerate_trajectories");
    }
    u = instruction_unitary(in, circuit.num_qubits()) * u;
  }
  if (circuit.global_phase() != 0.0) {
    const cplx phase = std::exp(kI * circuit.global_phase());
    for (std::size_t r = 0; r < u.dim(); ++r) {
      for (std::size_t c = 0; c < u.dim(); ++c) u.at(r, c) *= phase;
    }
  }
  return u;
}

std::vector<cplx> reference_statevector(const circ::QuantumCircuit& circuit) {
  using circ::GateType;
  std::vector<cplx> amps(std::size_t{1} << circuit.num_qubits(), cplx{0.0});
  amps[0] = 1.0;
  // Matrix-vector per instruction (O(4^n) each) rather than accumulating the
  // full circuit unitary (O(8^n) each) — same math, usable at 7 qubits.
  for (const circ::Instruction& in : circuit.instructions()) {
    if (in.type == GateType::Barrier) continue;
    if (!circ::is_unitary_gate(in.type) || in.condition) {
      throw CircuitError(
          "reference_statevector: circuit is dynamic (measure/reset/condition); "
          "use enumerate_trajectories");
    }
    amps = instruction_unitary(in, circuit.num_qubits()).apply(amps);
  }
  if (circuit.global_phase() != 0.0) {
    const cplx phase = std::exp(kI * circuit.global_phase());
    for (cplx& a : amps) a *= phase;
  }
  return amps;
}

namespace {

/// Split one branch on the measurement of `qubit`; append the surviving
/// outcome branches to `out`. `clbit` < 0 leaves the classical bits alone
/// (reset path).
void split_on_qubit(const ReferenceBranch& branch, std::size_t qubit,
                    std::ptrdiff_t clbit, bool flip_one_to_zero,
                    double prune_below, std::vector<ReferenceBranch>& out) {
  double p1 = 0.0;
  for (std::size_t i = 0; i < branch.amps.size(); ++i) {
    if (test_bit(i, qubit)) p1 += std::norm(branch.amps[i]);
  }
  const double p0 = std::max(0.0, 1.0 - p1);

  for (const int outcome : {0, 1}) {
    const double p = outcome ? p1 : p0;
    if (p * branch.probability <= prune_below) continue;
    ReferenceBranch next;
    next.amps.assign(branch.amps.size(), cplx{0.0});
    const double scale = 1.0 / std::sqrt(p);
    for (std::size_t i = 0; i < branch.amps.size(); ++i) {
      if (static_cast<int>(test_bit(i, qubit)) != outcome) continue;
      std::size_t dest = i;
      if (flip_one_to_zero && outcome == 1) dest = clear_bit(i, qubit);
      next.amps[dest] = branch.amps[i] * scale;
    }
    next.clbits = branch.clbits;
    if (clbit >= 0) {
      next.clbits = outcome ? set_bit(next.clbits, static_cast<std::size_t>(clbit))
                            : clear_bit(next.clbits, static_cast<std::size_t>(clbit));
    }
    next.probability = branch.probability * p;
    out.push_back(std::move(next));
  }
}

bool branch_matches(const ReferenceBranch& branch,
                    const std::optional<circ::Condition>& condition) {
  if (!condition) return true;
  return static_cast<int>(test_bit(branch.clbits, condition->clbit)) ==
         condition->value;
}

}  // namespace

std::vector<ReferenceBranch> enumerate_trajectories(
    const circ::QuantumCircuit& circuit, double prune_below) {
  using circ::GateType;
  const std::size_t n = circuit.num_qubits();
  std::vector<ReferenceBranch> branches(1);
  branches[0].amps.assign(std::size_t{1} << n, cplx{0.0});
  branches[0].amps[0] = 1.0;

  for (const circ::Instruction& in : circuit.instructions()) {
    if (in.type == GateType::Barrier) continue;

    if (in.type == GateType::Measure || in.type == GateType::Reset) {
      // One split per measured qubit, applied to every live branch.
      const std::size_t events =
          in.type == GateType::Measure ? in.qubits.size() : std::size_t{1};
      for (std::size_t e = 0; e < events; ++e) {
        std::vector<ReferenceBranch> next;
        next.reserve(branches.size() * 2);
        for (ReferenceBranch& b : branches) {
          if (!branch_matches(b, in.condition)) {
            next.push_back(std::move(b));
            continue;
          }
          if (in.type == GateType::Measure) {
            split_on_qubit(b, in.qubits[e],
                           static_cast<std::ptrdiff_t>(in.clbits[e]),
                           /*flip_one_to_zero=*/false, prune_below, next);
          } else {
            split_on_qubit(b, in.qubits[0], /*clbit=*/-1,
                           /*flip_one_to_zero=*/true, prune_below, next);
          }
        }
        branches = std::move(next);
      }
      continue;
    }

    const DenseUnitary u = instruction_unitary(in, n);
    for (ReferenceBranch& b : branches) {
      if (!branch_matches(b, in.condition)) continue;
      b.amps = u.apply(b.amps);
    }
  }

  if (circuit.global_phase() != 0.0) {
    const cplx phase = std::exp(kI * circuit.global_phase());
    for (ReferenceBranch& b : branches) {
      for (cplx& a : b.amps) a *= phase;
    }
  }
  return branches;
}

std::map<std::string, double> reference_distribution(
    const circ::QuantumCircuit& circuit) {
  const std::size_t bits = circuit.num_clbits();
  std::map<std::string, double> dist;
  for (const ReferenceBranch& b : enumerate_trajectories(circuit)) {
    std::string key(bits, '0');
    for (std::size_t c = 0; c < bits; ++c) {
      key[bits - 1 - c] = test_bit(b.clbits, c) ? '1' : '0';
    }
    dist[key] += b.probability;
  }
  return dist;
}

}  // namespace qutes::testing
