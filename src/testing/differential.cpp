#include "qutes/testing/differential.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <sstream>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/fusion.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/error.hpp"
#include "qutes/sim/density_matrix.hpp"

namespace qutes::testing {

namespace {

using circ::GateType;
using circ::Instruction;
using circ::QuantumCircuit;

constexpr Backend kAllBackends[] = {
    Backend::Statevector,  Backend::DensityMatrix, Backend::FusedExecutor,
    Backend::PresetO0,     Backend::PresetO1,      Backend::PresetBasis,
    Backend::PresetHardware, Backend::QasmRoundTrip, Backend::Mps,
};

circ::Executor single_shot_executor() {
  qutes::RunConfig options;
  options.shots = 1;
  options.seed = 1;
  return circ::Executor(options);
}

std::vector<cplx> state_of(const QuantumCircuit& circuit) {
  const auto traj = single_shot_executor().run_single(circuit);
  const auto amps = traj.state.amplitudes();
  return {amps.begin(), amps.end()};
}

/// Evolve a density matrix through a unitary-only circuit using the
/// production DensityMatrix kernels.
sim::DensityMatrix density_matrix_of(const QuantumCircuit& circuit) {
  namespace g = sim::gates;
  sim::DensityMatrix rho(circuit.num_qubits());
  const auto controlled = [&](const Instruction& in, const sim::Matrix2& u) {
    const std::span<const std::size_t> controls(in.qubits.data(),
                                                in.qubits.size() - 1);
    rho.apply_multi_controlled_1q(u, controls, in.target());
  };
  for (const Instruction& in : circuit.instructions()) {
    switch (in.type) {
      case GateType::H: rho.apply_1q(g::H(), in.qubits[0]); break;
      case GateType::X: rho.apply_1q(g::X(), in.qubits[0]); break;
      case GateType::Y: rho.apply_1q(g::Y(), in.qubits[0]); break;
      case GateType::Z: rho.apply_1q(g::Z(), in.qubits[0]); break;
      case GateType::S: rho.apply_1q(g::S(), in.qubits[0]); break;
      case GateType::Sdg: rho.apply_1q(g::Sdg(), in.qubits[0]); break;
      case GateType::T: rho.apply_1q(g::T(), in.qubits[0]); break;
      case GateType::Tdg: rho.apply_1q(g::Tdg(), in.qubits[0]); break;
      case GateType::SX: rho.apply_1q(g::SX(), in.qubits[0]); break;
      case GateType::RX: rho.apply_1q(g::RX(in.params[0]), in.qubits[0]); break;
      case GateType::RY: rho.apply_1q(g::RY(in.params[0]), in.qubits[0]); break;
      case GateType::RZ: rho.apply_1q(g::RZ(in.params[0]), in.qubits[0]); break;
      case GateType::P: rho.apply_1q(g::P(in.params[0]), in.qubits[0]); break;
      case GateType::U:
        rho.apply_1q(g::U(in.params[0], in.params[1], in.params[2]), in.qubits[0]);
        break;
      case GateType::CX: case GateType::CCX: case GateType::MCX:
        controlled(in, g::X());
        break;
      case GateType::CY: controlled(in, g::Y()); break;
      case GateType::CZ: case GateType::MCZ: controlled(in, g::Z()); break;
      case GateType::CH: controlled(in, g::H()); break;
      case GateType::CP: case GateType::MCP:
        controlled(in, g::P(in.params[0]));
        break;
      case GateType::CRZ: controlled(in, g::RZ(in.params[0])); break;
      case GateType::SWAP: rho.apply_swap(in.qubits[0], in.qubits[1]); break;
      case GateType::CSWAP: {
        // Same 3-CX decomposition the executor uses.
        const std::size_t c = in.qubits[0], a = in.qubits[1], b = in.qubits[2];
        const std::size_t ca[2] = {c, a};
        const std::size_t cb[2] = {c, b};
        rho.apply_multi_controlled_1q(g::X(), ca, b);
        rho.apply_multi_controlled_1q(g::X(), cb, a);
        rho.apply_multi_controlled_1q(g::X(), ca, b);
        break;
      }
      case GateType::Barrier:
      case GateType::GlobalPhase:  // U rho U^dagger cancels a scalar phase
        break;
      default:
        throw CircuitError(
            std::string("density-matrix backend: non-unitary instruction ") +
            gate_name(in.type));
    }
  }
  return rho;
}

/// Replay the runtime fusion plan over a fresh statevector (the executor's
/// inner loop, minus sampling).
std::vector<cplx> fused_state_of(const QuantumCircuit& circuit) {
  circ::FusionOptions options;
  options.max_fused_qubits = 4;
  const circ::FusionPlan plan =
      circ::build_fusion_plan(circuit.instructions(), options);
  sim::StateVector sv(circuit.num_qubits());
  std::uint64_t clbits = 0;
  Rng rng(1);
  for (const circ::FusedOp& op : plan.ops) {
    if (op.fused) {
      sv.apply_kq(op.matrix, op.qubits);
    } else {
      circ::apply_instruction(sv, circuit.instructions()[op.instruction], clbits,
                              rng);
    }
  }
  if (circuit.global_phase() != 0.0) {
    sv.apply_global_phase(circuit.global_phase());
  }
  const auto amps = sv.amplitudes();
  return {amps.begin(), amps.end()};
}

circ::Preset preset_of(Backend backend) {
  switch (backend) {
    case Backend::PresetO0: return circ::Preset::O0;
    case Backend::PresetO1: return circ::Preset::O1;
    case Backend::PresetBasis: return circ::Preset::Basis;
    default: return circ::Preset::Hardware;
  }
}

QuantumCircuit drop_instruction(const QuantumCircuit& circuit, std::size_t index) {
  QuantumCircuit out(circuit.num_qubits(), circuit.num_clbits());
  out.add_global_phase(circuit.global_phase());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (i != index) out.append(circuit.instructions()[i]);
  }
  return out;
}

std::string try_export_qasm(const QuantumCircuit& circuit) {
  try {
    return circ::qasm::export_circuit(circuit);
  } catch (const std::exception& e) {
    return std::string("<qasm export failed: ") + e.what() + ">";
  }
}

}  // namespace

// ---- comparators -----------------------------------------------------------

StateComparison compare_states_up_to_global_phase(std::span<const cplx> reference,
                                                  std::span<const cplx> state,
                                                  double tol) {
  StateComparison cmp;
  if (state.size() < reference.size() || reference.empty() ||
      state.size() % reference.size() != 0) {
    cmp.detail = "dimension mismatch: reference " +
                 std::to_string(reference.size()) + " vs state " +
                 std::to_string(state.size());
    return cmp;
  }

  cplx inner{0.0};
  for (std::size_t i = 0; i < reference.size(); ++i) {
    inner += std::conj(reference[i]) * state[i];
  }
  for (std::size_t i = reference.size(); i < state.size(); ++i) {
    cmp.residual += std::norm(state[i]);
  }
  cmp.fidelity = std::norm(inner);

  const double mag = std::abs(inner);
  const cplx phase = mag > 1e-12 ? inner / mag : cplx{1.0};
  for (std::size_t i = 0; i < reference.size(); ++i) {
    cmp.max_abs_delta =
        std::max(cmp.max_abs_delta, std::abs(state[i] * std::conj(phase) - reference[i]));
  }

  // |1 - fidelity| (not 1 - fidelity): an unnormalized state can push the
  // unclamped fidelity above 1, and a norm bug is as much a divergence as a
  // direction bug. max_abs_delta backstops amplitude errors that are
  // invisible to the overlap (e.g. perturbing a near-zero amplitude).
  cmp.equivalent = std::abs(1.0 - cmp.fidelity) <= tol && cmp.residual <= tol &&
                   cmp.max_abs_delta <= std::sqrt(tol);
  if (!cmp.equivalent) {
    std::ostringstream os;
    os << "states differ beyond global phase: fidelity=" << cmp.fidelity
       << " residual=" << cmp.residual << " max|delta|=" << cmp.max_abs_delta;
    cmp.detail = os.str();
  }
  return cmp;
}

void assert_equiv_up_to_global_phase(std::span<const cplx> reference,
                                     std::span<const cplx> state, double tol) {
  const StateComparison cmp =
      compare_states_up_to_global_phase(reference, state, tol);
  if (!cmp.equivalent) throw CircuitError(cmp.detail);
}

double total_variation_distance(const std::map<std::string, double>& a,
                                const std::map<std::string, double>& b) {
  double sum = 0.0;
  for (const auto& [key, pa] : a) {
    const auto it = b.find(key);
    sum += std::abs(pa - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [key, pb] : b) {
    if (a.find(key) == a.end()) sum += pb;
  }
  return sum / 2.0;
}

std::map<std::string, double> counts_to_distribution(const sim::Counts& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, n] : counts) total += n;
  std::map<std::string, double> dist;
  if (total == 0) return dist;
  for (const auto& [key, n] : counts) {
    dist[key] = static_cast<double>(n) / static_cast<double>(total);
  }
  return dist;
}

// ---- backends --------------------------------------------------------------

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::Statevector: return "statevector";
    case Backend::DensityMatrix: return "density-matrix";
    case Backend::FusedExecutor: return "fused-executor";
    case Backend::PresetO0: return "preset-O0";
    case Backend::PresetO1: return "preset-O1";
    case Backend::PresetBasis: return "preset-basis";
    case Backend::PresetHardware: return "preset-hardware";
    case Backend::QasmRoundTrip: return "qasm-roundtrip";
    case Backend::Mps: return "mps";
    case Backend::Stabilizer: return "stabilizer";
  }
  return "unknown";
}

std::span<const Backend> all_backends() noexcept { return kAllBackends; }

std::vector<cplx> backend_statevector(const QuantumCircuit& circuit,
                                      Backend backend) {
  switch (backend) {
    case Backend::Statevector:
      return state_of(circuit);
    case Backend::FusedExecutor:
      return fused_state_of(circuit);
    case Backend::PresetO0:
    case Backend::PresetO1:
    case Backend::PresetBasis:
    case Backend::PresetHardware:
      return state_of(circ::make_pipeline(preset_of(backend)).run(circuit));
    case Backend::QasmRoundTrip:
      return state_of(
          circ::qasm::import_circuit(circ::qasm::export_circuit(circuit)));
    case Backend::Mps:
      // Exact regime: default MpsOptions disable truncation (unlimited bond,
      // zero threshold), so any divergence is a semantics bug, not loss.
      return circ::evolve_mps(circuit).to_statevector();
    case Backend::Stabilizer:
      // Clifford-only; evolve_stabilizer throws on anything else, which the
      // harness reports as a failure — sweeps feed this lane
      // random_clifford_circuit output.
      return circ::evolve_stabilizer(circuit).to_statevector();
    case Backend::DensityMatrix:
      throw CircuitError(
          "backend_statevector: the density-matrix backend has no statevector; "
          "use check_backend_against_reference");
  }
  throw CircuitError("backend_statevector: unknown backend");
}

BackendCheck check_backend_against_reference(const QuantumCircuit& circuit,
                                             std::span<const cplx> reference,
                                             Backend backend, double tol) {
  try {
    if (backend == Backend::DensityMatrix) {
      const sim::DensityMatrix rho = density_matrix_of(circuit);
      std::vector<cplx> ref_copy(reference.begin(), reference.end());
      const double fidelity =
          rho.fidelity(sim::StateVector::from_amplitudes(std::move(ref_copy)));
      const double metric = 1.0 - fidelity;
      if (metric <= tol) return {true, metric, {}};
      std::ostringstream os;
      os << "density matrix diverged: <ref|rho|ref>=" << fidelity
         << " purity=" << rho.purity();
      return {false, metric, os.str()};
    }
    const std::vector<cplx> state = backend_statevector(circuit, backend);
    const StateComparison cmp =
        compare_states_up_to_global_phase(reference, state, tol);
    return {cmp.equivalent, std::abs(1.0 - cmp.fidelity) + cmp.residual,
            cmp.detail};
  } catch (const std::exception& e) {
    return {false, 1.0, std::string("exception: ") + e.what()};
  }
}

// ---- harness ---------------------------------------------------------------

std::string DiffReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "differential: " << circuits << " circuit(s), " << comparisons
       << " comparison(s), all equivalent to the reference backend";
    return os.str();
  }
  os << "differential: " << failures.size() << " divergence(s) over " << circuits
     << " circuit(s) / " << comparisons << " comparison(s)\n";
  for (const DiffFailure& f : failures) {
    os << "  seed=" << f.seed << " backend=" << f.backend
       << " metric=" << f.metric << " — " << f.detail << "\n";
    if (!f.minimized_qasm.empty()) {
      os << "  minimized repro (" << f.minimized_size << " of " << f.original_size
         << " instructions):\n"
         << f.minimized_qasm << "\n";
    }
  }
  return os.str();
}

void DiffReport::merge(DiffReport other) {
  circuits += other.circuits;
  comparisons += other.comparisons;
  failures.insert(failures.end(),
                  std::make_move_iterator(other.failures.begin()),
                  std::make_move_iterator(other.failures.end()));
}

QuantumCircuit minimize_failing_circuit(const QuantumCircuit& circuit,
                                        Backend backend, double tol) {
  const auto fails = [&](const QuantumCircuit& candidate) {
    try {
      const std::vector<cplx> reference = reference_statevector(candidate);
      return !check_backend_against_reference(candidate, reference, backend, tol)
                  .ok;
    } catch (const std::exception&) {
      return false;  // not a usable repro if the reference itself rejects it
    }
  };
  if (!fails(circuit)) return circuit;

  QuantumCircuit current = circuit;
  bool progress = true;
  int rounds = 0;
  while (progress && ++rounds <= 8) {
    progress = false;
    for (std::size_t i = current.size(); i-- > 0;) {
      if (current.size() <= 1) break;
      QuantumCircuit candidate = drop_instruction(current, i);
      if (fails(candidate)) {
        current = std::move(candidate);
        progress = true;
      }
    }
  }
  return current;
}

DiffReport diff_backends(const QuantumCircuit& circuit, std::uint64_t seed,
                         const DiffOptions& options) {
  DiffReport report;
  report.circuits = 1;

  std::vector<cplx> reference;
  try {
    reference = reference_statevector(circuit);
  } catch (const std::exception& e) {
    DiffFailure f;
    f.seed = seed;
    f.backend = "reference";
    f.metric = 1.0;
    f.detail = std::string("reference backend rejected the circuit: ") + e.what();
    report.failures.push_back(std::move(f));
    return report;
  }

  const std::span<const Backend> backends =
      options.backends.empty() ? all_backends()
                               : std::span<const Backend>(options.backends);
  for (const Backend backend : backends) {
    ++report.comparisons;
    const BackendCheck check =
        check_backend_against_reference(circuit, reference, backend, options.tol);
    if (check.ok) continue;
    DiffFailure f;
    f.seed = seed;
    f.backend = backend_name(backend);
    f.metric = check.metric;
    f.detail = check.detail;
    f.original_size = circuit.size();
    f.minimized_size = circuit.size();
    if (options.minimize) {
      const QuantumCircuit minimal =
          minimize_failing_circuit(circuit, backend, options.tol);
      f.minimized_size = minimal.size();
      f.minimized_qasm = try_export_qasm(minimal);
    } else {
      f.minimized_qasm = try_export_qasm(circuit);
    }
    report.failures.push_back(std::move(f));
  }
  return report;
}

DiffReport diff_dynamic_backends(const QuantumCircuit& circuit, std::uint64_t seed,
                                 const DiffOptions& options) {
  DiffReport report;
  report.circuits = 1;

  const auto fail = [&](const char* backend, double metric, std::string detail) {
    DiffFailure f;
    f.seed = seed;
    f.backend = backend;
    f.metric = metric;
    f.detail = std::move(detail);
    f.original_size = circuit.size();
    f.minimized_size = circuit.size();
    f.minimized_qasm = try_export_qasm(circuit);
    report.failures.push_back(std::move(f));
  };

  const auto first_diff = [](const sim::Counts& a, const sim::Counts& b) {
    for (const auto& [key, n] : a) {
      const auto it = b.find(key);
      if (it == b.end() || it->second != n) {
        return "first difference at key \"" + key + "\": " + std::to_string(n) +
               " vs " +
               std::to_string(it == b.end() ? std::uint64_t{0} : it->second);
      }
    }
    for (const auto& [key, n] : b) {
      if (a.find(key) == a.end()) {
        return "key \"" + key + "\" only in second histogram (" +
               std::to_string(n) + " shots)";
      }
    }
    return std::string("histograms identical");
  };

  qutes::RunConfig exec;
  exec.shots = options.shots;
  exec.seed = options.exec_seed;
  exec.backend.max_fused_qubits = 4;

  try {
    const std::map<std::string, double> reference =
        reference_distribution(circuit);

    ++report.comparisons;
    const sim::Counts fused = circ::Executor(exec).run(circuit).counts;
    const double tvd =
        total_variation_distance(reference, counts_to_distribution(fused));
    if (tvd > options.tvd_tol) {
      std::ostringstream os;
      os << "sampled counts diverge from the exact reference distribution: TVD="
         << tvd << " over " << options.shots << " shots";
      fail("fused-executor-vs-reference", tvd, os.str());
    }

    ++report.comparisons;
    qutes::RunConfig unfused_options = exec;
    unfused_options.backend.max_fused_qubits = 1;
    const sim::Counts unfused = circ::Executor(unfused_options).run(circuit).counts;
    if (unfused != fused) {
      fail("fused-vs-unfused", 1.0,
           "fused and gate-at-a-time counts differ at identical seed: " +
               first_diff(fused, unfused));
    }

    ++report.comparisons;
    const QuantumCircuit o0 =
        circ::make_pipeline(circ::Preset::O0).run(circuit);
    const sim::Counts lowered = circ::Executor(exec).run(o0).counts;
    if (lowered != fused) {
      fail("fused-vs-O0", 1.0,
           "O0-lowered counts differ at identical seed: " +
               first_diff(fused, lowered));
    }

    ++report.comparisons;
    const QuantumCircuit round_trip =
        circ::qasm::import_circuit(circ::qasm::export_circuit(circuit));
    const sim::Counts reimported = circ::Executor(exec).run(round_trip).counts;
    if (reimported != fused) {
      fail("qasm-roundtrip-counts", 1.0,
           "round-tripped counts differ at identical seed: " +
               first_diff(fused, reimported));
    }

    // MPS trajectories sample the same program distribution, but consume
    // their RNG streams differently from the dense path, so the comparison
    // is distribution-level (TVD), not bit-identical. Truncation is disabled
    // so any excess TVD is a semantics bug, not compression loss. Per-shot
    // MPS trajectories cost far more than dense ones at these widths, so the
    // check samples a deterministic quarter of the seed space instead of
    // running 2 x shots trajectories for every circuit in a sweep.
    if (!exec.backend.noise.enabled() && seed % 4 == 0) {
      ++report.comparisons;
      qutes::RunConfig mps_options = exec;
      mps_options.backend.name = "mps";
      mps_options.backend.max_bond_dim = 4096;
      mps_options.backend.truncation_threshold = 0.0;
      const sim::Counts mps_counts = circ::Executor(mps_options).run(circuit).counts;
      const double mps_tvd =
          total_variation_distance(reference, counts_to_distribution(mps_counts));
      if (mps_tvd > options.tvd_tol) {
        std::ostringstream os;
        os << "mps sampled counts diverge from the exact reference "
              "distribution: TVD=" << mps_tvd << " over " << options.shots
           << " shots";
        fail("mps-vs-reference", mps_tvd, os.str());
      }

      // Counter-derived per-shot RNG streams must make the histogram
      // bit-identical whether the shot loop runs serial or OpenMP-parallel.
      ++report.comparisons;
      qutes::RunConfig serial_options = mps_options;
      serial_options.backend.parallel_shots = false;
      const sim::Counts mps_serial =
          circ::Executor(serial_options).run(circuit).counts;
      if (mps_serial != mps_counts) {
        fail("mps-parallel-vs-serial", 1.0,
             "mps counts depend on the shot-loop threading: " +
                 first_diff(mps_counts, mps_serial));
      }
    }

    // The stabilizer backend samples the same distribution from a phase
    // tableau. Its measurement collapse consumes RNG differently from the
    // dense path, so the cross-backend check is distribution-level (TVD);
    // threading-independence is still bit-identical. Only all-Clifford
    // noiseless circuits qualify — exactly the `--backend auto` predicate.
    if (!exec.backend.noise.enabled() && circ::is_clifford_circuit(circuit)) {
      ++report.comparisons;
      qutes::RunConfig stab_options = exec;
      stab_options.backend.name = "stabilizer";
      const sim::Counts stab_counts =
          circ::Executor(stab_options).run(circuit).counts;
      const double stab_tvd = total_variation_distance(
          reference, counts_to_distribution(stab_counts));
      if (stab_tvd > options.tvd_tol) {
        std::ostringstream os;
        os << "stabilizer sampled counts diverge from the exact reference "
              "distribution: TVD=" << stab_tvd << " over " << options.shots
           << " shots";
        fail("stabilizer-vs-reference", stab_tvd, os.str());
      }

      ++report.comparisons;
      qutes::RunConfig stab_serial = stab_options;
      stab_serial.backend.parallel_shots = false;
      const sim::Counts stab_serial_counts =
          circ::Executor(stab_serial).run(circuit).counts;
      if (stab_serial_counts != stab_counts) {
        fail("stabilizer-parallel-vs-serial", 1.0,
             "stabilizer counts depend on the shot-loop threading: " +
                 first_diff(stab_counts, stab_serial_counts));
      }
    }
  } catch (const std::exception& e) {
    fail("dynamic-differential", 1.0, std::string("exception: ") + e.what());
  }
  return report;
}

}  // namespace qutes::testing
