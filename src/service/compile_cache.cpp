#include "qutes/service/compile_cache.hpp"

#include <condition_variable>
#include <exception>

#include "qutes/obs/obs.hpp"
#include "qutes/service/json.hpp"

namespace qutes::service {

/// One single-flight compilation: the leader fills result/error and flips
/// `done`; waiters block on the condition variable. Lives in a shared_ptr so
/// it outlives its map slot (the leader erases the slot before notifying).
struct CompileCache::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const CompiledProgram> result;
  std::exception_ptr error;
};

CompileCache::CompileCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

CompileCache::GetResult CompileCache::get_or_compile(std::uint64_t key,
                                                     const Compiler& compile) {
  static obs::Counter& hits_metric =
      obs::metrics().counter(obs::names::kServiceCacheHits);
  static obs::Counter& misses_metric =
      obs::metrics().counter(obs::names::kServiceCacheMisses);
  static obs::Counter& compiles_metric =
      obs::metrics().counter(obs::names::kServiceCompiles);

  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++stats_.hits;
      hits_metric.add();
      return {it->second.program, /*hit=*/true};
    }
    ++stats_.misses;
    misses_metric.add();
    const auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      flight = in->second;
    } else {
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
      leader = true;
    }
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return {flight->result, /*hit=*/false};
  }

  // Leader: compile outside every lock so a slow compile never blocks hits
  // on other keys.
  std::shared_ptr<const CompiledProgram> program;
  std::exception_ptr error;
  try {
    program = compile();
    if (!program) {
      throw ServiceError("compile cache: compiler returned null");
    }
  } catch (...) {
    error = std::current_exception();
  }

  if (!error) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compiles;
    compiles_metric.add();
    insert_locked(program);
    inflight_.erase(key);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->result = program;
    flight->error = error;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return {program, /*hit=*/false};
}

std::shared_ptr<const CompiledProgram> CompileCache::peek(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.program;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CompileCache::clear() {
  static obs::Gauge& bytes_metric =
      obs::metrics().gauge(obs::names::kServiceCacheBytes);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  bytes_metric.set(0.0);
}

void CompileCache::insert_locked(std::shared_ptr<const CompiledProgram> program) {
  static obs::Gauge& bytes_metric =
      obs::metrics().gauge(obs::names::kServiceCacheBytes);
  const std::uint64_t key = program->key;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A clear() between miss and publish can race another flight in here;
    // keep the incumbent and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  stats_.bytes += program->bytes;
  ++stats_.entries;
  entries_.emplace(key, Entry{std::move(program), lru_.begin()});
  evict_locked();
  bytes_metric.set(static_cast<double>(stats_.bytes));
}

void CompileCache::evict_locked() {
  static obs::Counter& evictions_metric =
      obs::metrics().counter(obs::names::kServiceEvictions);
  while (stats_.bytes > max_bytes_ && entries_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    stats_.bytes -= it->second.program->bytes;
    --stats_.entries;
    entries_.erase(it);
    ++stats_.evictions;
    evictions_metric.add();
  }
}

}  // namespace qutes::service
