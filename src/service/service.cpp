#include "qutes/service/service.hpp"

#include <algorithm>
#include <utility>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/common/cache_key.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/vm.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::service {

namespace {

/// The seed cached artifacts are compiled under (RunConfig's default). Fixed
/// so every cached lowered circuit is a pure function of the cache key —
/// a program whose circuit depends on mid-circuit measurement draws still
/// compiles to one canonical artifact.
constexpr std::uint64_t kCanonicalSeed = RunConfig{}.seed;

/// Rough per-instruction footprint of a logged circuit (operands + the
/// occasional dense matrix). Cache accounting only needs to be proportional,
/// not exact: the LRU budget is a knob, not a guarantee.
constexpr std::size_t kCircuitInstrBytes = 96;
constexpr std::size_t kBytecodeInstrBytes = 24;

std::size_t estimate_bytes(const CompiledProgram& program,
                           std::size_t source_bytes) {
  std::size_t bytes = sizeof(CompiledProgram);
  bytes += source_bytes;
  bytes += program.canonical_output.size();
  bytes += program.lowered.instructions().size() * kCircuitInstrBytes;
  if (program.bytecode) {
    bytes += program.bytecode->total_ops() * kBytecodeInstrBytes;
    for (const std::string& s : program.bytecode->strings) bytes += s.size();
  }
  return bytes;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options), cache_(options.cache_bytes) {
  worker_count_ = options_.workers != 0
                      ? options_.workers
                      : std::max<std::size_t>(
                            1, std::min<std::size_t>(
                                   4, std::thread::hardware_concurrency()));
}

Service::~Service() { stop(); }

// ---- compilation ------------------------------------------------------------

std::shared_ptr<const CompiledProgram> Service::compile_entry(
    const Request& request, std::uint64_t key) const {
  obs::Span span("service.compile");
  auto program = std::make_shared<CompiledProgram>();
  program->key = key;
  program->pipeline_preset = request.pipeline;
  program->requested_backend = request.backend;

  RunConfig compile_config = request_config(request);
  compile_config.seed = kCanonicalSeed;
  compile_config.record_memory = false;
  // Canonical compile: `param(...)` declarations evaluate to 0.0
  // placeholders (mirroring the canonical-seed trick), so the cached
  // symbolic artifact is a pure function of the cache key and every
  // request's bindings are applied at execution time.
  compile_config.bind_params.clear();
  compile_config.allow_unbound_params = true;
  circ::PassManager pipeline;
  if (!request.pipeline.empty()) {
    pipeline = circ::make_pipeline(*circ::parse_preset(request.pipeline));
    compile_config.pipeline.manager = &pipeline;
  }
  lang::RunResult compiled = lang::run_source(request.source, compile_config);
  program->lowered = std::move(compiled.lowered_circuit);
  program->canonical_output = std::move(compiled.output);
  if (request.exec != "ast") {
    program->bytecode = std::make_shared<const lang::Bytecode>(
        lang::lower_source(request.source, request.include_stdlib));
  }

  // Resolve "auto" once, against the lowered circuit, and cache the concrete
  // method: warm requests replay on it directly instead of re-running the
  // Clifford scan (and re-bumping the executor.auto_* counters) per request.
  RunConfig exec_config = request_config(request);
  exec_config.pipeline.manager = nullptr;  // `lowered` is already lowered
  exec_config.bind_params.clear();  // bindings are per request, not cached
  program->resolved_backend =
      program->lowered.num_qubits() == 0
          ? request.backend
          : circ::resolve_backend_name(request.backend, program->lowered,
                                       exec_config);
  exec_config.backend.name = program->resolved_backend;
  program->exec_config = std::move(exec_config);
  program->bytes = estimate_bytes(*program, request.source.size());
  return program;
}

CompileCache::GetResult Service::entry_for(const Request& request) {
  const RunConfig config = request_config(request);
  config.validate();
  const std::uint64_t key =
      qutes::cache_key(request.source, config, request.pipeline);
  return cache_.get_or_compile(
      key, [&] { return compile_entry(request, key); });
}

// ---- synchronous handling ---------------------------------------------------

Response Service::dispatch(const Request& request) {
  if (request.op == "ping") {
    Response resp;
    resp.id = request.id;
    return resp;
  }
  if (request.op == "stats") return stats_request(request);
  if (request.op == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_relaxed);
    Response resp;
    resp.id = request.id;
    return resp;
  }
  if (request.op == "trace") return trace_request(request);
  return run_request(request);
}

Response Service::handle(const Request& request) {
  static obs::Counter& requests_metric =
      obs::metrics().counter(obs::names::kServiceRequests);
  static obs::Histogram& latency_metric =
      obs::metrics().histogram(obs::names::kServiceRequestMs);
  obs::Span span("service.request");
  requests_metric.add();
  Response resp;
  try {
    resp = dispatch(request);
  } catch (const std::exception& e) {
    resp = error_response(request.id, e.what());
  }
  resp.elapsed_ms = span.elapsed_ms();
  latency_metric.record(resp.elapsed_ms);
  return resp;
}

Response Service::run_request(const Request& request) {
  const CompileCache::GetResult got = entry_for(request);
  const CompiledProgram& entry = *got.program;
  Response resp;
  resp.id = request.id;
  resp.cache = got.hit ? "hit" : "miss";
  resp.backend = entry.resolved_backend;
  if (entry.lowered.num_qubits() == 0) {
    if (entry.lowered.num_parameters() > 0 || !request.params.empty()) {
      // A classical program whose output depends on `param(...)` bindings:
      // the canonical (placeholder-bound) output is wrong for this request,
      // so re-run under the request's bindings, like an ast trace.
      resp.output = rerun_output(entry, request);
      return resp;
    }
    // No qubits were logged: nothing to sample, and the program's output is
    // deterministic, so return it.
    resp.output = entry.canonical_output;
    return resp;
  }
  RunConfig config = entry.exec_config;
  config.seed = request.seed;
  config.shots = request.shots;
  config.record_memory = request.record_memory;
  if (entry.lowered.is_parameterized() || !request.params.empty()) {
    // Bind the cached symbolic artifact against this request's params. A
    // wrong-length vector throws from bind(), naming the expected count —
    // handle() turns that into an error response.
    circ::BindBatchItem item;
    item.params = request.params;
    item.seed = request.seed;
    item.shots = request.shots;
    item.record_memory = request.record_memory;
    std::vector<circ::ExecutionResult> results =
        circ::Executor(config).run_bound_batch(entry.lowered, {&item, 1});
    resp.counts = std::move(results[0].counts);
    resp.memory = std::move(results[0].memory);
    return resp;
  }
  circ::ExecutionResult result = circ::Executor(config).run(entry.lowered);
  resp.counts = std::move(result.counts);
  resp.memory = std::move(result.memory);
  return resp;
}

std::string Service::rerun_output(const CompiledProgram& entry,
                                  const Request& request) const {
  // Unbound use must fail loudly here (allow_unbound_params stays false):
  // the client asked for real output, not the canonical placeholder run.
  if (entry.bytecode) {
    lang::VmOptions vm_options;
    vm_options.seed = request.seed;
    vm_options.bind_params = request.params;
    lang::Vm vm(*entry.bytecode, vm_options);
    vm.run();
    return vm.runtime().captured_output();
  }
  RunConfig config = request_config(request);
  return lang::run_source(request.source, config).output;
}

Response Service::trace_request(const Request& request) {
  const CompileCache::GetResult got = entry_for(request);
  const CompiledProgram& entry = *got.program;
  Response resp;
  resp.id = request.id;
  resp.cache = got.hit ? "hit" : "miss";
  resp.backend = entry.resolved_backend;
  if (entry.bytecode) {
    // Warm path: execute the cached bytecode under the request's seed. The
    // Vm reads the artifact const, so concurrent traces share one entry.
    lang::VmOptions vm_options;
    vm_options.seed = request.seed;
    vm_options.bind_params = request.params;
    lang::Vm vm(*entry.bytecode, vm_options);
    vm.run();
    resp.output = vm.runtime().captured_output();
  } else {
    // exec=ast: the tree-walk consumes a mutable AST, so an ast trace
    // recompiles per request (the entry still pins cache/backend metadata).
    RunConfig config = request_config(request);
    resp.output = lang::run_source(request.source, config).output;
  }
  return resp;
}

Response Service::stats_request(const Request& request) {
  const CompileCache::Stats cache_stats = cache_.stats();
  Response resp;
  resp.id = request.id;
  resp.stats["cache_hits"] = cache_stats.hits;
  resp.stats["cache_misses"] = cache_stats.misses;
  resp.stats["compiles"] = cache_stats.compiles;
  resp.stats["evictions"] = cache_stats.evictions;
  resp.stats["cache_bytes"] = static_cast<std::uint64_t>(cache_stats.bytes);
  resp.stats["cache_entries"] = static_cast<std::uint64_t>(cache_stats.entries);
  resp.stats["queue_depth"] = static_cast<std::uint64_t>(queue_depth());
  resp.stats["workers"] = static_cast<std::uint64_t>(worker_count_);
  return resp;
}

// ---- async scheduler --------------------------------------------------------

void Service::submit(Request request, Callback done) {
  static obs::Gauge& depth_metric =
      obs::metrics().gauge(obs::names::kServiceQueueDepth);
  if (request.op == "ping" || request.op == "stats" ||
      request.op == "shutdown") {
    done(handle(request));
    return;
  }
  Pending pending;
  pending.batchable = request.op == "run";
  try {
    const RunConfig config = request_config(request);
    pending.key = qutes::cache_key(request.source, config, request.pipeline);
  } catch (...) {
    pending.key = 0;
    pending.batchable = false;
  }
  pending.request = std::move(request);
  pending.done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Callback cb = std::move(pending.done);
      Response resp =
          error_response(pending.request.id, "service is shutting down");
      cb(std::move(resp));
      return;
    }
    queue_.push_back(std::move(pending));
    depth_metric.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void Service::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!workers_.empty() || stopping_) return;
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Service::stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
  // With no workers ever started, drain the queue inline so every submitted
  // callback still fires exactly once.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& pending : leftovers) {
    Callback cb = std::move(pending.done);
    cb(handle(pending.request));
  }
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Service::worker_loop() {
  static obs::Gauge& depth_metric =
      obs::metrics().gauge(obs::names::kServiceQueueDepth);
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (batch.front().batchable) {
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < options_.max_batch;) {
          if (it->batchable && it->key == batch.front().key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      depth_metric.set(static_cast<double>(queue_.size()));
    }
    process_batch(std::move(batch));
  }
}

void Service::process_batch(std::vector<Pending> batch) {
  if (batch.size() == 1) {
    Callback cb = std::move(batch.front().done);
    cb(handle(batch.front().request));
    return;
  }
  static obs::Counter& requests_metric =
      obs::metrics().counter(obs::names::kServiceRequests);
  static obs::Counter& batched_requests_metric =
      obs::metrics().counter(obs::names::kServiceBatchedRequests);
  static obs::Counter& batched_shots_metric =
      obs::metrics().counter(obs::names::kServiceBatchedShots);
  static obs::Histogram& latency_metric =
      obs::metrics().histogram(obs::names::kServiceRequestMs);
  obs::Span span("service.request");
  requests_metric.add(batch.size());

  std::vector<Response> responses(batch.size());
  try {
    const CompileCache::GetResult got = entry_for(batch.front().request);
    const CompiledProgram& entry = *got.program;
    const char* cache_state = got.hit ? "hit" : "miss";
    if (entry.lowered.num_qubits() == 0) {
      const bool parameterized_output = entry.lowered.num_parameters() > 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i].id = batch[i].request.id;
        responses[i].cache = cache_state;
        responses[i].backend = entry.resolved_backend;
        if (parameterized_output || !batch[i].request.params.empty()) {
          try {
            responses[i].output = rerun_output(entry, batch[i].request);
          } catch (const std::exception& e) {
            responses[i] = error_response(batch[i].request.id, e.what());
          }
        } else {
          responses[i].output = entry.canonical_output;
        }
      }
    } else if (entry.lowered.is_parameterized() ||
               std::any_of(batch.begin(), batch.end(), [](const Pending& p) {
                 return !p.request.params.empty();
               })) {
      // Params share the cache key by design, so one batch may mix
      // bindings: the bound-batch executor binds the cached symbolic
      // circuit per item. Wrong-length bindings fail per item, not per
      // batch.
      const std::size_t expected = entry.lowered.num_parameters();
      std::vector<circ::BindBatchItem> items;
      std::vector<std::size_t> item_to_batch;
      std::uint64_t total_shots = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Request& req = batch[i].request;
        if (req.params.size() != expected) {
          responses[i] = error_response(
              req.id, "bind: circuit has " + std::to_string(expected) +
                          " parameter(s), got " +
                          std::to_string(req.params.size()) + " value(s)");
          continue;
        }
        circ::BindBatchItem item;
        item.params = req.params;
        item.seed = req.seed;
        item.shots = req.shots;
        item.record_memory = req.record_memory;
        items.push_back(std::move(item));
        item_to_batch.push_back(i);
        total_shots += req.shots;
      }
      const circ::Executor executor(entry.exec_config);
      std::vector<circ::ExecutionResult> results =
          executor.run_bound_batch(entry.lowered, items);
      batched_requests_metric.add(items.size());
      batched_shots_metric.add(total_shots);
      for (std::size_t k = 0; k < items.size(); ++k) {
        const std::size_t i = item_to_batch[k];
        responses[i].id = batch[i].request.id;
        responses[i].cache = cache_state;
        responses[i].backend = entry.resolved_backend;
        responses[i].counts = std::move(results[k].counts);
        responses[i].memory = std::move(results[k].memory);
      }
    } else {
      std::vector<circ::ShotBatchItem> items(batch.size());
      std::uint64_t total_shots = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        items[i].seed = batch[i].request.seed;
        items[i].shots = batch[i].request.shots;
        items[i].record_memory = batch[i].request.record_memory;
        total_shots += batch[i].request.shots;
      }
      const circ::Executor executor(entry.exec_config);
      std::vector<circ::ExecutionResult> results =
          executor.run_batch(entry.lowered, items);
      batched_requests_metric.add(batch.size());
      batched_shots_metric.add(total_shots);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i].id = batch[i].request.id;
        responses[i].cache = cache_state;
        responses[i].backend = entry.resolved_backend;
        responses[i].counts = std::move(results[i].counts);
        responses[i].memory = std::move(results[i].memory);
      }
    }
  } catch (const std::exception& e) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      responses[i] = error_response(batch[i].request.id, e.what());
    }
  }
  const double elapsed = span.elapsed_ms();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    responses[i].elapsed_ms = elapsed;
    latency_metric.record(elapsed);
    Callback cb = std::move(batch[i].done);
    cb(std::move(responses[i]));
  }
}

}  // namespace qutes::service
