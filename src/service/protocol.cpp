#include "qutes/service/protocol.hpp"

#include "qutes/circuit/pass_manager.hpp"

namespace qutes::service {

namespace {

constexpr std::size_t kMaxSourceBytes = 4u << 20;  // defensive request cap

bool known_op(const std::string& op) {
  return op == "run" || op == "trace" || op == "ping" || op == "stats" ||
         op == "shutdown";
}

}  // namespace

Request parse_request(const std::string& line) {
  const Json doc = Json::parse(line);
  if (!doc.is_object()) throw ServiceError("request must be a JSON object");
  Request req;
  if (doc.has("op")) req.op = doc.get("op").as_string();
  if (!known_op(req.op)) throw ServiceError("unknown op \"" + req.op + "\"");
  req.id = doc.get("id").as_string();
  req.source = doc.get("source").as_string();
  if (req.source.size() > kMaxSourceBytes) {
    throw ServiceError("source exceeds " + std::to_string(kMaxSourceBytes) +
                       " bytes");
  }
  if ((req.op == "run" || req.op == "trace") && req.source.empty()) {
    throw ServiceError("op \"" + req.op + "\" requires a non-empty source");
  }
  req.shots = static_cast<std::size_t>(doc.get("shots").as_uint(req.shots));
  req.seed = doc.get("seed").as_uint(req.seed);
  if (doc.has("backend")) req.backend = doc.get("backend").as_string();
  req.pipeline = doc.get("pipeline").as_string();
  if (!req.pipeline.empty() && !circ::parse_preset(req.pipeline)) {
    throw ServiceError("unknown pipeline preset \"" + req.pipeline + "\"");
  }
  if (doc.has("exec")) req.exec = doc.get("exec").as_string();
  if (req.exec != "vm" && req.exec != "ast") {
    // "default" would make cached artifacts depend on the daemon's
    // environment (QUTES_EXEC_MODE); the protocol pins the engine instead.
    throw ServiceError("exec must be \"vm\" or \"ast\"");
  }
  req.include_stdlib = doc.get("stdlib").as_bool(req.include_stdlib);
  req.record_memory = doc.get("memory").as_bool(req.record_memory);
  for (const Json& v : doc.get("params").as_array()) {
    if (!v.is_number()) throw ServiceError("params must be an array of numbers");
    req.params.push_back(v.as_double());
  }
  return req;
}

std::string serialize_request(const Request& request) {
  JsonObject obj;
  obj["op"] = request.op;
  if (!request.id.empty()) obj["id"] = request.id;
  if (!request.source.empty()) obj["source"] = request.source;
  obj["shots"] = static_cast<std::uint64_t>(request.shots);
  obj["seed"] = request.seed;
  obj["backend"] = request.backend;
  if (!request.pipeline.empty()) obj["pipeline"] = request.pipeline;
  obj["exec"] = request.exec;
  obj["stdlib"] = request.include_stdlib;
  if (request.record_memory) obj["memory"] = true;
  if (!request.params.empty()) {
    JsonArray params;
    params.reserve(request.params.size());
    for (const double v : request.params) params.emplace_back(v);
    obj["params"] = std::move(params);
  }
  return Json(std::move(obj)).dump();
}

Response parse_response(const std::string& line) {
  const Json doc = Json::parse(line);
  if (!doc.is_object()) throw ServiceError("response must be a JSON object");
  Response resp;
  resp.ok = doc.get("ok").as_bool(false);
  resp.id = doc.get("id").as_string();
  resp.error = doc.get("error").as_string();
  resp.cache = doc.get("cache").as_string();
  resp.backend = doc.get("backend").as_string();
  for (const auto& [bits, count] : doc.get("counts").as_object()) {
    resp.counts[bits] = count.as_uint();
  }
  for (const Json& shot : doc.get("memory").as_array()) {
    resp.memory.push_back(shot.as_string());
  }
  resp.output = doc.get("output").as_string();
  resp.elapsed_ms = doc.get("elapsed_ms").as_double();
  resp.stats = doc.get("stats").as_object();
  return resp;
}

std::string serialize_response(const Response& response) {
  JsonObject obj;
  obj["ok"] = response.ok;
  if (!response.id.empty()) obj["id"] = response.id;
  if (!response.error.empty()) obj["error"] = response.error;
  if (!response.cache.empty()) obj["cache"] = response.cache;
  if (!response.backend.empty()) obj["backend"] = response.backend;
  if (!response.counts.empty()) {
    JsonObject counts;
    for (const auto& [bits, count] : response.counts) counts[bits] = count;
    obj["counts"] = std::move(counts);
  }
  if (!response.memory.empty()) {
    JsonArray memory;
    memory.reserve(response.memory.size());
    for (const std::string& shot : response.memory) memory.emplace_back(shot);
    obj["memory"] = std::move(memory);
  }
  if (!response.output.empty()) obj["output"] = response.output;
  obj["elapsed_ms"] = response.elapsed_ms;
  if (!response.stats.empty()) obj["stats"] = response.stats;
  return Json(std::move(obj)).dump();
}

RunConfig request_config(const Request& request) {
  RunConfig config;
  config.shots = request.shots;
  config.seed = request.seed;
  config.record_memory = request.record_memory;
  config.include_stdlib = request.include_stdlib;
  config.exec_mode = request.exec == "ast" ? ExecMode::Ast : ExecMode::Vm;
  config.backend.name = request.backend;
  config.bind_params = request.params;
  return config;
}

Response error_response(const std::string& id, const std::string& message) {
  Response resp;
  resp.ok = false;
  resp.id = id;
  resp.error = message;
  return resp;
}

}  // namespace qutes::service
