#include "qutes/service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace qutes::service {

namespace {

const Json kNull{};
const std::string kEmptyString;
const JsonArray kEmptyArray;
const JsonObject kEmptyObject;

constexpr std::size_t kMaxDepth = 64;

}  // namespace

Json::Json(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    value_ = static_cast<std::int64_t>(v);
  } else {
    value_ = static_cast<double>(v);
  }
}

Json::Type Json::type() const noexcept {
  switch (value_.index()) {
    case 1: return Type::Bool;
    case 2: return Type::Int;
    case 3: return Type::Double;
    case 4: return Type::String;
    case 5: return Type::Array;
    case 6: return Type::Object;
    default: return Type::Null;
  }
}

bool Json::as_bool(bool fallback) const noexcept {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const noexcept {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const double* d = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

std::uint64_t Json::as_uint(std::uint64_t fallback) const noexcept {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    return *i < 0 ? fallback : static_cast<std::uint64_t>(*i);
  }
  if (const double* d = std::get_if<double>(&value_)) {
    return *d < 0.0 ? fallback : static_cast<std::uint64_t>(*d);
  }
  return fallback;
}

double Json::as_double(double fallback) const noexcept {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  return kEmptyString;
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  return kEmptyArray;
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  return kEmptyObject;
}

const Json& Json::get(const std::string& key) const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) {
    const auto it = o->find(key);
    if (it != o->end()) return it->second;
  }
  return kNull;
}

bool Json::has(const std::string& key) const {
  const JsonObject* o = std::get_if<JsonObject>(&value_);
  return o != nullptr && o->count(key) != 0;
}

// ---- serialization ----------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Int: out += std::to_string(v.as_int()); break;
    case Json::Type::Double: {
      const double d = v.as_double();
      if (!std::isfinite(d)) {
        out += "null";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
      }
      break;
    }
    case Json::Type::String: dump_string(v.as_string(), out); break;
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// ---- parsing ----------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ServiceError("json: " + what + " (at byte " + std::to_string(pos_) +
                       ")");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  static void encode_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            const std::uint32_t lo = parse_hex4();
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;  // unpaired high surrogate
              encode_utf8(cp, out);
              cp = (lo >= 0xD800 && lo <= 0xDFFF) ? 0xFFFD : lo;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;  // unpaired surrogate
          }
          encode_utf8(cp, out);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool digits = false;
    while (peek() >= '0' && peek() <= '9') {
      ++pos_;
      digits = true;
    }
    if (!digits) fail("invalid value");
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("invalid number");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!(peek() >= '0' && peek() <= '9')) fail("invalid number");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Overflowing integers fall through to double, like most parsers.
    }
    return Json(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace qutes::service
