#include "qutes/service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qutes::service {

namespace {

/// Longest request/response line a connection may send before it is dropped
/// (source cap is 4 MiB; leave headroom for escaping).
constexpr std::size_t kMaxLineBytes = 16u << 20;

void close_quiet(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

bool write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw ServiceError("socket path must be 1.." +
                       std::to_string(sizeof(addr.sun_path) - 1) +
                       " bytes: \"" + path + "\"");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() {
  close_quiet(stop_pipe_[0]);
  close_quiet(stop_pipe_[1]);
}

void Server::request_stop() noexcept {
  const int fd = stop_pipe_[1];
  if (fd < 0) return;
  const char byte = 1;
  // Best-effort and async-signal-safe; a full pipe means a stop is already
  // pending.
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

void Server::run() {
  if (::pipe(stop_pipe_) != 0) {
    throw ServiceError(std::string("pipe: ") + std::strerror(errno));
  }
  ::fcntl(stop_pipe_[1], F_SETFL, O_NONBLOCK);

  const sockaddr_un addr = make_address(options_.socket_path);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw ServiceError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a prior run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close_quiet(listen_fd);
    throw ServiceError("bind " + options_.socket_path + ": " + err);
  }
  if (::listen(listen_fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    close_quiet(listen_fd);
    ::unlink(options_.socket_path.c_str());
    throw ServiceError("listen " + options_.socket_path + ": " + err);
  }

  service_.start();

  while (true) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    // The poll timeout doubles as the shutdown-op check: a worker thread
    // flips shutdown_requested() after answering {"op":"shutdown"}.
    const int ready = ::poll(fds, 2, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (service_.shutdown_requested() || (fds[1].revents & POLLIN) != 0) break;
    if (ready <= 0 || (fds[0].revents & POLLIN) == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(conn_fd);
      ++live_connections_;
    }
    if (options_.verbose) std::cerr << "qutesd: connection opened\n";
    std::thread([this, conn_fd] { handle_connection(conn_fd); }).detach();
  }

  // Graceful drain: stop accepting, half-close every live connection so its
  // reader sees EOF, wait for the handlers (which wait for their in-flight
  // responses), then drain the worker pool.
  if (options_.verbose) std::cerr << "qutesd: draining\n";
  close_quiet(listen_fd);
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conn_cv_.wait(lock, [&] { return live_connections_ == 0; });
  }
  service_.stop();
  ::unlink(options_.socket_path.c_str());
  if (options_.verbose) std::cerr << "qutesd: stopped\n";
}

void Server::handle_connection(int fd) {
  // Completion bookkeeping: responses arrive on worker threads; EOF handling
  // must wait for every submitted request before closing the fd.
  auto state = std::make_shared<std::tuple<std::mutex, std::condition_variable,
                                           std::size_t>>();
  auto write_response = [fd, state](const Response& resp) {
    const std::string line = serialize_response(resp) + "\n";
    std::lock_guard<std::mutex> lock(std::get<0>(*state));
    write_all(fd, line.data(), line.size());
    --std::get<2>(*state);
    std::get<1>(*state).notify_all();
  };

  std::string buffer;
  char chunk[4096];
  bool overlong = false;
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes && buffer.find('\n') == std::string::npos) {
      overlong = true;
      break;
    }
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      Request request;
      try {
        request = parse_request(line);
      } catch (const std::exception& e) {
        const Response resp = error_response("", e.what());
        const std::string out = serialize_response(resp) + "\n";
        std::lock_guard<std::mutex> lock(std::get<0>(*state));
        write_all(fd, out.data(), out.size());
        continue;
      }
      const bool is_shutdown = request.op == "shutdown";
      {
        std::lock_guard<std::mutex> lock(std::get<0>(*state));
        ++std::get<2>(*state);
      }
      service_.submit(std::move(request), write_response);
      if (is_shutdown) request_stop();
    }
    buffer.erase(0, start);
  }
  if (overlong) {
    const Response resp = error_response("", "request line too long");
    const std::string out = serialize_response(resp) + "\n";
    std::lock_guard<std::mutex> lock(std::get<0>(*state));
    write_all(fd, out.data(), out.size());
  }
  {
    std::unique_lock<std::mutex> lock(std::get<0>(*state));
    std::get<1>(*state).wait(lock, [&] { return std::get<2>(*state) == 0; });
  }
  close_quiet(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    --live_connections_;
  }
  conn_cv_.notify_all();
  if (options_.verbose) std::cerr << "qutesd: connection closed\n";
}

// ---- client -----------------------------------------------------------------

Response request_over_socket(const std::string& socket_path,
                             const Request& request) {
  const sockaddr_un addr = make_address(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    close_quiet(fd);
    throw ServiceError("connect " + socket_path + ": " + err +
                       " (is qutesd running?)");
  }
  const std::string line = serialize_request(request) + "\n";
  if (!write_all(fd, line.data(), line.size())) {
    close_quiet(fd);
    throw ServiceError("write " + socket_path + ": " + std::strerror(errno));
  }
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close_quiet(fd);
      throw ServiceError("daemon closed the connection without a response");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes) {
      close_quiet(fd);
      throw ServiceError("response line too long");
    }
  }
  close_quiet(fd);
  return parse_response(buffer.substr(0, buffer.find('\n')));
}

// ---- daemon entry -----------------------------------------------------------

namespace {

std::atomic<Server*> g_signal_server{nullptr};

extern "C" void daemon_signal_handler(int) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->request_stop();
}

}  // namespace

int run_daemon(const ServerOptions& options) {
  Server server(options);
  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = daemon_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a client hanging up must not kill the daemon

  try {
    std::cout << "qutesd listening on " << options.socket_path << std::endl;
    server.run();
  } catch (const std::exception& e) {
    std::cerr << "qutesd: " << e.what() << "\n";
    g_signal_server.store(nullptr, std::memory_order_relaxed);
    return 1;
  }
  g_signal_server.store(nullptr, std::memory_order_relaxed);
  return 0;
}

}  // namespace qutes::service
