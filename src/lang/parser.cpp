#include "qutes/lang/parser.hpp"

#include "qutes/lang/lexer.hpp"

namespace qutes::lang {

namespace {

template <typename NodeT>
std::unique_ptr<NodeT> make_node(SourceLocation loc) {
  auto node = std::make_unique<NodeT>();
  node->location = loc;
  return node;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

bool Parser::check(TokenType type) const { return peek().type == type; }

bool Parser::match(TokenType type) {
  if (!check(type)) return false;
  ++pos_;
  return true;
}

const Token& Parser::advance() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

const Token& Parser::expect(TokenType type, const char* context) {
  if (!check(type)) {
    fail(std::string("expected ") + token_type_name(type) + " " + context + ", found " +
         token_type_name(peek().type));
  }
  return advance();
}

void Parser::fail(const std::string& message) const {
  throw LangError(message, peek().location);
}

bool Parser::at_type_token() const {
  switch (peek().type) {
    case TokenType::KwBool: case TokenType::KwInt: case TokenType::KwFloat:
    case TokenType::KwString: case TokenType::KwQubit: case TokenType::KwQuint:
    case TokenType::KwQustring: case TokenType::KwVoid:
      return true;
    default:
      return false;
  }
}

QType Parser::parse_type() {
  TypeKind kind;
  switch (advance().type) {
    case TokenType::KwBool: kind = TypeKind::Bool; break;
    case TokenType::KwInt: kind = TypeKind::Int; break;
    case TokenType::KwFloat: kind = TypeKind::Float; break;
    case TokenType::KwString: kind = TypeKind::String; break;
    case TokenType::KwQubit: kind = TypeKind::Qubit; break;
    case TokenType::KwQuint: kind = TypeKind::Quint; break;
    case TokenType::KwQustring: kind = TypeKind::Qustring; break;
    case TokenType::KwVoid: kind = TypeKind::Void; break;
    default: fail("expected a type name");
  }
  QType type = QType::scalar(kind);
  // quint<N>: explicit register width.
  if (kind == TypeKind::Quint && check(TokenType::Lt) &&
      peek(1).type == TokenType::IntLit && peek(2).type == TokenType::Gt) {
    advance();
    const Token& width = advance();
    advance();
    if (width.int_value <= 0 || width.int_value > 24) {
      throw LangError("quint width must be in [1, 24]", width.location);
    }
    type.quint_width = static_cast<std::size_t>(width.int_value);
  }
  // T[]: array of T.
  if (check(TokenType::LBracket) && peek(1).type == TokenType::RBracket) {
    advance();
    advance();
    type = QType::array_of(kind);
  }
  return type;
}

Parser::NestingGuard::NestingGuard(Parser& parser, SourceLocation loc)
    : parser_(parser) {
  if (++parser_.depth_ > kMaxNestingDepth) {
    throw LangError("nesting exceeds the maximum depth of " +
                        std::to_string(kMaxNestingDepth),
                    loc);
  }
}

Program Parser::parse_program() {
  Program program;
  while (!check(TokenType::Eof)) {
    program.statements.push_back(statement());
  }
  return program;
}

StmtPtr Parser::statement() {
  const SourceLocation loc = peek().location;
  NestingGuard guard(*this, loc);
  switch (peek().type) {
    case TokenType::KwIf: return if_statement();
    case TokenType::KwWhile: return while_statement();
    case TokenType::KwForeach: return foreach_statement();
    case TokenType::KwReturn: return return_statement();
    case TokenType::KwPrint: return print_statement();
    case TokenType::LBrace: return block();
    case TokenType::KwBarrier: {
      advance();
      expect(TokenType::Semicolon, "after 'barrier'");
      return make_node<BarrierStmt>(loc);
    }
    case TokenType::KwNot: advance(); return gate_statement(GateKind::Not);
    case TokenType::KwPauliY: advance(); return gate_statement(GateKind::PauliY);
    case TokenType::KwPauliZ: advance(); return gate_statement(GateKind::PauliZ);
    case TokenType::KwHadamard: advance(); return gate_statement(GateKind::Hadamard);
    case TokenType::KwPhase: advance(); return gate_statement(GateKind::Phase);
    case TokenType::KwSGate: advance(); return gate_statement(GateKind::SGate);
    case TokenType::KwTGate: advance(); return gate_statement(GateKind::TGate);
    case TokenType::KwReset: advance(); return gate_statement(GateKind::ResetStmt);
    case TokenType::KwMeasure:
      // `measure q;` is a statement; `measure` is NOT an expression keyword
      // (the builtin function `measure(q)` covers expression contexts).
      if (peek(1).type != TokenType::LParen) {
        advance();
        return gate_statement(GateKind::MeasureStmt);
      }
      return assignment_or_expr_statement();
    default:
      if (at_type_token()) return declaration_or_function();
      return assignment_or_expr_statement();
  }
}

StmtPtr Parser::declaration_or_function() {
  const QType type = parse_type();
  Token name = expect(TokenType::Identifier, "after type");
  if (check(TokenType::LParen)) return function_declaration(type, std::move(name));
  return var_declaration(type, std::move(name));
}

StmtPtr Parser::var_declaration(QType type, Token name) {
  auto node = make_node<VarDeclStmt>(name.location);
  node->type = type;
  node->name = name.text;
  if (match(TokenType::Assign)) node->init = expression();
  expect(TokenType::Semicolon, "after variable declaration");
  return node;
}

StmtPtr Parser::function_declaration(QType type, Token name) {
  auto node = make_node<FuncDeclStmt>(name.location);
  node->return_type = type;
  node->name = name.text;
  expect(TokenType::LParen, "after function name");
  if (!check(TokenType::RParen)) {
    do {
      Param param;
      param.type = parse_type();
      param.name = expect(TokenType::Identifier, "in parameter list").text;
      node->params.push_back(std::move(param));
    } while (match(TokenType::Comma));
  }
  expect(TokenType::RParen, "after parameters");
  node->body = block();
  return node;
}

std::unique_ptr<BlockStmt> Parser::block() {
  const SourceLocation loc = peek().location;
  expect(TokenType::LBrace, "to open a block");
  auto node = make_node<BlockStmt>(loc);
  while (!check(TokenType::RBrace) && !check(TokenType::Eof)) {
    node->statements.push_back(statement());
  }
  expect(TokenType::RBrace, "to close a block");
  return node;
}

StmtPtr Parser::if_statement() {
  const SourceLocation loc = advance().location;  // 'if'
  expect(TokenType::LParen, "after 'if'");
  auto node = make_node<IfStmt>(loc);
  node->condition = expression();
  expect(TokenType::RParen, "after if condition");
  node->then_branch = statement();
  if (match(TokenType::KwElse)) node->else_branch = statement();
  return node;
}

StmtPtr Parser::while_statement() {
  const SourceLocation loc = advance().location;  // 'while'
  expect(TokenType::LParen, "after 'while'");
  auto node = make_node<WhileStmt>(loc);
  node->condition = expression();
  expect(TokenType::RParen, "after while condition");
  node->body = statement();
  return node;
}

StmtPtr Parser::foreach_statement() {
  const SourceLocation loc = advance().location;  // 'foreach'
  auto node = make_node<ForeachStmt>(loc);
  node->var_name = expect(TokenType::Identifier, "after 'foreach'").text;
  expect(TokenType::KwIn, "in foreach");
  node->iterable = expression();
  node->body = statement();
  return node;
}

StmtPtr Parser::return_statement() {
  const SourceLocation loc = advance().location;  // 'return'
  auto node = make_node<ReturnStmt>(loc);
  if (!check(TokenType::Semicolon)) node->value = expression();
  expect(TokenType::Semicolon, "after return");
  return node;
}

StmtPtr Parser::print_statement() {
  const SourceLocation loc = advance().location;  // 'print'
  auto node = make_node<PrintStmt>(loc);
  node->value = expression();
  expect(TokenType::Semicolon, "after print");
  return node;
}

StmtPtr Parser::gate_statement(GateKind kind) {
  const SourceLocation loc = peek().location;
  auto node = make_node<GateStmt>(loc);
  node->gate = kind;
  node->operands.push_back(expression());
  while (match(TokenType::Comma)) node->operands.push_back(expression());
  expect(TokenType::Semicolon, "after gate statement");
  return node;
}

StmtPtr Parser::assignment_or_expr_statement() {
  const SourceLocation loc = peek().location;
  ExprPtr expr = expression();

  std::optional<BinaryOp> compound;
  bool is_assign = false;
  switch (peek().type) {
    case TokenType::Assign: is_assign = true; break;
    case TokenType::PlusAssign: is_assign = true; compound = BinaryOp::Add; break;
    case TokenType::MinusAssign: is_assign = true; compound = BinaryOp::Sub; break;
    case TokenType::StarAssign: is_assign = true; compound = BinaryOp::Mul; break;
    case TokenType::SlashAssign: is_assign = true; compound = BinaryOp::Div; break;
    case TokenType::PercentAssign: is_assign = true; compound = BinaryOp::Mod; break;
    case TokenType::ShlAssign: is_assign = true; compound = BinaryOp::Shl; break;
    case TokenType::ShrAssign: is_assign = true; compound = BinaryOp::Shr; break;
    default: break;
  }
  if (is_assign) {
    advance();
    if (dynamic_cast<VarRefExpr*>(expr.get()) == nullptr &&
        dynamic_cast<IndexExpr*>(expr.get()) == nullptr) {
      throw LangError("assignment target must be a variable or array element", loc);
    }
    auto node = make_node<AssignStmt>(loc);
    node->lvalue = std::move(expr);
    node->compound = compound;
    node->value = expression();
    expect(TokenType::Semicolon, "after assignment");
    return node;
  }

  auto node = make_node<ExprStmt>(loc);
  node->expr = std::move(expr);
  expect(TokenType::Semicolon, "after expression");
  return node;
}

// ---- expressions ---------------------------------------------------------------

ExprPtr Parser::expression() {
  NestingGuard guard(*this, peek().location);
  return logic_or();
}

ExprPtr Parser::logic_or() {
  ExprPtr lhs = logic_and();
  while (check(TokenType::OrOr)) {
    const SourceLocation loc = advance().location;
    auto node = make_node<BinaryExpr>(loc);
    node->op = BinaryOp::Or;
    node->lhs = std::move(lhs);
    node->rhs = logic_and();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::logic_and() {
  ExprPtr lhs = equality();
  while (check(TokenType::AndAnd)) {
    const SourceLocation loc = advance().location;
    auto node = make_node<BinaryExpr>(loc);
    node->op = BinaryOp::And;
    node->lhs = std::move(lhs);
    node->rhs = equality();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::equality() {
  ExprPtr lhs = comparison();
  while (check(TokenType::EqEq) || check(TokenType::NotEq)) {
    const Token& op = advance();
    auto node = make_node<BinaryExpr>(op.location);
    node->op = op.type == TokenType::EqEq ? BinaryOp::Eq : BinaryOp::Ne;
    node->lhs = std::move(lhs);
    node->rhs = comparison();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::comparison() {
  ExprPtr lhs = containment();
  for (;;) {
    BinaryOp op;
    switch (peek().type) {
      case TokenType::Lt: op = BinaryOp::Lt; break;
      case TokenType::LtEq: op = BinaryOp::Le; break;
      case TokenType::Gt: op = BinaryOp::Gt; break;
      case TokenType::GtEq: op = BinaryOp::Ge; break;
      default: return lhs;
    }
    const SourceLocation loc = advance().location;
    auto node = make_node<BinaryExpr>(loc);
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = containment();
    lhs = std::move(node);
  }
}

ExprPtr Parser::containment() {
  ExprPtr lhs = shift();
  while (check(TokenType::KwIn)) {
    const SourceLocation loc = advance().location;
    auto node = make_node<BinaryExpr>(loc);
    node->op = BinaryOp::In;
    node->lhs = std::move(lhs);
    node->rhs = shift();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::shift() {
  ExprPtr lhs = term();
  while (check(TokenType::Shl) || check(TokenType::Shr)) {
    const Token& op = advance();
    auto node = make_node<BinaryExpr>(op.location);
    node->op = op.type == TokenType::Shl ? BinaryOp::Shl : BinaryOp::Shr;
    node->lhs = std::move(lhs);
    node->rhs = term();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::term() {
  ExprPtr lhs = factor();
  while (check(TokenType::Plus) || check(TokenType::Minus)) {
    const Token& op = advance();
    auto node = make_node<BinaryExpr>(op.location);
    node->op = op.type == TokenType::Plus ? BinaryOp::Add : BinaryOp::Sub;
    node->lhs = std::move(lhs);
    node->rhs = factor();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::factor() {
  ExprPtr lhs = unary();
  for (;;) {
    BinaryOp op;
    switch (peek().type) {
      case TokenType::Star: op = BinaryOp::Mul; break;
      case TokenType::Slash: op = BinaryOp::Div; break;
      case TokenType::Percent: op = BinaryOp::Mod; break;
      default: return lhs;
    }
    const SourceLocation loc = advance().location;
    auto node = make_node<BinaryExpr>(loc);
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = unary();
    lhs = std::move(node);
  }
}

ExprPtr Parser::unary() {
  UnaryOp op;
  switch (peek().type) {
    case TokenType::Minus: op = UnaryOp::Neg; break;
    case TokenType::Bang: op = UnaryOp::Not; break;
    case TokenType::Tilde: op = UnaryOp::BitNot; break;
    default: return postfix();
  }
  const SourceLocation loc = advance().location;
  NestingGuard guard(*this, loc);  // "!!!!..." recurses without expression()
  auto node = make_node<UnaryExpr>(loc);
  node->op = op;
  node->operand = unary();
  return node;
}

ExprPtr Parser::postfix() {
  ExprPtr expr = primary();
  for (;;) {
    if (check(TokenType::LBracket)) {
      const SourceLocation loc = advance().location;
      auto node = make_node<IndexExpr>(loc);
      node->target = std::move(expr);
      node->index = expression();
      expect(TokenType::RBracket, "after index");
      expr = std::move(node);
    } else if (check(TokenType::LParen)) {
      auto* ref = dynamic_cast<VarRefExpr*>(expr.get());
      if (ref == nullptr) {
        throw LangError("only named functions can be called", peek().location);
      }
      const SourceLocation loc = advance().location;
      auto node = make_node<CallExpr>(loc);
      node->callee = ref->name;
      if (!check(TokenType::RParen)) {
        do {
          node->args.push_back(expression());
        } while (match(TokenType::Comma));
      }
      expect(TokenType::RParen, "after call arguments");
      expr = std::move(node);
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::primary() {
  const Token& token = peek();
  switch (token.type) {
    case TokenType::IntLit: {
      advance();
      auto node = make_node<IntLitExpr>(token.location);
      node->value = token.int_value;
      return node;
    }
    case TokenType::FloatLit: {
      advance();
      auto node = make_node<FloatLitExpr>(token.location);
      node->value = token.float_value;
      return node;
    }
    case TokenType::KwTrue: case TokenType::KwFalse: {
      advance();
      auto node = make_node<BoolLitExpr>(token.location);
      node->value = token.type == TokenType::KwTrue;
      return node;
    }
    case TokenType::StringLit: {
      advance();
      auto node = make_node<StringLitExpr>(token.location);
      node->value = token.text;
      return node;
    }
    case TokenType::QuantumIntLit: {
      advance();
      auto node = make_node<QuantumIntLitExpr>(token.location);
      node->value = token.int_value;
      return node;
    }
    case TokenType::QuantumStringLit: {
      advance();
      auto node = make_node<QuantumStringLitExpr>(token.location);
      node->bits = token.text;
      return node;
    }
    case TokenType::KetZero: case TokenType::KetOne:
    case TokenType::KetPlus: case TokenType::KetMinus: {
      advance();
      auto node = make_node<KetLitExpr>(token.location);
      switch (token.type) {
        case TokenType::KetZero: node->kind = KetKind::Zero; break;
        case TokenType::KetOne: node->kind = KetKind::One; break;
        case TokenType::KetPlus: node->kind = KetKind::Plus; break;
        default: node->kind = KetKind::Minus; break;
      }
      return node;
    }
    case TokenType::LBracket: {
      advance();
      auto node = make_node<ArrayLitExpr>(token.location);
      if (!check(TokenType::RBracket)) {
        do {
          node->elements.push_back(expression());
        } while (match(TokenType::Comma));
      }
      expect(TokenType::RBracket, "after array literal");
      // A trailing bare identifier `q` marks a superposition literal.
      if (check(TokenType::Identifier) && peek().text == "q") {
        advance();
        node->superposition = true;
      }
      return node;
    }
    case TokenType::Identifier: {
      advance();
      auto node = make_node<VarRefExpr>(token.location);
      node->name = token.text;
      return node;
    }
    case TokenType::KwMeasure: {
      // `measure(expr)` is the builtin call form; the statement keyword form
      // (`measure q;`) never reaches primary().
      if (peek(1).type != TokenType::LParen) break;
      advance();
      auto node = make_node<VarRefExpr>(token.location);
      node->name = "measure";
      return node;
    }
    case TokenType::LParen: {
      advance();
      ExprPtr inner = expression();
      expect(TokenType::RParen, "after parenthesized expression");
      return inner;
    }
    default:
      break;
  }
  throw LangError(std::string("unexpected ") + token_type_name(token.type) +
                      " in expression",
                  token.location);
}

Program parse(const std::string& source) {
  return Parser(tokenize(source)).parse_program();
}

}  // namespace qutes::lang
