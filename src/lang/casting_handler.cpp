#include "qutes/lang/casting_handler.hpp"

#include "qutes/common/bitops.hpp"

namespace qutes::lang {

std::size_t TypeCastingHandler::width_for_int(std::int64_t value) {
  if (value < 0) {
    throw LangError("negative values cannot be encoded into a quint", {});
  }
  return bits_for(static_cast<std::uint64_t>(value));
}

ValuePtr TypeCastingHandler::promote(const Value& classical, const std::string& name,
                                     std::size_t width_hint, SourceLocation loc) {
  switch (classical.kind()) {
    case TypeKind::Bool: {
      const QuantumRef ref = handler_.allocate(name, 1, TypeKind::Qubit);
      if (classical.as_bool()) handler_.encode_bits(ref, 1);
      return Value::make_quantum(ref);
    }
    case TypeKind::Int: {
      const std::int64_t v = classical.as_int();
      if (v < 0) throw LangError("cannot promote a negative int to quint", loc);
      const std::size_t width =
          width_hint > 0 ? width_hint : width_for_int(v);
      if (static_cast<std::uint64_t>(v) >= dim_of(width) && width < 64) {
        throw LangError("value " + std::to_string(v) + " does not fit quint<" +
                            std::to_string(width) + ">",
                        loc);
      }
      const QuantumRef ref = handler_.allocate(name, width, TypeKind::Quint);
      handler_.encode_bits(ref, static_cast<std::uint64_t>(v));
      return Value::make_quantum(ref);
    }
    case TypeKind::String: {
      const std::string& bits = classical.as_string();
      if (bits.empty()) throw LangError("cannot promote an empty string", loc);
      for (char c : bits) {
        if (c != '0' && c != '1') {
          throw LangError("only bitstrings promote to qustring", loc);
        }
      }
      const QuantumRef ref = handler_.allocate(name, bits.size(), TypeKind::Qustring);
      std::uint64_t value = 0;
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == '1') value = set_bit(value, i);
      }
      handler_.encode_bits(ref, value);
      return Value::make_quantum(ref);
    }
    default:
      throw LangError(std::string("cannot promote ") + classical.type().to_string() +
                          " to a quantum type",
                      loc);
  }
}

ValuePtr TypeCastingHandler::measure_to_classical(const Value& quantum) {
  const QuantumRef& ref = quantum.as_quantum();
  const std::uint64_t outcome = handler_.measure(ref);
  switch (ref.kind) {
    case TypeKind::Qubit:
      return Value::make_bool(outcome != 0);
    case TypeKind::Quint:
      return Value::make_int(static_cast<std::int64_t>(outcome));
    case TypeKind::Qustring: {
      std::string bits(ref.width, '0');
      for (std::size_t i = 0; i < ref.width; ++i) {
        if (test_bit(outcome, i)) bits[i] = '1';
      }
      return Value::make_string(std::move(bits));
    }
    default:
      throw LangError("internal: measuring a non-quantum reference", {});
  }
}

ValuePtr TypeCastingHandler::coerce(const ValuePtr& value, const QType& target,
                                    const std::string& name, SourceLocation loc) {
  const QType& source = value->type();
  if (target.kind == TypeKind::Void) {
    throw LangError("cannot bind a value to void", loc);
  }

  // Arrays: element kinds must agree exactly (element coercion happens when
  // the literal is evaluated against the declared type by the interpreter).
  if (target.is_array()) {
    if (!value->is_array()) {
      throw LangError("expected an array initializer for '" + name + "'", loc);
    }
    return value;
  }
  if (value->is_array()) {
    throw LangError("cannot assign an array to scalar '" + name + "'", loc);
  }

  // Quantum target.
  if (target.is_quantum()) {
    if (value->is_quantum()) {
      const QuantumRef& ref = value->as_quantum();
      // qubit -> quint widening is allowed (a 1-qubit register is a quint).
      const bool same = ref.kind == target.kind ||
                        (ref.kind == TypeKind::Qubit && target.kind == TypeKind::Quint);
      if (!same) {
        throw LangError("cannot bind " + source.to_string() + " to " +
                            target.to_string() + " '" + name + "'",
                        loc);
      }
      return value;  // alias — no cloning
    }
    // classical -> quantum: promotion (paper's TypeCastingHandler path).
    Value widened = *value;
    if (target.kind == TypeKind::Qubit && value->kind() == TypeKind::Int) {
      const std::int64_t v = value->as_int();
      if (v != 0 && v != 1) {
        throw LangError("only 0/1 promote to a qubit", loc);
      }
      widened = Value(QType::scalar(TypeKind::Bool), v != 0);
    }
    if (target.kind == TypeKind::Quint && value->kind() == TypeKind::Bool) {
      widened = Value(QType::scalar(TypeKind::Int),
                      static_cast<std::int64_t>(value->as_bool() ? 1 : 0));
    }
    const TypeKind want = promoted_kind(widened.kind());
    if (want != target.kind) {
      throw LangError("cannot promote " + source.to_string() + " to " +
                          target.to_string(),
                      loc);
    }
    return promote(widened, name, target.quint_width, loc);
  }

  // Classical target from quantum source: automatic measurement.
  ValuePtr classical = value;
  if (value->is_quantum()) classical = measure_to_classical(*value);

  // Classical conversions.
  if (classical->kind() == target.kind) return classical;
  switch (target.kind) {
    case TypeKind::Float:
      if (classical->kind() == TypeKind::Int) {
        return Value::make_float(classical->as_float());
      }
      break;
    case TypeKind::Int:
      if (classical->kind() == TypeKind::Bool) {
        return Value::make_int(classical->as_bool() ? 1 : 0);
      }
      break;
    case TypeKind::Bool:
      if (classical->kind() == TypeKind::Int) {
        return Value::make_bool(classical->as_int() != 0);
      }
      break;
    default:
      break;
  }
  throw LangError("cannot convert " + classical->type().to_string() + " to " +
                      target.to_string() + " for '" + name + "'",
                  loc);
}

bool TypeCastingHandler::condition_bool(const Value& value, SourceLocation loc) {
  if (value.is_quantum()) {
    const ValuePtr measured = measure_to_classical(value);
    return condition_bool(*measured, loc);
  }
  switch (value.kind()) {
    case TypeKind::Bool: return value.as_bool();
    case TypeKind::Int: return value.as_int() != 0;
    case TypeKind::Float: return value.as_float() != 0.0;
    case TypeKind::String: return !value.as_string().empty();
    default:
      throw LangError("cannot use " + value.type().to_string() + " as a condition",
                      loc);
  }
}

}  // namespace qutes::lang
