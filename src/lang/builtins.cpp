#include "qutes/lang/builtins.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qutes/algorithms/database.hpp"
#include "qutes/algorithms/entanglement.hpp"
#include "qutes/algorithms/qft.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/lang/runtime.hpp"

namespace qutes::lang {

namespace {

void need_args(const std::vector<ValuePtr>& args, std::size_t count, const char* name,
               SourceLocation loc) {
  if (args.size() != count) {
    throw LangError(std::string(name) + " expects " + std::to_string(count) +
                        " argument(s), got " + std::to_string(args.size()),
                    loc);
  }
}

const QuantumRef& quantum_arg(const std::vector<ValuePtr>& args, std::size_t i,
                              const char* name, SourceLocation loc) {
  if (!args[i]->is_quantum()) {
    throw LangError(std::string(name) + ": argument " + std::to_string(i + 1) +
                        " must be quantum",
                    loc);
  }
  return args[i]->as_quantum();
}

std::size_t single_qubit_arg(const std::vector<ValuePtr>& args, std::size_t i,
                             const char* name, SourceLocation loc) {
  const QuantumRef& ref = quantum_arg(args, i, name, loc);
  if (ref.width != 1) {
    throw LangError(std::string(name) + ": argument " + std::to_string(i + 1) +
                        " must be a single qubit",
                    loc);
  }
  return ref.offset;
}

double number_arg(Runtime& rt, const std::vector<ValuePtr>& args, std::size_t i,
                  const char* name, SourceLocation loc) {
  ValuePtr v = args[i];
  if (v->is_quantum()) v = rt.casting().measure_to_classical(*v);
  if (v->kind() != TypeKind::Int && v->kind() != TypeKind::Float) {
    throw LangError(std::string(name) + ": argument " + std::to_string(i + 1) +
                        " must be a number",
                    loc);
  }
  return v->as_float();
}

circ::Instruction make_gate(circ::GateType type, std::vector<std::size_t> qubits,
                            std::vector<double> params = {}) {
  circ::Instruction in;
  in.type = type;
  in.qubits = std::move(qubits);
  in.params = std::move(params);
  return in;
}

/// Every qubit across a set of quantum/array arguments, flattened.
std::vector<std::size_t> flatten_qubits(Runtime& rt,
                                        const std::vector<ValuePtr>& args,
                                        const char* name, SourceLocation loc) {
  std::vector<std::size_t> qubits;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::vector<ValuePtr> expand;
    if (args[i]->is_array()) {
      expand = args[i]->as_array().items;
    } else {
      expand.push_back(args[i]);
    }
    for (const ValuePtr& v : expand) {
      if (!v->is_quantum()) {
        throw LangError(std::string(name) + ": operands must be quantum", loc);
      }
      for (std::size_t q : QuantumCircuitHandler::qubits_of(v->as_quantum())) {
        qubits.push_back(q);
      }
    }
  }
  (void)rt;
  return qubits;
}

std::map<std::string, BuiltinFn> build_table() {
  std::map<std::string, BuiltinFn> table;

  // ---- two/three-qubit gates ------------------------------------------------
  table["cx"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                   SourceLocation loc) -> ValuePtr {
    need_args(args, 2, "cx", loc);
    rt.handler().apply(make_gate(circ::GateType::CX,
                                     {single_qubit_arg(args, 0, "cx", loc),
                                      single_qubit_arg(args, 1, "cx", loc)}));
    return Value::make_void();
  };
  table["cz"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                   SourceLocation loc) -> ValuePtr {
    need_args(args, 2, "cz", loc);
    rt.handler().apply(make_gate(circ::GateType::CZ,
                                     {single_qubit_arg(args, 0, "cz", loc),
                                      single_qubit_arg(args, 1, "cz", loc)}));
    return Value::make_void();
  };
  table["ccx"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                    SourceLocation loc) -> ValuePtr {
    need_args(args, 3, "ccx", loc);
    rt.handler().apply(make_gate(circ::GateType::CCX,
                                     {single_qubit_arg(args, 0, "ccx", loc),
                                      single_qubit_arg(args, 1, "ccx", loc),
                                      single_qubit_arg(args, 2, "ccx", loc)}));
    return Value::make_void();
  };
  table["swapq"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                      SourceLocation loc) -> ValuePtr {
    need_args(args, 2, "swapq", loc);
    rt.handler().swap(single_qubit_arg(args, 0, "swapq", loc),
                          single_qubit_arg(args, 1, "swapq", loc));
    return Value::make_void();
  };
  table["mcz"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                    SourceLocation loc) -> ValuePtr {
    const std::vector<std::size_t> qubits = flatten_qubits(rt, args, "mcz", loc);
    if (qubits.size() < 2) throw LangError("mcz needs at least 2 qubits", loc);
    circ::Instruction in;
    in.type = circ::GateType::MCZ;
    in.qubits = qubits;
    rt.handler().apply(std::move(in));
    return Value::make_void();
  };

  // ---- parameterized single-qubit rotations ----------------------------------
  // When the angle argument came from `param(...)` (still carrying its
  // parameter tag), the logged instruction records the symbolic reference so
  // the exported circuit stays rebindable; the live state still uses the
  // current binding.
  const auto rotation = [](circ::GateType type, const char* name) {
    return [type, name](Runtime& rt, std::vector<ValuePtr>& args,
                        SourceLocation loc) -> ValuePtr {
      need_args(args, 2, name, loc);
      const int pref = args[0]->param_index();
      const double theta = number_arg(rt, args, 0, name, loc);
      const QuantumRef& ref = quantum_arg(args, 1, name, loc);
      for (std::size_t q : QuantumCircuitHandler::qubits_of(ref)) {
        circ::Instruction in = make_gate(type, {q}, {theta});
        if (pref >= 0) in.param_refs = {pref};
        rt.handler().apply(std::move(in));
      }
      return Value::make_void();
    };
  };
  table["rx"] = rotation(circ::GateType::RX, "rx");
  table["ry"] = rotation(circ::GateType::RY, "ry");
  table["rz"] = rotation(circ::GateType::RZ, "rz");
  table["p"] = rotation(circ::GateType::P, "p");

  // ---- symbolic parameters ----------------------------------------------------
  table["param"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                      SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "param", loc);
    if (args[0]->kind() != TypeKind::String) {
      throw LangError("param: argument 1 must be a string name", loc);
    }
    return rt.declare_param(args[0]->as_string(), loc);
  };

  // ---- measurement & conversion ----------------------------------------------
  table["measure"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                        SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "measure", loc);
    if (!args[0]->is_quantum()) return args[0];  // already classical: identity
    return rt.casting().measure_to_classical(*args[0]);
  };

  // ---- structure / library ---------------------------------------------------
  table["bell"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                     SourceLocation loc) -> ValuePtr {
    need_args(args, 2, "bell", loc);
    const std::size_t a = single_qubit_arg(args, 0, "bell", loc);
    const std::size_t b = single_qubit_arg(args, 1, "bell", loc);
    rt.handler().apply(make_gate(circ::GateType::H, {a}));
    rt.handler().apply(make_gate(circ::GateType::CX, {a, b}));
    return Value::make_void();
  };
  table["qft"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                    SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "qft", loc);
    const QuantumRef& ref = quantum_arg(args, 0, "qft", loc);
    circ::QuantumCircuit sub(
        std::max<std::size_t>(rt.handler().num_qubits(), 1));
    algo::append_qft(sub, QuantumCircuitHandler::qubits_of(ref));
    for (const auto& in : sub.instructions()) rt.handler().apply(in);
    return Value::make_void();
  };
  table["iqft"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                     SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "iqft", loc);
    const QuantumRef& ref = quantum_arg(args, 0, "iqft", loc);
    circ::QuantumCircuit sub(
        std::max<std::size_t>(rt.handler().num_qubits(), 1));
    algo::append_iqft(sub, QuantumCircuitHandler::qubits_of(ref));
    for (const auto& in : sub.instructions()) rt.handler().apply(in);
    return Value::make_void();
  };

  table["indexof"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                        SourceLocation loc) -> ValuePtr {
    need_args(args, 2, "indexof", loc);
    return rt.index_of(args[0], args[1], loc);
  };

  // ---- database operations (paper §6 future work, implemented) ---------------
  const auto int_table = [](Runtime& rt, const ValuePtr& arg,
                            const char* name, SourceLocation loc) {
    if (!arg->is_array()) {
      throw LangError(std::string(name) + " expects an int array", loc);
    }
    std::vector<std::uint64_t> values;
    for (const ValuePtr& item : arg->as_array().items) {
      ValuePtr v = item;
      if (v->is_quantum()) v = rt.casting().measure_to_classical(*v);
      const std::int64_t i = v->as_int();
      if (i < 0) {
        throw LangError(std::string(name) + ": entries must be non-negative", loc);
      }
      values.push_back(static_cast<std::uint64_t>(i));
    }
    if (values.empty()) {
      throw LangError(std::string(name) + ": empty array", loc);
    }
    return values;
  };
  table["qmin"] = [int_table](Runtime& rt, std::vector<ValuePtr>& args,
                              SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "qmin", loc);
    const auto values = int_table(rt, args[0], "qmin", loc);
    const auto result =
        algo::find_minimum(values, rt.handler().rng()());
    return Value::make_int(static_cast<std::int64_t>(result.value));
  };
  table["qmax"] = [int_table](Runtime& rt, std::vector<ValuePtr>& args,
                              SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "qmax", loc);
    const auto values = int_table(rt, args[0], "qmax", loc);
    const auto result =
        algo::find_maximum(values, rt.handler().rng()());
    return Value::make_int(static_cast<std::int64_t>(result.value));
  };
  table["qsearch"] = [int_table](Runtime& rt, std::vector<ValuePtr>& args,
                                 SourceLocation loc) -> ValuePtr {
    // Grover equality search over an int array: returns the index of a
    // matching entry (-1 if absent). The search circuit is inlined into the
    // program circuit like the `in` operator's.
    need_args(args, 2, "qsearch", loc);
    const auto values = int_table(rt, args[0], "qsearch", loc);
    ValuePtr key_value = args[1];
    if (key_value->is_quantum()) {
      key_value = rt.casting().measure_to_classical(*key_value);
    }
    const std::int64_t key_signed = key_value->as_int();
    if (key_signed < 0) return Value::make_int(-1);
    const auto key = static_cast<std::uint64_t>(key_signed);

    const algo::QuantumDatabase db(values);
    const circ::QuantumCircuit sub = db.build_equal_circuit(key);
    const std::uint64_t clbits = rt.handler().compose_inline(sub, "qsearch");
    const std::uint64_t pos = clbits & (dim_of(db.index_qubits()) - 1);
    const bool hit = pos < values.size() && values[pos] == key;
    return Value::make_int(hit ? static_cast<std::int64_t>(pos) : -1);
  };

  // ---- debugging tools (paper §6: "quantum specific debugging tools") ---------
  table["dump_state"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                           SourceLocation loc) -> ValuePtr {
    need_args(args, 0, "dump_state", loc);
    if (!rt.handler().has_state()) return Value::make_string("(no qubits)");
    const auto& state = rt.handler().state();
    std::ostringstream out;
    out.precision(4);
    bool first = true;
    for (std::uint64_t i = 0; i < state.dim(); ++i) {
      const auto a = state.amplitude(i);
      if (std::norm(a) < 1e-12) continue;
      if (!first) out << " + ";
      first = false;
      out << "(" << a.real() << (a.imag() < 0 ? "-" : "+")
          << std::abs(a.imag()) << "i)|"
          << to_bitstring(i, state.num_qubits()) << ">";
    }
    return Value::make_string(first ? "0" : out.str());
  };
  table["prob"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                     SourceLocation loc) -> ValuePtr {
    // Non-destructive P(qubit = 1): a debugger read of the live state, NOT a
    // measurement (no collapse, nothing appended to the circuit).
    need_args(args, 1, "prob", loc);
    const std::size_t q = single_qubit_arg(args, 0, "prob", loc);
    return Value::make_float(rt.handler().state().probability_one(q));
  };

  // ---- introspection -----------------------------------------------------------
  // ---- array utilities ---------------------------------------------------------
  table["range"] = [](Runtime&, std::vector<ValuePtr>& args,
                      SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "range", loc);
    const std::int64_t n = args[0]->as_int();
    if (n < 0 || n > 1'000'000) throw LangError("range: bad length", loc);
    std::vector<ValuePtr> items;
    items.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) items.push_back(Value::make_int(i));
    return Value::make_array(TypeKind::Int, std::move(items));
  };
  table["append"] = [](Runtime&, std::vector<ValuePtr>& args,
                       SourceLocation loc) -> ValuePtr {
    // Mutates the array in place (arrays are reference values), returns it.
    need_args(args, 2, "append", loc);
    if (!args[0]->is_array()) throw LangError("append: first arg must be an array", loc);
    auto& arr = args[0]->as_array();
    if (arr.element == TypeKind::Void) arr.element = args[1]->kind();
    arr.items.push_back(args[1]);
    return args[0];
  };
  table["reverse"] = [](Runtime&, std::vector<ValuePtr>& args,
                        SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "reverse", loc);
    if (!args[0]->is_array()) throw LangError("reverse: needs an array", loc);
    auto& arr = args[0]->as_array();
    std::reverse(arr.items.begin(), arr.items.end());
    return args[0];
  };

  table["len"] = [](Runtime&, std::vector<ValuePtr>& args,
                    SourceLocation loc) -> ValuePtr {
    need_args(args, 1, "len", loc);
    const ValuePtr& v = args[0];
    if (v->is_array()) {
      return Value::make_int(static_cast<std::int64_t>(v->as_array().items.size()));
    }
    if (v->kind() == TypeKind::String) {
      return Value::make_int(static_cast<std::int64_t>(v->as_string().size()));
    }
    if (v->is_quantum()) {
      return Value::make_int(static_cast<std::int64_t>(v->as_quantum().width));
    }
    throw LangError("len: unsupported operand", loc);
  };
  table["width"] = table["len"];
  table["depth"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                      SourceLocation loc) -> ValuePtr {
    need_args(args, 0, "depth", loc);
    return Value::make_int(
        static_cast<std::int64_t>(rt.handler().circuit().depth()));
  };
  table["gate_count"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                           SourceLocation loc) -> ValuePtr {
    need_args(args, 0, "gate_count", loc);
    return Value::make_int(
        static_cast<std::int64_t>(rt.handler().circuit().gate_count()));
  };
  table["num_qubits"] = [](Runtime& rt, std::vector<ValuePtr>& args,
                           SourceLocation loc) -> ValuePtr {
    need_args(args, 0, "num_qubits", loc);
    return Value::make_int(static_cast<std::int64_t>(rt.handler().num_qubits()));
  };

  return table;
}

}  // namespace

const std::map<std::string, BuiltinFn>& builtin_table() {
  static const std::map<std::string, BuiltinFn> table = build_table();
  return table;
}

bool is_builtin(const std::string& name) {
  return builtin_table().count(name) > 0;
}

}  // namespace qutes::lang
