#include "qutes/lang/symbol_table.hpp"

namespace qutes::lang {

Symbol& Scope::declare(const std::string& name, QType type, SourceLocation loc) {
  const auto [it, inserted] = symbols_.try_emplace(name, Symbol{name, type, loc, nullptr});
  if (!inserted) {
    throw LangError("redeclaration of '" + name + "' (first declared at " +
                        it->second.declared_at.to_string() + ")",
                    loc);
  }
  return it->second;
}

Symbol* Scope::lookup(const std::string& name) {
  for (Scope* scope = this; scope != nullptr; scope = scope->parent_.get()) {
    const auto it = scope->symbols_.find(name);
    if (it != scope->symbols_.end()) return &it->second;
  }
  return nullptr;
}

Symbol* Scope::lookup_local(const std::string& name) {
  const auto it = symbols_.find(name);
  return it != symbols_.end() ? &it->second : nullptr;
}

void FunctionTable::declare(FuncDeclStmt& decl) {
  const auto [it, inserted] = functions_.try_emplace(decl.name, &decl);
  if (!inserted) {
    throw LangError("redefinition of function '" + decl.name + "'", decl.location);
  }
}

FuncDeclStmt* FunctionTable::lookup(const std::string& name) const {
  const auto it = functions_.find(name);
  return it != functions_.end() ? it->second : nullptr;
}

}  // namespace qutes::lang
