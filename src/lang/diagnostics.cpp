#include "qutes/lang/diagnostics.hpp"

#include <sstream>

namespace qutes::lang {

std::string Diagnostic::to_string() const {
  const char* tag = severity == Severity::Error ? "error"
                    : severity == Severity::Warning ? "warning"
                                                    : "note";
  std::ostringstream out;
  out << location.to_string() << ": " << tag << ": " << message;
  return out.str();
}

void DiagnosticEngine::report(Severity severity, std::string message,
                              SourceLocation location) {
  if (severity == Severity::Error) ++error_count_;
  diagnostics_.push_back(Diagnostic{severity, std::move(message), location});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics_) out << d.to_string() << "\n";
  return out.str();
}

}  // namespace qutes::lang
