#include "qutes/lang/vm.hpp"

#include "qutes/obs/obs.hpp"

namespace qutes::lang {

namespace {
/// Free-list depth: deep enough to cover every live scalar temporary of a
/// realistic expression, small enough to pin negligible memory.
constexpr std::size_t kFreeCellCap = 32;
}  // namespace

Vm::Vm(const Bytecode& bytecode, VmOptions options)
    : bc_(bytecode),
      runtime_(options.seed, options.echo),
      builtin_cache_(bytecode.strings.size(), nullptr) {
  runtime_.set_bind_params(std::move(options.bind_params),
                           options.allow_unbound_params);
  free_cells_.reserve(kFreeCellCap);  // recycle() never reallocates
}

Vm::Frame Vm::make_frame(const Chunk& chunk, std::uint32_t call_loc) const {
  Frame frame;
  frame.chunk = &chunk;
  frame.slots.resize(chunk.num_slots);
  frame.declared.assign(chunk.num_slots, 0);
  frame.declared_at.assign(chunk.num_slots, 0);
  frame.loops.assign(chunk.num_loops, 0);
  frame.iters.resize(chunk.num_iters);
  frame.call_loc = call_loc;
  return frame;
}

ValuePtr Vm::pop(std::uint32_t loc_idx) {
  if (stack_.empty()) {
    throw LangError("bytecode: stack underflow", loc_of(loc_idx));
  }
  ValuePtr v = std::move(stack_.back());
  stack_.pop_back();
  return v;
}

ValuePtr& Vm::peek(std::uint32_t loc_idx) {
  if (stack_.empty()) {
    throw LangError("bytecode: stack underflow", loc_of(loc_idx));
  }
  return stack_.back();
}

void Vm::push_scalar(Value&& scratch) {
  if (free_cells_.empty()) {
    stack_.push_back(std::make_shared<Value>(std::move(scratch)));
    return;
  }
  ValuePtr cell = std::move(free_cells_.back());
  free_cells_.pop_back();
  *cell = std::move(scratch);
  stack_.push_back(std::move(cell));
}

void Vm::push_int(std::int64_t v) {
  push_scalar(Value(QType::scalar(TypeKind::Int), v));
}

void Vm::push_bool(bool v) {
  push_scalar(Value(QType::scalar(TypeKind::Bool), v));
}

void Vm::recycle(ValuePtr&& v) noexcept {
  // use_count()==1 proves the cell is unaliased: variables and containers
  // hold values by shared_ptr, so any capture shows up in the count. Only
  // plain scalars are pooled — strings pin buffers, arrays/quantum refs
  // carry structure worth letting go.
  if (!v || v.use_count() != 1 || free_cells_.size() >= kFreeCellCap) return;
  switch (v->kind()) {
    case TypeKind::Bool:
    case TypeKind::Int:
    case TypeKind::Float:
      free_cells_.push_back(std::move(v));
      break;
    default:
      break;
  }
}

void Vm::assign_scalar_or_plain(const ValuePtr& slot, const ValuePtr& rhs,
                                std::uint32_t loc_idx) {
  // Same-kind classical scalar assignment: Runtime::assign_plain's coerce is
  // an identity here (matching classical kinds return the value unchanged),
  // so it reduces to copying the variant into the slot's own cell.
  const TypeKind k = slot->kind();
  if ((k == TypeKind::Int || k == TypeKind::Bool || k == TypeKind::Float) &&
      !slot->is_array() && rhs->kind() == k && !rhs->is_array()) {
    slot->assign(*rhs);
    return;
  }
  runtime_.assign_plain(slot, rhs, loc_of(loc_idx));
}

bool Vm::try_int_binary(BinaryOp op, const ValuePtr& lhs, const ValuePtr& rhs,
                        std::uint32_t loc_idx) {
  if (lhs->kind() != TypeKind::Int || rhs->kind() != TypeKind::Int) {
    return false;
  }
  const std::int64_t a = lhs->as_int();
  const std::int64_t b = rhs->as_int();
  // Mirrors the int branch of Runtime::classical_binary exactly — wraparound
  // two's-complement arithmetic through uint64_t and identical error strings
  // — so taking this path is observationally indistinguishable from the
  // Runtime call it skips.
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case BinaryOp::Add: push_int(static_cast<std::int64_t>(ua + ub)); return true;
    case BinaryOp::Sub: push_int(static_cast<std::int64_t>(ua - ub)); return true;
    case BinaryOp::Mul: push_int(static_cast<std::int64_t>(ua * ub)); return true;
    case BinaryOp::Div:
      if (b == 0) throw LangError("division by zero", loc_of(loc_idx));
      if (b == -1) {
        push_int(static_cast<std::int64_t>(std::uint64_t{0} - ua));
        return true;
      }
      push_int(a / b);
      return true;
    case BinaryOp::Mod:
      if (b == 0) throw LangError("modulo by zero", loc_of(loc_idx));
      if (b == -1) {
        push_int(0);
        return true;
      }
      push_int(a % b);
      return true;
    case BinaryOp::Shl:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc_of(loc_idx));
      push_int(a << b);
      return true;
    case BinaryOp::Shr:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc_of(loc_idx));
      push_int(a >> b);
      return true;
    case BinaryOp::Eq: push_bool(a == b); return true;
    case BinaryOp::Ne: push_bool(a != b); return true;
    case BinaryOp::Lt: push_bool(a < b); return true;
    case BinaryOp::Le: push_bool(a <= b); return true;
    case BinaryOp::Gt: push_bool(a > b); return true;
    case BinaryOp::Ge: push_bool(a >= b); return true;
    case BinaryOp::And: push_bool(a != 0 && b != 0); return true;
    case BinaryOp::Or: push_bool(a != 0 || b != 0); return true;
    default:
      return false;  // `in`, unknown ops: let the Runtime diagnose
  }
}

const BuiltinFn& Vm::builtin_of(std::uint32_t name_idx, std::uint32_t loc_idx) {
  const BuiltinFn*& cached = builtin_cache_[name_idx];
  if (cached == nullptr) {
    const auto& table = builtin_table();
    const auto it = table.find(bc_.strings[name_idx]);
    if (it == table.end()) {
      throw LangError("bytecode: unknown builtin '" + bc_.strings[name_idx] + "'",
                      loc_of(loc_idx));
    }
    cached = &it->second;
  }
  return *cached;
}

void Vm::run() {
  obs::Span span("lang.vm");
  std::uint64_t steps = 0;
  struct StepsRecorder {
    std::uint64_t& steps;
    ~StepsRecorder() {
      obs::metrics().counter(obs::names::kLangVmSteps).add(steps);
    }
  } recorder{steps};
  frames_.push_back(make_frame(bc_.chunks.front(), 0));
  exec_loop(steps);
}

void Vm::exec_loop(std::uint64_t& steps) {
  Frame* fr = &frames_.back();
  const std::vector<Instr>* code = &fr->chunk->code;
  const auto refresh = [&] {
    fr = &frames_.back();
    code = &fr->chunk->code;
  };

  // Pop the current frame and hand `value` back through the callee's
  // return-type coercion (tree-walk: call_user_function's epilogue).
  // Returns false when the popped frame was the top level.
  const auto do_return = [&](ValuePtr value) -> bool {
    Frame done = std::move(frames_.back());
    frames_.pop_back();
    if (frames_.empty()) return false;  // top level finished
    --call_depth_;
    const Chunk& ck = *done.chunk;
    const QType& rtype = bc_.types[ck.return_type];
    if (rtype.kind == TypeKind::Void) {
      stack_.push_back(Value::make_void());
    } else {
      stack_.push_back(runtime_.casting().coerce(
          value, rtype, bc_.strings[ck.name] + "() result",
          loc_of(done.call_loc)));
    }
    refresh();
    return true;
  };

  for (;;) {
    if (fr->pc >= code->size()) {
      // Only the top-level chunk ends without an explicit Return.
      if (!do_return(Value::make_void())) return;
      continue;
    }
    const Instr& in = (*code)[fr->pc++];
    ++steps;
    switch (in.op) {
      case Op::PushInt:
        push_int(in.a);
        break;
      case Op::PushFloat:
        push_scalar(Value(QType::scalar(TypeKind::Float), bc_.floats[in.b]));
        break;
      case Op::PushBool:
        push_bool(in.a != 0);
        break;
      case Op::PushString:
        stack_.push_back(Value::make_string(bc_.strings[in.b]));
        break;
      case Op::Pop:
        recycle(pop(in.loc));
        break;

      case Op::QuintLit:
        stack_.push_back(runtime_.quantum_int_lit(in.a, loc_of(in.loc)));
        break;
      case Op::QustringLit:
        stack_.push_back(
            runtime_.quantum_string_lit(bc_.strings[in.b], loc_of(in.loc)));
        break;
      case Op::KetState:
        stack_.push_back(runtime_.ket_lit(static_cast<KetKind>(in.a)));
        break;

      case Op::SupBegin:
        sups_.emplace_back();
        break;
      case Op::SupElem: {
        if (sups_.empty()) {
          throw LangError("bytecode: stray literal-builder op", loc_of(in.loc));
        }
        const ValuePtr element = pop(in.loc);
        runtime_.sup_element(sups_.back(), element, loc_of(in.loc));
        break;
      }
      case Op::SupEnd: {
        if (sups_.empty()) {
          throw LangError("bytecode: stray literal-builder op", loc_of(in.loc));
        }
        stack_.push_back(runtime_.sup_finish(sups_.back(), loc_of(in.loc)));
        sups_.pop_back();
        break;
      }
      case Op::ArrBegin:
        arrs_.emplace_back();
        break;
      case Op::ArrElem: {
        if (arrs_.empty()) {
          throw LangError("bytecode: stray literal-builder op", loc_of(in.loc));
        }
        Runtime::arr_element(arrs_.back(), pop(in.loc), loc_of(in.loc));
        break;
      }
      case Op::ArrEnd: {
        if (arrs_.empty()) {
          throw LangError("bytecode: stray literal-builder op", loc_of(in.loc));
        }
        Runtime::ArrBuilder builder = std::move(arrs_.back());
        arrs_.pop_back();
        stack_.push_back(
            Value::make_array(builder.element, std::move(builder.items)));
        break;
      }

      case Op::LoadLocal:
      case Op::LoadGlobal: {
        Frame& owner = in.op == Op::LoadGlobal ? frames_.front() : *fr;
        const ValuePtr& v = owner.slots[in.b];
        if (!v) {
          throw LangError(
              "use of undeclared variable '" +
                  bc_.strings[owner.chunk->slot_names[in.b]] + "'",
              loc_of(in.loc));
        }
        stack_.push_back(v);
        break;
      }
      case Op::CheckLocal:
      case Op::CheckGlobal: {
        Frame& owner = in.op == Op::CheckGlobal ? frames_.front() : *fr;
        if (!owner.slots[in.b]) {
          throw LangError(
              "assignment to undeclared variable '" +
                  bc_.strings[owner.chunk->slot_names[in.b]] + "'",
              loc_of(in.loc));
        }
        break;
      }
      case Op::AssignLocal:
      case Op::AssignGlobal: {
        ValuePtr rhs = pop(in.loc);
        Frame& owner = in.op == Op::AssignGlobal ? frames_.front() : *fr;
        const ValuePtr& slot = owner.slots[in.b];
        if (!slot) {
          throw LangError(
              "assignment to undeclared variable '" +
                  bc_.strings[owner.chunk->slot_names[in.b]] + "'",
              loc_of(in.loc));
        }
        assign_scalar_or_plain(slot, rhs, in.loc);
        recycle(std::move(rhs));  // assign copies into the slot's own cell
        break;
      }
      case Op::CompoundLocal:
      case Op::CompoundGlobal: {
        ValuePtr rhs = pop(in.loc);
        Frame& owner = in.op == Op::CompoundGlobal ? frames_.front() : *fr;
        const std::string& name = bc_.strings[owner.chunk->slot_names[in.b]];
        const ValuePtr& slot = owner.slots[in.b];
        if (!slot) {
          throw LangError("assignment to undeclared variable '" + name + "'",
                          loc_of(in.loc));
        }
        runtime_.compound_assign(name, slot, static_cast<BinaryOp>(in.a), rhs,
                                 loc_of(in.loc));
        recycle(std::move(rhs));
        break;
      }

      case Op::CheckIndexTarget: {
        const ValuePtr& target = peek(in.loc);
        if (!target->is_array()) {
          throw LangError("only array elements can be assigned by index",
                          loc_of(in.loc));
        }
        break;
      }
      case Op::IndexPrep: {
        ValuePtr index_v = pop(in.loc);
        const ValuePtr& target = peek(in.loc);
        const std::int64_t index = runtime_.classical_of(index_v)->as_int();
        const auto& arr = target->as_array();
        if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
          throw LangError("array index out of range", loc_of(in.loc));
        }
        recycle(std::move(index_v));
        push_int(index);
        break;
      }
      case Op::AssignIndex:
      case Op::CompoundIndex: {
        ValuePtr rhs = pop(in.loc);
        ValuePtr index_v = pop(in.loc);
        ValuePtr target = pop(in.loc);
        // Re-check: the rhs ran with the array reachable and may have
        // resized it (the tree-walk holds a raw element reference across
        // that window — undefined; the VM stays defined and re-indexes).
        const std::int64_t index = index_v->as_int();
        auto& arr = target->as_array();
        if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
          throw LangError("array index out of range", loc_of(in.loc));
        }
        const ValuePtr& item = arr.items[static_cast<std::size_t>(index)];
        if (in.op == Op::CompoundIndex) {
          runtime_.compound_assign("<element>", item,
                                   static_cast<BinaryOp>(in.a), rhs,
                                   loc_of(in.loc));
        } else {
          assign_scalar_or_plain(item, rhs, in.loc);
        }
        recycle(std::move(rhs));
        recycle(std::move(index_v));
        break;
      }
      case Op::IndexGet: {
        ValuePtr index_v = pop(in.loc);
        ValuePtr target = pop(in.loc);
        stack_.push_back(runtime_.index_value(target, index_v, loc_of(in.loc)));
        recycle(std::move(index_v));
        break;
      }

      case Op::Declare:
      case Op::BindInit:
      case Op::DeclareDefault:
      case Op::DeclarePromoteInt:
      case Op::DeclarePromoteString: {
        const std::string& name = bc_.strings[fr->chunk->slot_names[in.b]];
        if (in.op != Op::BindInit) {
          // Scope::declare's redeclaration rule, slot-indexed.
          if (fr->declared[in.b]) {
            throw LangError("redeclaration of '" + name +
                                "' (first declared at " +
                                loc_of(fr->declared_at[in.b]).to_string() + ")",
                            loc_of(in.loc));
          }
          fr->declared[in.b] = 1;
          fr->declared_at[in.b] = in.loc;
          fr->slots[in.b] = nullptr;
        }
        const QType& type = bc_.types[in.c];
        switch (in.op) {
          case Op::Declare:
            break;  // value bound by the BindInit after the initializer
          case Op::BindInit: {
            const ValuePtr init = pop(in.loc);
            fr->slots[in.b] =
                runtime_.bind_decl_init(init, type, name, loc_of(in.loc));
            break;
          }
          case Op::DeclareDefault:
            fr->slots[in.b] = runtime_.default_init(type, name, loc_of(in.loc));
            break;
          case Op::DeclarePromoteInt: {
            const Value classical(QType::scalar(TypeKind::Int), in.a);
            fr->slots[in.b] = runtime_.casting().promote(
                classical, name, type.quint_width, loc_of(in.loc));
            break;
          }
          case Op::DeclarePromoteString: {
            const Value classical(QType::scalar(TypeKind::String),
                                  bc_.strings[static_cast<std::uint32_t>(in.a)]);
            fr->slots[in.b] =
                runtime_.casting().promote(classical, name, 0, loc_of(in.loc));
            break;
          }
          default:
            break;
        }
        break;
      }
      case Op::ScopeExit:
        for (const std::uint32_t slot : fr->chunk->scopes[in.b]) {
          fr->slots[slot] = nullptr;
          fr->declared[slot] = 0;
          fr->declared_at[slot] = 0;
        }
        break;

      case Op::UnaryApply: {
        ValuePtr v = pop(in.loc);
        stack_.push_back(
            runtime_.unary(static_cast<UnaryOp>(in.a), v, loc_of(in.loc)));
        // Push before recycling: the result may BE the operand (in-place
        // quantum ops return it), and the alias then keeps use_count > 1.
        recycle(std::move(v));
        break;
      }
      case Op::BinaryApply: {
        ValuePtr rhs = pop(in.loc);
        ValuePtr lhs = pop(in.loc);
        const auto op = static_cast<BinaryOp>(in.a);
        if (!try_int_binary(op, lhs, rhs, in.loc)) {
          stack_.push_back(runtime_.evaluate_binary(op, lhs, rhs,
                                                    loc_of(in.loc)));
        }
        recycle(std::move(lhs));
        recycle(std::move(rhs));
        break;
      }
      case Op::ToBool: {
        ValuePtr v = pop(in.loc);
        const bool truthy =
            runtime_.casting().condition_bool(*v, loc_of(in.loc));
        recycle(std::move(v));
        push_bool(truthy);
        break;
      }

      case Op::Jump:
        fr->pc = static_cast<std::size_t>(in.a);
        break;
      case Op::JumpIfFalse: {
        ValuePtr v = pop(in.loc);
        const bool truthy =
            runtime_.casting().condition_bool(*v, loc_of(in.loc));
        recycle(std::move(v));
        if (!truthy) fr->pc = static_cast<std::size_t>(in.a);
        break;
      }
      case Op::JumpIfFalsePeek:
        if (!peek(in.loc)->as_bool()) fr->pc = static_cast<std::size_t>(in.a);
        break;
      case Op::JumpIfTruePeek:
        if (peek(in.loc)->as_bool()) fr->pc = static_cast<std::size_t>(in.a);
        break;
      case Op::LoopReset:
        fr->loops[in.b] = 0;
        break;
      case Op::LoopBump:
        if (++fr->loops[in.b] > kMaxWhileIterations) {
          throw LangError("while loop exceeded the iteration budget",
                          loc_of(in.loc));
        }
        break;
      case Op::ForeachInit: {
        const ValuePtr iterable = pop(in.loc);
        fr->iters[in.b] = {runtime_.iterate_items(iterable, loc_of(in.loc)), 0};
        break;
      }
      case Op::ForeachNext: {
        Frame::Iter& iter = fr->iters[in.b];
        if (iter.next >= iter.items.size()) {
          iter = {};
          fr->pc = static_cast<std::size_t>(in.a);
        } else {
          fr->slots[in.c] = iter.items[iter.next++];
          fr->declared[in.c] = 1;
          fr->declared_at[in.c] = in.loc;
        }
        break;
      }

      case Op::CallBuiltin: {
        const auto argc = static_cast<std::size_t>(in.a);
        std::vector<ValuePtr> args(argc);
        for (std::size_t i = argc; i-- > 0;) args[i] = pop(in.loc);
        const BuiltinFn& fn = builtin_of(in.b, in.loc);
        ValuePtr result = fn(runtime_, args, loc_of(in.loc));
        if (!result) result = Value::make_void();
        stack_.push_back(std::move(result));
        break;
      }
      case Op::CallUser: {
        const Chunk& callee = bc_.chunks[in.b];
        const std::string& fname = bc_.strings[callee.name];
        const auto argc = static_cast<std::size_t>(in.a);
        if (argc != callee.params.size()) {
          throw LangError("function '" + fname + "' expects " +
                              std::to_string(callee.params.size()) +
                              " arguments, got " + std::to_string(argc),
                          loc_of(in.loc));
        }
        if (++call_depth_ > kMaxCallDepth) {
          --call_depth_;
          throw LangError(
              "call depth exceeded (" + std::to_string(kMaxCallDepth) + ")",
              loc_of(in.loc));
        }
        std::vector<ValuePtr> args(argc);
        for (std::size_t i = argc; i-- > 0;) args[i] = pop(in.loc);
        Frame frame = make_frame(callee, in.loc);
        for (std::size_t i = 0; i < argc; ++i) {
          // The reference binds parameters in order and trips the
          // redeclaration error when it reaches a duplicate name — after
          // coercing (possibly measuring) the earlier arguments.
          if (callee.duplicate_param && *callee.duplicate_param == i) {
            throw LangError(
                "redeclaration of '" + bc_.strings[callee.params[i].name] +
                    "' (first declared at " + loc_of(in.loc).to_string() + ")",
                loc_of(in.loc));
          }
          frame.slots[i] = runtime_.casting().coerce(
              args[i], bc_.types[callee.params[i].type],
              bc_.strings[callee.params[i].name], loc_of(in.loc));
          frame.declared[i] = 1;
          frame.declared_at[i] = in.loc;
        }
        frames_.push_back(std::move(frame));
        refresh();
        break;
      }
      case Op::Return: {
        ValuePtr value = in.a != 0 ? pop(in.loc) : Value::make_void();
        if (!do_return(std::move(value))) return;
        break;
      }

      case Op::Print: {
        ValuePtr v = pop(in.loc);
        runtime_.emit_output(runtime_.render_for_print(v) + "\n");
        recycle(std::move(v));
        break;
      }
      case Op::Barrier:
        runtime_.handler().barrier();
        break;
      case Op::GateApply: {
        const ValuePtr v = pop(in.loc);
        runtime_.apply_gate_value(static_cast<GateKind>(in.a), v,
                                  loc_of(in.loc));
        break;
      }

      case Op::ThrowUseUndeclared:
        throw LangError(
            "use of undeclared variable '" + bc_.strings[in.b] + "'",
            loc_of(in.loc));
      case Op::ThrowAssignUndeclared:
        throw LangError(
            "assignment to undeclared variable '" + bc_.strings[in.b] + "'",
            loc_of(in.loc));
      case Op::ThrowUnknownFunction:
        throw LangError("call to unknown function '" + bc_.strings[in.b] + "'",
                        loc_of(in.loc));
    }
  }
}

}  // namespace qutes::lang
