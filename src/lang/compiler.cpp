#include "qutes/lang/compiler.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "qutes/lang/interpreter.hpp"
#include "qutes/lang/lexer.hpp"
#include "qutes/lang/lower.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/stdlib.hpp"
#include "qutes/lang/symbol_collector.hpp"
#include "qutes/lang/vm.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::lang {

namespace {

// Default resolves through the environment so whole suites can be swept
// through either engine (QUTES_EXEC_MODE=ast ctest) without code changes.
ExecMode resolve_exec_mode(ExecMode requested) {
  if (requested != ExecMode::Default) return requested;
  if (const char* env = std::getenv("QUTES_EXEC_MODE")) {
    if (std::strcmp(env, "ast") == 0) return ExecMode::Ast;
    if (std::strcmp(env, "vm") == 0) return ExecMode::Vm;
  }
  return ExecMode::Vm;
}

}  // namespace

CompileResult compile_source(const std::string& source, bool include_stdlib) {
  obs::Span span("lang.compile");
  CompileResult result;
  if (include_stdlib) {
    // The stdlib is pure function declarations: collecting it registers its
    // functions; there are no top-level effects to execute.
    obs::Span stdlib_span("lang.parse_stdlib");
    result.stdlib_program = parse(stdlib_source());
    SymbolCollector stdlib_collector(result.functions, result.diagnostics);
    stdlib_collector.collect(result.stdlib_program);
  }
  {
    obs::Span parse_span("lang.parse");
    result.program = parse(source);
  }
  obs::Span collect_span("lang.collect_symbols");
  SymbolCollector collector(result.functions, result.diagnostics);
  collector.collect(result.program);
  static obs::Counter& statements_metric =
      obs::metrics().counter(obs::names::kLangStatements);
  statements_metric.add(result.program.statements.size());
  return result;
}

RunResult run_source(const std::string& source, qutes::RunConfig config) {
  obs::Span span("lang.run_source");
  // The single validation point is RunConfig::validate(); re-wrap its
  // CircuitError so the front end throws one catchable type (LangError)
  // for every failure.
  try {
    config.validate();
  } catch (const CircuitError& e) {
    throw LangError(e.what(), SourceLocation{});
  }
  CompileResult compiled = compile_source(source, config.include_stdlib);

  // Statement-level tracing is a tree-walk feature: it fires per AST node,
  // which the flat bytecode stream no longer has. Requesting it selects the
  // tree-walk regardless of exec_mode.
  const ExecMode mode = config.debug_trace != nullptr
                            ? ExecMode::Ast
                            : resolve_exec_mode(config.exec_mode);

  RunResult result;
  if (mode == ExecMode::Vm) {
    const Bytecode bytecode =
        lower(compiled.program, compiled.functions, fnv1a64(source));
    Vm vm(bytecode, {.seed = config.seed,
                     .echo = config.echo,
                     .bind_params = config.bind_params,
                     .allow_unbound_params = config.allow_unbound_params});
    vm.run();
    result.output = vm.runtime().captured_output();
    result.circuit = vm.runtime().handler().circuit();
  } else {
    Interpreter interpreter({.seed = config.seed,
                             .echo = config.echo,
                             .trace = config.debug_trace,
                             .bind_params = config.bind_params,
                             .allow_unbound_params = config.allow_unbound_params});
    interpreter.run(compiled.program, compiled.functions);
    result.output = interpreter.captured_output();
    result.circuit = interpreter.handler().circuit();
  }
  result.num_qubits = result.circuit.num_qubits();
  result.circuit_depth = result.circuit.depth();
  result.gate_count = result.circuit.gate_count();
  if (config.pipeline.manager) {
    result.lowered_circuit =
        config.pipeline.manager->run(result.circuit, result.properties);
  } else {
    result.lowered_circuit = result.circuit;
  }
  // A purely classical program logs no qubits; there is nothing quantum to
  // re-run, and the Executor (rightly) refuses empty circuits.
  if (config.replay_shots > 0 && result.lowered_circuit.num_qubits() > 0) {
    qutes::RunConfig replay_config;
    replay_config.shots = config.replay_shots;
    replay_config.seed = config.seed + 1;  // independent of the live run's draws
    replay_config.backend = config.backend;
    // A `param(...)` program logs a symbolic circuit; replay it under the
    // same bindings the live run used (unbound-under-allow stays at the 0.0
    // placeholder).
    circ::QuantumCircuit* replayed = &result.lowered_circuit;
    circ::QuantumCircuit bound;
    if (result.lowered_circuit.is_parameterized()) {
      std::vector<double> values(result.lowered_circuit.num_parameters(), 0.0);
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i < config.bind_params.size()) values[i] = config.bind_params[i];
      }
      bound = result.lowered_circuit.bind(values);
      replayed = &bound;
    }
    result.replay = circ::Executor(replay_config).run(*replayed);
  }
  return result;
}

Bytecode lower_source(const std::string& source, bool include_stdlib) {
  CompileResult compiled = compile_source(source, include_stdlib);
  return lower(compiled.program, compiled.functions, fnv1a64(source));
}

RunResult run_file(const std::string& path, qutes::RunConfig config) {
  std::ifstream file(path);
  if (!file) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return run_source(buffer.str(), std::move(config));
}

}  // namespace qutes::lang
