#include "qutes/lang/compiler.hpp"

#include <fstream>
#include <sstream>

#include "qutes/circuit/backend.hpp"
#include "qutes/lang/interpreter.hpp"
#include "qutes/lang/lexer.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/stdlib.hpp"
#include "qutes/lang/symbol_collector.hpp"

namespace qutes::lang {

CompileResult compile_source(const std::string& source, bool include_stdlib) {
  CompileResult result;
  if (include_stdlib) {
    // The stdlib is pure function declarations: collecting it registers its
    // functions; there are no top-level effects to execute.
    result.stdlib_program = parse(stdlib_source());
    SymbolCollector stdlib_collector(result.functions, result.diagnostics);
    stdlib_collector.collect(result.stdlib_program);
  }
  result.program = parse(source);
  SymbolCollector collector(result.functions, result.diagnostics);
  collector.collect(result.program);
  return result;
}

RunResult run_source(const std::string& source, RunOptions options) {
  if (!circ::backend_known(options.backend)) {
    std::string known;
    for (const std::string& name : circ::backend_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw LangError("unknown backend \"" + options.backend +
                        "\" (known backends: " + known + ")",
                    SourceLocation{});
  }
  if (options.max_bond_dim == 0) {
    throw LangError("--max-bond-dim must be >= 1", SourceLocation{});
  }
  CompileResult compiled = compile_source(source, options.include_stdlib);

  Interpreter interpreter(
      {.seed = options.seed, .echo = options.echo, .trace = options.trace});
  interpreter.run(compiled.program, compiled.functions);

  RunResult result;
  result.output = interpreter.captured_output();
  result.circuit = interpreter.handler().circuit();
  result.num_qubits = result.circuit.num_qubits();
  result.circuit_depth = result.circuit.depth();
  result.gate_count = result.circuit.gate_count();
  if (options.pipeline) {
    result.lowered_circuit = options.pipeline->run(result.circuit, result.properties);
  } else {
    result.lowered_circuit = result.circuit;
  }
  // A purely classical program logs no qubits; there is nothing quantum to
  // re-run, and the Executor (rightly) refuses empty circuits.
  if (options.replay_shots > 0 && result.lowered_circuit.num_qubits() > 0) {
    circ::ExecutionOptions exec_options;
    exec_options.shots = options.replay_shots;
    exec_options.seed = options.seed + 1;  // independent of the live run's draws
    exec_options.backend = options.backend;
    exec_options.max_bond_dim = options.max_bond_dim;
    exec_options.truncation_threshold = options.truncation_threshold;
    result.replay = circ::Executor(exec_options).run(result.lowered_circuit);
  }
  return result;
}

RunResult run_file(const std::string& path, RunOptions options) {
  std::ifstream file(path);
  if (!file) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return run_source(buffer.str(), options);
}

}  // namespace qutes::lang
