#include "qutes/lang/compiler.hpp"

#include <fstream>
#include <sstream>

#include "qutes/lang/interpreter.hpp"
#include "qutes/lang/lexer.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/stdlib.hpp"
#include "qutes/lang/symbol_collector.hpp"

namespace qutes::lang {

CompileResult compile_source(const std::string& source, bool include_stdlib) {
  CompileResult result;
  if (include_stdlib) {
    // The stdlib is pure function declarations: collecting it registers its
    // functions; there are no top-level effects to execute.
    result.stdlib_program = parse(stdlib_source());
    SymbolCollector stdlib_collector(result.functions, result.diagnostics);
    stdlib_collector.collect(result.stdlib_program);
  }
  result.program = parse(source);
  SymbolCollector collector(result.functions, result.diagnostics);
  collector.collect(result.program);
  return result;
}

RunResult run_source(const std::string& source, RunOptions options) {
  CompileResult compiled = compile_source(source, options.include_stdlib);

  Interpreter interpreter(
      {.seed = options.seed, .echo = options.echo, .trace = options.trace});
  interpreter.run(compiled.program, compiled.functions);

  RunResult result;
  result.output = interpreter.captured_output();
  result.circuit = interpreter.handler().circuit();
  result.num_qubits = result.circuit.num_qubits();
  result.circuit_depth = result.circuit.depth();
  result.gate_count = result.circuit.gate_count();
  if (options.pipeline) {
    result.lowered_circuit = options.pipeline->run(result.circuit, result.properties);
  } else {
    result.lowered_circuit = result.circuit;
  }
  return result;
}

RunResult run_file(const std::string& path, RunOptions options) {
  std::ifstream file(path);
  if (!file) throw Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return run_source(buffer.str(), options);
}

}  // namespace qutes::lang
