#include "qutes/lang/circuit_handler.hpp"

#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::lang {

namespace {
constexpr std::size_t kMaxProgramQubits = 26;
}  // namespace

QuantumCircuitHandler::QuantumCircuitHandler(std::uint64_t seed) : rng_(seed) {}

std::string QuantumCircuitHandler::unique_name(const std::string& base,
                                               const char* fallback) {
  const std::string stem = base.empty() ? fallback : base;
  const std::size_t count = name_counters_[stem]++;
  return count == 0 ? stem : stem + "_" + std::to_string(count);
}

QuantumRef QuantumCircuitHandler::allocate(const std::string& name, std::size_t width,
                                           TypeKind kind) {
  if (width == 0) throw LangError("cannot allocate an empty quantum register", {});
  if (num_qubits() + width > kMaxProgramQubits) {
    throw LangError("program exceeds the simulator budget of " +
                        std::to_string(kMaxProgramQubits) + " qubits",
                    {});
  }
  const auto& reg = circuit_.add_register(unique_name(name, "q"), width);
  if (state_) {
    state_->add_qubits(width);
  } else {
    state_.emplace(width);
  }
  return QuantumRef{reg.offset, reg.size, kind};
}

const sim::StateVector& QuantumCircuitHandler::state() const {
  if (!state_) throw LangError("no quantum state allocated yet", {});
  return *state_;
}

void QuantumCircuitHandler::apply(circ::Instruction instruction) {
  circuit_.append(instruction);  // validates operands
  std::uint64_t scratch = 0;
  circ::apply_instruction(*state_, instruction, scratch, rng_);
}

namespace {
circ::Instruction gate1(circ::GateType type, std::size_t q,
                        std::vector<double> params = {}) {
  circ::Instruction in;
  in.type = type;
  in.qubits = {q};
  in.params = std::move(params);
  return in;
}
}  // namespace

void QuantumCircuitHandler::h(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::H, ref.offset + i));
  }
}

void QuantumCircuitHandler::x(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::X, ref.offset + i));
  }
}

void QuantumCircuitHandler::y(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::Y, ref.offset + i));
  }
}

void QuantumCircuitHandler::z(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::Z, ref.offset + i));
  }
}

void QuantumCircuitHandler::s(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::S, ref.offset + i));
  }
}

void QuantumCircuitHandler::t(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::T, ref.offset + i));
  }
}

void QuantumCircuitHandler::phase(double lambda, const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    apply(gate1(circ::GateType::P, ref.offset + i, {lambda}));
  }
}

void QuantumCircuitHandler::cx(std::size_t control, std::size_t target) {
  circ::Instruction in;
  in.type = circ::GateType::CX;
  in.qubits = {control, target};
  apply(std::move(in));
}

void QuantumCircuitHandler::swap(std::size_t a, std::size_t b) {
  circ::Instruction in;
  in.type = circ::GateType::SWAP;
  in.qubits = {a, b};
  apply(std::move(in));
}

void QuantumCircuitHandler::barrier() {
  if (num_qubits() == 0) return;
  circ::Instruction in;
  in.type = circ::GateType::Barrier;
  circuit_.append(std::move(in));
}

void QuantumCircuitHandler::encode_bits(const QuantumRef& ref, std::uint64_t value) {
  if (ref.width < 64 && value >= dim_of(ref.width)) {
    throw LangError("value " + std::to_string(value) + " does not fit in " +
                        std::to_string(ref.width) + " qubits",
                    {});
  }
  for (std::size_t i = 0; i < ref.width; ++i) {
    if (test_bit(value, i)) apply(gate1(circ::GateType::X, ref.offset + i));
  }
}

void QuantumCircuitHandler::copy_basis(const QuantumRef& src, const QuantumRef& dst) {
  const std::size_t width = std::min(src.width, dst.width);
  for (std::size_t i = 0; i < width; ++i) {
    cx(src.offset + i, dst.offset + i);
  }
}

std::uint64_t QuantumCircuitHandler::measure(const QuantumRef& ref) {
  const auto& creg =
      circuit_.add_classical_register(unique_name("m", "m"), ref.width);
  clbit_values_.resize(circuit_.num_clbits(), 0);
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < ref.width; ++i) {
    const int bit = state_->measure(ref.offset + i, rng_);
    circuit_.measure(ref.offset + i, creg[i]);
    clbit_values_[creg[i]] = bit;
    if (bit) result = set_bit(result, i);
  }
  return result;
}

void QuantumCircuitHandler::reset(const QuantumRef& ref) {
  for (std::size_t i = 0; i < ref.width; ++i) {
    circ::Instruction in;
    in.type = circ::GateType::Reset;
    in.qubits = {ref.offset + i};
    circuit_.append(in);
    state_->reset_qubit(ref.offset + i, rng_);
  }
}

std::uint64_t QuantumCircuitHandler::compose_inline(const circ::QuantumCircuit& sub,
                                                    const std::string& prefix) {
  // Fresh registers mirroring the sub-circuit's layout.
  std::vector<std::size_t> qubit_map(sub.num_qubits());
  for (const auto& reg : sub.qregs()) {
    const QuantumRef ref = allocate(prefix + "_" + reg.name, reg.size, TypeKind::Quint);
    for (std::size_t i = 0; i < reg.size; ++i) qubit_map[reg[i]] = ref.offset + i;
  }
  std::vector<std::size_t> clbit_map(sub.num_clbits());
  for (const auto& reg : sub.cregs()) {
    const auto& creg = circuit_.add_classical_register(
        unique_name(prefix + "_" + reg.name, "c"), reg.size);
    for (std::size_t i = 0; i < reg.size; ++i) clbit_map[reg[i]] = creg[i];
  }
  clbit_values_.resize(circuit_.num_clbits(), 0);

  std::uint64_t sub_clbits = 0;
  for (const circ::Instruction& src : sub.instructions()) {
    circ::Instruction in = src;
    for (std::size_t& q : in.qubits) q = qubit_map[q];
    for (std::size_t& c : in.clbits) c = clbit_map[c];
    if (in.condition) in.condition->clbit = clbit_map[in.condition->clbit];

    if (in.condition &&
        clbit_values_[in.condition->clbit] != in.condition->value) {
      circuit_.append(in);  // log it; skipped at runtime this trajectory
      continue;
    }
    if (in.type == circ::GateType::Measure) {
      circuit_.append(in);
      for (std::size_t i = 0; i < in.qubits.size(); ++i) {
        const int bit = state_->measure(in.qubits[i], rng_);
        clbit_values_[in.clbits[i]] = bit;
      }
      continue;
    }
    if (in.type == circ::GateType::Reset) {
      circuit_.append(in);
      state_->reset_qubit(in.qubits[0], rng_);
      continue;
    }
    if (in.type == circ::GateType::Barrier) {
      circuit_.append(in);
      continue;
    }
    apply(std::move(in));
  }
  // Pack the sub-circuit's classical bits (in its own ordering).
  for (std::size_t c = 0; c < sub.num_clbits(); ++c) {
    if (clbit_values_[clbit_map[c]]) sub_clbits = set_bit(sub_clbits, c);
  }
  return sub_clbits;
}

std::vector<std::size_t> QuantumCircuitHandler::qubits_of(const QuantumRef& ref) {
  std::vector<std::size_t> qubits(ref.width);
  for (std::size_t i = 0; i < ref.width; ++i) qubits[i] = ref.offset + i;
  return qubits;
}

}  // namespace qutes::lang
