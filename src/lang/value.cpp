#include "qutes/lang/value.hpp"

#include <sstream>

namespace qutes::lang {

namespace {

[[noreturn]] void kind_error(const char* wanted, const QType& actual) {
  throw LangError(std::string("internal: expected ") + wanted + ", value holds " +
                      actual.to_string(),
                  {});
}

}  // namespace

ValuePtr Value::make_void() {
  return std::make_shared<Value>(QType::scalar(TypeKind::Void), std::monostate{});
}

ValuePtr Value::make_bool(bool v) {
  return std::make_shared<Value>(QType::scalar(TypeKind::Bool), v);
}

ValuePtr Value::make_int(std::int64_t v) {
  return std::make_shared<Value>(QType::scalar(TypeKind::Int), v);
}

ValuePtr Value::make_float(double v) {
  return std::make_shared<Value>(QType::scalar(TypeKind::Float), v);
}

ValuePtr Value::make_string(std::string v) {
  return std::make_shared<Value>(QType::scalar(TypeKind::String), std::move(v));
}

ValuePtr Value::make_quantum(QuantumRef ref) {
  QType type = QType::scalar(ref.kind);
  if (ref.kind == TypeKind::Quint) type.quint_width = ref.width;
  return std::make_shared<Value>(type, ref);
}

ValuePtr Value::make_array(TypeKind element, std::vector<ValuePtr> items) {
  return std::make_shared<Value>(QType::array_of(element),
                                 ArrayValue{element, std::move(items)});
}

ValuePtr Value::make_param(double bound_value, int param_index) {
  ValuePtr v = make_float(bound_value);
  v->param_index_ = param_index;
  return v;
}

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  kind_error("bool", type_);
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const bool* b = std::get_if<bool>(&data_)) return *b ? 1 : 0;
  kind_error("int", type_);
}

double Value::as_float() const {
  if (const auto* f = std::get_if<double>(&data_)) return *f;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  kind_error("float", type_);
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  kind_error("string", type_);
}

const QuantumRef& Value::as_quantum() const {
  if (const auto* q = std::get_if<QuantumRef>(&data_)) return *q;
  kind_error("quantum reference", type_);
}

ArrayValue& Value::as_array() {
  if (auto* a = std::get_if<ArrayValue>(&data_)) return *a;
  kind_error("array", type_);
}

const ArrayValue& Value::as_array() const {
  if (const auto* a = std::get_if<ArrayValue>(&data_)) return *a;
  kind_error("array", type_);
}

std::string Value::to_display_string() const {
  std::ostringstream out;
  switch (type_.kind) {
    case TypeKind::Void: out << "void"; break;
    case TypeKind::Bool: out << (as_bool() ? "true" : "false"); break;
    case TypeKind::Int: out << as_int(); break;
    case TypeKind::Float: out << as_float(); break;
    case TypeKind::String: out << as_string(); break;
    case TypeKind::Qubit: case TypeKind::Quint: case TypeKind::Qustring: {
      const QuantumRef& ref = as_quantum();
      out << "<" << type_.to_string() << " @" << ref.offset << " w" << ref.width << ">";
      break;
    }
    case TypeKind::Array: {
      const ArrayValue& arr = as_array();
      out << "[";
      for (std::size_t i = 0; i < arr.items.size(); ++i) {
        out << (i ? ", " : "") << arr.items[i]->to_display_string();
      }
      out << "]";
      break;
    }
  }
  return out.str();
}

}  // namespace qutes::lang
