#include "qutes/lang/stdlib.hpp"

#include <vector>

namespace qutes::lang {

const std::string& stdlib_source() {
  static const std::string source = R"qutes(
// ===== Qutes standard library ==============================================
// Written in Qutes. Loaded before every program (see compiler.cpp).

// ---- classical helpers -----------------------------------------------------

int abs_i(int x) {
  if (x < 0) { return -x; }
  return x;
}

int min_i(int a, int b) {
  if (a < b) { return a; }
  return b;
}

int max_i(int a, int b) {
  if (a > b) { return a; }
  return b;
}

int pow_i(int base, int exponent) {
  int result = 1;
  while (exponent > 0) {
    result *= base;
    exponent -= 1;
  }
  return result;
}

int sum(int[] xs) {
  int total = 0;
  foreach x in xs { total += x; }
  return total;
}

int count(int[] xs, int key) {
  int hits = 0;
  foreach x in xs {
    if (x == key) { hits += 1; }
  }
  return hits;
}

bool contains(int[] xs, int key) {
  return count(xs, key) > 0;
}

// ---- quantum state preparation ----------------------------------------------

// Put every qubit of a register into |+>.
void superpose(quint x) {
  hadamard x;
}

// Flip every qubit (the register-wide NOT).
void flip_all(quint x) {
  foreach b in x { not b; }
}

// GHZ state over three qubits: (|000> + |111>)/sqrt(2).
void ghz3(qubit a, qubit b, qubit c) {
  hadamard a;
  cx(a, b);
  cx(b, c);
}

// ---- quantum randomness -------------------------------------------------------

// A genuinely quantum coin flip: measure |+>.
bool coin() {
  qubit q = |+>;
  bool r = q;
  return r;
}

// Uniform quantum random integer with `bits` bits.
int qrandom(int bits) {
  int result = 0;
  int i = 0;
  while (i < bits) {
    result = result * 2;
    if (coin()) { result += 1; }
    i += 1;
  }
  return result;
}

// ---- protocols ------------------------------------------------------------------

// Teleport the state of `msg` onto `receiver` using `carrier` as the shared
// entanglement resource. All three must be distinct qubits; msg and carrier
// end up measured.
void teleport(qubit msg, qubit carrier, qubit receiver) {
  bell(carrier, receiver);
  cx(msg, carrier);
  hadamard msg;
  bool m0 = msg;
  bool m1 = carrier;
  if (m1) { not receiver; }
  if (m0) { pauliz receiver; }
}

// Entanglement swap: Bell-measure the middles of two Bell pairs (a,b), (c,d)
// and correct d, leaving (a, d) entangled.
void entanglement_swap(qubit b, qubit c, qubit d) {
  cx(b, c);
  hadamard b;
  bool mz = b;
  bool mx = c;
  if (mx) { not d; }
  if (mz) { pauliz d; }
}

// ---- algorithm wrappers ------------------------------------------------------------

// Deutsch-Jozsa driver for the parity-mask oracle family: returns true if
// f(x) = mask.x is (trivially) constant, i.e. mask == 0, using one quantum
// query on a 4-bit register.
bool dj_is_constant4(int mask) {
  quint<4> x = 0q;
  qubit y = |->;
  hadamard x;
  // parity oracle: cx from each mask bit into y
  if (mask - mask / 2 * 2 == 1) { cx(x[0], y); }
  if (mask / 2 - mask / 4 * 2 == 1) { cx(x[1], y); }
  if (mask / 4 - mask / 8 * 2 == 1) { cx(x[2], y); }
  if (mask / 8 - mask / 16 * 2 == 1) { cx(x[3], y); }
  hadamard x;
  int v = x;
  return v == 0;
}
)qutes";
  return source;
}

const std::vector<std::string>& stdlib_function_names() {
  static const std::vector<std::string> names = {
      "abs_i",   "min_i",    "max_i",   "pow_i",     "sum",
      "count",   "contains", "superpose", "flip_all", "ghz3",
      "coin",    "qrandom",  "teleport", "entanglement_swap",
      "dj_is_constant4",
  };
  return names;
}

}  // namespace qutes::lang
