#include "qutes/lang/qtype.hpp"

namespace qutes::lang {

const char* type_kind_name(TypeKind kind) noexcept {
  switch (kind) {
    case TypeKind::Void: return "void";
    case TypeKind::Bool: return "bool";
    case TypeKind::Int: return "int";
    case TypeKind::Float: return "float";
    case TypeKind::String: return "string";
    case TypeKind::Qubit: return "qubit";
    case TypeKind::Quint: return "quint";
    case TypeKind::Qustring: return "qustring";
    case TypeKind::Array: return "array";
  }
  return "?";
}

std::string QType::to_string() const {
  if (is_array()) return std::string(type_kind_name(element)) + "[]";
  if (kind == TypeKind::Quint && quint_width > 0) {
    return "quint<" + std::to_string(quint_width) + ">";
  }
  return type_kind_name(kind);
}

TypeKind measured_kind(TypeKind quantum) noexcept {
  switch (quantum) {
    case TypeKind::Qubit: return TypeKind::Bool;
    case TypeKind::Quint: return TypeKind::Int;
    case TypeKind::Qustring: return TypeKind::String;
    default: return quantum;
  }
}

TypeKind promoted_kind(TypeKind classical) noexcept {
  switch (classical) {
    case TypeKind::Bool: return TypeKind::Qubit;
    case TypeKind::Int: return TypeKind::Quint;
    case TypeKind::String: return TypeKind::Qustring;
    default: return classical;
  }
}

}  // namespace qutes::lang
