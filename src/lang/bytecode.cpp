#include "qutes/lang/bytecode.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "qutes/lang/ast.hpp"

namespace qutes::lang {
namespace {

constexpr char kMagic[4] = {'Q', 'B', 'C', '\n'};

/// Upper bound on any serialized section count. Guards the loader against
/// multi-gigabyte allocations driven by a corrupt length field; generated
/// programs sit orders of magnitude below this.
constexpr std::uint64_t kMaxSectionCount = 1u << 24;

[[noreturn]] void corrupt(const std::string& what) {
  throw LangError("bytecode: " + what, {});
}

// ---- little-endian writer ---------------------------------------------------

struct Writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof raw);
    u64(raw);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (size - pos < n) corrupt("truncated artifact");
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t raw = u64();
    double v = 0;
    std::memcpy(&v, &raw, sizeof v);
    return v;
  }
  std::uint64_t count() {
    const std::uint64_t n = u64();
    if (n > kMaxSectionCount) corrupt("implausible section size");
    return n;
  }
  std::string str() {
    const std::uint64_t n = count();
    need(n);
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

// ---- per-op operand classification (validation + disassembly) ---------------

enum class AKind { None, Imm, Jump, Enum, Argc, Flag };
enum class BKind { None, Slot, Str, FloatPool, Loop, Iter, Scope, Chunk };
enum class CKind { None, Slot, Type };

struct OpSpec {
  AKind a = AKind::None;
  BKind b = BKind::None;
  CKind c = CKind::None;
  std::int64_t enum_max = 0;  ///< inclusive, when a is Enum
};

OpSpec op_spec(Op op) {
  constexpr auto kBinaryMax = static_cast<std::int64_t>(BinaryOp::In);
  constexpr auto kUnaryMax = static_cast<std::int64_t>(UnaryOp::BitNot);
  constexpr auto kKetMax = static_cast<std::int64_t>(KetKind::Minus);
  constexpr auto kGateMax = static_cast<std::int64_t>(GateKind::ResetStmt);
  switch (op) {
    case Op::PushInt: return {AKind::Imm, BKind::None, CKind::None};
    case Op::PushFloat: return {AKind::None, BKind::FloatPool, CKind::None};
    case Op::PushBool: return {AKind::Flag, BKind::None, CKind::None};
    case Op::PushString: return {AKind::None, BKind::Str, CKind::None};
    case Op::Pop: return {};
    case Op::QuintLit: return {AKind::Imm, BKind::None, CKind::None};
    case Op::QustringLit: return {AKind::None, BKind::Str, CKind::None};
    case Op::KetState: return {AKind::Enum, BKind::None, CKind::None, kKetMax};
    case Op::SupBegin:
    case Op::SupElem:
    case Op::SupEnd:
    case Op::ArrBegin:
    case Op::ArrElem:
    case Op::ArrEnd: return {};
    case Op::LoadLocal:
    case Op::LoadGlobal:
    case Op::CheckLocal:
    case Op::CheckGlobal:
    case Op::AssignLocal:
    case Op::AssignGlobal: return {AKind::None, BKind::Slot, CKind::None};
    case Op::CompoundLocal:
    case Op::CompoundGlobal:
      return {AKind::Enum, BKind::Slot, CKind::None, kBinaryMax};
    case Op::CheckIndexTarget:
    case Op::IndexPrep:
    case Op::AssignIndex:
    case Op::IndexGet: return {};
    case Op::CompoundIndex: return {AKind::Enum, BKind::None, CKind::None, kBinaryMax};
    case Op::Declare:
    case Op::BindInit:
    case Op::DeclareDefault: return {AKind::None, BKind::Slot, CKind::Type};
    case Op::DeclarePromoteInt: return {AKind::Imm, BKind::Slot, CKind::Type};
    case Op::DeclarePromoteString: return {AKind::Imm, BKind::Slot, CKind::Type};
    case Op::ScopeExit: return {AKind::None, BKind::Scope, CKind::None};
    case Op::UnaryApply: return {AKind::Enum, BKind::None, CKind::None, kUnaryMax};
    case Op::BinaryApply: return {AKind::Enum, BKind::None, CKind::None, kBinaryMax};
    case Op::ToBool: return {};
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfFalsePeek:
    case Op::JumpIfTruePeek: return {AKind::Jump, BKind::None, CKind::None};
    case Op::LoopReset:
    case Op::LoopBump: return {AKind::None, BKind::Loop, CKind::None};
    case Op::ForeachInit: return {AKind::None, BKind::Iter, CKind::None};
    case Op::ForeachNext: return {AKind::Jump, BKind::Iter, CKind::Slot};
    case Op::CallBuiltin: return {AKind::Argc, BKind::Str, CKind::None};
    case Op::CallUser: return {AKind::Argc, BKind::Chunk, CKind::None};
    case Op::Return: return {AKind::Flag, BKind::None, CKind::None};
    case Op::Print:
    case Op::Barrier: return {};
    case Op::GateApply: return {AKind::Enum, BKind::None, CKind::None, kGateMax};
    case Op::ThrowUseUndeclared:
    case Op::ThrowAssignUndeclared:
    case Op::ThrowUnknownFunction: return {AKind::None, BKind::Str, CKind::None};
  }
  corrupt("unknown opcode");
}

}  // namespace

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::PushInt: return "push_int";
    case Op::PushFloat: return "push_float";
    case Op::PushBool: return "push_bool";
    case Op::PushString: return "push_string";
    case Op::Pop: return "pop";
    case Op::QuintLit: return "quint_lit";
    case Op::QustringLit: return "qustring_lit";
    case Op::KetState: return "ket_state";
    case Op::SupBegin: return "sup_begin";
    case Op::SupElem: return "sup_elem";
    case Op::SupEnd: return "sup_end";
    case Op::ArrBegin: return "arr_begin";
    case Op::ArrElem: return "arr_elem";
    case Op::ArrEnd: return "arr_end";
    case Op::LoadLocal: return "load_local";
    case Op::LoadGlobal: return "load_global";
    case Op::CheckLocal: return "check_local";
    case Op::CheckGlobal: return "check_global";
    case Op::AssignLocal: return "assign_local";
    case Op::AssignGlobal: return "assign_global";
    case Op::CompoundLocal: return "compound_local";
    case Op::CompoundGlobal: return "compound_global";
    case Op::CheckIndexTarget: return "check_index_target";
    case Op::IndexPrep: return "index_prep";
    case Op::AssignIndex: return "assign_index";
    case Op::CompoundIndex: return "compound_index";
    case Op::IndexGet: return "index_get";
    case Op::Declare: return "declare";
    case Op::BindInit: return "bind_init";
    case Op::DeclareDefault: return "declare_default";
    case Op::DeclarePromoteInt: return "declare_promote_int";
    case Op::DeclarePromoteString: return "declare_promote_string";
    case Op::ScopeExit: return "scope_exit";
    case Op::UnaryApply: return "unary";
    case Op::BinaryApply: return "binary";
    case Op::ToBool: return "to_bool";
    case Op::Jump: return "jump";
    case Op::JumpIfFalse: return "jump_if_false";
    case Op::JumpIfFalsePeek: return "jump_if_false_peek";
    case Op::JumpIfTruePeek: return "jump_if_true_peek";
    case Op::LoopReset: return "loop_reset";
    case Op::LoopBump: return "loop_bump";
    case Op::ForeachInit: return "foreach_init";
    case Op::ForeachNext: return "foreach_next";
    case Op::CallBuiltin: return "call_builtin";
    case Op::CallUser: return "call_user";
    case Op::Return: return "return";
    case Op::Print: return "print";
    case Op::Barrier: return "barrier";
    case Op::GateApply: return "gate";
    case Op::ThrowUseUndeclared: return "throw_use_undeclared";
    case Op::ThrowAssignUndeclared: return "throw_assign_undeclared";
    case Op::ThrowUnknownFunction: return "throw_unknown_function";
  }
  return "?";
}

std::size_t Bytecode::total_ops() const {
  std::size_t n = 0;
  for (const Chunk& chunk : chunks) n += chunk.code.size();
  return n;
}

// ---- validation -------------------------------------------------------------

void Bytecode::validate() const {
  const auto str_ok = [&](std::uint32_t i) { return i < strings.size(); };
  const auto type_ok = [&](std::uint32_t i) { return i < types.size(); };
  if (chunks.empty()) corrupt("no chunks");
  if (locations.empty()) corrupt("empty location pool");
  for (const Chunk& chunk : chunks) {
    if (!str_ok(chunk.name) || !type_ok(chunk.return_type))
      corrupt("chunk header index out of range");
    if (chunk.slot_names.size() != chunk.num_slots)
      corrupt("slot name table size mismatch");
    for (const std::uint32_t name : chunk.slot_names)
      if (!str_ok(name)) corrupt("slot name index out of range");
    if (chunk.params.size() > chunk.num_slots)
      corrupt("more parameters than slots");
    for (const ParamInfo& p : chunk.params)
      if (!str_ok(p.name) || !type_ok(p.type))
        corrupt("parameter index out of range");
    if (chunk.duplicate_param && *chunk.duplicate_param >= chunk.params.size())
      corrupt("duplicate-param index out of range");
    for (const auto& scope : chunk.scopes)
      for (const std::uint32_t slot : scope)
        if (slot >= chunk.num_slots) corrupt("scope slot index out of range");

    const Chunk& global = chunks.front();
    for (const Instr& in : chunk.code) {
      if (static_cast<std::uint8_t>(in.op) >= kOpCount) corrupt("unknown opcode");
      if (in.loc >= locations.size()) corrupt("location index out of range");
      const OpSpec spec = op_spec(in.op);
      switch (spec.a) {
        case AKind::Jump:
          if (in.a < 0 || static_cast<std::size_t>(in.a) > chunk.code.size())
            corrupt("jump target out of range");
          break;
        case AKind::Enum:
          if (in.a < 0 || in.a > spec.enum_max) corrupt("enum operand out of range");
          break;
        case AKind::Argc:
          if (in.a < 0 || in.a > static_cast<std::int64_t>(kMaxSectionCount))
            corrupt("argument count out of range");
          break;
        case AKind::Flag:
          if (in.a != 0 && in.a != 1) corrupt("flag operand out of range");
          break;
        case AKind::Imm:
          // DeclarePromoteString's immediate is a string pool index.
          if (in.op == Op::DeclarePromoteString &&
              (in.a < 0 || !str_ok(static_cast<std::uint32_t>(in.a))))
            corrupt("string index out of range");
          break;
        case AKind::None:
          break;
      }
      switch (spec.b) {
        case BKind::Slot: {
          // The *Global ops index the top-level chunk's frame.
          const bool global_slot = in.op == Op::LoadGlobal ||
                                   in.op == Op::CheckGlobal ||
                                   in.op == Op::AssignGlobal ||
                                   in.op == Op::CompoundGlobal;
          const std::uint32_t limit =
              global_slot ? global.num_slots : chunk.num_slots;
          if (in.b >= limit) corrupt("slot index out of range");
          break;
        }
        case BKind::Str:
          if (!str_ok(in.b)) corrupt("string index out of range");
          break;
        case BKind::FloatPool:
          if (in.b >= floats.size()) corrupt("float index out of range");
          break;
        case BKind::Loop:
          if (in.b >= chunk.num_loops) corrupt("loop counter out of range");
          break;
        case BKind::Iter:
          if (in.b >= chunk.num_iters) corrupt("iterator index out of range");
          break;
        case BKind::Scope:
          if (in.b >= chunk.scopes.size()) corrupt("scope index out of range");
          break;
        case BKind::Chunk:
          if (in.b >= chunks.size()) corrupt("chunk index out of range");
          break;
        case BKind::None:
          break;
      }
      switch (spec.c) {
        case CKind::Slot:
          if (in.c >= chunk.num_slots) corrupt("slot index out of range");
          break;
        case CKind::Type:
          if (!type_ok(in.c)) corrupt("type index out of range");
          break;
        case CKind::None:
          break;
      }
    }
  }
}

// ---- serialization ----------------------------------------------------------

std::vector<std::uint8_t> Bytecode::serialize() const {
  Writer w;
  w.bytes.insert(w.bytes.end(), kMagic, kMagic + 4);
  w.u32(kVersion);
  w.u64(source_hash);

  w.u64(strings.size());
  for (const std::string& s : strings) w.str(s);
  w.u64(floats.size());
  for (const double f : floats) w.f64(f);
  w.u64(types.size());
  for (const QType& t : types) {
    w.u8(static_cast<std::uint8_t>(t.kind));
    w.u8(static_cast<std::uint8_t>(t.element));
    w.u64(t.quint_width);
  }
  w.u64(locations.size());
  for (const SourceLocation& loc : locations) {
    w.u64(loc.line);
    w.u64(loc.column);
  }

  w.u64(chunks.size());
  for (const Chunk& chunk : chunks) {
    w.u32(chunk.name);
    w.u32(chunk.return_type);
    w.u64(chunk.params.size());
    for (const ParamInfo& p : chunk.params) {
      w.u32(p.name);
      w.u32(p.type);
    }
    w.u32(chunk.num_slots);
    for (const std::uint32_t name : chunk.slot_names) w.u32(name);
    w.u32(chunk.num_loops);
    w.u32(chunk.num_iters);
    w.u8(chunk.duplicate_param ? 1 : 0);
    if (chunk.duplicate_param) w.u32(*chunk.duplicate_param);
    w.u64(chunk.scopes.size());
    for (const auto& scope : chunk.scopes) {
      w.u64(scope.size());
      for (const std::uint32_t slot : scope) w.u32(slot);
    }
    w.u64(chunk.code.size());
    for (const Instr& in : chunk.code) {
      w.u8(static_cast<std::uint8_t>(in.op));
      w.i64(in.a);
      w.u32(in.b);
      w.u32(in.c);
      w.u32(in.loc);
    }
  }
  return w.bytes;
}

Bytecode Bytecode::deserialize(const std::uint8_t* data, std::size_t size) {
  Reader r{data, size};
  r.need(4);
  if (std::memcmp(r.data, kMagic, 4) != 0) corrupt("bad magic");
  r.pos = 4;
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    corrupt("unsupported artifact version " + std::to_string(version));

  Bytecode bc;
  bc.source_hash = r.u64();

  const std::uint64_t num_strings = r.count();
  bc.strings.reserve(num_strings);
  for (std::uint64_t i = 0; i < num_strings; ++i) bc.strings.push_back(r.str());
  const std::uint64_t num_floats = r.count();
  bc.floats.reserve(num_floats);
  for (std::uint64_t i = 0; i < num_floats; ++i) bc.floats.push_back(r.f64());
  const std::uint64_t num_types = r.count();
  constexpr auto kKindMax = static_cast<std::uint8_t>(TypeKind::Array);
  bc.types.reserve(num_types);
  for (std::uint64_t i = 0; i < num_types; ++i) {
    QType t;
    const std::uint8_t kind = r.u8();
    const std::uint8_t element = r.u8();
    if (kind > kKindMax || element > kKindMax) corrupt("type kind out of range");
    t.kind = static_cast<TypeKind>(kind);
    t.element = static_cast<TypeKind>(element);
    t.quint_width = static_cast<std::size_t>(r.u64());
    bc.types.push_back(t);
  }
  const std::uint64_t num_locs = r.count();
  bc.locations.reserve(num_locs);
  for (std::uint64_t i = 0; i < num_locs; ++i) {
    SourceLocation loc;
    loc.line = static_cast<std::size_t>(r.u64());
    loc.column = static_cast<std::size_t>(r.u64());
    bc.locations.push_back(loc);
  }

  const std::uint64_t num_chunks = r.count();
  bc.chunks.reserve(num_chunks);
  for (std::uint64_t i = 0; i < num_chunks; ++i) {
    Chunk chunk;
    chunk.name = r.u32();
    chunk.return_type = r.u32();
    const std::uint64_t num_params = r.count();
    chunk.params.reserve(num_params);
    for (std::uint64_t j = 0; j < num_params; ++j) {
      ParamInfo p;
      p.name = r.u32();
      p.type = r.u32();
      chunk.params.push_back(p);
    }
    chunk.num_slots = r.u32();
    if (chunk.num_slots > kMaxSectionCount) corrupt("implausible section size");
    chunk.slot_names.reserve(chunk.num_slots);
    for (std::uint32_t j = 0; j < chunk.num_slots; ++j)
      chunk.slot_names.push_back(r.u32());
    chunk.num_loops = r.u32();
    chunk.num_iters = r.u32();
    if (r.u8() != 0) chunk.duplicate_param = r.u32();
    const std::uint64_t num_scopes = r.count();
    chunk.scopes.reserve(num_scopes);
    for (std::uint64_t j = 0; j < num_scopes; ++j) {
      const std::uint64_t scope_size = r.count();
      std::vector<std::uint32_t> scope;
      scope.reserve(scope_size);
      for (std::uint64_t k = 0; k < scope_size; ++k) scope.push_back(r.u32());
      chunk.scopes.push_back(std::move(scope));
    }
    const std::uint64_t num_instrs = r.count();
    chunk.code.reserve(num_instrs);
    for (std::uint64_t j = 0; j < num_instrs; ++j) {
      Instr in;
      in.op = static_cast<Op>(r.u8());
      in.a = r.i64();
      in.b = r.u32();
      in.c = r.u32();
      in.loc = r.u32();
      chunk.code.push_back(in);
    }
    bc.chunks.push_back(std::move(chunk));
  }
  if (r.pos != r.size) corrupt("trailing bytes after artifact");
  bc.validate();
  return bc;
}

void Bytecode::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("failed writing bytecode to '" + path + "'");
}

Bytecode Bytecode::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) corrupt("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes.data(), bytes.size());
}

// ---- disassembler -----------------------------------------------------------

std::string Bytecode::disassemble() const {
  std::ostringstream out;
  out << "; qutes bytecode v" << kVersion << ", source hash " << std::hex
      << source_hash << std::dec << "\n";
  for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
    const Chunk& chunk = chunks[ci];
    const std::string& name = strings[chunk.name];
    out << "\nchunk " << ci << " <" << (name.empty() ? "main" : name) << ">";
    if (!chunk.params.empty()) {
      out << " (";
      for (std::size_t i = 0; i < chunk.params.size(); ++i) {
        if (i) out << ", ";
        out << types[chunk.params[i].type].to_string() << " "
            << strings[chunk.params[i].name];
      }
      out << ")";
    }
    out << "  ; slots=" << chunk.num_slots << " loops=" << chunk.num_loops
        << " iters=" << chunk.num_iters << "\n";
    for (std::size_t pc = 0; pc < chunk.code.size(); ++pc) {
      const Instr& in = chunk.code[pc];
      out << "  " << pc << "\t" << op_name(in.op);
      const OpSpec spec = op_spec(in.op);
      switch (spec.a) {
        case AKind::Imm:
          if (in.op == Op::DeclarePromoteString)
            out << " \"" << strings[static_cast<std::uint32_t>(in.a)] << "\"";
          else
            out << " " << in.a;
          break;
        case AKind::Jump: out << " ->" << in.a; break;
        case AKind::Enum: out << " #" << in.a; break;
        case AKind::Argc: out << " argc=" << in.a; break;
        case AKind::Flag: out << " " << in.a; break;
        case AKind::None: break;
      }
      switch (spec.b) {
        case BKind::Slot: {
          const bool global_slot = in.op == Op::LoadGlobal ||
                                   in.op == Op::CheckGlobal ||
                                   in.op == Op::AssignGlobal ||
                                   in.op == Op::CompoundGlobal;
          const Chunk& owner = global_slot ? chunks.front() : chunk;
          out << " slot=" << in.b << "(" << strings[owner.slot_names[in.b]] << ")";
          break;
        }
        case BKind::Str: out << " \"" << strings[in.b] << "\""; break;
        case BKind::FloatPool: out << " " << floats[in.b]; break;
        case BKind::Loop: out << " loop=" << in.b; break;
        case BKind::Iter: out << " iter=" << in.b; break;
        case BKind::Scope: out << " scope=" << in.b; break;
        case BKind::Chunk:
          out << " chunk=" << in.b << "<" << strings[chunks[in.b].name] << ">";
          break;
        case BKind::None: break;
      }
      switch (spec.c) {
        case CKind::Slot:
          out << " slot=" << in.c << "(" << strings[chunk.slot_names[in.c]] << ")";
          break;
        case CKind::Type: out << " : " << types[in.c].to_string(); break;
        case CKind::None: break;
      }
      if (locations[in.loc].valid())
        out << "\t; " << locations[in.loc].to_string();
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace qutes::lang
