#include "qutes/lang/lexer.hpp"

#include <cctype>
#include <map>

#include "qutes/obs/obs.hpp"

namespace qutes::lang {

const char* token_type_name(TokenType type) noexcept {
  switch (type) {
    case TokenType::IntLit: return "integer literal";
    case TokenType::FloatLit: return "float literal";
    case TokenType::StringLit: return "string literal";
    case TokenType::QuantumIntLit: return "quantum integer literal";
    case TokenType::QuantumStringLit: return "quantum string literal";
    case TokenType::KetZero: return "|0>";
    case TokenType::KetOne: return "|1>";
    case TokenType::KetPlus: return "|+>";
    case TokenType::KetMinus: return "|->";
    case TokenType::Identifier: return "identifier";
    case TokenType::KwBool: return "'bool'";
    case TokenType::KwInt: return "'int'";
    case TokenType::KwFloat: return "'float'";
    case TokenType::KwString: return "'string'";
    case TokenType::KwQubit: return "'qubit'";
    case TokenType::KwQuint: return "'quint'";
    case TokenType::KwQustring: return "'qustring'";
    case TokenType::KwVoid: return "'void'";
    case TokenType::KwTrue: return "'true'";
    case TokenType::KwFalse: return "'false'";
    case TokenType::KwIf: return "'if'";
    case TokenType::KwElse: return "'else'";
    case TokenType::KwWhile: return "'while'";
    case TokenType::KwForeach: return "'foreach'";
    case TokenType::KwIn: return "'in'";
    case TokenType::KwReturn: return "'return'";
    case TokenType::KwPrint: return "'print'";
    case TokenType::KwBarrier: return "'barrier'";
    case TokenType::KwNot: return "'not'";
    case TokenType::KwPauliY: return "'pauliy'";
    case TokenType::KwPauliZ: return "'pauliz'";
    case TokenType::KwHadamard: return "'hadamard'";
    case TokenType::KwPhase: return "'phase'";
    case TokenType::KwSGate: return "'sgate'";
    case TokenType::KwTGate: return "'tgate'";
    case TokenType::KwMeasure: return "'measure'";
    case TokenType::KwReset: return "'reset'";
    case TokenType::LParen: return "'('";
    case TokenType::RParen: return "')'";
    case TokenType::LBrace: return "'{'";
    case TokenType::RBrace: return "'}'";
    case TokenType::LBracket: return "'['";
    case TokenType::RBracket: return "']'";
    case TokenType::Comma: return "','";
    case TokenType::Semicolon: return "';'";
    case TokenType::Assign: return "'='";
    case TokenType::PlusAssign: return "'+='";
    case TokenType::MinusAssign: return "'-='";
    case TokenType::StarAssign: return "'*='";
    case TokenType::SlashAssign: return "'/='";
    case TokenType::PercentAssign: return "'%='";
    case TokenType::ShlAssign: return "'<<='";
    case TokenType::ShrAssign: return "'>>='";
    case TokenType::Plus: return "'+'";
    case TokenType::Minus: return "'-'";
    case TokenType::Star: return "'*'";
    case TokenType::Slash: return "'/'";
    case TokenType::Percent: return "'%'";
    case TokenType::Shl: return "'<<'";
    case TokenType::Shr: return "'>>'";
    case TokenType::EqEq: return "'=='";
    case TokenType::NotEq: return "'!='";
    case TokenType::Lt: return "'<'";
    case TokenType::LtEq: return "'<='";
    case TokenType::Gt: return "'>'";
    case TokenType::GtEq: return "'>='";
    case TokenType::AndAnd: return "'&&'";
    case TokenType::OrOr: return "'||'";
    case TokenType::Bang: return "'!'";
    case TokenType::Tilde: return "'~'";
    case TokenType::Eof: return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenType>& keywords() {
  static const std::map<std::string, TokenType> table = {
      {"bool", TokenType::KwBool},         {"int", TokenType::KwInt},
      {"float", TokenType::KwFloat},       {"string", TokenType::KwString},
      {"qubit", TokenType::KwQubit},       {"quint", TokenType::KwQuint},
      {"qustring", TokenType::KwQustring}, {"void", TokenType::KwVoid},
      {"true", TokenType::KwTrue},         {"false", TokenType::KwFalse},
      {"if", TokenType::KwIf},             {"else", TokenType::KwElse},
      {"while", TokenType::KwWhile},       {"foreach", TokenType::KwForeach},
      {"in", TokenType::KwIn},             {"return", TokenType::KwReturn},
      {"print", TokenType::KwPrint},       {"barrier", TokenType::KwBarrier},
      {"not", TokenType::KwNot},           {"pauliy", TokenType::KwPauliY},
      {"pauliz", TokenType::KwPauliZ},     {"hadamard", TokenType::KwHadamard},
      {"phase", TokenType::KwPhase},       {"sgate", TokenType::KwSGate},
      {"tgate", TokenType::KwTGate},       {"measure", TokenType::KwMeasure},
      {"reset", TokenType::KwReset},
  };
  return table;
}

}  // namespace

Lexer::Lexer(std::string source) : source_(std::move(source)) {}

char Lexer::peek(std::size_t ahead) const noexcept {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() noexcept {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) noexcept {
  if (peek() != expected) return false;
  advance();
  return true;
}

SourceLocation Lexer::here() const noexcept { return {line_, column_}; }

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLocation start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') throw LangError("unterminated block comment", start);
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_number() {
  const SourceLocation loc = here();
  std::string text;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  bool is_float = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  }
  Token token;
  token.location = loc;
  token.text = text;
  // stod/stoll throw std::out_of_range on literals beyond the host type;
  // surface that as a diagnostic, not an internal exception.
  try {
    if (is_float) {
      token.type = TokenType::FloatLit;
      token.float_value = std::stod(text);
    } else if (peek() == 'q' &&
               !std::isalnum(static_cast<unsigned char>(peek(1))) && peek(1) != '_') {
      advance();  // consume the q suffix
      token.type = TokenType::QuantumIntLit;
      token.int_value = std::stoll(text);
    } else {
      token.type = TokenType::IntLit;
      token.int_value = std::stoll(text);
    }
  } catch (const std::out_of_range&) {
    throw LangError("numeric literal '" + text + "' is out of range", loc);
  }
  return token;
}

Token Lexer::lex_string() {
  const SourceLocation loc = here();
  advance();  // opening quote
  std::string text;
  for (;;) {
    const char c = peek();
    if (c == '\0' || c == '\n') throw LangError("unterminated string literal", loc);
    if (c == '"') break;
    if (c == '\\') {
      advance();
      const char esc = advance();
      switch (esc) {
        case 'n': text += '\n'; break;
        case 't': text += '\t'; break;
        case '"': text += '"'; break;
        case '\\': text += '\\'; break;
        default:
          throw LangError(std::string("unknown escape '\\") + esc + "'", loc);
      }
      continue;
    }
    text += advance();
  }
  advance();  // closing quote
  Token token;
  token.location = loc;
  token.text = text;
  if (peek() == 'q' &&
      !std::isalnum(static_cast<unsigned char>(peek(1))) && peek(1) != '_') {
    advance();
    for (char c : text) {
      if (c != '0' && c != '1') {
        throw LangError("quantum string literals must be bitstrings", loc);
      }
    }
    token.type = TokenType::QuantumStringLit;
  } else {
    token.type = TokenType::StringLit;
  }
  return token;
}

Token Lexer::lex_identifier_or_keyword() {
  const SourceLocation loc = here();
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    text += advance();
  }
  Token token;
  token.location = loc;
  token.text = text;
  const auto it = keywords().find(text);
  token.type = it != keywords().end() ? it->second : TokenType::Identifier;
  return token;
}

Token Lexer::lex_ket() {
  const SourceLocation loc = here();
  advance();  // '|'
  const char inner = advance();
  if (!match('>')) throw LangError("malformed ket literal", loc);
  Token token;
  token.location = loc;
  token.text = std::string("|") + inner + ">";
  switch (inner) {
    case '0': token.type = TokenType::KetZero; break;
    case '1': token.type = TokenType::KetOne; break;
    case '+': token.type = TokenType::KetPlus; break;
    case '-': token.type = TokenType::KetMinus; break;
    default: throw LangError("malformed ket literal", loc);
  }
  return token;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    skip_whitespace_and_comments();
    const SourceLocation loc = here();
    const char c = peek();
    if (c == '\0') {
      tokens.push_back(Token{TokenType::Eof, "", 0, 0.0, loc});
      return tokens;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number());
      continue;
    }
    if (c == '"') {
      tokens.push_back(lex_string());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lex_identifier_or_keyword());
      continue;
    }
    // Ket literal: '|' followed by one of 0/1/+/- and '>'.
    if (c == '|' && (peek(1) == '0' || peek(1) == '1' || peek(1) == '+' ||
                     peek(1) == '-') && peek(2) == '>') {
      tokens.push_back(lex_ket());
      continue;
    }

    advance();
    const auto simple = [&](TokenType type) {
      tokens.push_back(Token{type, std::string(1, c), 0, 0.0, loc});
    };
    switch (c) {
      case '(': simple(TokenType::LParen); break;
      case ')': simple(TokenType::RParen); break;
      case '{': simple(TokenType::LBrace); break;
      case '}': simple(TokenType::RBrace); break;
      case '[': simple(TokenType::LBracket); break;
      case ']': simple(TokenType::RBracket); break;
      case ',': simple(TokenType::Comma); break;
      case ';': simple(TokenType::Semicolon); break;
      case '~': simple(TokenType::Tilde); break;
      case '+': simple(match('=') ? TokenType::PlusAssign : TokenType::Plus); break;
      case '-': simple(match('=') ? TokenType::MinusAssign : TokenType::Minus); break;
      case '*': simple(match('=') ? TokenType::StarAssign : TokenType::Star); break;
      case '/': simple(match('=') ? TokenType::SlashAssign : TokenType::Slash); break;
      case '%': simple(match('=') ? TokenType::PercentAssign : TokenType::Percent); break;
      case '=': simple(match('=') ? TokenType::EqEq : TokenType::Assign); break;
      case '!': simple(match('=') ? TokenType::NotEq : TokenType::Bang); break;
      case '<':
        if (match('<')) {
          simple(match('=') ? TokenType::ShlAssign : TokenType::Shl);
        } else {
          simple(match('=') ? TokenType::LtEq : TokenType::Lt);
        }
        break;
      case '>':
        if (match('>')) {
          simple(match('=') ? TokenType::ShrAssign : TokenType::Shr);
        } else {
          simple(match('=') ? TokenType::GtEq : TokenType::Gt);
        }
        break;
      case '&':
        if (match('&')) simple(TokenType::AndAnd);
        else throw LangError("single '&' is not an operator", loc);
        break;
      case '|':
        if (match('|')) simple(TokenType::OrOr);
        else throw LangError("single '|' is not an operator (kets are |0>,|1>,|+>,|->)", loc);
        break;
      default:
        throw LangError(std::string("unexpected character '") + c + "'", loc);
    }
  }
}

std::vector<Token> tokenize(const std::string& source) {
  obs::Span span("lang.tokenize");
  std::vector<Token> tokens = Lexer(source).tokenize();
  static obs::Counter& tokens_metric =
      obs::metrics().counter(obs::names::kLangTokens);
  tokens_metric.add(tokens.size());
  return tokens;
}

}  // namespace qutes::lang
