#include "qutes/lang/lower.hpp"

#include <unordered_map>

#include "qutes/lang/builtins.hpp"
#include "qutes/lang/runtime.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::lang {
namespace {

constexpr std::uint32_t kNoPc = 0xffffffffu;

class Lowerer final : public StmtVisitor {
public:
  Lowerer(const FunctionTable& functions, std::uint64_t source_hash)
      : functions_(functions) {
    bc_.source_hash = source_hash;
    bc_.locations.push_back(SourceLocation{});  // index 0 = "<builtin>"
  }

  Bytecode run(Program& program) {
    // Chunk indices first, so call sites in any chunk (main included)
    // resolve to the final layout: main = 0, functions in name order.
    bc_.chunks.emplace_back();
    for (const auto& [name, fn] : functions_.items()) {
      chunk_index_[name] = static_cast<std::uint32_t>(bc_.chunks.size());
      bc_.chunks.emplace_back();
      (void)fn;
    }

    // Main chunk: only the program's own statements (stdlib contributes
    // functions, not top-level effects). Its root scope map is completed
    // in-order and then frozen as the global frame layout.
    begin_chunk(0, "", QType::scalar(TypeKind::Void));
    for (const StmtPtr& stmt : program.statements) lower_stmt(*stmt);
    global_names_ = scopes_.front().names;
    end_chunk();

    for (const auto& [name, fn] : functions_.items()) {
      lower_function(chunk_index_.at(name), *fn);
    }

    bc_.validate();
    return std::move(bc_);
  }

private:
  struct ScopeInfo {
    std::unordered_map<std::string, std::uint32_t> names;
    std::vector<std::uint32_t> slots;  ///< slots this scope itself declared
  };

  // ---- pools ----------------------------------------------------------------

  std::uint32_t intern_str(const std::string& s) {
    const auto it = str_pool_.find(s);
    if (it != str_pool_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(bc_.strings.size());
    bc_.strings.push_back(s);
    str_pool_.emplace(s, idx);
    return idx;
  }

  std::uint32_t intern_float(double v) {
    const auto idx = static_cast<std::uint32_t>(bc_.floats.size());
    bc_.floats.push_back(v);
    return idx;
  }

  std::uint32_t intern_type(const QType& t) {
    for (std::size_t i = 0; i < bc_.types.size(); ++i) {
      const QType& have = bc_.types[i];
      // QType::operator== ignores quint_width; the declared width matters
      // here (it drives register allocation), so compare it explicitly.
      if (have.kind == t.kind && have.element == t.element &&
          have.quint_width == t.quint_width)
        return static_cast<std::uint32_t>(i);
    }
    bc_.types.push_back(t);
    return static_cast<std::uint32_t>(bc_.types.size() - 1);
  }

  std::uint32_t intern_loc(SourceLocation loc) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(loc.line) << 32) ^ loc.column;
    const auto it = loc_pool_.find(key);
    if (it != loc_pool_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(bc_.locations.size());
    bc_.locations.push_back(loc);
    loc_pool_.emplace(key, idx);
    return idx;
  }

  // ---- emission -------------------------------------------------------------

  std::uint32_t emit(Op op, std::int64_t a, std::uint32_t b, std::uint32_t c,
                     SourceLocation loc) {
    Instr in;
    in.op = op;
    in.a = a;
    in.b = b;
    in.c = c;
    in.loc = intern_loc(loc);
    chunk_->code.push_back(in);
    return static_cast<std::uint32_t>(chunk_->code.size() - 1);
  }

  [[nodiscard]] std::uint32_t here() const {
    return static_cast<std::uint32_t>(chunk_->code.size());
  }

  void patch(std::uint32_t pc, std::uint32_t target) {
    chunk_->code[pc].a = target;
  }

  // ---- chunk & scope management ---------------------------------------------

  void begin_chunk(std::uint32_t index, const std::string& name,
                   const QType& return_type) {
    chunk_ = &bc_.chunks[index];
    chunk_->name = intern_str(name);
    chunk_->return_type = intern_type(return_type);
    in_function_ = index != 0;
    scopes_.clear();
    scopes_.emplace_back();
  }

  void end_chunk() {
    scopes_.clear();
    chunk_ = nullptr;
  }

  void lower_function(std::uint32_t index, FuncDeclStmt& fn) {
    begin_chunk(index, fn.name, fn.return_type);
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const Param& param = fn.params[i];
      ParamInfo info;
      info.name = intern_str(param.name);
      info.type = intern_type(param.type);
      chunk_->params.push_back(info);
      if (scopes_.front().names.count(param.name) != 0) {
        if (!chunk_->duplicate_param)
          chunk_->duplicate_param = static_cast<std::uint32_t>(i);
        new_slot(param.name);  // keep one slot per param position
      } else {
        scopes_.front().names.emplace(param.name, new_slot(param.name));
      }
    }
    // Body statements execute directly in the parameter scope (the
    // tree-walk does not open a block scope for the body).
    for (const StmtPtr& stmt : fn.body->statements) lower_stmt(*stmt);
    emit(Op::Return, 0, 0, 0, fn.location);  // implicit `return;`
    end_chunk();
  }

  std::uint32_t new_slot(const std::string& name) {
    const std::uint32_t slot = chunk_->num_slots++;
    chunk_->slot_names.push_back(intern_str(name));
    return slot;
  }

  /// Slot for a declaration in the current lexical scope. A same-name
  /// redeclaration reuses the slot (the Declare op raises the runtime
  /// redeclaration error if both executions are live).
  std::uint32_t declare_slot(const std::string& name) {
    ScopeInfo& scope = scopes_.back();
    const auto it = scope.names.find(name);
    if (it != scope.names.end()) return it->second;
    const std::uint32_t slot = new_slot(name);
    scope.names.emplace(name, slot);
    scope.slots.push_back(slot);
    return slot;
  }

  struct Resolved {
    enum class Where { Local, Global, Missing } where = Where::Missing;
    std::uint32_t slot = 0;
  };

  /// Mirror of the tree-walk's scope-chain lookup at this point of the
  /// program: lexical scopes inside the chunk, then (for function chunks)
  /// the completed top-level frame. Whether the global slot is *bound* at
  /// this instant is a runtime question; the Load/Assign ops re-check it.
  Resolved resolve(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto hit = it->names.find(name);
      if (hit != it->names.end())
        return {Resolved::Where::Local, hit->second};
    }
    if (in_function_) {
      const auto hit = global_names_.find(name);
      if (hit != global_names_.end())
        return {Resolved::Where::Global, hit->second};
    }
    return {};
  }

  // ---- constant folding -----------------------------------------------------

  /// Classical condition rules (TypeCastingHandler::condition_bool) for
  /// folded — hence classical scalar — values.
  static std::optional<bool> const_condition(const ValuePtr& v) {
    switch (v->kind()) {
      case TypeKind::Bool: return v->as_bool();
      case TypeKind::Int: return v->as_int() != 0;
      case TypeKind::Float: return v->as_float() != 0.0;
      case TypeKind::String: return !v->as_string().empty();
      default: return std::nullopt;
    }
  }

  /// Fold a literal subtree through the exact runtime rules, or decline.
  /// `depth` is the tree-walk's evaluate() entry depth for `expr`: a subtree
  /// the reference could not evaluate without tripping its recursion guard
  /// is never folded, so the guard trips at the same node either way.
  /// Subtrees whose evaluation throws (division by zero, type errors) are
  /// left unfolded so the error surfaces at runtime, exactly where the
  /// reference raises it.
  std::optional<ValuePtr> fold(Expr& expr, std::size_t depth) const {
    if (depth >= kMaxEvalDepth) return std::nullopt;
    if (auto* lit = dynamic_cast<IntLitExpr*>(&expr))
      return Value::make_int(lit->value);
    if (auto* lit = dynamic_cast<FloatLitExpr*>(&expr))
      return Value::make_float(lit->value);
    if (auto* lit = dynamic_cast<BoolLitExpr*>(&expr))
      return Value::make_bool(lit->value);
    if (auto* lit = dynamic_cast<StringLitExpr*>(&expr))
      return Value::make_string(lit->value);
    if (auto* un = dynamic_cast<UnaryExpr*>(&expr)) {
      const auto v = fold(*un->operand, depth + 1);
      if (!v) return std::nullopt;
      switch (un->op) {
        case UnaryOp::Neg:
          if ((*v)->kind() == TypeKind::Float)
            return Value::make_float(-(*v)->as_float());
          if ((*v)->kind() == TypeKind::Int)
            return Value::make_int(static_cast<std::int64_t>(
                std::uint64_t{0} - static_cast<std::uint64_t>((*v)->as_int())));
          return std::nullopt;
        case UnaryOp::Not:
          if (const auto cond = const_condition(*v))
            return Value::make_bool(!*cond);
          return std::nullopt;
        case UnaryOp::BitNot:
          if ((*v)->kind() == TypeKind::Int)
            return Value::make_int(~(*v)->as_int());
          return std::nullopt;
      }
      return std::nullopt;
    }
    if (auto* bin = dynamic_cast<BinaryExpr*>(&expr)) {
      if (bin->op == BinaryOp::And || bin->op == BinaryOp::Or) {
        const auto lhs = fold(*bin->lhs, depth + 1);
        if (!lhs) return std::nullopt;
        const auto lcond = const_condition(*lhs);
        if (!lcond) return std::nullopt;
        // The lhs alone may decide: the reference then never evaluates the
        // rhs, so an unfoldable (even over-deep) rhs does not block folding.
        if (bin->op == BinaryOp::And && !*lcond) return Value::make_bool(false);
        if (bin->op == BinaryOp::Or && *lcond) return Value::make_bool(true);
        const auto rhs = fold(*bin->rhs, depth + 1);
        if (!rhs) return std::nullopt;
        const auto rcond = const_condition(*rhs);
        if (!rcond) return std::nullopt;
        return Value::make_bool(*rcond);
      }
      if (bin->op == BinaryOp::In) return std::nullopt;
      const auto lhs = fold(*bin->lhs, depth + 1);
      if (!lhs) return std::nullopt;
      const auto rhs = fold(*bin->rhs, depth + 1);
      if (!rhs) return std::nullopt;
      try {
        return Runtime::classical_binary(bin->op, *lhs, *rhs, expr.location);
      } catch (const Error&) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  void emit_const(const ValuePtr& v, SourceLocation loc) {
    switch (v->kind()) {
      case TypeKind::Int:
        emit(Op::PushInt, v->as_int(), 0, 0, loc);
        return;
      case TypeKind::Float:
        emit(Op::PushFloat, 0, intern_float(v->as_float()), 0, loc);
        return;
      case TypeKind::Bool:
        emit(Op::PushBool, v->as_bool() ? 1 : 0, 0, 0, loc);
        return;
      case TypeKind::String:
        emit(Op::PushString, 0, intern_str(v->as_string()), 0, loc);
        return;
      default:
        throw LangError("internal: unexpected folded constant kind", loc);
    }
  }

  // ---- expressions ----------------------------------------------------------

  void lower_expr(Expr& expr) {
    // Static mirror of the tree-walk's evaluate() recursion guard: same
    // limit, same message, same node. (The static check is eager — it fires
    // for an over-deep expression even on a dynamically-dead path, like any
    // compile-time diagnostic.)
    if (depth_ >= kMaxEvalDepth) {
      throw LangError("expression too deep to evaluate (depth limit " +
                          std::to_string(kMaxEvalDepth) + ")",
                      expr.location);
    }
    ++depth_;
    struct DepthGuard {
      std::size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};

    if (const auto v = fold(expr, depth_ - 1)) {
      emit_const(*v, expr.location);
      return;
    }

    if (auto* lit = dynamic_cast<IntLitExpr*>(&expr)) {
      emit(Op::PushInt, lit->value, 0, 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<FloatLitExpr*>(&expr)) {
      emit(Op::PushFloat, 0, intern_float(lit->value), 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<BoolLitExpr*>(&expr)) {
      emit(Op::PushBool, lit->value ? 1 : 0, 0, 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<StringLitExpr*>(&expr)) {
      emit(Op::PushString, 0, intern_str(lit->value), 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<QuantumIntLitExpr*>(&expr)) {
      emit(Op::QuintLit, lit->value, 0, 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<QuantumStringLitExpr*>(&expr)) {
      emit(Op::QustringLit, 0, intern_str(lit->bits), 0, expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<KetLitExpr*>(&expr)) {
      emit(Op::KetState, static_cast<std::int64_t>(lit->kind), 0, 0,
           expr.location);
      return;
    }
    if (auto* lit = dynamic_cast<ArrayLitExpr*>(&expr)) {
      const Op begin = lit->superposition ? Op::SupBegin : Op::ArrBegin;
      const Op elem = lit->superposition ? Op::SupElem : Op::ArrElem;
      const Op end = lit->superposition ? Op::SupEnd : Op::ArrEnd;
      emit(begin, 0, 0, 0, expr.location);
      for (const ExprPtr& element : lit->elements) {
        lower_expr(*element);
        emit(elem, 0, 0, 0, expr.location);
      }
      emit(end, 0, 0, 0, expr.location);
      return;
    }
    if (auto* ref = dynamic_cast<VarRefExpr*>(&expr)) {
      const Resolved r = resolve(ref->name);
      switch (r.where) {
        case Resolved::Where::Local:
          emit(Op::LoadLocal, 0, r.slot, 0, expr.location);
          return;
        case Resolved::Where::Global:
          emit(Op::LoadGlobal, 0, r.slot, 0, expr.location);
          return;
        case Resolved::Where::Missing:
          emit(Op::ThrowUseUndeclared, 0, intern_str(ref->name), 0,
               expr.location);
          return;
      }
      return;
    }
    if (auto* idx = dynamic_cast<IndexExpr*>(&expr)) {
      lower_expr(*idx->target);
      lower_expr(*idx->index);
      emit(Op::IndexGet, 0, 0, 0, expr.location);
      return;
    }
    if (auto* call = dynamic_cast<CallExpr*>(&expr)) {
      for (const ExprPtr& arg : call->args) lower_expr(*arg);
      const auto argc = static_cast<std::int64_t>(call->args.size());
      if (is_builtin(call->callee)) {
        emit(Op::CallBuiltin, argc, intern_str(call->callee), 0, expr.location);
        return;
      }
      const auto target = chunk_index_.find(call->callee);
      if (target != chunk_index_.end()) {
        emit(Op::CallUser, argc, target->second, 0, expr.location);
        return;
      }
      // Unknown callee: the reference evaluates the arguments first, then
      // throws — so must we (the args just ran above).
      emit(Op::ThrowUnknownFunction, 0, intern_str(call->callee), 0,
           expr.location);
      return;
    }
    if (auto* un = dynamic_cast<UnaryExpr*>(&expr)) {
      lower_expr(*un->operand);
      emit(Op::UnaryApply, static_cast<std::int64_t>(un->op), 0, 0,
           expr.location);
      return;
    }
    if (auto* bin = dynamic_cast<BinaryExpr*>(&expr)) {
      if (bin->op == BinaryOp::And || bin->op == BinaryOp::Or) {
        lower_expr(*bin->lhs);
        emit(Op::ToBool, 0, 0, 0, expr.location);
        const Op skip = bin->op == BinaryOp::And ? Op::JumpIfFalsePeek
                                                 : Op::JumpIfTruePeek;
        const std::uint32_t jump = emit(skip, kNoPc, 0, 0, expr.location);
        emit(Op::Pop, 0, 0, 0, expr.location);
        lower_expr(*bin->rhs);
        emit(Op::ToBool, 0, 0, 0, expr.location);
        patch(jump, here());
        return;
      }
      lower_expr(*bin->lhs);
      lower_expr(*bin->rhs);
      emit(Op::BinaryApply, static_cast<std::int64_t>(bin->op), 0, 0,
           expr.location);
      return;
    }
    throw LangError("internal: unknown expression node", expr.location);
  }

  // ---- statements -----------------------------------------------------------

  void lower_stmt(Stmt& stmt) {
    // Static statement-nesting guard: belt over the parser's own nesting
    // limit, same spirit as the expression-depth guard above.
    if (stmt_depth_ >= kMaxEvalDepth) {
      throw LangError("statement nesting too deep to lower (depth limit " +
                          std::to_string(kMaxEvalDepth) + ")",
                      stmt.location);
    }
    ++stmt_depth_;
    struct DepthGuard {
      std::size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{stmt_depth_};
    stmt.accept(*this);
  }

  void visit(VarDeclStmt& stmt) override {
    const std::uint32_t slot = declare_slot(stmt.name);
    const std::uint32_t type = intern_type(stmt.type);
    if (!stmt.init) {
      emit(Op::DeclareDefault, 0, slot, type, stmt.location);
      return;
    }
    // Quantum declarations with literal initializers build their register
    // directly at the declared width/name (tree-walk fast path).
    if (stmt.type.kind == TypeKind::Quint || stmt.type.kind == TypeKind::Qubit ||
        stmt.type.kind == TypeKind::Qustring) {
      if (auto* lit = dynamic_cast<QuantumIntLitExpr*>(stmt.init.get())) {
        emit(Op::DeclarePromoteInt, lit->value, slot, type, stmt.location);
        return;
      }
      if (auto* lit = dynamic_cast<IntLitExpr*>(stmt.init.get())) {
        emit(Op::DeclarePromoteInt, lit->value, slot, type, stmt.location);
        return;
      }
      if (auto* lit = dynamic_cast<QuantumStringLitExpr*>(stmt.init.get())) {
        emit(Op::DeclarePromoteString,
             static_cast<std::int64_t>(intern_str(lit->bits)), slot, type,
             stmt.location);
        return;
      }
    }
    emit(Op::Declare, 0, slot, type, stmt.location);
    lower_expr(*stmt.init);
    emit(Op::BindInit, 0, slot, type, stmt.location);
  }

  void visit(AssignStmt& stmt) override {
    if (auto* ref = dynamic_cast<VarRefExpr*>(stmt.lvalue.get())) {
      const Resolved r = resolve(ref->name);
      if (r.where == Resolved::Where::Missing) {
        // The reference resolves the target before evaluating the rhs, so
        // the rhs is never lowered (and its static guards never fire).
        emit(Op::ThrowAssignUndeclared, 0, intern_str(ref->name), 0,
             ref->location);
        return;
      }
      const bool global = r.where == Resolved::Where::Global;
      emit(global ? Op::CheckGlobal : Op::CheckLocal, 0, r.slot, 0,
           ref->location);
      lower_expr(*stmt.value);
      if (stmt.compound) {
        emit(global ? Op::CompoundGlobal : Op::CompoundLocal,
             static_cast<std::int64_t>(*stmt.compound), r.slot, 0,
             stmt.location);
      } else {
        emit(global ? Op::AssignGlobal : Op::AssignLocal, 0, r.slot, 0,
             stmt.location);
      }
      return;
    }
    if (auto* idx = dynamic_cast<IndexExpr*>(stmt.lvalue.get())) {
      lower_expr(*idx->target);
      emit(Op::CheckIndexTarget, 0, 0, 0, idx->location);
      lower_expr(*idx->index);
      emit(Op::IndexPrep, 0, 0, 0, idx->location);
      lower_expr(*stmt.value);
      if (stmt.compound) {
        emit(Op::CompoundIndex, static_cast<std::int64_t>(*stmt.compound), 0, 0,
             stmt.location);
      } else {
        emit(Op::AssignIndex, 0, 0, 0, stmt.location);
      }
      return;
    }
    throw LangError("invalid assignment target", stmt.lvalue->location);
  }

  void visit(ExprStmt& stmt) override {
    lower_expr(*stmt.expr);
    emit(Op::Pop, 0, 0, 0, stmt.location);
  }

  void visit(BlockStmt& stmt) override {
    scopes_.emplace_back();
    for (const StmtPtr& child : stmt.statements) lower_stmt(*child);
    close_scope(stmt.location);
  }

  void visit(IfStmt& stmt) override {
    // Dead-branch elimination on a statically-known condition. The
    // eliminated branch's declarations never enter the scope map — the
    // reference never executes them either, so later references resolve
    // (or fail) identically.
    if (const auto cv = fold(*stmt.condition, 0)) {
      if (const auto cond = const_condition(*cv)) {
        if (*cond) {
          lower_stmt(*stmt.then_branch);
        } else if (stmt.else_branch) {
          lower_stmt(*stmt.else_branch);
        }
        return;
      }
    }
    lower_expr(*stmt.condition);
    const std::uint32_t to_else =
        emit(Op::JumpIfFalse, kNoPc, 0, 0, stmt.location);
    lower_stmt(*stmt.then_branch);
    if (stmt.else_branch) {
      const std::uint32_t to_end = emit(Op::Jump, kNoPc, 0, 0, stmt.location);
      patch(to_else, here());
      lower_stmt(*stmt.else_branch);
      patch(to_end, here());
    } else {
      patch(to_else, here());
    }
  }

  void visit(WhileStmt& stmt) override {
    if (const auto cv = fold(*stmt.condition, 0)) {
      if (const auto cond = const_condition(*cv)) {
        if (!*cond) return;  // `while (false)`: never runs, nothing to emit
        // `while (true)`: no conditional exit; the iteration budget still
        // applies, so the reference's budget error surfaces identically.
        const std::uint32_t counter = chunk_->num_loops++;
        emit(Op::LoopReset, 0, counter, 0, stmt.location);
        const std::uint32_t top = here();
        lower_stmt(*stmt.body);
        emit(Op::LoopBump, 0, counter, 0, stmt.location);
        emit(Op::Jump, top, 0, 0, stmt.location);
        return;
      }
    }
    const std::uint32_t counter = chunk_->num_loops++;
    emit(Op::LoopReset, 0, counter, 0, stmt.location);
    const std::uint32_t top = here();
    lower_expr(*stmt.condition);
    const std::uint32_t exit = emit(Op::JumpIfFalse, kNoPc, 0, 0, stmt.location);
    lower_stmt(*stmt.body);
    emit(Op::LoopBump, 0, counter, 0, stmt.location);
    emit(Op::Jump, top, 0, 0, stmt.location);
    patch(exit, here());
  }

  void visit(ForeachStmt& stmt) override {
    const std::uint32_t iter = chunk_->num_iters++;
    lower_expr(*stmt.iterable);
    emit(Op::ForeachInit, 0, iter, 0, stmt.location);
    // Per-iteration scope holding the loop variable; a non-block body
    // declares into this same scope (exactly the tree-walk's layout, which
    // is what makes `foreach x in a int x = 1;` redeclare).
    scopes_.emplace_back();
    const std::uint32_t var_slot = declare_slot(stmt.var_name);
    const std::uint32_t top = here();
    const std::uint32_t next =
        emit(Op::ForeachNext, kNoPc, iter, var_slot, stmt.location);
    lower_stmt(*stmt.body);
    close_scope(stmt.location);
    emit(Op::Jump, top, 0, 0, stmt.location);
    patch(next, here());
  }

  void visit(FuncDeclStmt&) override {
    // Registered in pass 1; lowered as its own chunk.
  }

  void visit(ReturnStmt& stmt) override {
    if (stmt.value) {
      lower_expr(*stmt.value);
      emit(Op::Return, 1, 0, 0, stmt.location);
    } else {
      emit(Op::Return, 0, 0, 0, stmt.location);
    }
  }

  void visit(PrintStmt& stmt) override {
    lower_expr(*stmt.value);
    emit(Op::Print, 0, 0, 0, stmt.location);
  }

  void visit(BarrierStmt& stmt) override {
    emit(Op::Barrier, 0, 0, 0, stmt.location);
  }

  void visit(GateStmt& stmt) override {
    // Evaluate-then-apply per operand, interleaved like the reference.
    for (const ExprPtr& operand : stmt.operands) {
      lower_expr(*operand);
      emit(Op::GateApply, static_cast<std::int64_t>(stmt.gate), 0, 0,
           stmt.location);
    }
  }

  /// Pop the current lexical scope, emitting a ScopeExit when it declared
  /// anything (re-entering the region must find the slots undeclared).
  void close_scope(SourceLocation loc) {
    ScopeInfo scope = std::move(scopes_.back());
    scopes_.pop_back();
    if (!scope.slots.empty()) {
      const auto idx = static_cast<std::uint32_t>(chunk_->scopes.size());
      chunk_->scopes.push_back(std::move(scope.slots));
      emit(Op::ScopeExit, 0, idx, 0, loc);
    }
  }

  Bytecode bc_;
  const FunctionTable& functions_;
  std::unordered_map<std::string, std::uint32_t> chunk_index_;
  std::unordered_map<std::string, std::uint32_t> str_pool_;
  std::unordered_map<std::uint64_t, std::uint32_t> loc_pool_;

  Chunk* chunk_ = nullptr;
  std::vector<ScopeInfo> scopes_;
  std::unordered_map<std::string, std::uint32_t> global_names_;
  bool in_function_ = false;
  std::size_t depth_ = 0;
  std::size_t stmt_depth_ = 0;
};

}  // namespace

Bytecode lower(Program& program, const FunctionTable& functions,
               std::uint64_t source_hash) {
  obs::Span span("lang.lower");
  Lowerer lowerer(functions, source_hash);
  Bytecode bc = lowerer.run(program);
  obs::metrics()
      .counter(obs::names::kLangBytecodeOps)
      .add(static_cast<std::uint64_t>(bc.total_ops()));
  return bc;
}

}  // namespace qutes::lang
