#include "qutes/lang/printer.hpp"

#include <sstream>

namespace qutes::lang {

namespace {

class ExprPrinter final : public ExprVisitor {
public:
  std::string text;

  static std::string print(Expr& expr) {
    ExprPrinter printer;
    expr.accept(printer);
    return printer.text;
  }

  void visit(IntLitExpr& e) override { text = std::to_string(e.value); }

  void visit(FloatLitExpr& e) override {
    std::ostringstream out;
    out << e.value;
    text = out.str();
    // Keep the float-ness visible for round-tripping.
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos) {
      text += ".0";
    }
  }

  void visit(BoolLitExpr& e) override { text = e.value ? "true" : "false"; }

  void visit(StringLitExpr& e) override { text = quote(e.value); }

  void visit(QuantumIntLitExpr& e) override {
    text = std::to_string(e.value) + "q";
  }

  void visit(QuantumStringLitExpr& e) override { text = quote(e.bits) + "q"; }

  void visit(KetLitExpr& e) override {
    switch (e.kind) {
      case KetKind::Zero: text = "|0>"; break;
      case KetKind::One: text = "|1>"; break;
      case KetKind::Plus: text = "|+>"; break;
      case KetKind::Minus: text = "|->"; break;
    }
  }

  void visit(ArrayLitExpr& e) override {
    std::string out = "[";
    for (std::size_t i = 0; i < e.elements.size(); ++i) {
      out += (i ? ", " : "");
      out += print(*e.elements[i]);
    }
    out += "]";
    if (e.superposition) out += "q";
    text = std::move(out);
  }

  void visit(VarRefExpr& e) override { text = e.name; }

  void visit(IndexExpr& e) override {
    text = print(*e.target) + "[" + print(*e.index) + "]";
  }

  void visit(CallExpr& e) override {
    std::string out = e.callee + "(";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      out += (i ? ", " : "");
      out += print(*e.args[i]);
    }
    text = out + ")";
  }

  void visit(UnaryExpr& e) override {
    text = std::string(unary_op_name(e.op)) + maybe_paren(*e.operand);
  }

  void visit(BinaryExpr& e) override {
    text = maybe_paren(*e.lhs) + " " + binary_op_name(e.op) + " " +
           maybe_paren(*e.rhs);
  }

private:
  static std::string quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c; break;
      }
    }
    return out + "\"";
  }

  /// Nested operator expressions get explicit parentheses — the formatter
  /// canonicalizes precedence rather than reconstructing it.
  static std::string maybe_paren(Expr& expr) {
    const bool compound = dynamic_cast<BinaryExpr*>(&expr) != nullptr ||
                          dynamic_cast<UnaryExpr*>(&expr) != nullptr;
    const std::string inner = print(expr);
    return compound ? "(" + inner + ")" : inner;
  }
};

class StmtPrinter final : public StmtVisitor {
public:
  explicit StmtPrinter(int indent) : indent_(indent) {}

  std::string text;

  static std::string print(Stmt& stmt, int indent) {
    StmtPrinter printer(indent);
    stmt.accept(printer);
    return printer.text;
  }

  void visit(VarDeclStmt& s) override {
    std::string line = pad() + s.type.to_string() + " " + s.name;
    if (s.init) line += " = " + ExprPrinter::print(*s.init);
    text = line + ";\n";
  }

  void visit(AssignStmt& s) override {
    std::string op = "=";
    if (s.compound) op = std::string(binary_op_name(*s.compound)) + "=";
    text = pad() + ExprPrinter::print(*s.lvalue) + " " + op + " " +
           ExprPrinter::print(*s.value) + ";\n";
  }

  void visit(ExprStmt& s) override {
    text = pad() + ExprPrinter::print(*s.expr) + ";\n";
  }

  void visit(BlockStmt& s) override {
    std::string out = pad() + "{\n";
    for (const StmtPtr& child : s.statements) {
      out += print(*child, indent_ + 1);
    }
    text = out + pad() + "}\n";
  }

  void visit(IfStmt& s) override {
    std::string out =
        pad() + "if (" + ExprPrinter::print(*s.condition) + ")" + body_of(*s.then_branch);
    if (s.else_branch) {
      out += pad() + "else" + body_of(*s.else_branch);
    }
    text = std::move(out);
  }

  void visit(WhileStmt& s) override {
    text = pad() + "while (" + ExprPrinter::print(*s.condition) + ")" +
           body_of(*s.body);
  }

  void visit(ForeachStmt& s) override {
    text = pad() + "foreach " + s.var_name + " in " +
           ExprPrinter::print(*s.iterable) + body_of(*s.body);
  }

  void visit(FuncDeclStmt& s) override {
    std::string out = pad() + s.return_type.to_string() + " " + s.name + "(";
    for (std::size_t i = 0; i < s.params.size(); ++i) {
      out += (i ? ", " : "");
      out += s.params[i].type.to_string() + " " + s.params[i].name;
    }
    out += ")" + body_of(*s.body);
    text = std::move(out);
  }

  void visit(ReturnStmt& s) override {
    text = pad() + "return" +
           (s.value ? " " + ExprPrinter::print(*s.value) : std::string()) + ";\n";
  }

  void visit(PrintStmt& s) override {
    text = pad() + "print " + ExprPrinter::print(*s.value) + ";\n";
  }

  void visit(BarrierStmt&) override { text = pad() + "barrier;\n"; }

  void visit(GateStmt& s) override {
    std::string out = pad() + gate_kind_name(s.gate) + " ";
    for (std::size_t i = 0; i < s.operands.size(); ++i) {
      out += (i ? ", " : "");
      out += ExprPrinter::print(*s.operands[i]);
    }
    text = out + ";\n";
  }

private:
  [[nodiscard]] std::string pad() const { return std::string(2 * indent_, ' '); }

  /// Bodies always render as blocks (canonical form).
  std::string body_of(Stmt& stmt) {
    if (auto* block = dynamic_cast<BlockStmt*>(&stmt)) {
      std::string out = " {\n";
      for (const StmtPtr& child : block->statements) {
        out += print(*child, indent_ + 1);
      }
      return out + pad() + "}\n";
    }
    return " {\n" + print(stmt, indent_ + 1) + pad() + "}\n";
  }

  int indent_;
};

}  // namespace

std::string format_expression(Expr& expr) { return ExprPrinter::print(expr); }

std::string format_program(Program& program) {
  std::string out;
  for (const StmtPtr& stmt : program.statements) {
    out += StmtPrinter::print(*stmt, 0);
  }
  return out;
}

}  // namespace qutes::lang
