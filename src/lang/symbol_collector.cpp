#include "qutes/lang/symbol_collector.hpp"

#include <set>

namespace qutes::lang {

void SymbolCollector::collect(Program& program) {
  at_top_level_ = true;
  inside_function_ = false;
  for (const StmtPtr& stmt : program.statements) stmt->accept(*this);
}

void SymbolCollector::visit(VarDeclStmt& stmt) {
  if (stmt.type.kind == TypeKind::Void) {
    throw LangError("variables cannot be void", stmt.location);
  }
  if (stmt.type.kind == TypeKind::Qustring && !stmt.init) {
    throw LangError("qustring '" + stmt.name + "' needs an initializer (its length)",
                    stmt.location);
  }
}

void SymbolCollector::visit(AssignStmt&) {}
void SymbolCollector::visit(ExprStmt&) {}

void SymbolCollector::visit(BlockStmt& stmt) {
  const bool saved = at_top_level_;
  at_top_level_ = false;
  for (const StmtPtr& child : stmt.statements) child->accept(*this);
  at_top_level_ = saved;
}

void SymbolCollector::visit(IfStmt& stmt) {
  const bool saved = at_top_level_;
  at_top_level_ = false;
  stmt.then_branch->accept(*this);
  if (stmt.else_branch) stmt.else_branch->accept(*this);
  at_top_level_ = saved;
}

void SymbolCollector::visit(WhileStmt& stmt) {
  const bool saved = at_top_level_;
  at_top_level_ = false;
  stmt.body->accept(*this);
  at_top_level_ = saved;
}

void SymbolCollector::visit(ForeachStmt& stmt) {
  const bool saved = at_top_level_;
  at_top_level_ = false;
  stmt.body->accept(*this);
  at_top_level_ = saved;
}

void SymbolCollector::visit(FuncDeclStmt& stmt) {
  if (!at_top_level_) {
    throw LangError("functions must be declared at the top level", stmt.location);
  }
  std::set<std::string> seen;
  for (const Param& param : stmt.params) {
    if (param.type.kind == TypeKind::Void) {
      throw LangError("parameter '" + param.name + "' cannot be void", stmt.location);
    }
    if (!seen.insert(param.name).second) {
      throw LangError("duplicate parameter '" + param.name + "'", stmt.location);
    }
  }
  functions_.declare(stmt);

  const bool saved_top = at_top_level_;
  const bool saved_inside = inside_function_;
  at_top_level_ = false;
  inside_function_ = true;
  stmt.body->accept(*this);
  at_top_level_ = saved_top;
  inside_function_ = saved_inside;
}

void SymbolCollector::visit(ReturnStmt& stmt) {
  if (!inside_function_) {
    throw LangError("'return' outside of a function", stmt.location);
  }
}

void SymbolCollector::visit(PrintStmt&) {}
void SymbolCollector::visit(BarrierStmt&) {}

void SymbolCollector::visit(GateStmt& stmt) {
  if (stmt.operands.empty()) {
    throw LangError("gate statement needs at least one operand", stmt.location);
  }
}

}  // namespace qutes::lang
