#include "qutes/lang/ast.hpp"

namespace qutes::lang {

const char* unary_op_name(UnaryOp op) noexcept {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Not: return "!";
    case UnaryOp::BitNot: return "~";
  }
  return "?";
}

const char* binary_op_name(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
    case BinaryOp::In: return "in";
  }
  return "?";
}

const char* gate_kind_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::Not: return "not";
    case GateKind::PauliY: return "pauliy";
    case GateKind::PauliZ: return "pauliz";
    case GateKind::Hadamard: return "hadamard";
    case GateKind::Phase: return "phase";
    case GateKind::SGate: return "sgate";
    case GateKind::TGate: return "tgate";
    case GateKind::MeasureStmt: return "measure";
    case GateKind::ResetStmt: return "reset";
  }
  return "?";
}

}  // namespace qutes::lang
