#include "qutes/lang/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/adders.hpp"
#include "qutes/algorithms/grover.hpp"
#include "qutes/algorithms/rotation.hpp"
#include "qutes/algorithms/state_prep.hpp"
#include "qutes/common/bitops.hpp"

namespace qutes::lang {

namespace {

/// Apply a sub-circuit whose instructions already use the handler's global
/// qubit numbering (built against a scratch QuantumCircuit of equal width).
void apply_global_subcircuit(QuantumCircuitHandler& handler,
                             const circ::QuantumCircuit& sub) {
  for (const circ::Instruction& in : sub.instructions()) {
    handler.apply(in);
  }
}

/// Scratch circuit wide enough to address every allocated qubit.
circ::QuantumCircuit scratch_circuit(const QuantumCircuitHandler& handler) {
  return circ::QuantumCircuit(std::max<std::size_t>(handler.num_qubits(), 1));
}

}  // namespace

Runtime::Runtime(std::uint64_t seed, std::ostream* echo)
    : handler_(seed), casting_(handler_), echo_(echo) {}

void Runtime::emit_output(const std::string& text) {
  captured_ << text;
  if (echo_ != nullptr) (*echo_) << text;
}

ValuePtr Runtime::classical_of(const ValuePtr& value) {
  if (value->is_quantum()) return casting_.measure_to_classical(*value);
  return value;
}

ValuePtr Runtime::declare_param(const std::string& name, SourceLocation loc) {
  circ::Param p;
  try {
    p = handler_.declare_parameter(name);
  } catch (const CircuitError& err) {
    throw LangError(std::string("param: ") + err.what(), loc);
  }
  double value = 0.0;
  if (p.index < bind_params_.size()) {
    value = bind_params_[p.index];
  } else if (!allow_unbound_params_) {
    throw LangError("parameter '" + name + "' (index " + std::to_string(p.index) +
                        ") has no binding; pass values with --bind v1,v2,... in "
                        "declaration order",
                    loc);
  }
  return Value::make_param(value, static_cast<int>(p.index));
}

// ---------------------------------------------------------------------------
// Literals
// ---------------------------------------------------------------------------

ValuePtr Runtime::ket_lit(KetKind kind) {
  const QuantumRef ref = handler_.allocate("ket", 1, TypeKind::Qubit);
  switch (kind) {
    case KetKind::Zero: break;
    case KetKind::One: handler_.x(ref); break;
    case KetKind::Plus: handler_.h(ref); break;
    case KetKind::Minus:
      handler_.x(ref);
      handler_.h(ref);
      break;
  }
  return Value::make_quantum(ref);
}

ValuePtr Runtime::quantum_int_lit(std::int64_t value, SourceLocation loc) {
  if (value < 0) {
    throw LangError("quantum integer literals must be non-negative", loc);
  }
  const Value classical(QType::scalar(TypeKind::Int), value);
  return casting_.promote(classical, "qlit", 0, loc);
}

ValuePtr Runtime::quantum_string_lit(const std::string& bits, SourceLocation loc) {
  const Value classical(QType::scalar(TypeKind::String), bits);
  return casting_.promote(classical, "qslit", 0, loc);
}

void Runtime::sup_element(SupBuilder& builder, const ValuePtr& element,
                          SourceLocation loc) {
  const ValuePtr v = classical_of(element);
  const std::int64_t i = v->as_int();
  if (i < 0) {
    throw LangError("superposition values must be non-negative", loc);
  }
  if (std::find(builder.values.begin(), builder.values.end(),
                static_cast<std::uint64_t>(i)) != builder.values.end()) {
    throw LangError("duplicate value " + std::to_string(i) +
                        " in superposition literal",
                    loc);
  }
  builder.values.push_back(static_cast<std::uint64_t>(i));
  builder.max_value = std::max(builder.max_value, builder.values.back());
}

ValuePtr Runtime::sup_finish(const SupBuilder& builder, SourceLocation loc) {
  if (builder.values.empty()) {
    throw LangError("empty superposition literal", loc);
  }
  const std::size_t width = bits_for(builder.max_value);
  const QuantumRef ref = handler_.allocate("sup", width, TypeKind::Quint);
  circ::QuantumCircuit prep = scratch_circuit(handler_);
  algo::append_uniform_superposition(prep, QuantumCircuitHandler::qubits_of(ref),
                                     builder.values);
  apply_global_subcircuit(handler_, prep);
  return Value::make_quantum(ref);
}

void Runtime::arr_element(ArrBuilder& builder, ValuePtr element,
                          SourceLocation loc) {
  if (element->is_array()) {
    throw LangError("nested arrays are not supported", loc);
  }
  if (builder.element == TypeKind::Void) builder.element = element->kind();
  builder.items.push_back(std::move(element));
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

ValuePtr Runtime::index_value(const ValuePtr& target, const ValuePtr& index_v,
                              SourceLocation loc) {
  const std::int64_t index = classical_of(index_v)->as_int();
  if (target->is_array()) {
    auto& arr = target->as_array();
    if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
      throw LangError("array index " + std::to_string(index) + " out of range (size " +
                          std::to_string(arr.items.size()) + ")",
                      loc);
    }
    return arr.items[static_cast<std::size_t>(index)];
  }
  if (target->kind() == TypeKind::String) {
    const std::string& s = target->as_string();
    if (index < 0 || static_cast<std::size_t>(index) >= s.size()) {
      throw LangError("string index out of range", loc);
    }
    return Value::make_string(std::string(1, s[static_cast<std::size_t>(index)]));
  }
  if (target->is_quantum()) {
    // Indexing a quantum register yields the single qubit at that position.
    const QuantumRef& ref = target->as_quantum();
    if (index < 0 || static_cast<std::size_t>(index) >= ref.width) {
      throw LangError("qubit index out of range", loc);
    }
    return Value::make_quantum(
        QuantumRef{ref.offset + static_cast<std::size_t>(index), 1, TypeKind::Qubit});
  }
  throw LangError("value of type " + target->type().to_string() + " is not indexable",
                  loc);
}

ValuePtr Runtime::unary(UnaryOp op, const ValuePtr& operand, SourceLocation loc) {
  switch (op) {
    case UnaryOp::Neg: {
      const ValuePtr v = classical_of(operand);
      if (v->kind() == TypeKind::Float) {
        return Value::make_float(-v->as_float());
      }
      // Through uint64_t: -INT64_MIN is signed overflow (wraps to itself).
      return Value::make_int(static_cast<std::int64_t>(
          std::uint64_t{0} - static_cast<std::uint64_t>(v->as_int())));
    }
    case UnaryOp::Not:
      return Value::make_bool(!casting_.condition_bool(*operand, loc));
    case UnaryOp::BitNot:
      if (operand->is_quantum()) {
        // In-place bit flip of the whole register (the X-all operation).
        handler_.x(operand->as_quantum());
        return operand;
      }
      return Value::make_int(~classical_of(operand)->as_int());
  }
  throw LangError("internal: unknown unary operator", loc);
}

ValuePtr Runtime::evaluate_binary(BinaryOp op, const ValuePtr& lhs,
                                  const ValuePtr& rhs, SourceLocation loc) {
  if (op == BinaryOp::In) return substring_in(lhs, rhs, loc, /*want_index=*/false);

  const bool lq = lhs->is_quantum();
  const bool rq = rhs->is_quantum();
  const auto register_like = [](const ValuePtr& v) {
    if (!v->is_quantum()) return false;
    const TypeKind k = v->as_quantum().kind;
    return k == TypeKind::Qubit || k == TypeKind::Quint;
  };

  if ((op == BinaryOp::Add || op == BinaryOp::Sub) &&
      ((lq && register_like(lhs)) || (rq && register_like(rhs)))) {
    return quantum_add_sub(op, lhs, rhs, loc);
  }
  if ((op == BinaryOp::Shl || op == BinaryOp::Shr) && lq) {
    return quantum_shift(op, lhs, rhs, loc, /*in_place=*/false);
  }
  if (op == BinaryOp::Mul && lq != rq && (lq ? register_like(lhs) : register_like(rhs))) {
    // quint * classical constant -> fresh accumulator register.
    const ValuePtr& quantum = lq ? lhs : rhs;
    const ValuePtr& classical = lq ? rhs : lhs;
    const ValuePtr k = classical_of(classical);
    if (k->kind() != TypeKind::Int && k->kind() != TypeKind::Bool) {
      return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
    }
    const std::int64_t factor = k->as_int();
    if (factor < 0) {
      throw LangError("quantum multiplication needs a non-negative constant", loc);
    }
    const QuantumRef& src = quantum->as_quantum();
    const std::size_t out_width =
        src.width + TypeCastingHandler::width_for_int(factor);
    const QuantumRef out = handler_.allocate("prod", out_width, TypeKind::Quint);
    circ::QuantumCircuit sub = scratch_circuit(handler_);
    algo::append_mul_const_accumulate(sub, QuantumCircuitHandler::qubits_of(src),
                                      QuantumCircuitHandler::qubits_of(out),
                                      static_cast<std::uint64_t>(factor));
    apply_global_subcircuit(handler_, sub);
    return Value::make_quantum(out);
  }

  // Everything else: measure quantum operands and compute classically (the
  // paper's automatic-measurement rule for mixed expressions).
  return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
}

ValuePtr Runtime::quantum_add_sub(BinaryOp op, const ValuePtr& lhs,
                                  const ValuePtr& rhs, SourceLocation loc) {
  const bool lq = lhs->is_quantum();

  if (!lq && op == BinaryOp::Sub) {
    // classical - quantum: no reversible in-place form without negation
    // machinery on a copy; measure (documented behaviour).
    return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
  }

  const ValuePtr& base = lq ? lhs : rhs;        // the operand to copy
  const ValuePtr& other = lq ? rhs : lhs;
  const QuantumRef& src = base->as_quantum();

  std::size_t width = src.width;
  if (other->is_quantum()) {
    width = std::max(width, other->as_quantum().width);
  } else {
    const std::int64_t k = classical_of(other)->as_int();
    if (k < 0) throw LangError("quantum addition needs a non-negative constant", loc);
    width = std::max(width, TypeCastingHandler::width_for_int(k));
  }
  // Binary `+` allocates a fresh result, so give it a carry bit; compound
  // `+=` stays modular in the destination's own width (see compound_assign).
  if (op == BinaryOp::Add) ++width;

  // result := basis-copy(base); result (+|-)= other.
  const QuantumRef res = handler_.allocate("sum", width, TypeKind::Quint);
  handler_.copy_basis(src, res);

  circ::QuantumCircuit sub = scratch_circuit(handler_);
  const auto res_qubits = QuantumCircuitHandler::qubits_of(res);
  if (other->is_quantum()) {
    const QuantumRef& oref = other->as_quantum();
    if (oref.width > res.width) {
      throw LangError("quantum adder: rhs register wider than the result", loc);
    }
    const auto o_qubits = QuantumCircuitHandler::qubits_of(oref);
    if (op == BinaryOp::Add) {
      algo::append_draper_adder(sub, o_qubits, res_qubits);
    } else {
      algo::append_draper_subtractor(sub, o_qubits, res_qubits);
    }
  } else {
    const auto k = static_cast<std::uint64_t>(classical_of(other)->as_int());
    if (op == BinaryOp::Add) {
      algo::append_draper_add_const(sub, res_qubits, k);
    } else {
      algo::append_draper_sub_const(sub, res_qubits, k);
    }
  }
  apply_global_subcircuit(handler_, sub);
  return Value::make_quantum(res);
}

ValuePtr Runtime::quantum_shift(BinaryOp op, const ValuePtr& lhs,
                                const ValuePtr& rhs, SourceLocation loc,
                                bool in_place) {
  const QuantumRef& src = lhs->as_quantum();
  const std::int64_t k_signed = classical_of(rhs)->as_int();
  if (k_signed < 0) throw LangError("shift amount must be non-negative", loc);
  const auto k = static_cast<std::size_t>(k_signed);

  QuantumRef target = src;
  if (!in_place) {
    target = handler_.allocate("rot", src.width, src.kind);
    handler_.copy_basis(src, target);
  }
  circ::QuantumCircuit sub = scratch_circuit(handler_);
  const auto qubits = QuantumCircuitHandler::qubits_of(target);
  if (op == BinaryOp::Shl) {
    algo::append_rotate_constant_depth(sub, qubits, k % std::max<std::size_t>(src.width, 1));
  } else {
    algo::append_rotate_right_constant_depth(
        sub, qubits, k % std::max<std::size_t>(src.width, 1));
  }
  apply_global_subcircuit(handler_, sub);
  return in_place ? lhs : Value::make_quantum(target);
}

ValuePtr Runtime::substring_in(const ValuePtr& pattern_value,
                               const ValuePtr& text_value, SourceLocation loc,
                               bool want_index) {
  const ValuePtr pattern_c = classical_of(pattern_value);
  if (pattern_c->kind() != TypeKind::String) {
    throw LangError("'in' needs a (qu)string pattern on the left", loc);
  }
  const std::string pattern = pattern_c->as_string();

  // Classical containment for classical text and for arrays.
  if (!text_value->is_quantum()) {
    if (text_value->is_array()) {
      // value in array -> membership test.
      const auto& arr = text_value->as_array();
      std::int64_t position = -1;
      for (std::size_t i = 0; i < arr.items.size(); ++i) {
        const ValuePtr item = classical_of(arr.items[i]);
        if (item->kind() == TypeKind::String && item->as_string() == pattern) {
          position = static_cast<std::int64_t>(i);
          break;
        }
      }
      return want_index ? Value::make_int(position)
                        : Value::make_bool(position >= 0);
    }
    if (text_value->kind() != TypeKind::String) {
      throw LangError("'in' needs a (qu)string or array on the right", loc);
    }
    const std::string& text = text_value->as_string();
    const auto pos = text.find(pattern);
    return want_index
               ? Value::make_int(pos == std::string::npos
                                     ? -1
                                     : static_cast<std::int64_t>(pos))
               : Value::make_bool(pos != std::string::npos);
  }

  // Quantum text: the `in` operator compiles Grover substring search (the
  // paper's Figure listing). Reading the text requires a measurement (the
  // paper's rule); the search itself then runs as a genuine Grover circuit
  // inlined into the program circuit on fresh index/window registers.
  const QuantumRef& text_ref = text_value->as_quantum();
  if (text_ref.kind != TypeKind::Qustring) {
    throw LangError("'in' expects a qustring on the right", loc);
  }
  const ValuePtr text_c = casting_.measure_to_classical(*text_value);
  const std::string text = text_c->as_string();
  if (pattern.empty() || pattern.size() > text.size()) {
    return want_index ? Value::make_int(-1) : Value::make_bool(false);
  }
  for (char c : pattern) {
    if (c != '0' && c != '1') {
      throw LangError("Grover substring search needs a bitstring pattern", loc);
    }
  }

  const algo::SubstringSearch search(text, pattern);
  const circ::QuantumCircuit sub = search.build_circuit();
  const std::uint64_t clbits = handler_.compose_inline(sub, "grover");
  const std::uint64_t position = clbits & (dim_of(search.index_qubits()) - 1);
  const bool hit = position + pattern.size() <= text.size() &&
                   text.compare(position, pattern.size(), pattern) == 0;
  if (want_index) {
    return Value::make_int(hit ? static_cast<std::int64_t>(position) : -1);
  }
  return Value::make_bool(hit);
}

ValuePtr Runtime::index_of(const ValuePtr& pattern, const ValuePtr& text,
                           SourceLocation loc) {
  return substring_in(pattern, text, loc, /*want_index=*/true);
}

ValuePtr Runtime::classical_binary(BinaryOp op, const ValuePtr& lhs,
                                   const ValuePtr& rhs, SourceLocation loc) {
  // String operations.
  if (lhs->kind() == TypeKind::String || rhs->kind() == TypeKind::String) {
    if (lhs->kind() != rhs->kind()) {
      throw LangError("cannot mix string and non-string operands", loc);
    }
    const std::string& a = lhs->as_string();
    const std::string& b = rhs->as_string();
    switch (op) {
      case BinaryOp::Add: return Value::make_string(a + b);
      case BinaryOp::Eq: return Value::make_bool(a == b);
      case BinaryOp::Ne: return Value::make_bool(a != b);
      case BinaryOp::Lt: return Value::make_bool(a < b);
      case BinaryOp::Le: return Value::make_bool(a <= b);
      case BinaryOp::Gt: return Value::make_bool(a > b);
      case BinaryOp::Ge: return Value::make_bool(a >= b);
      default:
        throw LangError(std::string("operator '") + binary_op_name(op) +
                            "' is not defined on strings",
                        loc);
    }
  }

  const bool use_float =
      lhs->kind() == TypeKind::Float || rhs->kind() == TypeKind::Float;
  if (use_float) {
    const double a = lhs->as_float();
    const double b = rhs->as_float();
    switch (op) {
      case BinaryOp::Add: return Value::make_float(a + b);
      case BinaryOp::Sub: return Value::make_float(a - b);
      case BinaryOp::Mul: return Value::make_float(a * b);
      case BinaryOp::Div:
        if (b == 0.0) throw LangError("division by zero", loc);
        return Value::make_float(a / b);
      case BinaryOp::Eq: return Value::make_bool(a == b);
      case BinaryOp::Ne: return Value::make_bool(a != b);
      case BinaryOp::Lt: return Value::make_bool(a < b);
      case BinaryOp::Le: return Value::make_bool(a <= b);
      case BinaryOp::Gt: return Value::make_bool(a > b);
      case BinaryOp::Ge: return Value::make_bool(a >= b);
      default:
        throw LangError(std::string("operator '") + binary_op_name(op) +
                            "' is not defined on floats",
                        loc);
    }
  }

  const std::int64_t a = lhs->as_int();
  const std::int64_t b = rhs->as_int();
  // Qutes `int` arithmetic is two's-complement with wraparound on overflow
  // (matching the quantum registers, which are modular by construction), so
  // compute through uint64_t: signed overflow would be UB.
  const auto wrap = [](std::uint64_t u) {
    return Value::make_int(static_cast<std::int64_t>(u));
  };
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case BinaryOp::Add: return wrap(ua + ub);
    case BinaryOp::Sub: return wrap(ua - ub);
    case BinaryOp::Mul: return wrap(ua * ub);
    case BinaryOp::Div:
      if (b == 0) throw LangError("division by zero", loc);
      // INT64_MIN / -1 overflows (hardware-traps); it wraps to INT64_MIN.
      if (b == -1) return wrap(std::uint64_t{0} - ua);
      return Value::make_int(a / b);
    case BinaryOp::Mod:
      if (b == 0) throw LangError("modulo by zero", loc);
      if (b == -1) return Value::make_int(0);  // avoids the INT64_MIN trap
      return Value::make_int(a % b);
    case BinaryOp::Shl:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc);
      return Value::make_int(a << b);
    case BinaryOp::Shr:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc);
      return Value::make_int(a >> b);
    case BinaryOp::Eq: return Value::make_bool(a == b);
    case BinaryOp::Ne: return Value::make_bool(a != b);
    case BinaryOp::Lt: return Value::make_bool(a < b);
    case BinaryOp::Le: return Value::make_bool(a <= b);
    case BinaryOp::Gt: return Value::make_bool(a > b);
    case BinaryOp::Ge: return Value::make_bool(a >= b);
    case BinaryOp::And: return Value::make_bool(a != 0 && b != 0);
    case BinaryOp::Or: return Value::make_bool(a != 0 || b != 0);
    default: break;
  }
  throw LangError(std::string("operator '") + binary_op_name(op) +
                      "' is not defined on these operands",
                  loc);
}

// ---------------------------------------------------------------------------
// Declarations & assignment
// ---------------------------------------------------------------------------

ValuePtr Runtime::default_init(const QType& type, const std::string& name,
                               SourceLocation loc) {
  switch (type.kind) {
    case TypeKind::Bool: return Value::make_bool(false);
    case TypeKind::Int: return Value::make_int(0);
    case TypeKind::Float: return Value::make_float(0.0);
    case TypeKind::String: return Value::make_string("");
    case TypeKind::Qubit:
      return Value::make_quantum(handler_.allocate(name, 1, TypeKind::Qubit));
    case TypeKind::Quint: {
      const std::size_t width =
          type.quint_width > 0 ? type.quint_width : kDefaultQuintWidth;
      return Value::make_quantum(handler_.allocate(name, width, TypeKind::Quint));
    }
    case TypeKind::Array:
      return Value::make_array(type.element, {});
    default:
      throw LangError("variable '" + name + "' needs an initializer", loc);
  }
}

ValuePtr Runtime::bind_decl_init(const ValuePtr& value, const QType& type,
                                 const std::string& name, SourceLocation loc) {
  // Arrays: coerce every element to the declared element type.
  if (type.is_array()) {
    if (!value->is_array()) {
      throw LangError("expected an array initializer for '" + name + "'", loc);
    }
    auto& arr = value->as_array();
    const QType element_type = QType::scalar(type.element);
    for (std::size_t i = 0; i < arr.items.size(); ++i) {
      arr.items[i] = casting_.coerce(arr.items[i], element_type,
                                     name + "[" + std::to_string(i) + "]", loc);
    }
    arr.element = type.element;
    return value;
  }
  return casting_.coerce(value, type, name, loc);
}

void Runtime::assign_plain(const ValuePtr& slot, const ValuePtr& rhs,
                           SourceLocation loc) {
  const QType target = slot->type();
  // Fresh (void) slots adopt the value's type; typed slots keep theirs.
  if (target.kind == TypeKind::Void) {
    slot->assign(*rhs);
  } else {
    slot->assign(*casting_.coerce(rhs, target, "assignment", loc));
  }
}

void Runtime::compound_assign(const std::string& name, const ValuePtr& slot,
                              BinaryOp op, const ValuePtr& rhs,
                              SourceLocation loc) {
  if (slot->is_quantum()) {
    const QuantumRef& dst = slot->as_quantum();
    circ::QuantumCircuit sub = scratch_circuit(handler_);
    const auto dst_qubits = QuantumCircuitHandler::qubits_of(dst);

    switch (op) {
      case BinaryOp::Add:
      case BinaryOp::Sub: {
        if (rhs->is_quantum()) {
          const QuantumRef& src = rhs->as_quantum();
          if (src.width > dst.width) {
            throw LangError("in-place quantum addition: rhs wider than '" +
                                name + "'",
                            loc);
          }
          const auto src_qubits = QuantumCircuitHandler::qubits_of(src);
          if (op == BinaryOp::Add) {
            algo::append_draper_adder(sub, src_qubits, dst_qubits);
          } else {
            algo::append_draper_subtractor(sub, src_qubits, dst_qubits);
          }
        } else {
          const std::int64_t k = classical_of(rhs)->as_int();
          if (k < 0) {
            throw LangError("quantum addition needs non-negative constants", loc);
          }
          if (op == BinaryOp::Add) {
            algo::append_draper_add_const(sub, dst_qubits,
                                          static_cast<std::uint64_t>(k));
          } else {
            algo::append_draper_sub_const(sub, dst_qubits,
                                          static_cast<std::uint64_t>(k));
          }
        }
        apply_global_subcircuit(handler_, sub);
        return;
      }
      case BinaryOp::Shl:
      case BinaryOp::Shr: {
        (void)quantum_shift(op, slot, rhs, loc, /*in_place=*/true);
        return;
      }
      default:
        throw LangError(std::string("compound operator '") + binary_op_name(op) +
                            "=' is not supported on quantum variables; use '" +
                            name + " = " + name + " " + binary_op_name(op) +
                            " ...'",
                        loc);
    }
  }

  const ValuePtr computed = evaluate_binary(op, slot, rhs, loc);
  slot->assign(*casting_.coerce(computed, slot->type(), "assignment", loc));
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::string Runtime::render_for_print(const ValuePtr& value) {
  if (value->is_quantum()) {
    return classical_of(value)->to_display_string();
  }
  if (value->is_array()) {
    std::string out = "[";
    const auto& arr = value->as_array();
    for (std::size_t i = 0; i < arr.items.size(); ++i) {
      out += (i ? ", " : "");
      out += render_for_print(arr.items[i]);
    }
    return out + "]";
  }
  return value->to_display_string();
}

std::vector<ValuePtr> Runtime::iterate_items(const ValuePtr& iterable,
                                             SourceLocation loc) {
  std::vector<ValuePtr> items;
  if (iterable->is_array()) {
    items = iterable->as_array().items;  // shared: iteration is by reference
  } else if (iterable->kind() == TypeKind::String) {
    for (char c : iterable->as_string()) {
      items.push_back(Value::make_string(std::string(1, c)));
    }
  } else if (iterable->is_quantum()) {
    // Iterate the individual qubits of a register.
    const QuantumRef& ref = iterable->as_quantum();
    for (std::size_t i = 0; i < ref.width; ++i) {
      items.push_back(Value::make_quantum(
          QuantumRef{ref.offset + i, 1, TypeKind::Qubit}));
    }
  } else {
    throw LangError("foreach needs an array, string, or quantum register", loc);
  }
  return items;
}

void Runtime::apply_gate_value(GateKind gate, const ValuePtr& value,
                               SourceLocation loc) {
  // Arrays broadcast the gate across their (quantum) elements.
  std::vector<ValuePtr> targets;
  if (value->is_array()) {
    targets = value->as_array().items;
  } else {
    targets.push_back(value);
  }

  for (const ValuePtr& target : targets) {
    if (!target->is_quantum()) {
      throw LangError(std::string("'") + gate_kind_name(gate) +
                          "' needs quantum operands",
                      loc);
    }
    const QuantumRef& ref = target->as_quantum();
    switch (gate) {
      case GateKind::Not: handler_.x(ref); break;
      case GateKind::PauliY: handler_.y(ref); break;
      case GateKind::PauliZ: handler_.z(ref); break;
      case GateKind::Hadamard: handler_.h(ref); break;
      case GateKind::Phase: handler_.s(ref); break;
      case GateKind::SGate: handler_.s(ref); break;
      case GateKind::TGate: handler_.t(ref); break;
      case GateKind::MeasureStmt:
        (void)casting_.measure_to_classical(*target);
        break;
      case GateKind::ResetStmt: handler_.reset(ref); break;
    }
  }
}

}  // namespace qutes::lang
