#include "qutes/lang/interpreter.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/adders.hpp"
#include "qutes/algorithms/grover.hpp"
#include "qutes/algorithms/qft.hpp"
#include "qutes/algorithms/rotation.hpp"
#include "qutes/algorithms/state_prep.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/lang/builtins.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::lang {

namespace {

constexpr std::size_t kMaxCallDepth = 200;
constexpr std::size_t kDefaultQuintWidth = 4;

}  // namespace

Interpreter::Interpreter(InterpreterOptions options)
    : scope_(std::make_shared<Scope>()),
      handler_(options.seed),
      casting_(handler_),
      echo_(options.echo),
      trace_(options.trace) {}

namespace {

/// Human-readable tag for trace lines.
class StmtTagger final : public StmtVisitor {
public:
  const char* tag = "stmt";
  void visit(VarDeclStmt&) override { tag = "decl"; }
  void visit(AssignStmt&) override { tag = "assign"; }
  void visit(ExprStmt&) override { tag = "expr"; }
  void visit(BlockStmt&) override { tag = "block"; }
  void visit(IfStmt&) override { tag = "if"; }
  void visit(WhileStmt&) override { tag = "while"; }
  void visit(ForeachStmt&) override { tag = "foreach"; }
  void visit(FuncDeclStmt&) override { tag = "funcdecl"; }
  void visit(ReturnStmt&) override { tag = "return"; }
  void visit(PrintStmt&) override { tag = "print"; }
  void visit(BarrierStmt&) override { tag = "barrier"; }
  void visit(GateStmt&) override { tag = "gate"; }
};

}  // namespace

void Interpreter::emit_output(const std::string& text) {
  captured_ << text;
  if (echo_ != nullptr) (*echo_) << text;
}

void Interpreter::run(Program& program, FunctionTable& functions) {
  obs::Span span("lang.interpret");
  functions_ = &functions;
  for (const StmtPtr& stmt : program.statements) execute(*stmt);
}

void Interpreter::execute(Stmt& stmt) {
  static obs::Counter& executed_metric =
      obs::metrics().counter(obs::names::kLangStmtsExecuted);
  executed_metric.add(1);
  if (trace_ != nullptr) {
    StmtTagger tagger;
    stmt.accept(tagger);
    (*trace_) << "[trace] " << stmt.location.to_string() << " " << tagger.tag
              << "  (qubits=" << handler_.num_qubits()
              << " gates=" << handler_.circuit().gate_count() << ")\n";
  }
  stmt.accept(*this);
}

ValuePtr Interpreter::evaluate(Expr& expr) {
  static constexpr std::size_t kMaxEvalDepth = 1000;
  if (eval_depth_ >= kMaxEvalDepth) {
    throw LangError("expression too deep to evaluate (depth limit " +
                        std::to_string(kMaxEvalDepth) + ")",
                    expr.location);
  }
  ++eval_depth_;
  struct DepthGuard {
    std::size_t& depth;
    ~DepthGuard() { --depth; }
  } guard{eval_depth_};
  expr.accept(*this);
  ValuePtr value = std::move(result_);
  if (!value) {
    throw LangError("internal: expression produced no value", expr.location);
  }
  return value;
}

ValuePtr Interpreter::classical_of(const ValuePtr& value) {
  if (value->is_quantum()) return casting_.measure_to_classical(*value);
  return value;
}

// ---------------------------------------------------------------------------
// Quantum construction helpers
// ---------------------------------------------------------------------------

namespace {

/// Apply a sub-circuit whose instructions already use the handler's global
/// qubit numbering (built against a scratch QuantumCircuit of equal width).
void apply_global_subcircuit(QuantumCircuitHandler& handler,
                             const circ::QuantumCircuit& sub) {
  for (const circ::Instruction& in : sub.instructions()) {
    handler.apply(in);
  }
}

/// Scratch circuit wide enough to address every allocated qubit.
circ::QuantumCircuit scratch_circuit(const QuantumCircuitHandler& handler) {
  return circ::QuantumCircuit(std::max<std::size_t>(handler.num_qubits(), 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// Expression visitors
// ---------------------------------------------------------------------------

void Interpreter::visit(IntLitExpr& expr) { result_ = Value::make_int(expr.value); }
void Interpreter::visit(FloatLitExpr& expr) { result_ = Value::make_float(expr.value); }
void Interpreter::visit(BoolLitExpr& expr) { result_ = Value::make_bool(expr.value); }
void Interpreter::visit(StringLitExpr& expr) {
  result_ = Value::make_string(expr.value);
}

void Interpreter::visit(QuantumIntLitExpr& expr) {
  if (expr.value < 0) {
    throw LangError("quantum integer literals must be non-negative", expr.location);
  }
  const Value classical(QType::scalar(TypeKind::Int), expr.value);
  result_ = casting_.promote(classical, "qlit", 0, expr.location);
}

void Interpreter::visit(QuantumStringLitExpr& expr) {
  const Value classical(QType::scalar(TypeKind::String), expr.bits);
  result_ = casting_.promote(classical, "qslit", 0, expr.location);
}

void Interpreter::visit(KetLitExpr& expr) {
  const QuantumRef ref = handler_.allocate("ket", 1, TypeKind::Qubit);
  switch (expr.kind) {
    case KetKind::Zero: break;
    case KetKind::One: handler_.x(ref); break;
    case KetKind::Plus: handler_.h(ref); break;
    case KetKind::Minus:
      handler_.x(ref);
      handler_.h(ref);
      break;
  }
  result_ = Value::make_quantum(ref);
}

void Interpreter::visit(ArrayLitExpr& expr) {
  if (expr.superposition) {
    // `[v0, v1, ...]q`: equal superposition of the listed basis values on a
    // fresh quint.
    std::vector<std::uint64_t> values;
    std::uint64_t max_value = 0;
    for (const ExprPtr& element : expr.elements) {
      const ValuePtr v = classical_of(evaluate(*element));
      const std::int64_t i = v->as_int();
      if (i < 0) {
        throw LangError("superposition values must be non-negative", expr.location);
      }
      if (std::find(values.begin(), values.end(),
                    static_cast<std::uint64_t>(i)) != values.end()) {
        throw LangError("duplicate value " + std::to_string(i) +
                            " in superposition literal",
                        expr.location);
      }
      values.push_back(static_cast<std::uint64_t>(i));
      max_value = std::max(max_value, values.back());
    }
    if (values.empty()) {
      throw LangError("empty superposition literal", expr.location);
    }
    const std::size_t width = bits_for(max_value);
    const QuantumRef ref = handler_.allocate("sup", width, TypeKind::Quint);
    circ::QuantumCircuit prep = scratch_circuit(handler_);
    algo::append_uniform_superposition(prep, QuantumCircuitHandler::qubits_of(ref),
                                       values);
    apply_global_subcircuit(handler_, prep);
    result_ = Value::make_quantum(ref);
    return;
  }

  std::vector<ValuePtr> items;
  TypeKind element = TypeKind::Void;
  for (const ExprPtr& node : expr.elements) {
    ValuePtr v = evaluate(*node);
    if (v->is_array()) {
      throw LangError("nested arrays are not supported", expr.location);
    }
    if (element == TypeKind::Void) element = v->kind();
    items.push_back(std::move(v));
  }
  result_ = Value::make_array(element, std::move(items));
}

void Interpreter::visit(VarRefExpr& expr) {
  Symbol* symbol = scope_->lookup(expr.name);
  if (symbol == nullptr || !symbol->value) {
    throw LangError("use of undeclared variable '" + expr.name + "'", expr.location);
  }
  result_ = symbol->value;
}

void Interpreter::visit(IndexExpr& expr) {
  const ValuePtr target = evaluate(*expr.target);
  const std::int64_t index = classical_of(evaluate(*expr.index))->as_int();
  if (target->is_array()) {
    auto& arr = target->as_array();
    if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
      throw LangError("array index " + std::to_string(index) + " out of range (size " +
                          std::to_string(arr.items.size()) + ")",
                      expr.location);
    }
    result_ = arr.items[static_cast<std::size_t>(index)];
    return;
  }
  if (target->kind() == TypeKind::String) {
    const std::string& s = target->as_string();
    if (index < 0 || static_cast<std::size_t>(index) >= s.size()) {
      throw LangError("string index out of range", expr.location);
    }
    result_ = Value::make_string(std::string(1, s[static_cast<std::size_t>(index)]));
    return;
  }
  if (target->is_quantum()) {
    // Indexing a quantum register yields the single qubit at that position.
    const QuantumRef& ref = target->as_quantum();
    if (index < 0 || static_cast<std::size_t>(index) >= ref.width) {
      throw LangError("qubit index out of range", expr.location);
    }
    result_ = Value::make_quantum(
        QuantumRef{ref.offset + static_cast<std::size_t>(index), 1, TypeKind::Qubit});
    return;
  }
  throw LangError("value of type " + target->type().to_string() + " is not indexable",
                  expr.location);
}

void Interpreter::visit(CallExpr& expr) {
  std::vector<ValuePtr> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) args.push_back(evaluate(*arg));

  const auto& builtins = builtin_table();
  const auto bit = builtins.find(expr.callee);
  if (bit != builtins.end()) {
    result_ = bit->second(*this, args, expr.location);
    if (!result_) result_ = Value::make_void();
    return;
  }

  FuncDeclStmt* fn = functions_ != nullptr ? functions_->lookup(expr.callee) : nullptr;
  if (fn == nullptr) {
    throw LangError("call to unknown function '" + expr.callee + "'", expr.location);
  }
  result_ = call_user_function(*fn, std::move(args), expr.location);
}

ValuePtr Interpreter::call_user_function(FuncDeclStmt& fn, std::vector<ValuePtr> args,
                                         SourceLocation loc) {
  if (args.size() != fn.params.size()) {
    throw LangError("function '" + fn.name + "' expects " +
                        std::to_string(fn.params.size()) + " arguments, got " +
                        std::to_string(args.size()),
                    loc);
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw LangError("call depth exceeded (" + std::to_string(kMaxCallDepth) + ")", loc);
  }

  // Function scope chains to the GLOBAL scope (lexical top level), not to
  // the caller's scope.
  std::shared_ptr<Scope> global = scope_;
  while (global->parent()) global = global->parent();
  auto fn_scope = std::make_shared<Scope>(global);

  for (std::size_t i = 0; i < args.size(); ++i) {
    Symbol& symbol = fn_scope->declare(fn.params[i].name, fn.params[i].type, loc);
    // coerce() returns the same ValuePtr for matching types, so arguments
    // alias caller storage: pass-by-reference (paper §4).
    symbol.value = casting_.coerce(args[i], fn.params[i].type, fn.params[i].name, loc);
  }

  const std::shared_ptr<Scope> saved = scope_;
  scope_ = fn_scope;
  ValuePtr returned = Value::make_void();
  try {
    for (const StmtPtr& stmt : fn.body->statements) execute(*stmt);
  } catch (ReturnSignal& signal) {
    returned = signal.value ? signal.value : Value::make_void();
  } catch (...) {
    scope_ = saved;
    --call_depth_;
    throw;
  }
  scope_ = saved;
  --call_depth_;

  if (fn.return_type.kind == TypeKind::Void) return Value::make_void();
  return casting_.coerce(returned, fn.return_type, fn.name + "() result", loc);
}

void Interpreter::visit(UnaryExpr& expr) {
  ValuePtr operand = evaluate(*expr.operand);
  switch (expr.op) {
    case UnaryOp::Neg: {
      const ValuePtr v = classical_of(operand);
      if (v->kind() == TypeKind::Float) {
        result_ = Value::make_float(-v->as_float());
      } else {
        // Through uint64_t: -INT64_MIN is signed overflow (wraps to itself).
        result_ = Value::make_int(static_cast<std::int64_t>(
            std::uint64_t{0} - static_cast<std::uint64_t>(v->as_int())));
      }
      return;
    }
    case UnaryOp::Not:
      result_ = Value::make_bool(!casting_.condition_bool(*operand, expr.location));
      return;
    case UnaryOp::BitNot:
      if (operand->is_quantum()) {
        // In-place bit flip of the whole register (the X-all operation).
        handler_.x(operand->as_quantum());
        result_ = operand;
      } else {
        result_ = Value::make_int(~classical_of(operand)->as_int());
      }
      return;
  }
}

void Interpreter::visit(BinaryExpr& expr) {
  // Short-circuit logic first.
  if (expr.op == BinaryOp::And || expr.op == BinaryOp::Or) {
    const bool lhs = casting_.condition_bool(*evaluate(*expr.lhs), expr.location);
    if (expr.op == BinaryOp::And && !lhs) {
      result_ = Value::make_bool(false);
      return;
    }
    if (expr.op == BinaryOp::Or && lhs) {
      result_ = Value::make_bool(true);
      return;
    }
    result_ = Value::make_bool(
        casting_.condition_bool(*evaluate(*expr.rhs), expr.location));
    return;
  }
  ValuePtr lhs = evaluate(*expr.lhs);
  ValuePtr rhs = evaluate(*expr.rhs);
  result_ = evaluate_binary(expr.op, lhs, rhs, expr.location);
}

ValuePtr Interpreter::evaluate_binary(BinaryOp op, const ValuePtr& lhs,
                                      const ValuePtr& rhs, SourceLocation loc) {
  if (op == BinaryOp::In) return substring_in(lhs, rhs, loc, /*want_index=*/false);

  const bool lq = lhs->is_quantum();
  const bool rq = rhs->is_quantum();
  const auto register_like = [](const ValuePtr& v) {
    if (!v->is_quantum()) return false;
    const TypeKind k = v->as_quantum().kind;
    return k == TypeKind::Qubit || k == TypeKind::Quint;
  };

  if ((op == BinaryOp::Add || op == BinaryOp::Sub) &&
      ((lq && register_like(lhs)) || (rq && register_like(rhs)))) {
    return quantum_add_sub(op, lhs, rhs, loc);
  }
  if ((op == BinaryOp::Shl || op == BinaryOp::Shr) && lq) {
    return quantum_shift(op, lhs, rhs, loc, /*in_place=*/false);
  }
  if (op == BinaryOp::Mul && lq != rq && (lq ? register_like(lhs) : register_like(rhs))) {
    // quint * classical constant -> fresh accumulator register.
    const ValuePtr& quantum = lq ? lhs : rhs;
    const ValuePtr& classical = lq ? rhs : lhs;
    const ValuePtr k = classical_of(classical);
    if (k->kind() != TypeKind::Int && k->kind() != TypeKind::Bool) {
      return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
    }
    const std::int64_t factor = k->as_int();
    if (factor < 0) {
      throw LangError("quantum multiplication needs a non-negative constant", loc);
    }
    const QuantumRef& src = quantum->as_quantum();
    const std::size_t out_width =
        src.width + TypeCastingHandler::width_for_int(factor);
    const QuantumRef out = handler_.allocate("prod", out_width, TypeKind::Quint);
    circ::QuantumCircuit sub = scratch_circuit(handler_);
    algo::append_mul_const_accumulate(sub, QuantumCircuitHandler::qubits_of(src),
                                      QuantumCircuitHandler::qubits_of(out),
                                      static_cast<std::uint64_t>(factor));
    apply_global_subcircuit(handler_, sub);
    return Value::make_quantum(out);
  }

  // Everything else: measure quantum operands and compute classically (the
  // paper's automatic-measurement rule for mixed expressions).
  return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
}

ValuePtr Interpreter::quantum_add_sub(BinaryOp op, const ValuePtr& lhs,
                                      const ValuePtr& rhs, SourceLocation loc) {
  const bool lq = lhs->is_quantum();

  if (!lq && op == BinaryOp::Sub) {
    // classical - quantum: no reversible in-place form without negation
    // machinery on a copy; measure (documented behaviour).
    return classical_binary(op, classical_of(lhs), classical_of(rhs), loc);
  }

  const ValuePtr& base = lq ? lhs : rhs;        // the operand to copy
  const ValuePtr& other = lq ? rhs : lhs;
  const QuantumRef& src = base->as_quantum();

  std::size_t width = src.width;
  if (other->is_quantum()) {
    width = std::max(width, other->as_quantum().width);
  } else {
    const std::int64_t k = classical_of(other)->as_int();
    if (k < 0) throw LangError("quantum addition needs a non-negative constant", loc);
    width = std::max(width, TypeCastingHandler::width_for_int(k));
  }
  // Binary `+` allocates a fresh result, so give it a carry bit; compound
  // `+=` stays modular in the destination's own width (see
  // compound_quantum_assign).
  if (op == BinaryOp::Add) ++width;

  // result := basis-copy(base); result (+|-)= other.
  const QuantumRef res = handler_.allocate("sum", width, TypeKind::Quint);
  handler_.copy_basis(src, res);

  circ::QuantumCircuit sub = scratch_circuit(handler_);
  const auto res_qubits = QuantumCircuitHandler::qubits_of(res);
  if (other->is_quantum()) {
    const QuantumRef& oref = other->as_quantum();
    if (oref.width > res.width) {
      throw LangError("quantum adder: rhs register wider than the result", loc);
    }
    const auto o_qubits = QuantumCircuitHandler::qubits_of(oref);
    if (op == BinaryOp::Add) {
      algo::append_draper_adder(sub, o_qubits, res_qubits);
    } else {
      algo::append_draper_subtractor(sub, o_qubits, res_qubits);
    }
  } else {
    const auto k = static_cast<std::uint64_t>(classical_of(other)->as_int());
    if (op == BinaryOp::Add) {
      algo::append_draper_add_const(sub, res_qubits, k);
    } else {
      algo::append_draper_sub_const(sub, res_qubits, k);
    }
  }
  apply_global_subcircuit(handler_, sub);
  return Value::make_quantum(res);
}

ValuePtr Interpreter::quantum_shift(BinaryOp op, const ValuePtr& lhs,
                                    const ValuePtr& rhs, SourceLocation loc,
                                    bool in_place) {
  const QuantumRef& src = lhs->as_quantum();
  const std::int64_t k_signed = classical_of(rhs)->as_int();
  if (k_signed < 0) throw LangError("shift amount must be non-negative", loc);
  const auto k = static_cast<std::size_t>(k_signed);

  QuantumRef target = src;
  if (!in_place) {
    target = handler_.allocate("rot", src.width, src.kind);
    handler_.copy_basis(src, target);
  }
  circ::QuantumCircuit sub = scratch_circuit(handler_);
  const auto qubits = QuantumCircuitHandler::qubits_of(target);
  if (op == BinaryOp::Shl) {
    algo::append_rotate_constant_depth(sub, qubits, k % std::max<std::size_t>(src.width, 1));
  } else {
    algo::append_rotate_right_constant_depth(
        sub, qubits, k % std::max<std::size_t>(src.width, 1));
  }
  apply_global_subcircuit(handler_, sub);
  return in_place ? lhs : Value::make_quantum(target);
}

ValuePtr Interpreter::substring_in(const ValuePtr& pattern_value,
                                   const ValuePtr& text_value, SourceLocation loc,
                                   bool want_index) {
  const ValuePtr pattern_c = classical_of(pattern_value);
  if (pattern_c->kind() != TypeKind::String) {
    throw LangError("'in' needs a (qu)string pattern on the left", loc);
  }
  const std::string pattern = pattern_c->as_string();

  // Classical containment for classical text and for arrays.
  if (!text_value->is_quantum()) {
    if (text_value->is_array()) {
      // value in array -> membership test.
      const auto& arr = text_value->as_array();
      std::int64_t position = -1;
      for (std::size_t i = 0; i < arr.items.size(); ++i) {
        const ValuePtr item = classical_of(arr.items[i]);
        if (item->kind() == TypeKind::String && item->as_string() == pattern) {
          position = static_cast<std::int64_t>(i);
          break;
        }
      }
      return want_index ? Value::make_int(position)
                        : Value::make_bool(position >= 0);
    }
    if (text_value->kind() != TypeKind::String) {
      throw LangError("'in' needs a (qu)string or array on the right", loc);
    }
    const std::string& text = text_value->as_string();
    const auto pos = text.find(pattern);
    return want_index
               ? Value::make_int(pos == std::string::npos
                                     ? -1
                                     : static_cast<std::int64_t>(pos))
               : Value::make_bool(pos != std::string::npos);
  }

  // Quantum text: the `in` operator compiles Grover substring search (the
  // paper's Figure listing). Reading the text requires a measurement (the
  // paper's rule); the search itself then runs as a genuine Grover circuit
  // inlined into the program circuit on fresh index/window registers.
  const QuantumRef& text_ref = text_value->as_quantum();
  if (text_ref.kind != TypeKind::Qustring) {
    throw LangError("'in' expects a qustring on the right", loc);
  }
  const ValuePtr text_c = casting_.measure_to_classical(*text_value);
  const std::string text = text_c->as_string();
  if (pattern.empty() || pattern.size() > text.size()) {
    return want_index ? Value::make_int(-1) : Value::make_bool(false);
  }
  for (char c : pattern) {
    if (c != '0' && c != '1') {
      throw LangError("Grover substring search needs a bitstring pattern", loc);
    }
  }

  const algo::SubstringSearch search(text, pattern);
  const circ::QuantumCircuit sub = search.build_circuit();
  const std::uint64_t clbits = handler_.compose_inline(sub, "grover");
  const std::uint64_t position = clbits & (dim_of(search.index_qubits()) - 1);
  const bool hit = position + pattern.size() <= text.size() &&
                   text.compare(position, pattern.size(), pattern) == 0;
  if (want_index) {
    return Value::make_int(hit ? static_cast<std::int64_t>(position) : -1);
  }
  return Value::make_bool(hit);
}

ValuePtr Interpreter::index_of(const ValuePtr& pattern, const ValuePtr& text,
                               SourceLocation loc) {
  return substring_in(pattern, text, loc, /*want_index=*/true);
}

ValuePtr Interpreter::classical_binary(BinaryOp op, const ValuePtr& lhs,
                                       const ValuePtr& rhs, SourceLocation loc) {
  // String operations.
  if (lhs->kind() == TypeKind::String || rhs->kind() == TypeKind::String) {
    if (lhs->kind() != rhs->kind()) {
      throw LangError("cannot mix string and non-string operands", loc);
    }
    const std::string& a = lhs->as_string();
    const std::string& b = rhs->as_string();
    switch (op) {
      case BinaryOp::Add: return Value::make_string(a + b);
      case BinaryOp::Eq: return Value::make_bool(a == b);
      case BinaryOp::Ne: return Value::make_bool(a != b);
      case BinaryOp::Lt: return Value::make_bool(a < b);
      case BinaryOp::Le: return Value::make_bool(a <= b);
      case BinaryOp::Gt: return Value::make_bool(a > b);
      case BinaryOp::Ge: return Value::make_bool(a >= b);
      default:
        throw LangError(std::string("operator '") + binary_op_name(op) +
                            "' is not defined on strings",
                        loc);
    }
  }

  const bool use_float =
      lhs->kind() == TypeKind::Float || rhs->kind() == TypeKind::Float;
  if (use_float) {
    const double a = lhs->as_float();
    const double b = rhs->as_float();
    switch (op) {
      case BinaryOp::Add: return Value::make_float(a + b);
      case BinaryOp::Sub: return Value::make_float(a - b);
      case BinaryOp::Mul: return Value::make_float(a * b);
      case BinaryOp::Div:
        if (b == 0.0) throw LangError("division by zero", loc);
        return Value::make_float(a / b);
      case BinaryOp::Eq: return Value::make_bool(a == b);
      case BinaryOp::Ne: return Value::make_bool(a != b);
      case BinaryOp::Lt: return Value::make_bool(a < b);
      case BinaryOp::Le: return Value::make_bool(a <= b);
      case BinaryOp::Gt: return Value::make_bool(a > b);
      case BinaryOp::Ge: return Value::make_bool(a >= b);
      default:
        throw LangError(std::string("operator '") + binary_op_name(op) +
                            "' is not defined on floats",
                        loc);
    }
  }

  const std::int64_t a = lhs->as_int();
  const std::int64_t b = rhs->as_int();
  // Qutes `int` arithmetic is two's-complement with wraparound on overflow
  // (matching the quantum registers, which are modular by construction), so
  // compute through uint64_t: signed overflow would be UB.
  const auto wrap = [](std::uint64_t u) {
    return Value::make_int(static_cast<std::int64_t>(u));
  };
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case BinaryOp::Add: return wrap(ua + ub);
    case BinaryOp::Sub: return wrap(ua - ub);
    case BinaryOp::Mul: return wrap(ua * ub);
    case BinaryOp::Div:
      if (b == 0) throw LangError("division by zero", loc);
      // INT64_MIN / -1 overflows (hardware-traps); it wraps to INT64_MIN.
      if (b == -1) return wrap(std::uint64_t{0} - ua);
      return Value::make_int(a / b);
    case BinaryOp::Mod:
      if (b == 0) throw LangError("modulo by zero", loc);
      if (b == -1) return Value::make_int(0);  // avoids the INT64_MIN trap
      return Value::make_int(a % b);
    case BinaryOp::Shl:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc);
      return Value::make_int(a << b);
    case BinaryOp::Shr:
      if (b < 0 || b > 62) throw LangError("bad shift amount", loc);
      return Value::make_int(a >> b);
    case BinaryOp::Eq: return Value::make_bool(a == b);
    case BinaryOp::Ne: return Value::make_bool(a != b);
    case BinaryOp::Lt: return Value::make_bool(a < b);
    case BinaryOp::Le: return Value::make_bool(a <= b);
    case BinaryOp::Gt: return Value::make_bool(a > b);
    case BinaryOp::Ge: return Value::make_bool(a >= b);
    case BinaryOp::And: return Value::make_bool(a != 0 && b != 0);
    case BinaryOp::Or: return Value::make_bool(a != 0 || b != 0);
    default: break;
  }
  throw LangError(std::string("operator '") + binary_op_name(op) +
                      "' is not defined on these operands",
                  loc);
}

// ---------------------------------------------------------------------------
// Statement visitors
// ---------------------------------------------------------------------------

void Interpreter::visit(VarDeclStmt& stmt) {
  Symbol& symbol = scope_->declare(stmt.name, stmt.type, stmt.location);

  if (!stmt.init) {
    switch (stmt.type.kind) {
      case TypeKind::Bool: symbol.value = Value::make_bool(false); break;
      case TypeKind::Int: symbol.value = Value::make_int(0); break;
      case TypeKind::Float: symbol.value = Value::make_float(0.0); break;
      case TypeKind::String: symbol.value = Value::make_string(""); break;
      case TypeKind::Qubit:
        symbol.value = Value::make_quantum(
            handler_.allocate(stmt.name, 1, TypeKind::Qubit));
        break;
      case TypeKind::Quint: {
        const std::size_t width =
            stmt.type.quint_width > 0 ? stmt.type.quint_width : kDefaultQuintWidth;
        symbol.value = Value::make_quantum(
            handler_.allocate(stmt.name, width, TypeKind::Quint));
        break;
      }
      case TypeKind::Array:
        symbol.value = Value::make_array(stmt.type.element, {});
        break;
      default:
        throw LangError("variable '" + stmt.name + "' needs an initializer",
                        stmt.location);
    }
    return;
  }

  // Quantum declarations with literal initializers build their register
  // directly at the declared width/name (e.g. quint<8> x = 5q).
  if (stmt.type.kind == TypeKind::Quint || stmt.type.kind == TypeKind::Qubit ||
      stmt.type.kind == TypeKind::Qustring) {
    if (auto* lit = dynamic_cast<QuantumIntLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::Int), lit->value);
      symbol.value =
          casting_.promote(classical, stmt.name, stmt.type.quint_width, stmt.location);
      return;
    }
    if (auto* lit = dynamic_cast<IntLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::Int), lit->value);
      symbol.value =
          casting_.promote(classical, stmt.name, stmt.type.quint_width, stmt.location);
      return;
    }
    if (auto* lit = dynamic_cast<QuantumStringLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::String), lit->bits);
      symbol.value = casting_.promote(classical, stmt.name, 0, stmt.location);
      return;
    }
  }

  ValuePtr value = evaluate(*stmt.init);

  // Arrays: coerce every element to the declared element type.
  if (stmt.type.is_array()) {
    if (!value->is_array()) {
      throw LangError("expected an array initializer for '" + stmt.name + "'",
                      stmt.location);
    }
    auto& arr = value->as_array();
    const QType element_type = QType::scalar(stmt.type.element);
    for (std::size_t i = 0; i < arr.items.size(); ++i) {
      arr.items[i] = casting_.coerce(arr.items[i], element_type,
                                     stmt.name + "[" + std::to_string(i) + "]",
                                     stmt.location);
    }
    arr.element = stmt.type.element;
    symbol.value = value;
    return;
  }

  symbol.value = casting_.coerce(value, stmt.type, stmt.name, stmt.location);
}

ValuePtr& Interpreter::resolve_slot(Expr& lvalue) {
  if (auto* ref = dynamic_cast<VarRefExpr*>(&lvalue)) {
    Symbol* symbol = scope_->lookup(ref->name);
    if (symbol == nullptr || !symbol->value) {
      throw LangError("assignment to undeclared variable '" + ref->name + "'",
                      ref->location);
    }
    return symbol->value;
  }
  if (auto* idx = dynamic_cast<IndexExpr*>(&lvalue)) {
    const ValuePtr target = evaluate(*idx->target);
    if (!target->is_array()) {
      throw LangError("only array elements can be assigned by index", idx->location);
    }
    const std::int64_t index = classical_of(evaluate(*idx->index))->as_int();
    auto& arr = target->as_array();
    if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
      throw LangError("array index out of range", idx->location);
    }
    return arr.items[static_cast<std::size_t>(index)];
  }
  throw LangError("invalid assignment target", lvalue.location);
}

void Interpreter::compound_quantum_assign(Symbol& symbol, BinaryOp op,
                                          const ValuePtr& rhs, SourceLocation loc) {
  const QuantumRef& dst = symbol.value->as_quantum();
  circ::QuantumCircuit sub = scratch_circuit(handler_);
  const auto dst_qubits = QuantumCircuitHandler::qubits_of(dst);

  switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      if (rhs->is_quantum()) {
        const QuantumRef& src = rhs->as_quantum();
        if (src.width > dst.width) {
          throw LangError("in-place quantum addition: rhs wider than '" +
                              symbol.name + "'",
                          loc);
        }
        const auto src_qubits = QuantumCircuitHandler::qubits_of(src);
        if (op == BinaryOp::Add) {
          algo::append_draper_adder(sub, src_qubits, dst_qubits);
        } else {
          algo::append_draper_subtractor(sub, src_qubits, dst_qubits);
        }
      } else {
        const std::int64_t k = classical_of(rhs)->as_int();
        if (k < 0) throw LangError("quantum addition needs non-negative constants", loc);
        if (op == BinaryOp::Add) {
          algo::append_draper_add_const(sub, dst_qubits, static_cast<std::uint64_t>(k));
        } else {
          algo::append_draper_sub_const(sub, dst_qubits, static_cast<std::uint64_t>(k));
        }
      }
      apply_global_subcircuit(handler_, sub);
      return;
    }
    case BinaryOp::Shl:
    case BinaryOp::Shr: {
      (void)quantum_shift(op, symbol.value, rhs, loc, /*in_place=*/true);
      return;
    }
    default:
      throw LangError(std::string("compound operator '") + binary_op_name(op) +
                          "=' is not supported on quantum variables; use '" +
                          symbol.name + " = " + symbol.name + " " +
                          binary_op_name(op) + " ...'",
                      loc);
  }
}

void Interpreter::visit(AssignStmt& stmt) {
  ValuePtr& slot = resolve_slot(*stmt.lvalue);

  if (stmt.compound) {
    if (slot->is_quantum()) {
      // In-place quantum update: find the symbol for error messages; fall
      // back to a synthetic symbol for array elements.
      Symbol synthetic{"<element>", slot->type(), stmt.location, slot};
      Symbol* symbol = &synthetic;
      if (auto* ref = dynamic_cast<VarRefExpr*>(stmt.lvalue.get())) {
        symbol = scope_->lookup(ref->name);
      }
      const ValuePtr rhs = evaluate(*stmt.value);
      compound_quantum_assign(*symbol, *stmt.compound, rhs, stmt.location);
      return;
    }
    const ValuePtr rhs = evaluate(*stmt.value);
    const ValuePtr computed = evaluate_binary(*stmt.compound, slot, rhs, stmt.location);
    slot->assign(*casting_.coerce(computed, slot->type(), "assignment", stmt.location));
    return;
  }

  const ValuePtr rhs = evaluate(*stmt.value);
  const QType target = slot->type();
  // Fresh (void) slots adopt the value's type; typed slots keep theirs.
  if (target.kind == TypeKind::Void) {
    slot->assign(*rhs);
  } else {
    slot->assign(*casting_.coerce(rhs, target, "assignment", stmt.location));
  }
}

void Interpreter::visit(ExprStmt& stmt) { (void)evaluate(*stmt.expr); }

void Interpreter::visit(BlockStmt& stmt) {
  const std::shared_ptr<Scope> saved = scope_;
  scope_ = std::make_shared<Scope>(saved);
  try {
    for (const StmtPtr& child : stmt.statements) execute(*child);
  } catch (...) {
    scope_ = saved;
    throw;
  }
  scope_ = saved;
}

void Interpreter::visit(IfStmt& stmt) {
  const bool condition =
      casting_.condition_bool(*evaluate(*stmt.condition), stmt.location);
  if (condition) {
    execute(*stmt.then_branch);
  } else if (stmt.else_branch) {
    execute(*stmt.else_branch);
  }
}

void Interpreter::visit(WhileStmt& stmt) {
  constexpr std::size_t kMaxIterations = 1u << 20;
  std::size_t iterations = 0;
  while (casting_.condition_bool(*evaluate(*stmt.condition), stmt.location)) {
    execute(*stmt.body);
    if (++iterations > kMaxIterations) {
      throw LangError("while loop exceeded the iteration budget", stmt.location);
    }
  }
}

void Interpreter::visit(ForeachStmt& stmt) {
  const ValuePtr iterable = evaluate(*stmt.iterable);
  std::vector<ValuePtr> items;
  if (iterable->is_array()) {
    items = iterable->as_array().items;  // shared: iteration is by reference
  } else if (iterable->kind() == TypeKind::String) {
    for (char c : iterable->as_string()) {
      items.push_back(Value::make_string(std::string(1, c)));
    }
  } else if (iterable->is_quantum()) {
    // Iterate the individual qubits of a register.
    const QuantumRef& ref = iterable->as_quantum();
    for (std::size_t i = 0; i < ref.width; ++i) {
      items.push_back(Value::make_quantum(
          QuantumRef{ref.offset + i, 1, TypeKind::Qubit}));
    }
  } else {
    throw LangError("foreach needs an array, string, or quantum register",
                    stmt.location);
  }

  for (const ValuePtr& item : items) {
    const std::shared_ptr<Scope> saved = scope_;
    scope_ = std::make_shared<Scope>(saved);
    Symbol& symbol = scope_->declare(stmt.var_name, item->type(), stmt.location);
    symbol.value = item;
    try {
      execute(*stmt.body);
    } catch (...) {
      scope_ = saved;
      throw;
    }
    scope_ = saved;
  }
}

void Interpreter::visit(FuncDeclStmt&) {
  // Functions were registered in pass 1; nothing happens at execution time.
}

void Interpreter::visit(ReturnStmt& stmt) {
  ReturnSignal signal;
  signal.value = stmt.value ? evaluate(*stmt.value) : Value::make_void();
  throw signal;
}

std::string Interpreter::render_for_print(const ValuePtr& value) {
  if (value->is_quantum()) {
    return classical_of(value)->to_display_string();
  }
  if (value->is_array()) {
    std::string out = "[";
    const auto& arr = value->as_array();
    for (std::size_t i = 0; i < arr.items.size(); ++i) {
      out += (i ? ", " : "");
      out += render_for_print(arr.items[i]);
    }
    return out + "]";
  }
  return value->to_display_string();
}

void Interpreter::visit(PrintStmt& stmt) {
  const ValuePtr value = evaluate(*stmt.value);
  emit_output(render_for_print(value) + "\n");
}

void Interpreter::visit(BarrierStmt&) { handler_.barrier(); }

void Interpreter::visit(GateStmt& stmt) {
  for (const ExprPtr& operand : stmt.operands) {
    const ValuePtr value = evaluate(*operand);

    // Arrays broadcast the gate across their (quantum) elements.
    std::vector<ValuePtr> targets;
    if (value->is_array()) {
      targets = value->as_array().items;
    } else {
      targets.push_back(value);
    }

    for (const ValuePtr& target : targets) {
      if (!target->is_quantum()) {
        throw LangError(std::string("'") + gate_kind_name(stmt.gate) +
                            "' needs quantum operands",
                        stmt.location);
      }
      const QuantumRef& ref = target->as_quantum();
      switch (stmt.gate) {
        case GateKind::Not: handler_.x(ref); break;
        case GateKind::PauliY: handler_.y(ref); break;
        case GateKind::PauliZ: handler_.z(ref); break;
        case GateKind::Hadamard: handler_.h(ref); break;
        case GateKind::Phase: handler_.s(ref); break;
        case GateKind::SGate: handler_.s(ref); break;
        case GateKind::TGate: handler_.t(ref); break;
        case GateKind::MeasureStmt:
          (void)casting_.measure_to_classical(*target);
          break;
        case GateKind::ResetStmt: handler_.reset(ref); break;
      }
    }
  }
}

}  // namespace qutes::lang
