#include "qutes/lang/interpreter.hpp"

#include "qutes/lang/builtins.hpp"
#include "qutes/obs/obs.hpp"

namespace qutes::lang {

Interpreter::Interpreter(InterpreterOptions options)
    : scope_(std::make_shared<Scope>()),
      runtime_(options.seed, options.echo),
      trace_(options.trace) {
  runtime_.set_bind_params(std::move(options.bind_params),
                           options.allow_unbound_params);
}

namespace {

/// Human-readable tag for trace lines.
class StmtTagger final : public StmtVisitor {
public:
  const char* tag = "stmt";
  void visit(VarDeclStmt&) override { tag = "decl"; }
  void visit(AssignStmt&) override { tag = "assign"; }
  void visit(ExprStmt&) override { tag = "expr"; }
  void visit(BlockStmt&) override { tag = "block"; }
  void visit(IfStmt&) override { tag = "if"; }
  void visit(WhileStmt&) override { tag = "while"; }
  void visit(ForeachStmt&) override { tag = "foreach"; }
  void visit(FuncDeclStmt&) override { tag = "funcdecl"; }
  void visit(ReturnStmt&) override { tag = "return"; }
  void visit(PrintStmt&) override { tag = "print"; }
  void visit(BarrierStmt&) override { tag = "barrier"; }
  void visit(GateStmt&) override { tag = "gate"; }
};

}  // namespace

void Interpreter::run(Program& program, FunctionTable& functions) {
  obs::Span span("lang.interpret");
  functions_ = &functions;
  for (const StmtPtr& stmt : program.statements) execute(*stmt);
}

void Interpreter::execute(Stmt& stmt) {
  static obs::Counter& executed_metric =
      obs::metrics().counter(obs::names::kLangStmtsExecuted);
  executed_metric.add(1);
  if (trace_ != nullptr) {
    StmtTagger tagger;
    stmt.accept(tagger);
    (*trace_) << "[trace] " << stmt.location.to_string() << " " << tagger.tag
              << "  (qubits=" << handler().num_qubits()
              << " gates=" << handler().circuit().gate_count() << ")\n";
  }
  stmt.accept(*this);
}

ValuePtr Interpreter::evaluate(Expr& expr) {
  if (eval_depth_ >= kMaxEvalDepth) {
    throw LangError("expression too deep to evaluate (depth limit " +
                        std::to_string(kMaxEvalDepth) + ")",
                    expr.location);
  }
  ++eval_depth_;
  struct DepthGuard {
    std::size_t& depth;
    ~DepthGuard() { --depth; }
  } guard{eval_depth_};
  expr.accept(*this);
  ValuePtr value = std::move(result_);
  if (!value) {
    throw LangError("internal: expression produced no value", expr.location);
  }
  return value;
}

// ---------------------------------------------------------------------------
// Expression visitors
// ---------------------------------------------------------------------------

void Interpreter::visit(IntLitExpr& expr) { result_ = Value::make_int(expr.value); }
void Interpreter::visit(FloatLitExpr& expr) { result_ = Value::make_float(expr.value); }
void Interpreter::visit(BoolLitExpr& expr) { result_ = Value::make_bool(expr.value); }
void Interpreter::visit(StringLitExpr& expr) {
  result_ = Value::make_string(expr.value);
}

void Interpreter::visit(QuantumIntLitExpr& expr) {
  result_ = runtime_.quantum_int_lit(expr.value, expr.location);
}

void Interpreter::visit(QuantumStringLitExpr& expr) {
  result_ = runtime_.quantum_string_lit(expr.bits, expr.location);
}

void Interpreter::visit(KetLitExpr& expr) { result_ = runtime_.ket_lit(expr.kind); }

void Interpreter::visit(ArrayLitExpr& expr) {
  if (expr.superposition) {
    // `[v0, v1, ...]q`: equal superposition of the listed basis values on a
    // fresh quint.
    Runtime::SupBuilder builder;
    for (const ExprPtr& element : expr.elements) {
      runtime_.sup_element(builder, evaluate(*element), expr.location);
    }
    result_ = runtime_.sup_finish(builder, expr.location);
    return;
  }

  Runtime::ArrBuilder builder;
  for (const ExprPtr& node : expr.elements) {
    Runtime::arr_element(builder, evaluate(*node), expr.location);
  }
  result_ = Value::make_array(builder.element, std::move(builder.items));
}

void Interpreter::visit(VarRefExpr& expr) {
  Symbol* symbol = scope_->lookup(expr.name);
  if (symbol == nullptr || !symbol->value) {
    throw LangError("use of undeclared variable '" + expr.name + "'", expr.location);
  }
  result_ = symbol->value;
}

void Interpreter::visit(IndexExpr& expr) {
  const ValuePtr target = evaluate(*expr.target);
  const ValuePtr index = evaluate(*expr.index);
  result_ = runtime_.index_value(target, index, expr.location);
}

void Interpreter::visit(CallExpr& expr) {
  std::vector<ValuePtr> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) args.push_back(evaluate(*arg));

  const auto& builtins = builtin_table();
  const auto bit = builtins.find(expr.callee);
  if (bit != builtins.end()) {
    result_ = bit->second(runtime_, args, expr.location);
    if (!result_) result_ = Value::make_void();
    return;
  }

  FuncDeclStmt* fn = functions_ != nullptr ? functions_->lookup(expr.callee) : nullptr;
  if (fn == nullptr) {
    throw LangError("call to unknown function '" + expr.callee + "'", expr.location);
  }
  result_ = call_user_function(*fn, std::move(args), expr.location);
}

ValuePtr Interpreter::call_user_function(FuncDeclStmt& fn, std::vector<ValuePtr> args,
                                         SourceLocation loc) {
  if (args.size() != fn.params.size()) {
    throw LangError("function '" + fn.name + "' expects " +
                        std::to_string(fn.params.size()) + " arguments, got " +
                        std::to_string(args.size()),
                    loc);
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw LangError("call depth exceeded (" + std::to_string(kMaxCallDepth) + ")", loc);
  }

  // Function scope chains to the GLOBAL scope (lexical top level), not to
  // the caller's scope.
  std::shared_ptr<Scope> global = scope_;
  while (global->parent()) global = global->parent();
  auto fn_scope = std::make_shared<Scope>(global);

  for (std::size_t i = 0; i < args.size(); ++i) {
    Symbol& symbol = fn_scope->declare(fn.params[i].name, fn.params[i].type, loc);
    // coerce() returns the same ValuePtr for matching types, so arguments
    // alias caller storage: pass-by-reference (paper §4).
    symbol.value = casting().coerce(args[i], fn.params[i].type, fn.params[i].name, loc);
  }

  const std::shared_ptr<Scope> saved = scope_;
  scope_ = fn_scope;
  ValuePtr returned = Value::make_void();
  try {
    for (const StmtPtr& stmt : fn.body->statements) execute(*stmt);
  } catch (ReturnSignal& signal) {
    returned = signal.value ? signal.value : Value::make_void();
  } catch (...) {
    scope_ = saved;
    --call_depth_;
    throw;
  }
  scope_ = saved;
  --call_depth_;

  if (fn.return_type.kind == TypeKind::Void) return Value::make_void();
  return casting().coerce(returned, fn.return_type, fn.name + "() result", loc);
}

void Interpreter::visit(UnaryExpr& expr) {
  result_ = runtime_.unary(expr.op, evaluate(*expr.operand), expr.location);
}

void Interpreter::visit(BinaryExpr& expr) {
  // Short-circuit logic first.
  if (expr.op == BinaryOp::And || expr.op == BinaryOp::Or) {
    const bool lhs = casting().condition_bool(*evaluate(*expr.lhs), expr.location);
    if (expr.op == BinaryOp::And && !lhs) {
      result_ = Value::make_bool(false);
      return;
    }
    if (expr.op == BinaryOp::Or && lhs) {
      result_ = Value::make_bool(true);
      return;
    }
    result_ = Value::make_bool(
        casting().condition_bool(*evaluate(*expr.rhs), expr.location));
    return;
  }
  ValuePtr lhs = evaluate(*expr.lhs);
  ValuePtr rhs = evaluate(*expr.rhs);
  result_ = runtime_.evaluate_binary(expr.op, lhs, rhs, expr.location);
}

// ---------------------------------------------------------------------------
// Statement visitors
// ---------------------------------------------------------------------------

void Interpreter::visit(VarDeclStmt& stmt) {
  Symbol& symbol = scope_->declare(stmt.name, stmt.type, stmt.location);

  if (!stmt.init) {
    symbol.value = runtime_.default_init(stmt.type, stmt.name, stmt.location);
    return;
  }

  // Quantum declarations with literal initializers build their register
  // directly at the declared width/name (e.g. quint<8> x = 5q).
  if (stmt.type.kind == TypeKind::Quint || stmt.type.kind == TypeKind::Qubit ||
      stmt.type.kind == TypeKind::Qustring) {
    if (auto* lit = dynamic_cast<QuantumIntLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::Int), lit->value);
      symbol.value =
          casting().promote(classical, stmt.name, stmt.type.quint_width, stmt.location);
      return;
    }
    if (auto* lit = dynamic_cast<IntLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::Int), lit->value);
      symbol.value =
          casting().promote(classical, stmt.name, stmt.type.quint_width, stmt.location);
      return;
    }
    if (auto* lit = dynamic_cast<QuantumStringLitExpr*>(stmt.init.get())) {
      const Value classical(QType::scalar(TypeKind::String), lit->bits);
      symbol.value = casting().promote(classical, stmt.name, 0, stmt.location);
      return;
    }
  }

  ValuePtr value = evaluate(*stmt.init);
  symbol.value = runtime_.bind_decl_init(value, stmt.type, stmt.name, stmt.location);
}

ValuePtr& Interpreter::resolve_slot(Expr& lvalue) {
  if (auto* ref = dynamic_cast<VarRefExpr*>(&lvalue)) {
    Symbol* symbol = scope_->lookup(ref->name);
    if (symbol == nullptr || !symbol->value) {
      throw LangError("assignment to undeclared variable '" + ref->name + "'",
                      ref->location);
    }
    return symbol->value;
  }
  if (auto* idx = dynamic_cast<IndexExpr*>(&lvalue)) {
    const ValuePtr target = evaluate(*idx->target);
    if (!target->is_array()) {
      throw LangError("only array elements can be assigned by index", idx->location);
    }
    const std::int64_t index =
        runtime_.classical_of(evaluate(*idx->index))->as_int();
    auto& arr = target->as_array();
    if (index < 0 || static_cast<std::size_t>(index) >= arr.items.size()) {
      throw LangError("array index out of range", idx->location);
    }
    return arr.items[static_cast<std::size_t>(index)];
  }
  throw LangError("invalid assignment target", lvalue.location);
}

void Interpreter::visit(AssignStmt& stmt) {
  ValuePtr& slot = resolve_slot(*stmt.lvalue);

  if (stmt.compound) {
    // Name for in-place quantum error messages; array elements get a
    // synthetic one.
    std::string name = "<element>";
    if (auto* ref = dynamic_cast<VarRefExpr*>(stmt.lvalue.get())) {
      name = ref->name;
    }
    const ValuePtr rhs = evaluate(*stmt.value);
    runtime_.compound_assign(name, slot, *stmt.compound, rhs, stmt.location);
    return;
  }

  const ValuePtr rhs = evaluate(*stmt.value);
  runtime_.assign_plain(slot, rhs, stmt.location);
}

void Interpreter::visit(ExprStmt& stmt) { (void)evaluate(*stmt.expr); }

void Interpreter::visit(BlockStmt& stmt) {
  const std::shared_ptr<Scope> saved = scope_;
  scope_ = std::make_shared<Scope>(saved);
  try {
    for (const StmtPtr& child : stmt.statements) execute(*child);
  } catch (...) {
    scope_ = saved;
    throw;
  }
  scope_ = saved;
}

void Interpreter::visit(IfStmt& stmt) {
  const bool condition =
      casting().condition_bool(*evaluate(*stmt.condition), stmt.location);
  if (condition) {
    execute(*stmt.then_branch);
  } else if (stmt.else_branch) {
    execute(*stmt.else_branch);
  }
}

void Interpreter::visit(WhileStmt& stmt) {
  std::size_t iterations = 0;
  while (casting().condition_bool(*evaluate(*stmt.condition), stmt.location)) {
    execute(*stmt.body);
    if (++iterations > kMaxWhileIterations) {
      throw LangError("while loop exceeded the iteration budget", stmt.location);
    }
  }
}

void Interpreter::visit(ForeachStmt& stmt) {
  const ValuePtr iterable = evaluate(*stmt.iterable);
  const std::vector<ValuePtr> items = runtime_.iterate_items(iterable, stmt.location);

  for (const ValuePtr& item : items) {
    const std::shared_ptr<Scope> saved = scope_;
    scope_ = std::make_shared<Scope>(saved);
    Symbol& symbol = scope_->declare(stmt.var_name, item->type(), stmt.location);
    symbol.value = item;
    try {
      execute(*stmt.body);
    } catch (...) {
      scope_ = saved;
      throw;
    }
    scope_ = saved;
  }
}

void Interpreter::visit(FuncDeclStmt&) {
  // Functions were registered in pass 1; nothing happens at execution time.
}

void Interpreter::visit(ReturnStmt& stmt) {
  ReturnSignal signal;
  signal.value = stmt.value ? evaluate(*stmt.value) : Value::make_void();
  throw signal;
}

void Interpreter::visit(PrintStmt& stmt) {
  const ValuePtr value = evaluate(*stmt.value);
  emit_output(render_for_print(value) + "\n");
}

void Interpreter::visit(BarrierStmt&) { handler().barrier(); }

void Interpreter::visit(GateStmt& stmt) {
  for (const ExprPtr& operand : stmt.operands) {
    const ValuePtr value = evaluate(*operand);
    runtime_.apply_gate_value(stmt.gate, value, stmt.location);
  }
}

}  // namespace qutes::lang
