#include "qutes/common/cache_key.hpp"

#include <cstdio>

namespace qutes {

namespace {

/// Doubles in the config (truncation threshold, noise probabilities) are
/// canonicalized through %.17g — enough digits to round-trip any double, so
/// distinct values never collide and equal values always agree.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

const char* exec_mode_name(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::Vm: return "vm";
    case ExecMode::Ast: return "ast";
    case ExecMode::Default: return "default";
  }
  return "default";
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string canonical_run_config(const RunConfig& config,
                                 std::string_view pipeline_preset) {
  // NOTE: like the seed, `bind_params` is deliberately absent. A compiled
  // entry is the *unbound* artifact — the lowered circuit still carrying
  // symbolic parameters — and every binding replays against it, so parameter
  // values must never key distinctly (a VQE sweep is one compile, N binds).
  std::string out;
  out.reserve(160);
  out += "pipeline=";
  out += pipeline_preset;
  out += ";backend=";
  out += config.backend.name;
  out += ";exec=";
  out += exec_mode_name(config.exec_mode);
  out += ";shots=";
  out += std::to_string(config.shots);
  out += ";stdlib=";
  out += config.include_stdlib ? '1' : '0';
  out += ";fused=";
  out += std::to_string(config.backend.max_fused_qubits);
  out += ";bond=";
  out += std::to_string(config.backend.max_bond_dim);
  out += ";trunc=";
  append_double(out, config.backend.truncation_threshold);
  // Noise changes both the sampled counts and --backend auto resolution, so
  // it is part of entry identity even though the service protocol does not
  // currently surface it.
  out += ";noise=";
  append_double(out, config.backend.noise.depolarizing_1q);
  out += ',';
  append_double(out, config.backend.noise.depolarizing_2q);
  out += ',';
  append_double(out, config.backend.noise.amplitude_damping);
  out += ',';
  append_double(out, config.backend.noise.readout_error);
  return out;
}

std::uint64_t cache_key(std::string_view source, const RunConfig& config,
                        std::string_view pipeline_preset) {
  std::string keyed;
  const std::string canonical = canonical_run_config(config, pipeline_preset);
  keyed.reserve(source.size() + 1 + canonical.size());
  keyed.append(source);
  keyed.push_back('\0');  // source/config boundary cannot be forged by either
  keyed.append(canonical);
  return fnv1a64(keyed);
}

}  // namespace qutes
