#include "qutes/common/rng.hpp"

#ifdef __SIZEOF_INT128__
using uint128 = unsigned __int128;
#endif

namespace qutes {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  uint128 m = static_cast<uint128>(x) * static_cast<uint128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<uint128>(x) * static_cast<uint128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
#else
  // Rejection sampling fallback.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % bound;
#endif
}

}  // namespace qutes
