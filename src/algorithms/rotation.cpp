#include "qutes/algorithms/rotation.hpp"

#include "qutes/common/error.hpp"

namespace qutes::algo {

namespace {

/// One layer of disjoint SWAPs reversing qubits[begin..end).
void append_reversal(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits,
                     std::size_t begin, std::size_t end) {
  while (begin + 1 < end) {
    circuit.swap(qubits[begin], qubits[end - 1]);
    ++begin;
    --end;
  }
}

}  // namespace

void append_rotate_constant_depth(circ::QuantumCircuit& circuit,
                                  std::span<const std::size_t> qubits, std::size_t k) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("rotate: empty register");
  k %= n;
  if (k == 0) return;
  // Left-rotate by k == reverse the two blocks, then reverse the whole:
  // [A|B] -> [A^R|B^R] -> (whole)^R = [B|A].
  // Block split: moving each qubit i -> (i + k) mod n means block A is the
  // first n-k qubits (they shift up by k) and block B the last k.
  append_reversal(circuit, qubits, 0, n - k);
  append_reversal(circuit, qubits, n - k, n);
  append_reversal(circuit, qubits, 0, n);
}

void append_rotate_linear_depth(circ::QuantumCircuit& circuit,
                                std::span<const std::size_t> qubits, std::size_t k) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("rotate: empty register");
  k %= n;
  // One position per pass: bubble the top element down with n-1 sequential
  // adjacent swaps (deliberately serial — this is the classical-style
  // baseline the paper contrasts against).
  for (std::size_t pass = 0; pass < k; ++pass) {
    for (std::size_t i = n - 1; i-- > 0;) {
      circuit.swap(qubits[i], qubits[i + 1]);
    }
  }
}

void append_rotate_right_constant_depth(circ::QuantumCircuit& circuit,
                                        std::span<const std::size_t> qubits,
                                        std::size_t k) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("rotate: empty register");
  k %= n;
  append_rotate_constant_depth(circuit, qubits, (n - k) % n);
}

}  // namespace qutes::algo
