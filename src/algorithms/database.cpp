#include "qutes/algorithms/database.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "qutes/algorithms/oracles.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

void append_less_than_oracle(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> qubits,
                             std::uint64_t bound) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("less-than oracle: empty register");
  if (bound >= dim_of(n)) {
    throw InvalidArgument("less-than oracle: bound must fit the register");
  }
  if (bound == 0) return;  // nothing is < 0

  // x < bound  iff  for some position p with bound[p] == 1:
  //   x[j] == bound[j] for all j > p, and x[p] == 0.
  // These prefix classes are disjoint, so one phase flip each marks exactly
  // the states below the bound.
  for (std::size_t p = n; p-- > 0;) {
    if (!test_bit(bound, p)) continue;
    // Build the control pattern over qubits p..n-1: bit p must be 0, bits
    // above must equal the bound's bits. X-conjugate zeros, then MCZ.
    std::vector<std::size_t> involved;
    std::vector<std::size_t> flipped;
    for (std::size_t j = p; j < n; ++j) {
      involved.push_back(qubits[j]);
      const bool want_one = j == p ? false : test_bit(bound, j);
      if (!want_one) flipped.push_back(qubits[j]);
    }
    for (std::size_t q : flipped) circuit.x(q);
    if (involved.size() == 1) {
      circuit.z(involved[0]);
    } else {
      circuit.mcz(std::span<const std::size_t>(involved.data(), involved.size() - 1),
                  involved.back());
    }
    for (std::size_t q : flipped) circuit.x(q);
  }
}

QuantumDatabase::QuantumDatabase(std::vector<std::uint64_t> values)
    : values_(std::move(values)) {
  if (values_.empty()) throw InvalidArgument("QuantumDatabase: empty table");
  index_bits_ = bits_for(values_.size() - 1);
  std::uint64_t widest = 0;
  for (std::uint64_t v : values_) widest = std::max(widest, v);
  value_bits_ = bits_for(widest);
}

void QuantumDatabase::append_load(circ::QuantumCircuit& circuit,
                                  std::span<const std::size_t> index,
                                  std::span<const std::size_t> value,
                                  std::uint64_t pad_value) const {
  const std::uint64_t index_space = dim_of(index_bits_);
  for (std::uint64_t i = 0; i < index_space; ++i) {
    const std::uint64_t entry = i < values_.size() ? values_[i] : pad_value;
    if (entry == 0) continue;
    for (std::size_t b = 0; b < index.size(); ++b) {
      if (!test_bit(i, b)) circuit.x(index[b]);
    }
    for (std::size_t j = 0; j < value.size(); ++j) {
      if (test_bit(entry, j)) circuit.mcx(index, value[j]);
    }
    for (std::size_t b = 0; b < index.size(); ++b) {
      if (!test_bit(i, b)) circuit.x(index[b]);
    }
  }
}

circ::QuantumCircuit QuantumDatabase::build_filter_circuit(
    std::uint64_t pad_value, std::size_t iterations,
    const std::function<void(circ::QuantumCircuit&,
                             std::span<const std::size_t>)>& oracle) const {
  circ::QuantumCircuit circuit;
  const auto& idx = circuit.add_register("idx", index_bits_);
  const auto& val = circuit.add_register("val", value_bits_);
  circuit.add_classical_register("pos", index_bits_);

  std::vector<std::size_t> index(index_bits_), value(value_bits_);
  for (std::size_t i = 0; i < index_bits_; ++i) index[i] = idx[i];
  for (std::size_t j = 0; j < value_bits_; ++j) value[j] = val[j];

  for (std::size_t q : index) circuit.h(q);
  for (std::size_t it = 0; it < iterations; ++it) {
    append_load(circuit, index, value, pad_value);
    oracle(circuit, value);
    append_load(circuit, index, value, pad_value);  // self-inverse uncompute
    append_diffusion(circuit, index);
  }
  std::vector<std::size_t> clbits(index_bits_);
  for (std::size_t i = 0; i < index_bits_; ++i) clbits[i] = i;
  circuit.measure(index, clbits);
  return circuit;
}

circ::QuantumCircuit QuantumDatabase::build_equal_circuit(std::uint64_t key,
                                                          std::size_t iterations) const {
  if (key >= dim_of(value_bits_) && value_bits_ < 64) {
    // Key wider than any entry: nothing can match; zero iterations suffice.
    iterations = 0;
  } else if (iterations == 0) {
    const auto matches = static_cast<std::uint64_t>(
        std::count(values_.begin(), values_.end(), key));
    iterations =
        optimal_grover_iterations(dim_of(index_bits_),
                                  std::max<std::uint64_t>(matches, 1));
  }
  // Padding loads the complement of the key, which can never match.
  const std::uint64_t pad = ~key & (dim_of(value_bits_) - 1);
  const std::uint64_t safe_key = key & (dim_of(value_bits_) - 1);
  return build_filter_circuit(
      pad, iterations,
      [safe_key](circ::QuantumCircuit& c, std::span<const std::size_t> value) {
        append_phase_oracle_value(c, value, safe_key);
      });
}

circ::QuantumCircuit QuantumDatabase::build_less_than_circuit(
    std::uint64_t bound, std::size_t iterations) const {
  if (bound >= dim_of(value_bits_)) {
    throw InvalidArgument("less-than search: bound exceeds the value register");
  }
  // Padding loads all-ones, which is never strictly below any valid bound.
  const std::uint64_t pad = dim_of(value_bits_) - 1;
  return build_filter_circuit(
      pad, iterations,
      [bound](circ::QuantumCircuit& c, std::span<const std::size_t> value) {
        append_less_than_oracle(c, value, bound);
      });
}

GroverResult QuantumDatabase::run_equal(std::uint64_t key, std::uint64_t seed,
                                        std::size_t iterations) const {
  const circ::QuantumCircuit circuit = build_equal_circuit(key, iterations);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);
  const std::uint64_t pos = traj.clbits & (dim_of(index_bits_) - 1);

  GroverResult result;
  result.outcome = pos;
  result.hit = pos < values_.size() && values_[pos] == key;
  // Recompute the iteration count the circuit was built with.
  const auto matches =
      static_cast<std::uint64_t>(std::count(values_.begin(), values_.end(), key));
  result.iterations = iterations != 0
                          ? iterations
                          : optimal_grover_iterations(
                                dim_of(index_bits_),
                                std::max<std::uint64_t>(matches, 1));
  result.oracle_calls = result.iterations;
  // Exact success probability: fraction of matching indices among the
  // outcome distribution — recompute from a measurement-free run.
  circ::QuantumCircuit unm;
  unm.add_register("idx", index_bits_);
  unm.add_register("val", value_bits_);
  for (const auto& in : circuit.instructions()) {
    if (in.type != circ::GateType::Measure) unm.append(in);
  }
  const auto pure = executor.run_single(unm);
  double p = 0.0;
  for (std::uint64_t basis = 0; basis < pure.state.dim(); ++basis) {
    const std::uint64_t i = basis & (dim_of(index_bits_) - 1);
    if (i < values_.size() && values_[i] == key) {
      p += std::norm(pure.state.amplitude(basis));
    }
  }
  result.success_probability = p;
  return result;
}

namespace {

ExtremumResult durr_hoyer(std::span<const std::uint64_t> values, std::uint64_t seed,
                          bool maximize) {
  if (values.empty()) throw InvalidArgument("extremum of an empty table");

  // Minimization runs on the raw values; maximization on their bitwise
  // complement within the value register width.
  std::uint64_t widest = 0;
  for (std::uint64_t v : values) widest = std::max(widest, v);
  const std::uint64_t mask = dim_of(bits_for(widest)) - 1;
  std::vector<std::uint64_t> table(values.begin(), values.end());
  if (maximize) {
    for (std::uint64_t& v : table) v = ~v & mask;
  }
  const QuantumDatabase db(table);

  Rng rng(seed);
  ExtremumResult result;
  std::uint64_t best_index = rng.below(table.size());
  std::uint64_t best_value = table[best_index];

  // BBHT schedule: iteration counts drawn uniformly from a window that
  // grows by lambda on failure; overall budget O(sqrt(N)) oracle calls.
  const double lambda = 1.34;
  double window = 1.0;
  const double budget =
      22.5 * std::sqrt(static_cast<double>(dim_of(db.index_qubits()))) + 10.0;

  while (result.oracle_calls < static_cast<std::size_t>(budget)) {
    if (best_value == 0) break;  // nothing can be smaller
    const auto iterations = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(window) + 1));
    const circ::QuantumCircuit circuit =
        db.build_less_than_circuit(best_value, iterations);
    circ::Executor executor({.shots = 1, .seed = rng()});
    const auto traj = executor.run_single(circuit);
    const std::uint64_t pos = traj.clbits & (dim_of(db.index_qubits()) - 1);
    result.oracle_calls += iterations;
    ++result.grover_rounds;

    if (pos < table.size() && table[pos] < best_value) {
      best_value = table[pos];
      best_index = pos;
      window = 1.0;
    } else {
      window = std::min(lambda * window,
                        std::sqrt(static_cast<double>(dim_of(db.index_qubits()))));
    }
  }

  result.index = best_index;
  result.value = maximize ? (~best_value & mask) : best_value;
  const std::uint64_t truth =
      maximize ? *std::max_element(values.begin(), values.end())
               : *std::min_element(values.begin(), values.end());
  result.exact = result.value == truth;
  return result;
}

}  // namespace

ExtremumResult find_minimum(std::span<const std::uint64_t> values, std::uint64_t seed) {
  return durr_hoyer(values, seed, /*maximize=*/false);
}

ExtremumResult find_maximum(std::span<const std::uint64_t> values, std::uint64_t seed) {
  return durr_hoyer(values, seed, /*maximize=*/true);
}

}  // namespace qutes::algo
