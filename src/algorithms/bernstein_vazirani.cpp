#include "qutes/algorithms/bernstein_vazirani.hpp"

#include "qutes/algorithms/oracles.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

circ::QuantumCircuit build_bernstein_vazirani_circuit(std::size_t num_inputs,
                                                      std::uint64_t secret) {
  if (num_inputs == 0) throw InvalidArgument("bernstein-vazirani: no inputs");
  if (secret >= dim_of(num_inputs)) {
    throw InvalidArgument("bernstein-vazirani: secret does not fit the register");
  }
  circ::QuantumCircuit circuit;
  const auto& x = circuit.add_register("x", num_inputs);
  const auto& y = circuit.add_register("y", 1);
  circuit.add_classical_register("c", num_inputs);

  std::vector<std::size_t> inputs(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) inputs[i] = x[i];

  for (std::size_t q : inputs) circuit.h(q);
  circuit.x(y[0]);
  circuit.h(y[0]);
  append_parity_bit_oracle(circuit, inputs, y[0], secret);
  for (std::size_t q : inputs) circuit.h(q);

  std::vector<std::size_t> clbits(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) clbits[i] = i;
  circuit.measure(inputs, clbits);
  return circuit;
}

std::uint64_t run_bernstein_vazirani(std::size_t num_inputs, std::uint64_t secret,
                                     std::uint64_t seed) {
  const auto circuit = build_bernstein_vazirani_circuit(num_inputs, secret);
  circ::Executor executor({.shots = 1, .seed = seed});
  return executor.run_single(circuit).clbits;
}

}  // namespace qutes::algo
