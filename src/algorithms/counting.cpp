#include "qutes/algorithms/counting.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/qft.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

namespace {

/// MCZ over `qubits` plus one extra control — the "phase core" that carries
/// the control for both the oracle and the diffusion (their X/H conjugation
/// layers cancel pairwise when the core does not fire).
void append_controlled_core(circ::QuantumCircuit& circuit, std::size_t control,
                            std::span<const std::size_t> qubits) {
  std::vector<std::size_t> operands;
  operands.push_back(control);
  operands.insert(operands.end(), qubits.begin(), qubits.end());
  circuit.mcz(std::span<const std::size_t>(operands.data(), operands.size() - 1),
              operands.back());
}

}  // namespace

void append_controlled_grover_iteration(circ::QuantumCircuit& circuit,
                                        std::size_t control,
                                        std::span<const std::size_t> qubits,
                                        std::span<const std::uint64_t> marked) {
  if (qubits.empty()) throw InvalidArgument("controlled grover: empty register");

  // Controlled oracle: the X conjugation is harmless uncontrolled (it
  // cancels with itself); only the MCZ needs the extra control.
  for (std::uint64_t value : marked) {
    if (value >= dim_of(qubits.size())) {
      throw InvalidArgument("controlled grover: marked value out of range");
    }
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      if (!test_bit(value, i)) circuit.x(qubits[i]);
    }
    append_controlled_core(circuit, control, qubits);
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      if (!test_bit(value, i)) circuit.x(qubits[i]);
    }
  }

  // Controlled diffusion: same cancellation argument for the H/X layers.
  for (std::size_t q : qubits) circuit.h(q);
  for (std::size_t q : qubits) circuit.x(q);
  append_controlled_core(circuit, control, qubits);
  for (std::size_t q : qubits) circuit.x(q);
  for (std::size_t q : qubits) circuit.h(q);

  // The X^n-MCZ-X^n sandwich implements -(2|0><0| - I): cancel the minus
  // sign (it would shift every QPE phase by pi) with a Z on the control.
  circuit.z(control);
}

circ::QuantumCircuit build_counting_circuit(std::size_t num_qubits,
                                            std::span<const std::uint64_t> marked,
                                            std::size_t precision_bits) {
  if (num_qubits == 0 || precision_bits == 0) {
    throw InvalidArgument("counting: empty register");
  }
  circ::QuantumCircuit circuit;
  const auto& count = circuit.add_register("count", precision_bits);
  const auto& search = circuit.add_register("search", num_qubits);
  circuit.add_classical_register("c", precision_bits);

  std::vector<std::size_t> counting(precision_bits), qubits(num_qubits);
  for (std::size_t i = 0; i < precision_bits; ++i) counting[i] = count[i];
  for (std::size_t i = 0; i < num_qubits; ++i) qubits[i] = search[i];

  for (std::size_t q : counting) circuit.h(q);
  for (std::size_t q : qubits) circuit.h(q);

  // Counting qubit k controls G^(2^k).
  for (std::size_t k = 0; k < precision_bits; ++k) {
    const std::uint64_t reps = std::uint64_t{1} << k;
    for (std::uint64_t r = 0; r < reps; ++r) {
      append_controlled_grover_iteration(circuit, counting[k], qubits, marked);
    }
  }
  append_iqft(circuit, counting, /*do_swaps=*/true);

  std::vector<std::size_t> clbits(precision_bits);
  for (std::size_t i = 0; i < precision_bits; ++i) clbits[i] = i;
  circuit.measure(counting, clbits);
  return circuit;
}

CountingResult run_quantum_counting(std::size_t num_qubits,
                                    std::span<const std::uint64_t> marked,
                                    std::size_t precision_bits, std::uint64_t seed) {
  const circ::QuantumCircuit circuit =
      build_counting_circuit(num_qubits, marked, precision_bits);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);

  CountingResult result;
  result.raw = traj.clbits & (dim_of(precision_bits) - 1);
  result.true_marked = marked.size();
  result.search_space = dim_of(num_qubits);
  // Eigenphases of G are +-2 theta with sin^2(theta) = M/N; the QPE value
  // f = raw / 2^t estimates theta/pi or 1 - theta/pi.
  const double f =
      static_cast<double>(result.raw) / static_cast<double>(dim_of(precision_bits));
  const double theta = M_PI * std::min(f, 1.0 - f);
  const double s = std::sin(theta);
  result.estimated_marked = static_cast<double>(result.search_space) * s * s;
  return result;
}

}  // namespace qutes::algo
