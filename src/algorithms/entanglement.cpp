#include "qutes/algorithms/entanglement.hpp"

#include <array>
#include <cmath>

#include "qutes/algorithms/state_prep.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

void append_bell_pair(circ::QuantumCircuit& circuit, std::size_t a, std::size_t b) {
  circuit.h(a);
  circuit.cx(a, b);
}

void append_ghz(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits) {
  if (qubits.empty()) throw InvalidArgument("ghz: empty register");
  circuit.h(qubits[0]);
  for (std::size_t i = 0; i + 1 < qubits.size(); ++i) {
    circuit.cx(qubits[i], qubits[i + 1]);
  }
}

void append_w_state(circ::QuantumCircuit& circuit,
                    std::span<const std::size_t> qubits) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("w state: empty register");
  std::vector<double> probs(dim_of(n), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    probs[std::uint64_t{1} << i] = 1.0 / static_cast<double>(n);
  }
  append_state_prep(circuit, qubits, probs);
}

circ::QuantumCircuit build_entanglement_chain_circuit(std::size_t num_links) {
  if (num_links == 0) throw InvalidArgument("entanglement chain: no links");
  const std::size_t n = 2 * num_links;
  circ::QuantumCircuit circuit;
  const auto& q = circuit.add_register("chain", n);
  // Two classical bits per interior junction.
  const std::size_t junctions = num_links - 1;
  if (junctions > 0) circuit.add_classical_register("bm", 2 * junctions);

  // L adjacent Bell pairs.
  for (std::size_t link = 0; link < num_links; ++link) {
    append_bell_pair(circuit, q[2 * link], q[2 * link + 1]);
  }
  circuit.barrier();

  // Swap entanglement across each junction: Bell-measure (b, c) of the
  // neighbouring pairs (a,b), (c,d); correct d.
  for (std::size_t j = 1; j <= junctions; ++j) {
    const std::size_t b = q[2 * j - 1];
    const std::size_t c = q[2 * j];
    const std::size_t d = q[2 * j + 1];
    const std::size_t bit_z = 2 * (j - 1);      // outcome of the H-side qubit
    const std::size_t bit_x = 2 * (j - 1) + 1;  // outcome of the CX target

    circuit.cx(b, c);
    circuit.h(b);
    circuit.measure(b, bit_z);
    circuit.measure(c, bit_x);
    circuit.x(d);
    circuit.c_if(bit_x, 1);
    circuit.z(d);
    circuit.c_if(bit_z, 1);
  }
  return circuit;
}

ChainResult run_entanglement_chain(std::size_t num_links, std::uint64_t seed) {
  const auto circuit = build_entanglement_chain_circuit(num_links);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);

  const std::size_t n = 2 * num_links;
  const std::size_t first = 0;
  const std::size_t last = n - 1;

  ChainResult result;
  result.chain_qubits = n;
  result.zz_correlation = traj.state.expectation_zz(first, last);

  // The interior qubits have collapsed, so exactly four basis amplitudes can
  // be nonzero — one per endpoint combination. Project them out and compare
  // with Phi+ = (|00> + |11>)/sqrt(2).
  std::array<sim::cplx, 4> endpoint{};
  for (std::uint64_t basis = 0; basis < traj.state.dim(); ++basis) {
    const sim::cplx a = traj.state.amplitude(basis);
    if (std::norm(a) == 0.0) continue;
    const std::size_t key = (test_bit(basis, first) ? 1u : 0u) |
                            (test_bit(basis, last) ? 2u : 0u);
    endpoint[key] += a;  // interior bits are fixed, so no cross terms
  }
  const sim::cplx overlap = (endpoint[0] + endpoint[3]) / std::sqrt(2.0);
  result.bell_fidelity = std::norm(overlap);
  return result;
}

}  // namespace qutes::algo
