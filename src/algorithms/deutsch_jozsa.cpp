#include "qutes/algorithms/deutsch_jozsa.hpp"

#include "qutes/algorithms/oracles.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

namespace {

bool evaluate_oracle(const DjOracle& oracle, std::uint64_t x) {
  switch (oracle.kind) {
    case DjOracleKind::Constant0: return false;
    case DjOracleKind::Constant1: return true;
    case DjOracleKind::BalancedParity:
      return std::popcount(x & oracle.mask) % 2 == 1;
    case DjOracleKind::TruthTable:
      return oracle.truth_table[x];
  }
  return false;
}

}  // namespace

circ::QuantumCircuit build_deutsch_jozsa_circuit(std::size_t num_inputs,
                                                 const DjOracle& oracle) {
  if (num_inputs == 0) throw InvalidArgument("deutsch-jozsa: no inputs");
  if (oracle.kind == DjOracleKind::BalancedParity && oracle.mask == 0) {
    throw InvalidArgument("deutsch-jozsa: zero parity mask is constant, not balanced");
  }
  if (oracle.kind == DjOracleKind::TruthTable &&
      oracle.truth_table.size() != dim_of(num_inputs)) {
    throw InvalidArgument("deutsch-jozsa: truth table size mismatch");
  }

  circ::QuantumCircuit circuit;
  const auto& x = circuit.add_register("x", num_inputs);
  const auto& y = circuit.add_register("y", 1);
  circuit.add_classical_register("c", num_inputs);

  std::vector<std::size_t> inputs(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) inputs[i] = x[i];

  // |x> = H^n |0>, |y> = |->.
  for (std::size_t q : inputs) circuit.h(q);
  circuit.x(y[0]);
  circuit.h(y[0]);

  switch (oracle.kind) {
    case DjOracleKind::Constant0:
      append_constant_bit_oracle(circuit, y[0], false);
      break;
    case DjOracleKind::Constant1:
      append_constant_bit_oracle(circuit, y[0], true);
      break;
    case DjOracleKind::BalancedParity:
      append_parity_bit_oracle(circuit, inputs, y[0], oracle.mask);
      break;
    case DjOracleKind::TruthTable:
      append_truth_table_bit_oracle(circuit, inputs, y[0], oracle.truth_table);
      break;
  }

  for (std::size_t q : inputs) circuit.h(q);
  std::vector<std::size_t> clbits(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) clbits[i] = i;
  circuit.measure(inputs, clbits);
  return circuit;
}

DjResult run_deutsch_jozsa(std::size_t num_inputs, const DjOracle& oracle,
                           std::uint64_t seed) {
  const circ::QuantumCircuit circuit = build_deutsch_jozsa_circuit(num_inputs, oracle);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);
  DjResult result;
  result.measured = traj.clbits;
  result.constant = traj.clbits == 0;
  return result;
}

std::size_t classical_deutsch_jozsa_queries(std::size_t num_inputs,
                                            const DjOracle& oracle) {
  // Deterministic strategy: evaluate f on successive inputs; stop as soon as
  // two values differ (balanced) or half-plus-one agree (constant).
  const std::uint64_t half = dim_of(num_inputs) / 2;
  const bool first = evaluate_oracle(oracle, 0);
  std::size_t queries = 1;
  for (std::uint64_t x = 1; x <= half; ++x) {
    ++queries;
    if (evaluate_oracle(oracle, x) != first) return queries;  // balanced
  }
  return queries;  // constant after 2^{n-1} + 1 agreeing answers
}

}  // namespace qutes::algo
