#include "qutes/algorithms/teleport.hpp"

#include <cmath>

#include "qutes/algorithms/entanglement.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"

namespace qutes::algo {

circ::QuantumCircuit build_teleport_circuit(double theta, double phi, double lambda) {
  circ::QuantumCircuit circuit;
  const auto& q = circuit.add_register("q", 3);
  circuit.add_classical_register("c", 2);

  circuit.u(theta, phi, lambda, q[0]);  // message
  append_bell_pair(circuit, q[1], q[2]);
  circuit.cx(q[0], q[1]);
  circuit.h(q[0]);
  circuit.measure(q[0], 0);
  circuit.measure(q[1], 1);
  circuit.x(q[2]);
  circuit.c_if(1, 1);
  circuit.z(q[2]);
  circuit.c_if(0, 1);
  return circuit;
}

double run_teleport_fidelity(double theta, double phi, double lambda,
                             std::uint64_t seed) {
  const auto circuit = build_teleport_circuit(theta, phi, lambda);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);

  // Ideal received state: U|0> = (cos(t/2), e^{i phi} sin(t/2)).
  const sim::cplx alpha{std::cos(theta / 2), 0.0};
  const sim::cplx beta = std::exp(sim::cplx{0, phi}) * std::sin(theta / 2);

  // q0/q1 collapsed; project out the qubit-2 sub-state.
  sim::cplx a0{}, a1{};
  for (std::uint64_t basis = 0; basis < traj.state.dim(); ++basis) {
    const sim::cplx a = traj.state.amplitude(basis);
    if (std::norm(a) == 0.0) continue;
    if (test_bit(basis, 2)) a1 += a;
    else a0 += a;
  }
  return std::norm(std::conj(alpha) * a0 + std::conj(beta) * a1);
}

}  // namespace qutes::algo
