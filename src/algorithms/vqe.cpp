#include "qutes/algorithms/vqe.hpp"

#include <cmath>
#include <complex>

#include "qutes/algorithms/variational.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/observables.hpp"

namespace qutes::algo {

double Hamiltonian::energy(const sim::StateVector& psi) const {
  double total = 0.0;
  for (const Term& term : terms) {
    total += term.coefficient * sim::expectation_pauli(psi, term.pauli);
  }
  return total;
}

namespace {

/// Dense matrix of a Pauli string (MSB-first), as action on basis states:
/// P|j> = phase * |j'>; accumulate coefficient * P into `matrix`.
void accumulate_term(std::vector<sim::cplx>& matrix, std::uint64_t dim,
                     const Hamiltonian::Term& term, std::size_t n) {
  for (std::uint64_t j = 0; j < dim; ++j) {
    std::uint64_t target = j;
    sim::cplx phase{1.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t qubit = n - 1 - i;
      const bool bit = test_bit(j, qubit);
      switch (term.pauli[i]) {
        case 'I': break;
        case 'Z': if (bit) phase = -phase; break;
        case 'X': target = flip_bit(target, qubit); break;
        case 'Y':
          target = flip_bit(target, qubit);
          phase *= bit ? sim::cplx{0.0, -1.0} : sim::cplx{0.0, 1.0};
          break;
        default:
          throw InvalidArgument("bad Pauli character in Hamiltonian term");
      }
    }
    matrix[target + dim * j] += term.coefficient * phase;
  }
}

}  // namespace

double Hamiltonian::exact_ground_energy(std::size_t num_qubits) const {
  const std::uint64_t dim = dim_of(num_qubits);
  if (dim > 256) throw InvalidArgument("exact diagonalization limited to 8 qubits");
  std::vector<sim::cplx> h(dim * dim, sim::cplx{});
  double bound = 0.0;
  for (const Term& term : terms) {
    if (term.pauli.size() != num_qubits) {
      throw InvalidArgument("Hamiltonian term width mismatch");
    }
    accumulate_term(h, dim, term, num_qubits);
    bound += std::abs(term.coefficient);
  }

  // Power iteration on (bound * I - H): its top eigenvalue is
  // bound - lambda_min(H).
  Rng rng(12345);
  std::vector<sim::cplx> v(dim);
  for (auto& x : v) x = sim::cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
  const auto normalize = [&](std::vector<sim::cplx>& vec) {
    double norm2 = 0.0;
    for (const auto& x : vec) norm2 += std::norm(x);
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto& x : vec) x *= inv;
  };
  normalize(v);

  std::vector<sim::cplx> w(dim);
  double eigen = 0.0;
  for (int iter = 0; iter < 2000; ++iter) {
    for (std::uint64_t r = 0; r < dim; ++r) {
      sim::cplx acc = bound * v[r];
      for (std::uint64_t cidx = 0; cidx < dim; ++cidx) {
        acc -= h[r + dim * cidx] * v[cidx];
      }
      w[r] = acc;
    }
    // Rayleigh quotient (v normalized, matrix Hermitian).
    sim::cplx rq{};
    for (std::uint64_t r = 0; r < dim; ++r) rq += std::conj(v[r]) * w[r];
    const double next = rq.real();
    v = w;
    normalize(v);
    if (iter > 10 && std::abs(next - eigen) < 1e-13) {
      eigen = next;
      break;
    }
    eigen = next;
  }
  return bound - eigen;
}

circ::QuantumCircuit build_ry_ansatz(std::size_t num_qubits, std::size_t layers,
                                     std::span<const double> parameters) {
  if (num_qubits == 0) throw InvalidArgument("ansatz: no qubits");
  const std::size_t expected = num_qubits * (layers + 1);
  if (parameters.size() != expected) {
    throw InvalidArgument("ansatz expects " + std::to_string(expected) +
                          " parameters");
  }
  circ::QuantumCircuit circuit(num_qubits);
  std::size_t p = 0;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) circuit.ry(parameters[p++], q);
    for (std::size_t q = 0; q + 1 < num_qubits; ++q) circuit.cx(q, q + 1);
  }
  for (std::size_t q = 0; q < num_qubits; ++q) circuit.ry(parameters[p++], q);
  return circuit;
}

VqeResult run_vqe(const Hamiltonian& hamiltonian, std::size_t num_qubits,
                  VqeOptions options) {
  const std::size_t count = num_qubits * (options.layers + 1);
  Rng rng(options.seed);
  std::vector<double> init(count);
  for (double& p : init) p = (rng.uniform() - 0.5) * 0.2;

  VariationalProblem problem;
  problem.ansatz = build_ry_ansatz(num_qubits, options.layers);
  problem.hamiltonian = hamiltonian;
  problem.initial_parameters = std::move(init);

  MinimizeOptions mo;
  mo.max_iterations = options.max_sweeps * 5;  // sweeps were coarser steps
  mo.tolerance = std::max(options.tolerance, 1e-8);
  const MinimizeResult r = minimize(problem, mo);

  VqeResult result;
  result.energy = r.value;
  result.parameters = r.parameters;
  result.evaluations = r.evaluations;
  result.sweeps = r.iterations;
  return result;
}

}  // namespace qutes::algo
