#include "qutes/algorithms/phase_estimation.hpp"

#include <cmath>

#include "qutes/algorithms/qft.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

circ::QuantumCircuit build_phase_estimation_circuit(std::size_t precision_bits,
                                                    double phi) {
  if (precision_bits == 0) throw InvalidArgument("qpe: no counting qubits");
  circ::QuantumCircuit circuit;
  const auto& count = circuit.add_register("count", precision_bits);
  const auto& eigen = circuit.add_register("eigen", 1);
  circuit.add_classical_register("c", precision_bits);

  std::vector<std::size_t> counting(precision_bits);
  for (std::size_t i = 0; i < precision_bits; ++i) counting[i] = count[i];

  // Eigenstate of P(lambda) with eigenvalue e^{i lambda}: |1>.
  circuit.x(eigen[0]);
  for (std::size_t q : counting) circuit.h(q);
  // Counting qubit k controls P applied 2^k times.
  for (std::size_t k = 0; k < precision_bits; ++k) {
    const double angle = 2.0 * M_PI * phi * static_cast<double>(1ULL << k);
    circuit.cp(angle, counting[k], eigen[0]);
  }
  append_iqft(circuit, counting, /*do_swaps=*/true);

  std::vector<std::size_t> clbits(precision_bits);
  for (std::size_t i = 0; i < precision_bits; ++i) clbits[i] = i;
  circuit.measure(counting, clbits);
  return circuit;
}

PhaseEstimate run_phase_estimation(std::size_t precision_bits, double phi,
                                   std::uint64_t seed) {
  const auto circuit = build_phase_estimation_circuit(precision_bits, phi);
  circ::Executor executor({.shots = 1, .seed = seed});
  const auto traj = executor.run_single(circuit);
  PhaseEstimate est;
  est.raw = traj.clbits;
  est.phi = static_cast<double>(est.raw) /
            static_cast<double>(dim_of(precision_bits));
  return est;
}

}  // namespace qutes::algo
