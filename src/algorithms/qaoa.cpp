#include "qutes/algorithms/qaoa.hpp"

#include <bit>
#include <cmath>
#include <string>

#include "qutes/algorithms/variational.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/observables.hpp"

namespace qutes::algo {

std::size_t MaxCutInstance::cut_value(std::uint64_t assignment) const {
  std::size_t cut = 0;
  for (const auto& [u, v] : edges) {
    if (test_bit(assignment, u) != test_bit(assignment, v)) ++cut;
  }
  return cut;
}

std::size_t MaxCutInstance::max_cut_brute_force() const {
  if (num_vertices > 20) throw InvalidArgument("brute force limited to 20 vertices");
  std::size_t best = 0;
  for (std::uint64_t a = 0; a < dim_of(num_vertices); ++a) {
    best = std::max(best, cut_value(a));
  }
  return best;
}

circ::QuantumCircuit build_qaoa_circuit(const MaxCutInstance& instance,
                                        std::span<const double> gammas,
                                        std::span<const double> betas) {
  if (instance.num_vertices == 0) throw InvalidArgument("qaoa: empty graph");
  if (gammas.size() != betas.size() || gammas.empty()) {
    throw InvalidArgument("qaoa: need one gamma and one beta per layer");
  }
  for (const auto& [u, v] : instance.edges) {
    if (u >= instance.num_vertices || v >= instance.num_vertices || u == v) {
      throw InvalidArgument("qaoa: bad edge");
    }
  }
  circ::QuantumCircuit circuit(instance.num_vertices);
  for (std::size_t q = 0; q < instance.num_vertices; ++q) circuit.h(q);
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    // Cost unitary: exp(-i gamma/2 (1 - Z_u Z_v)) per edge up to global
    // phase = CX(u,v) RZ(2 gamma)(v) CX(u,v) pattern with angle -gamma?
    // The standard MaxCut convention: exp(-i gamma Z_u Z_v / 2) realized as
    // CX(u,v); RZ(gamma, v); CX(u,v).
    for (const auto& [u, v] : instance.edges) {
      circuit.cx(u, v);
      circuit.rz(gammas[layer], v);
      circuit.cx(u, v);
    }
    for (std::size_t q = 0; q < instance.num_vertices; ++q) {
      circuit.rx(2.0 * betas[layer], q);
    }
  }
  return circuit;
}

QaoaResult run_qaoa(const MaxCutInstance& instance, QaoaOptions options) {
  const std::size_t p = options.layers;
  Rng rng(options.seed);
  std::vector<double> angles(2 * p);  // [gammas | betas]
  for (double& a : angles) a = 0.1 + 0.3 * rng.uniform();

  // Gradient ASCENT on the expected cut via the shared variational driver.
  // The symbolic ansatz's mixer parameter is the raw RX angle, i.e. 2*beta.
  VariationalProblem problem;
  problem.ansatz = build_qaoa_ansatz(instance, p);
  problem.hamiltonian = maxcut_hamiltonian(instance);
  problem.initial_parameters = angles;
  for (std::size_t i = p; i < 2 * p; ++i) problem.initial_parameters[i] *= 2.0;
  problem.maximize = true;

  MinimizeOptions mo;
  mo.max_iterations = options.max_sweeps * 5;  // sweeps were coarser steps
  mo.tolerance = std::max(options.tolerance, 1e-8);
  const MinimizeResult r = minimize(problem, mo);

  QaoaResult result;
  result.evaluations = r.evaluations;
  result.expected_cut = r.value;
  result.gammas.assign(r.parameters.begin(),
                       r.parameters.begin() + static_cast<long>(p));
  result.betas.resize(p);
  for (std::size_t i = 0; i < p; ++i) result.betas[i] = 0.5 * r.parameters[p + i];

  // Sample assignments from the optimized state; keep the best cut seen.
  const circ::QuantumCircuit circuit =
      build_qaoa_circuit(instance, result.gammas, result.betas);
  circ::Executor ex({.shots = 1, .seed = 2});
  const auto traj = ex.run_single(circuit);
  for (std::size_t s = 0; s < options.sample_shots; ++s) {
    const std::uint64_t assignment = traj.state.sample(rng);
    const std::size_t cut = instance.cut_value(assignment);
    if (cut >= result.best_cut) {
      result.best_cut = cut;
      result.best_assignment = assignment;
    }
  }
  return result;
}

}  // namespace qutes::algo
