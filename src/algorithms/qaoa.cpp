#include "qutes/algorithms/qaoa.hpp"

#include <bit>
#include <cmath>
#include <string>

#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/observables.hpp"

namespace qutes::algo {

std::size_t MaxCutInstance::cut_value(std::uint64_t assignment) const {
  std::size_t cut = 0;
  for (const auto& [u, v] : edges) {
    if (test_bit(assignment, u) != test_bit(assignment, v)) ++cut;
  }
  return cut;
}

std::size_t MaxCutInstance::max_cut_brute_force() const {
  if (num_vertices > 20) throw InvalidArgument("brute force limited to 20 vertices");
  std::size_t best = 0;
  for (std::uint64_t a = 0; a < dim_of(num_vertices); ++a) {
    best = std::max(best, cut_value(a));
  }
  return best;
}

circ::QuantumCircuit build_qaoa_circuit(const MaxCutInstance& instance,
                                        std::span<const double> gammas,
                                        std::span<const double> betas) {
  if (instance.num_vertices == 0) throw InvalidArgument("qaoa: empty graph");
  if (gammas.size() != betas.size() || gammas.empty()) {
    throw InvalidArgument("qaoa: need one gamma and one beta per layer");
  }
  for (const auto& [u, v] : instance.edges) {
    if (u >= instance.num_vertices || v >= instance.num_vertices || u == v) {
      throw InvalidArgument("qaoa: bad edge");
    }
  }
  circ::QuantumCircuit circuit(instance.num_vertices);
  for (std::size_t q = 0; q < instance.num_vertices; ++q) circuit.h(q);
  for (std::size_t layer = 0; layer < gammas.size(); ++layer) {
    // Cost unitary: exp(-i gamma/2 (1 - Z_u Z_v)) per edge up to global
    // phase = CX(u,v) RZ(2 gamma)(v) CX(u,v) pattern with angle -gamma?
    // The standard MaxCut convention: exp(-i gamma Z_u Z_v / 2) realized as
    // CX(u,v); RZ(gamma, v); CX(u,v).
    for (const auto& [u, v] : instance.edges) {
      circuit.cx(u, v);
      circuit.rz(gammas[layer], v);
      circuit.cx(u, v);
    }
    for (std::size_t q = 0; q < instance.num_vertices; ++q) {
      circuit.rx(2.0 * betas[layer], q);
    }
  }
  return circuit;
}

namespace {

/// <C> = sum over edges of 0.5 (1 - <Z_u Z_v>).
double expected_cut(const MaxCutInstance& instance, const sim::StateVector& psi) {
  double total = 0.0;
  for (const auto& [u, v] : instance.edges) {
    std::string pauli(instance.num_vertices, 'I');
    pauli[instance.num_vertices - 1 - u] = 'Z';
    pauli[instance.num_vertices - 1 - v] = 'Z';
    total += 0.5 * (1.0 - sim::expectation_pauli(psi, pauli));
  }
  return total;
}

}  // namespace

QaoaResult run_qaoa(const MaxCutInstance& instance, QaoaOptions options) {
  const std::size_t p = options.layers;
  Rng rng(options.seed);
  std::vector<double> angles(2 * p);  // [gammas | betas]
  for (double& a : angles) a = 0.1 + 0.3 * rng.uniform();

  QaoaResult result;
  const auto evaluate = [&](const std::vector<double>& a) {
    const std::span<const double> gammas(a.data(), p);
    const std::span<const double> betas(a.data() + p, p);
    const circ::QuantumCircuit circuit =
        build_qaoa_circuit(instance, gammas, betas);
    circ::Executor ex({.shots = 1, .seed = 1});
    ++result.evaluations;
    return expected_cut(instance, ex.run_single(circuit).state);
  };

  // Coordinate ASCENT (maximize the cut).
  double best = evaluate(angles);
  double step = options.initial_step;
  std::size_t sweeps = 0;
  while (sweeps < options.max_sweeps && step > options.tolerance) {
    ++sweeps;
    bool improved = false;
    for (std::size_t i = 0; i < angles.size(); ++i) {
      for (const double delta : {step, -step}) {
        std::vector<double> trial = angles;
        trial[i] += delta;
        const double value = evaluate(trial);
        if (value > best + 1e-12) {
          best = value;
          angles = std::move(trial);
          improved = true;
          break;
        }
      }
    }
    if (!improved) step *= 0.5;
  }

  result.expected_cut = best;
  result.gammas.assign(angles.begin(), angles.begin() + static_cast<long>(p));
  result.betas.assign(angles.begin() + static_cast<long>(p), angles.end());

  // Sample assignments from the optimized state; keep the best cut seen.
  const circ::QuantumCircuit circuit =
      build_qaoa_circuit(instance, result.gammas, result.betas);
  circ::Executor ex({.shots = 1, .seed = 2});
  const auto traj = ex.run_single(circuit);
  for (std::size_t s = 0; s < options.sample_shots; ++s) {
    const std::uint64_t assignment = traj.state.sample(rng);
    const std::size_t cut = instance.cut_value(assignment);
    if (cut >= result.best_cut) {
      result.best_cut = cut;
      result.best_assignment = assignment;
    }
  }
  return result;
}

}  // namespace qutes::algo
