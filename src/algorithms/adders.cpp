#include "qutes/algorithms/adders.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/qft.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

namespace {

void check_disjoint(std::span<const std::size_t> a, std::span<const std::size_t> b,
                    const char* what) {
  for (std::size_t qa : a) {
    for (std::size_t qb : b) {
      if (qa == qb) throw InvalidArgument(std::string(what) + ": overlapping registers");
    }
  }
}

/// Phase additions of value `a_bit_weight * |source bit>` onto the Fourier
/// frame of b. Inside QFT(b), adding x means phasing qubit j of b by
/// 2 pi x / 2^{j+1} ... standard Draper kick.
void draper_kicks(circ::QuantumCircuit& circuit, std::span<const std::size_t> a,
                  std::span<const std::size_t> b, double sign) {
  const std::size_t nb = b.size();
  for (std::size_t j = 0; j < nb; ++j) {
    // b[j] (Fourier mode j) accumulates phase from every a-bit i with
    // i <= j: angle = sign * pi / 2^{j-i}.
    for (std::size_t i = 0; i < a.size() && i <= j; ++i) {
      const double angle = sign * M_PI / static_cast<double>(1ULL << (j - i));
      circuit.cp(angle, a[i], b[j]);
    }
  }
}

}  // namespace

void append_draper_adder(circ::QuantumCircuit& circuit, std::span<const std::size_t> a,
                         std::span<const std::size_t> b) {
  if (a.empty() || b.empty()) throw InvalidArgument("draper_adder: empty register");
  if (a.size() > b.size()) {
    throw InvalidArgument("draper_adder: |a| must not exceed |b|");
  }
  check_disjoint(a, b, "draper_adder");
  append_qft(circuit, b, /*do_swaps=*/false);
  draper_kicks(circuit, a, b, +1.0);
  append_iqft(circuit, b, /*do_swaps=*/false);
}

void append_draper_subtractor(circ::QuantumCircuit& circuit,
                              std::span<const std::size_t> a,
                              std::span<const std::size_t> b) {
  if (a.empty() || b.empty()) throw InvalidArgument("draper_subtractor: empty register");
  if (a.size() > b.size()) {
    throw InvalidArgument("draper_subtractor: |a| must not exceed |b|");
  }
  check_disjoint(a, b, "draper_subtractor");
  append_qft(circuit, b, /*do_swaps=*/false);
  draper_kicks(circuit, a, b, -1.0);
  append_iqft(circuit, b, /*do_swaps=*/false);
}

namespace {

void draper_const(circ::QuantumCircuit& circuit, std::span<const std::size_t> b,
                  std::uint64_t k, double sign) {
  if (b.empty()) throw InvalidArgument("draper_const: empty register");
  append_qft(circuit, b, /*do_swaps=*/false);
  const std::size_t n = b.size();
  for (std::size_t j = 0; j < n; ++j) {
    // Fourier mode j picks up angle 2 pi k / 2^{j+1}; only the low j+1 bits
    // of k contribute mod 2 pi.
    double angle = 0.0;
    for (std::size_t i = 0; i <= j; ++i) {
      if (test_bit(k, i)) angle += M_PI / static_cast<double>(1ULL << (j - i));
    }
    if (angle != 0.0) circuit.p(sign * angle, b[j]);
  }
  append_iqft(circuit, b, /*do_swaps=*/false);
}

}  // namespace

void append_draper_add_const(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> b, std::uint64_t k) {
  draper_const(circuit, b, k, +1.0);
}

void append_draper_sub_const(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> b, std::uint64_t k) {
  draper_const(circuit, b, k, -1.0);
}

void append_cuccaro_adder(circ::QuantumCircuit& circuit, std::span<const std::size_t> a,
                          std::span<const std::size_t> b, std::size_t ancilla) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) {
    throw InvalidArgument("cuccaro_adder: registers must be equal-sized, nonempty");
  }
  check_disjoint(a, b, "cuccaro_adder");
  for (std::size_t q : a) {
    if (q == ancilla) throw InvalidArgument("cuccaro_adder: ancilla inside a");
  }
  for (std::size_t q : b) {
    if (q == ancilla) throw InvalidArgument("cuccaro_adder: ancilla inside b");
  }

  const auto maj = [&](std::size_t c, std::size_t bq, std::size_t aq) {
    circuit.cx(aq, bq);
    circuit.cx(aq, c);
    circuit.ccx(c, bq, aq);
  };
  const auto uma = [&](std::size_t c, std::size_t bq, std::size_t aq) {
    circuit.ccx(c, bq, aq);
    circuit.cx(aq, c);
    circuit.cx(c, bq);
  };

  // MAJ ripple up: carry flows through the a register.
  maj(ancilla, b[0], a[0]);
  for (std::size_t i = 1; i < n; ++i) maj(a[i - 1], b[i], a[i]);
  // (A carry-out qubit would take a CX(a[n-1], carry) here; addition is
  // mod 2^n so we skip it.)
  // UMA ripple down: restores a, leaves the sum in b.
  for (std::size_t i = n; i-- > 1;) uma(a[i - 1], b[i], a[i]);
  uma(ancilla, b[0], a[0]);
}

void append_cuccaro_subtractor(circ::QuantumCircuit& circuit,
                               std::span<const std::size_t> a,
                               std::span<const std::size_t> b, std::size_t ancilla) {
  // b -= a: run the exact inverse gate sequence of the adder.
  const std::size_t width =
      std::max(ancilla, std::max(*std::max_element(a.begin(), a.end()),
                                 *std::max_element(b.begin(), b.end()))) + 1;
  circ::QuantumCircuit scratch(width);
  append_cuccaro_adder(scratch, a, b, ancilla);
  const circ::QuantumCircuit inv = scratch.inverse();
  for (const auto& in : inv.instructions()) circuit.append(in);
}

void append_negate(circ::QuantumCircuit& circuit, std::span<const std::size_t> b) {
  // -x = ~x + 1 (mod 2^n).
  for (std::size_t q : b) circuit.x(q);
  append_draper_add_const(circuit, b, 1);
}

void append_mul_const_accumulate(circ::QuantumCircuit& circuit,
                                 std::span<const std::size_t> b,
                                 std::span<const std::size_t> out, std::uint64_t k) {
  if (out.empty()) throw InvalidArgument("mul_const: empty output");
  check_disjoint(b, out, "mul_const");
  // out += sum_i b_i * (k << i): for each source bit, a controlled constant
  // addition in the Fourier frame of out.
  append_qft(circuit, out, /*do_swaps=*/false);
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < b.size(); ++i) {
    const std::uint64_t shifted = (i < 64) ? (k << i) : 0;
    for (std::size_t j = 0; j < n; ++j) {
      double angle = 0.0;
      for (std::size_t bit = 0; bit <= j; ++bit) {
        if (test_bit(shifted, bit)) {
          angle += M_PI / static_cast<double>(1ULL << (j - bit));
        }
      }
      if (angle != 0.0) circuit.cp(angle, b[i], out[j]);
    }
  }
  append_iqft(circuit, out, /*do_swaps=*/false);
}

}  // namespace qutes::algo
