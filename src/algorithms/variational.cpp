#include "qutes/algorithms/variational.hpp"

#include <cmath>
#include <cstdint>
#include <string>

#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"

namespace qutes::algo {

namespace {

constexpr double kHalfPi = 1.5707963267948966;

/// Can the two-term parameter-shift rule differentiate this gate's angle?
/// True for every generator with exactly two eigenvalues a gap of 1 apart
/// (rx/ry/rz: +-1/2; p/cp/mcp: {0, 1}; each u angle individually).
bool shift_rule_applies(circ::GateType type) {
  switch (type) {
    case circ::GateType::RX: case circ::GateType::RY: case circ::GateType::RZ:
    case circ::GateType::P: case circ::GateType::CP: case circ::GateType::MCP:
    case circ::GateType::U:
      return true;
    default:
      return false;
  }
}

/// Evolve |0...0> through the ansatz with the given bindings, optionally
/// adding `delta` to the angle of one symbolic occurrence (occurrence = k-th
/// symbolic param slot in instruction order; -1 = no shift), and return <H>.
double evolve_energy(const circ::QuantumCircuit& ansatz,
                     const Hamiltonian& hamiltonian,
                     std::span<const double> values, long shift_occurrence,
                     double delta) {
  sim::StateVector psi(ansatz.num_qubits());
  Rng rng(1);  // the ansatz is unitary-only; no draws happen
  std::uint64_t clbits = 0;
  long occurrence = 0;
  for (const circ::Instruction& in : ansatz.instructions()) {
    if (in.param_refs.empty()) {
      circ::apply_instruction(psi, in, clbits, rng);
      continue;
    }
    circ::Instruction bound = in;
    for (std::size_t i = 0; i < bound.param_refs.size(); ++i) {
      const int ref = bound.param_refs[i];
      if (ref < 0) continue;
      bound.params[i] = values[static_cast<std::size_t>(ref)];
      if (occurrence == shift_occurrence) bound.params[i] += delta;
      ++occurrence;
    }
    bound.param_refs.clear();
    circ::apply_instruction(psi, bound, clbits, rng);
  }
  return hamiltonian.energy(psi);
}

void check_binding_size(const circ::QuantumCircuit& ansatz,
                        std::span<const double> parameters, const char* who) {
  if (parameters.size() != ansatz.num_parameters()) {
    throw InvalidArgument(std::string(who) + ": ansatz has " +
                          std::to_string(ansatz.num_parameters()) +
                          " parameter(s), got " +
                          std::to_string(parameters.size()) + " value(s)");
  }
}

}  // namespace

double expectation(const circ::QuantumCircuit& ansatz,
                   const Hamiltonian& hamiltonian,
                   std::span<const double> parameters) {
  check_binding_size(ansatz, parameters, "expectation");
  return evolve_energy(ansatz, hamiltonian, parameters, -1, 0.0);
}

std::vector<double> parameter_shift_gradient(
    const circ::QuantumCircuit& ansatz, const Hamiltonian& hamiltonian,
    std::span<const double> parameters) {
  check_binding_size(ansatz, parameters, "parameter_shift_gradient");
  std::vector<double> grad(parameters.size(), 0.0);
  // One occurrence = one symbolic angle slot; shared parameters accumulate
  // one shift pair per occurrence.
  long occurrence = 0;
  for (const circ::Instruction& in : ansatz.instructions()) {
    for (std::size_t i = 0; i < in.param_refs.size(); ++i) {
      const int ref = in.param_refs[i];
      if (ref < 0) continue;
      if (!shift_rule_applies(in.type)) {
        throw InvalidArgument(
            std::string("parameter_shift_gradient: symbolic ") +
            circ::gate_name(in.type) +
            " has no two-term shift rule (crz's generator has eigenvalues "
            "{0, +-1/2}); decompose to rz/cx first");
      }
      const double plus =
          evolve_energy(ansatz, hamiltonian, parameters, occurrence, kHalfPi);
      const double minus =
          evolve_energy(ansatz, hamiltonian, parameters, occurrence, -kHalfPi);
      grad[static_cast<std::size_t>(ref)] += 0.5 * (plus - minus);
      ++occurrence;
    }
  }
  return grad;
}

MinimizeResult minimize(const VariationalProblem& problem,
                        MinimizeOptions options) {
  if (!problem.ansatz.is_parameterized()) {
    throw InvalidArgument("minimize: ansatz has no unbound parameters");
  }
  check_binding_size(problem.ansatz, problem.initial_parameters, "minimize");

  // The pipeline runs exactly once, on the symbolic circuit; every later
  // evaluation is a bind of this prepared form.
  circ::QuantumCircuit prepared;
  const circ::QuantumCircuit* ansatz = &problem.ansatz;
  if (options.pipeline != nullptr) {
    prepared = options.pipeline->run(problem.ansatz);
    ansatz = &prepared;
  }

  const double sign = problem.maximize ? -1.0 : 1.0;
  const std::size_t n = problem.initial_parameters.size();
  MinimizeResult result;
  result.parameters = problem.initial_parameters;

  double value = evolve_energy(*ansatz, problem.hamiltonian, result.parameters,
                               -1, 0.0);
  ++result.evaluations;
  result.history.push_back(value);

  std::vector<double> m(n, 0.0);  // Adam first moment
  std::vector<double> v(n, 0.0);  // Adam second moment
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    std::vector<double> grad = parameter_shift_gradient(
        *ansatz, problem.hamiltonian, result.parameters);
    // Each gradient entry cost one +-pi/2 evaluation pair per occurrence.
    std::size_t occurrences = 0;
    for (const circ::Instruction& in : ansatz->instructions()) {
      for (const int ref : in.param_refs) occurrences += ref >= 0 ? 1 : 0;
    }
    result.evaluations += 2 * occurrences;

    double grad_norm = 0.0;
    for (double g : grad) grad_norm = std::max(grad_norm, std::abs(g));
    if (grad_norm < options.tolerance) {
      result.converged = true;
      break;
    }

    const double bc1 = 1.0 - std::pow(options.beta1, static_cast<double>(iter));
    const double bc2 = 1.0 - std::pow(options.beta2, static_cast<double>(iter));
    for (std::size_t i = 0; i < n; ++i) {
      const double g = sign * grad[i];
      m[i] = options.beta1 * m[i] + (1.0 - options.beta1) * g;
      v[i] = options.beta2 * v[i] + (1.0 - options.beta2) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      result.parameters[i] -=
          options.learning_rate * mhat / (std::sqrt(vhat) + options.epsilon);
    }
    ++result.iterations;

    value = evolve_energy(*ansatz, problem.hamiltonian, result.parameters, -1,
                          0.0);
    ++result.evaluations;
    result.history.push_back(value);
  }

  result.value = value;
  return result;
}

circ::QuantumCircuit build_ry_ansatz(std::size_t num_qubits,
                                     std::size_t layers) {
  if (num_qubits == 0) throw InvalidArgument("ansatz: no qubits");
  circ::QuantumCircuit circuit(num_qubits);
  std::size_t p = 0;
  const auto next = [&] {
    return circuit.parameter("t" + std::to_string(p++));
  };
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) circuit.ry(next(), q);
    for (std::size_t q = 0; q + 1 < num_qubits; ++q) circuit.cx(q, q + 1);
  }
  for (std::size_t q = 0; q < num_qubits; ++q) circuit.ry(next(), q);
  return circuit;
}

circ::QuantumCircuit build_qaoa_ansatz(const MaxCutInstance& instance,
                                       std::size_t layers) {
  if (instance.num_vertices == 0) throw InvalidArgument("qaoa: empty graph");
  if (layers == 0) throw InvalidArgument("qaoa: need at least one layer");
  for (const auto& [u, v] : instance.edges) {
    if (u >= instance.num_vertices || v >= instance.num_vertices || u == v) {
      throw InvalidArgument("qaoa: bad edge");
    }
  }
  circ::QuantumCircuit circuit(instance.num_vertices);
  // Declare in [gammas | betas] order so bindings line up with run_qaoa's
  // angle vector.
  std::vector<circ::Param> gammas, betas;
  for (std::size_t l = 0; l < layers; ++l) {
    gammas.push_back(circuit.parameter("g" + std::to_string(l)));
  }
  for (std::size_t l = 0; l < layers; ++l) {
    betas.push_back(circuit.parameter("b" + std::to_string(l)));
  }
  for (std::size_t q = 0; q < instance.num_vertices; ++q) circuit.h(q);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (const auto& [u, v] : instance.edges) {
      circuit.cx(u, v);
      circuit.rz(gammas[layer], v);
      circuit.cx(u, v);
    }
    for (std::size_t q = 0; q < instance.num_vertices; ++q) {
      circuit.rx(betas[layer], q);
    }
  }
  return circuit;
}

Hamiltonian maxcut_hamiltonian(const MaxCutInstance& instance) {
  Hamiltonian h;
  const std::string identity(instance.num_vertices, 'I');
  h.terms.push_back({0.5 * static_cast<double>(instance.edges.size()), identity});
  for (const auto& [u, v] : instance.edges) {
    std::string pauli = identity;
    pauli[instance.num_vertices - 1 - u] = 'Z';
    pauli[instance.num_vertices - 1 - v] = 'Z';
    h.terms.push_back({-0.5, pauli});
  }
  return h;
}

}  // namespace qutes::algo
