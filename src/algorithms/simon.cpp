#include "qutes/algorithms/simon.hpp"

#include <algorithm>
#include <bit>

#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

bool Gf2System::add(std::uint64_t equation) {
  for (const std::uint64_t row : rows_) {
    const auto leading = std::uint64_t{1} << (63 - std::countl_zero(row));
    if (equation & leading) equation ^= row;
  }
  if (equation == 0) return false;
  rows_.push_back(equation);
  return true;
}

std::vector<std::uint64_t> Gf2System::nullspace(std::size_t n) const {
  // n is small in practice (the circuit is 2n qubits); enumerate.
  std::vector<std::uint64_t> solutions;
  for (std::uint64_t s = 1; s < dim_of(n); ++s) {
    bool ok = true;
    for (const std::uint64_t row : rows_) {
      if (std::popcount(row & s) % 2 != 0) {
        ok = false;
        break;
      }
    }
    if (ok) solutions.push_back(s);
  }
  return solutions;
}

circ::QuantumCircuit build_simon_circuit(std::size_t num_bits, std::uint64_t secret) {
  if (num_bits == 0 || num_bits > 6) {
    throw InvalidArgument("simon: 1..6 input bits (the circuit uses 2n qubits)");
  }
  if (secret == 0 || secret >= dim_of(num_bits)) {
    throw InvalidArgument("simon: secret must be nonzero and fit num_bits");
  }
  circ::QuantumCircuit circuit;
  const auto& x = circuit.add_register("x", num_bits);
  const auto& y = circuit.add_register("y", num_bits);
  circuit.add_classical_register("c", num_bits);

  std::vector<std::size_t> inputs(num_bits), outputs(num_bits);
  for (std::size_t i = 0; i < num_bits; ++i) inputs[i] = x[i];
  for (std::size_t i = 0; i < num_bits; ++i) outputs[i] = y[i];

  for (std::size_t q : inputs) circuit.h(q);

  // QROM load of f(v) = min(v, v ^ secret) — constant on {v, v^secret}.
  for (std::uint64_t v = 0; v < dim_of(num_bits); ++v) {
    const std::uint64_t fv = std::min(v, v ^ secret);
    if (fv == 0) continue;
    for (std::size_t b = 0; b < num_bits; ++b) {
      if (!test_bit(v, b)) circuit.x(inputs[b]);
    }
    for (std::size_t j = 0; j < num_bits; ++j) {
      if (test_bit(fv, j)) circuit.mcx(inputs, outputs[j]);
    }
    for (std::size_t b = 0; b < num_bits; ++b) {
      if (!test_bit(v, b)) circuit.x(inputs[b]);
    }
  }

  for (std::size_t q : inputs) circuit.h(q);
  std::vector<std::size_t> clbits(num_bits);
  for (std::size_t i = 0; i < num_bits; ++i) clbits[i] = i;
  circuit.measure(inputs, clbits);
  return circuit;
}

SimonResult run_simon(std::size_t num_bits, std::uint64_t secret, std::uint64_t seed) {
  const circ::QuantumCircuit circuit = build_simon_circuit(num_bits, secret);
  SimonResult result;
  Gf2System system;
  Rng rng(seed);

  // Expected O(n) rounds; budget generously before declaring failure.
  const std::size_t budget = 20 * num_bits + 20;
  while (result.quantum_queries < budget && system.rank() + 1 < num_bits) {
    circ::Executor executor({.shots = 1, .seed = rng()});
    const auto traj = executor.run_single(circuit);
    ++result.quantum_queries;
    const std::uint64_t sample = traj.clbits & (dim_of(num_bits) - 1);
    if (sample != 0) system.add(sample);
  }
  if (num_bits == 1) {
    // Rank 0 suffices: the only nonzero candidate is s = 1.
    result.recovered = 1;
    result.success = secret == 1;
    return result;
  }
  const auto candidates = system.nullspace(num_bits);
  if (candidates.size() == 1) {
    result.recovered = candidates.front();
    result.success = result.recovered == secret;
  }
  return result;
}

}  // namespace qutes::algo
