#include "qutes/algorithms/grover.hpp"

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/oracles.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

void append_diffusion(circ::QuantumCircuit& circuit,
                      std::span<const std::size_t> qubits) {
  if (qubits.empty()) throw InvalidArgument("diffusion: empty register");
  for (std::size_t q : qubits) circuit.h(q);
  for (std::size_t q : qubits) circuit.x(q);
  if (qubits.size() == 1) {
    circuit.z(qubits[0]);
  } else {
    circuit.mcz(qubits.subspan(0, qubits.size() - 1), qubits.back());
  }
  for (std::size_t q : qubits) circuit.x(q);
  for (std::size_t q : qubits) circuit.h(q);
}

std::size_t optimal_grover_iterations(std::uint64_t search_space,
                                      std::uint64_t num_marked) {
  if (num_marked == 0) return 1;
  // With half or more of the space marked, amplification over-rotates
  // (one iteration can land exactly on zero overlap); measuring the uniform
  // superposition directly already succeeds with probability >= 1/2.
  if (2 * num_marked >= search_space) return 0;
  const double theta =
      std::asin(std::sqrt(static_cast<double>(num_marked) /
                          static_cast<double>(search_space)));
  const auto iters =
      static_cast<std::size_t>(std::floor(M_PI / (4.0 * theta)));
  return iters == 0 ? 1 : iters;
}

circ::QuantumCircuit build_grover_circuit(std::size_t num_qubits,
                                          std::span<const std::uint64_t> marked,
                                          std::size_t iterations) {
  if (num_qubits == 0) throw InvalidArgument("grover: empty register");
  if (marked.empty()) throw InvalidArgument("grover: no marked states");
  circ::QuantumCircuit circuit;
  const auto& q = circuit.add_register("q", num_qubits);
  circuit.add_classical_register("c", num_qubits);
  std::vector<std::size_t> qubits(num_qubits);
  for (std::size_t i = 0; i < num_qubits; ++i) qubits[i] = q[i];

  if (iterations == 0) {
    iterations = optimal_grover_iterations(dim_of(num_qubits), marked.size());
  }
  for (std::size_t qq : qubits) circuit.h(qq);
  for (std::size_t it = 0; it < iterations; ++it) {
    append_phase_oracle_values(circuit, qubits, marked);
    append_diffusion(circuit, qubits);
  }
  std::vector<std::size_t> clbits(num_qubits);
  for (std::size_t i = 0; i < num_qubits; ++i) clbits[i] = i;
  circuit.measure(qubits, clbits);
  return circuit;
}

GroverResult run_grover(std::size_t num_qubits, std::span<const std::uint64_t> marked,
                        std::uint64_t seed, std::size_t iterations) {
  if (iterations == 0) {
    iterations = optimal_grover_iterations(dim_of(num_qubits), marked.size());
  }
  const circ::QuantumCircuit circuit = build_grover_circuit(num_qubits, marked,
                                                            iterations);
  circ::Executor executor({.shots = 1, .seed = seed});

  // Exact success probability from the pre-measurement state: strip the
  // final measurements and inspect amplitudes.
  circ::QuantumCircuit unm;
  unm.add_register("q", num_qubits);
  for (const auto& in : circuit.instructions()) {
    if (in.type != circ::GateType::Measure) unm.append(in);
  }
  auto traj = executor.run_single(unm);
  double p_success = 0.0;
  for (std::uint64_t v : marked) p_success += std::norm(traj.state.amplitude(v));

  Rng rng(seed);
  const std::uint64_t outcome = traj.state.measure_all(rng);

  GroverResult result;
  result.outcome = outcome;
  result.hit = std::find(marked.begin(), marked.end(), outcome) != marked.end();
  result.success_probability = p_success;
  result.iterations = iterations;
  result.oracle_calls = iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Substring search
// ---------------------------------------------------------------------------

SubstringSearch::SubstringSearch(std::string text, std::string pattern)
    : text_(std::move(text)), pattern_(std::move(pattern)) {
  if (pattern_.empty() || text_.size() < pattern_.size()) {
    throw InvalidArgument("substring search: pattern must be nonempty and fit the text");
  }
  for (char c : text_) {
    if (c != '0' && c != '1') throw InvalidArgument("text must be a bitstring");
  }
  for (char c : pattern_) {
    if (c != '0' && c != '1') throw InvalidArgument("pattern must be a bitstring");
  }
  positions_ = text_.size() - pattern_.size() + 1;
  index_bits_ = bits_for(positions_ - 1);
  for (std::uint64_t i = 0; i < positions_; ++i) {
    if (text_.compare(i, pattern_.size(), pattern_) == 0) matches_.push_back(i);
  }
}

void SubstringSearch::append_window_load(circ::QuantumCircuit& circuit,
                                         std::span<const std::size_t> index,
                                         std::span<const std::size_t> window) const {
  // For every candidate index value i, write the text window (or the
  // pattern's complement for padding indices) into the window register,
  // controlled on the index register holding i. Self-inverse by
  // construction (only MCX targets the window), so the same routine
  // uncomputes.
  const std::uint64_t index_space = dim_of(index_bits_);
  const std::size_t m = pattern_.size();
  for (std::uint64_t i = 0; i < index_space; ++i) {
    // X-conjugate the index register so the controls test "index == i".
    for (std::size_t b = 0; b < index.size(); ++b) {
      if (!test_bit(i, b)) circuit.x(index[b]);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const bool bit = i < positions_ ? text_[i + j] == '1' : pattern_[j] == '0';
      if (bit) circuit.mcx(index, window[j]);
    }
    for (std::size_t b = 0; b < index.size(); ++b) {
      if (!test_bit(i, b)) circuit.x(index[b]);
    }
  }
}

void SubstringSearch::append_oracle(circ::QuantumCircuit& circuit,
                                    std::span<const std::size_t> window) const {
  // Phase-flip window == pattern.
  std::uint64_t value = 0;
  for (std::size_t j = 0; j < pattern_.size(); ++j) {
    if (pattern_[j] == '1') value = set_bit(value, j);
  }
  append_phase_oracle_value(circuit, window, value);
}

circ::QuantumCircuit SubstringSearch::build_circuit(std::size_t iterations) const {
  circ::QuantumCircuit circuit;
  const auto& idx = circuit.add_register("idx", index_bits_);
  const auto& win = circuit.add_register("win", pattern_.size());
  circuit.add_classical_register("pos", index_bits_);

  std::vector<std::size_t> index(index_bits_), window(pattern_.size());
  for (std::size_t i = 0; i < index_bits_; ++i) index[i] = idx[i];
  for (std::size_t j = 0; j < pattern_.size(); ++j) window[j] = win[j];

  if (iterations == 0) {
    const std::uint64_t space = dim_of(index_bits_);
    iterations = optimal_grover_iterations(space, std::max<std::size_t>(
                                                      matches_.size(), 1));
  }

  for (std::size_t q : index) circuit.h(q);
  for (std::size_t it = 0; it < iterations; ++it) {
    append_window_load(circuit, index, window);
    append_oracle(circuit, window);
    append_window_load(circuit, index, window);  // self-inverse: uncompute
    append_diffusion(circuit, index);
  }
  std::vector<std::size_t> clbits(index_bits_);
  for (std::size_t i = 0; i < index_bits_; ++i) clbits[i] = i;
  circuit.measure(index, clbits);
  return circuit;
}

GroverResult SubstringSearch::run(std::uint64_t seed, std::size_t iterations) const {
  if (iterations == 0) {
    iterations = optimal_grover_iterations(dim_of(index_bits_),
                                           std::max<std::size_t>(matches_.size(), 1));
  }
  circ::QuantumCircuit circuit = build_circuit(iterations);

  // Pre-measurement state for the exact success probability.
  circ::QuantumCircuit unm;
  unm.add_register("idx", index_bits_);
  unm.add_register("win", pattern_.size());
  for (const auto& in : circuit.instructions()) {
    if (in.type != circ::GateType::Measure) unm.append(in);
  }
  circ::Executor executor({.shots = 1, .seed = seed});
  auto traj = executor.run_single(unm);

  double p_success = 0.0;
  for (std::uint64_t basis = 0; basis < traj.state.dim(); ++basis) {
    const std::uint64_t pos = basis & (dim_of(index_bits_) - 1);
    const bool marked =
        std::find(matches_.begin(), matches_.end(), pos) != matches_.end();
    if (marked) p_success += std::norm(traj.state.amplitude(basis));
  }

  Rng rng(seed);
  const std::uint64_t basis = traj.state.measure_all(rng);
  const std::uint64_t pos = basis & (dim_of(index_bits_) - 1);

  GroverResult result;
  result.outcome = pos;
  result.hit = pos < positions_ &&
               text_.compare(pos, pattern_.size(), pattern_) == 0;
  result.success_probability = p_success;
  result.iterations = iterations;
  result.oracle_calls = iterations;
  return result;
}

}  // namespace qutes::algo
