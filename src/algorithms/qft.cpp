#include "qutes/algorithms/qft.hpp"

#include <cmath>

#include "qutes/common/error.hpp"

namespace qutes::algo {

void append_qft(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits,
                bool do_swaps) {
  if (qubits.empty()) throw InvalidArgument("append_qft: empty register");
  const std::size_t n = qubits.size();
  // Process from the most-significant qubit down; each qubit gets an H then
  // accumulates controlled phases from every lower bit.
  for (std::size_t j = n; j-- > 0;) {
    circuit.h(qubits[j]);
    for (std::size_t k = j; k-- > 0;) {
      const double angle = M_PI / static_cast<double>(1ULL << (j - k));
      circuit.cp(angle, qubits[k], qubits[j]);
    }
  }
  if (do_swaps) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      circuit.swap(qubits[i], qubits[n - 1 - i]);
    }
  }
}

void append_iqft(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits,
                 bool do_swaps) {
  if (qubits.empty()) throw InvalidArgument("append_iqft: empty register");
  const std::size_t n = qubits.size();
  if (do_swaps) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      circuit.swap(qubits[i], qubits[n - 1 - i]);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      const double angle = -M_PI / static_cast<double>(1ULL << (j - k));
      circuit.cp(angle, qubits[k], qubits[j]);
    }
    circuit.h(qubits[j]);
  }
}

circ::QuantumCircuit make_qft(std::size_t num_qubits, bool do_swaps) {
  circ::QuantumCircuit circuit(num_qubits);
  std::vector<std::size_t> qubits(num_qubits);
  for (std::size_t i = 0; i < num_qubits; ++i) qubits[i] = i;
  append_qft(circuit, qubits, do_swaps);
  return circuit;
}

}  // namespace qutes::algo
