#include "qutes/algorithms/state_prep.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::algo {

namespace {

/// Multi-controlled RY via the half-angle MCX conjugation:
/// MCRY(theta) = RY(theta/2) . MCX . RY(-theta/2) . MCX (target rotations).
void append_mcry(circ::QuantumCircuit& circuit, double theta,
                 std::span<const std::size_t> controls, std::size_t target) {
  if (controls.empty()) {
    circuit.ry(theta, target);
    return;
  }
  circuit.ry(theta / 2, target);
  circuit.mcx(controls, target);
  circuit.ry(-theta / 2, target);
  circuit.mcx(controls, target);
}

}  // namespace

void append_state_prep(circ::QuantumCircuit& circuit,
                       std::span<const std::size_t> qubits,
                       std::span<const double> probabilities) {
  const std::size_t n = qubits.size();
  if (n == 0) throw InvalidArgument("state_prep: empty register");
  if (probabilities.size() != dim_of(n)) {
    throw InvalidArgument("state_prep: need 2^n probabilities");
  }
  const double total = std::accumulate(probabilities.begin(), probabilities.end(), 0.0);
  if (std::abs(total - 1.0) > 1e-9) {
    throw InvalidArgument("state_prep: probabilities must sum to 1");
  }

  // Process MSB down. For each assignment h of the already-fixed high bits,
  // rotate the current qubit by the conditional branching angle.
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t target_bit = n - 1 - step;        // logical bit index
    const std::size_t num_fixed = step;                 // higher bits already set
    const std::uint64_t assignments = dim_of(num_fixed);
    for (std::uint64_t h = 0; h < assignments; ++h) {
      // Mass of probability in the 0- and 1-branch of the target bit, given
      // the high bits spell h (h's bit k corresponds to logical bit n-1-k).
      double m0 = 0.0, m1 = 0.0;
      for (std::uint64_t idx = 0; idx < probabilities.size(); ++idx) {
        bool matches = true;
        for (std::size_t k = 0; k < num_fixed; ++k) {
          const std::size_t logical = n - 1 - k;
          if (test_bit(idx, logical) != test_bit(h, num_fixed - 1 - k)) {
            matches = false;
            break;
          }
        }
        if (!matches) continue;
        (test_bit(idx, target_bit) ? m1 : m0) += probabilities[idx];
      }
      if (m0 + m1 <= 0.0) continue;  // unreachable branch: nothing to rotate
      const double theta = 2.0 * std::atan2(std::sqrt(m1), std::sqrt(m0));
      if (std::abs(theta) < 1e-15) continue;

      // Controls: the fixed higher qubits, X-conjugated to match pattern h.
      std::vector<std::size_t> controls;
      std::vector<std::size_t> flipped;
      for (std::size_t k = 0; k < num_fixed; ++k) {
        const std::size_t logical = n - 1 - k;
        controls.push_back(qubits[logical]);
        if (!test_bit(h, num_fixed - 1 - k)) flipped.push_back(qubits[logical]);
      }
      for (std::size_t q : flipped) circuit.x(q);
      append_mcry(circuit, theta, controls, qubits[target_bit]);
      for (std::size_t q : flipped) circuit.x(q);
    }
  }
}

void append_uniform_superposition(circ::QuantumCircuit& circuit,
                                  std::span<const std::size_t> qubits,
                                  std::span<const std::uint64_t> values) {
  if (values.empty()) throw InvalidArgument("uniform superposition: no values");
  std::vector<double> probs(dim_of(qubits.size()), 0.0);
  for (std::uint64_t v : values) {
    if (v >= probs.size()) {
      throw InvalidArgument("uniform superposition: value does not fit the register");
    }
    if (probs[v] != 0.0) {
      throw InvalidArgument("uniform superposition: duplicate value " +
                            std::to_string(v));
    }
    probs[v] = 1.0 / static_cast<double>(values.size());
  }
  append_state_prep(circuit, qubits, probs);
}

}  // namespace qutes::algo
