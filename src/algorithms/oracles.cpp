#include "qutes/algorithms/oracles.hpp"

#include <algorithm>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"

namespace qutes::algo {

void append_phase_oracle_value(circ::QuantumCircuit& circuit,
                               std::span<const std::size_t> qubits,
                               std::uint64_t value) {
  if (qubits.empty()) throw InvalidArgument("phase oracle: empty register");
  if (value >= dim_of(qubits.size())) {
    throw InvalidArgument("phase oracle: value does not fit the register");
  }
  // Map |value> to |11...1>, phase it, map back.
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (!test_bit(value, i)) circuit.x(qubits[i]);
  }
  if (qubits.size() == 1) {
    circuit.z(qubits[0]);
  } else {
    const auto controls = qubits.subspan(0, qubits.size() - 1);
    circuit.mcz(controls, qubits.back());
  }
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (!test_bit(value, i)) circuit.x(qubits[i]);
  }
}

void append_phase_oracle_values(circ::QuantumCircuit& circuit,
                                std::span<const std::size_t> qubits,
                                std::span<const std::uint64_t> values) {
  for (std::uint64_t v : values) append_phase_oracle_value(circuit, qubits, v);
}

void append_parity_bit_oracle(circ::QuantumCircuit& circuit,
                              std::span<const std::size_t> inputs, std::size_t output,
                              std::uint64_t mask) {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (test_bit(mask, i)) circuit.cx(inputs[i], output);
  }
}

void append_constant_bit_oracle(circ::QuantumCircuit& circuit, std::size_t output,
                                bool value) {
  if (value) circuit.x(output);
}

void append_truth_table_bit_oracle(circ::QuantumCircuit& circuit,
                                   std::span<const std::size_t> inputs,
                                   std::size_t output,
                                   const std::vector<bool>& truth_table) {
  if (truth_table.size() != dim_of(inputs.size())) {
    throw InvalidArgument("truth table size must be 2^|inputs|");
  }
  for (std::uint64_t x = 0; x < truth_table.size(); ++x) {
    if (!truth_table[x]) continue;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (!test_bit(x, i)) circuit.x(inputs[i]);
    }
    if (inputs.empty()) {
      circuit.x(output);
    } else {
      circuit.mcx(inputs, output);
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (!test_bit(x, i)) circuit.x(inputs[i]);
    }
  }
}

std::vector<bool> random_balanced_truth_table(std::size_t num_inputs,
                                              std::uint64_t seed) {
  const std::uint64_t size = dim_of(num_inputs);
  std::vector<bool> table(size, false);
  std::fill(table.begin(), table.begin() + static_cast<std::ptrdiff_t>(size / 2), true);
  // Fisher-Yates with the library RNG so tables are reproducible.
  Rng rng(seed);
  for (std::uint64_t i = size; i-- > 1;) {
    const std::uint64_t j = rng.below(i + 1);
    const bool tmp = table[i];
    table[i] = table[j];
    table[j] = tmp;
  }
  return table;
}

}  // namespace qutes::algo
