#include "qutes/obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace qutes::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};

/// Process trace epoch: all event timestamps are relative to the first time
/// the obs layer is touched, so traces start near t=0.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

struct RawEvent {
  std::string name;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::duration dur;
};

/// One buffer per thread that ever recorded a span. Buffers are owned by the
/// global registry and never destroyed (a worker thread may exit while its
/// events are still awaiting collection); clear_trace() empties the event
/// vectors but keeps the buffers, so the cached thread-local pointers stay
/// valid for the life of the process.
struct ThreadBuffer {
  int tid = 0;
  std::vector<RawEvent> events;
  std::mutex mutex;  ///< events are appended by the owner, read by collectors
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

TraceState& trace_state() {
  static TraceState* state = new TraceState();  // never destroyed: spans may
  return *state;                                // outlive static teardown order
}

ThreadBuffer& this_thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceState& state = trace_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<int>(state.buffers.size());
    owned->events.reserve(1024);
    state.buffers.push_back(std::move(owned));
    return state.buffers.back().get();
  }();
  return *buffer;
}

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Minimal JSON string escaping for span/metric names.
void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

/// Shortest decimal form that round-trips to the same double. Six significant
/// digits are not enough here: a span timestamp is microseconds since the
/// trace epoch, so after ~10 s of process uptime "%.6g" quantizes ts to 10 us
/// steps and child spans appear to straddle their parents.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

// ---- enablement -------------------------------------------------------------

void set_tracing_enabled(bool enabled) noexcept {
  (void)trace_epoch();  // pin the epoch before the first span
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

// ---- Span -------------------------------------------------------------------

Span::~Span() {
  if (!record_) return;
  const auto dur = std::chrono::steady_clock::now() - start_;
  ThreadBuffer& buffer = this_thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      RawEvent{lit_ ? std::string(lit_) : owned_, start_, dur});
}

void clear_trace() {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> merged;
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto epoch = trace_epoch();
  for (auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const RawEvent& raw : buffer->events) {
      merged.push_back(TraceEvent{raw.name, to_us(raw.start - epoch),
                                  to_us(raw.dur), buffer->tid});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return merged;
}

std::string export_chrome_trace() {
  const std::vector<TraceEvent> events = collect_trace();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"ph\":\"X\",\"ts\":" + format_double(e.ts_us) +
           ",\"dur\":" + format_double(e.dur_us) +
           ",\"pid\":0,\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_chrome_trace();
  return static_cast<bool>(out);
}

// ---- instruments ------------------------------------------------------------

void Gauge::set_max(double v) noexcept {
  if (!metrics_enabled()) return;
  double current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

namespace {

void atomic_add(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double v) noexcept {
  if (!metrics_enabled()) return;
  if (!has_value_.exchange(true, std::memory_order_relaxed)) {
    // First record seeds min/max; racing recorders fix them up below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min(min_, v);
    atomic_max(max_, v);
  }
  atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
double Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_value_.store(false, std::memory_order_relaxed);
}

// ---- registry ---------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // std::map nodes are stable: references handed out survive later inserts.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* instance = new Impl();  // never destroyed, like the trace state
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.counters.find(name);
  if (it != state.counters.end()) return it->second;
  return state.counters.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.gauges.find(name);
  if (it != state.gauges.end()) return it->second;
  return state.gauges.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.histograms.find(name);
  if (it != state.histograms.end()) return it->second;
  return state.histograms.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter.reset();
  for (auto& [name, gauge] : state.gauges) gauge.reset();
  for (auto& [name, histogram] : state.histograms) histogram.reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& [name, counter] : state.counters) {
    snap.counters[name] = counter.value();
  }
  for (const auto& [name, gauge] : state.gauges) {
    snap.gauges[name] = gauge.value();
  }
  for (const auto& [name, histogram] : state.histograms) {
    snap.histograms[name] = HistogramSnapshot{histogram.count(), histogram.sum(),
                                              histogram.min(), histogram.max()};
  }
  return snap;
}

MetricsRegistry& metrics() noexcept {
  static MetricsRegistry registry;
  return registry;
}

void reset_metrics() { metrics().reset(); }

std::string export_metrics_json() {
  const MetricsRegistry::Snapshot snap = metrics().snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_double(h.sum) +
           ",\"min\":" + format_double(h.min) +
           ",\"max\":" + format_double(h.max) + "}";
  }
  out += "}}\n";
  return out;
}

bool write_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_metrics_json();
  return static_cast<bool>(out);
}

std::string format_metrics_report() {
  const MetricsRegistry::Snapshot snap = metrics().snapshot();
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof line, "%-9s %-28s %s\n", "kind", "name", "value");
  out << line;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    std::snprintf(line, sizeof line, "%-9s %-28s %llu\n", "counter",
                  name.c_str(), static_cast<unsigned long long>(value));
    out << line;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (value == 0.0) continue;
    std::snprintf(line, sizeof line, "%-9s %-28s %.6g\n", "gauge", name.c_str(),
                  value);
    out << line;
  }
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-9s %-28s count=%llu sum=%.6g min=%.6g max=%.6g\n",
                  "histogram", name.c_str(),
                  static_cast<unsigned long long>(h.count), h.sum, h.min, h.max);
    out << line;
  }
  return out.str();
}

}  // namespace qutes::obs
