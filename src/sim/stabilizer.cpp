#include "qutes/sim/stabilizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "qutes/common/error.hpp"

namespace qutes::sim {

namespace {

/// Word-wise i-exponent contribution of multiplying Pauli word (x1, z1) onto
/// (x2, z2): +1 bits minus -1 bits of the Aaronson–Gottesman g function,
/// enumerated per left-factor Pauli (Z when z1&~x1, Y when x1&z1, X when
/// x1&~z1; the identity contributes 0 either way).
inline std::int64_t g_word(std::uint64_t x1, std::uint64_t z1, std::uint64_t x2,
                           std::uint64_t z2) noexcept {
  const std::uint64_t plus = (z1 & ~x1 & x2 & ~z2) |  // Z * X = +iY
                             (x1 & z1 & z2 & ~x2) |   // Y * Z = +iX
                             (x1 & ~z1 & z2 & x2);    // X * Y = +iZ
  const std::uint64_t minus = (z1 & ~x1 & x2 & z2) |  // Z * Y = -iX
                              (x1 & z1 & x2 & ~z2) |  // Y * X = -iZ
                              (x1 & ~z1 & z2 & ~x2);  // X * Z = -iY
  return static_cast<std::int64_t>(std::popcount(plus)) -
         static_cast<std::int64_t>(std::popcount(minus));
}

}  // namespace

Stabilizer::Stabilizer(std::size_t num_qubits)
    : num_qubits_(num_qubits), words_((num_qubits + 63) / 64) {
  if (num_qubits == 0) {
    throw InvalidArgument("Stabilizer needs at least 1 qubit");
  }
  const std::size_t rows = 2 * num_qubits_ + 1;
  try {
    x_.assign(rows * words_, 0);
    z_.assign(rows * words_, 0);
  } catch (const std::bad_alloc&) {
    throw SimulationError("allocating a " + std::to_string(num_qubits) +
                          "-qubit stabilizer tableau failed (out of memory)");
  }
  r_.assign(rows, 0);
  // Destabilizer i = X_i, stabilizer i = Z_i: the tableau of |0...0>.
  for (std::size_t i = 0; i < num_qubits_; ++i) {
    x_[i * words_ + i / 64] = std::uint64_t{1} << (i % 64);
    z_[(num_qubits_ + i) * words_ + i / 64] = std::uint64_t{1} << (i % 64);
  }
}

void Stabilizer::check_qubit(std::size_t q, const char* what) const {
  if (q >= num_qubits_) {
    throw InvalidArgument(std::string(what) + ": qubit " + std::to_string(q) +
                          " out of range for " + std::to_string(num_qubits_) +
                          " qubits");
  }
}

// ---- gates ------------------------------------------------------------------
//
// Column updates: each gate touches the x/z bits of one or two qubit columns
// in every (non-scratch) row, flipping r by the textbook conjugation sign.

void Stabilizer::apply_h(std::size_t q) {
  check_qubit(q, "apply_h");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xw = x_[row * words_ + w];
    std::uint64_t& zw = z_[row * words_ + w];
    r_[row] ^= static_cast<std::uint8_t>(((xw & zw & m) != 0));  // Y -> -Y
    const std::uint64_t t = xw & m;
    xw = (xw & ~m) | (zw & m);
    zw = (zw & ~m) | t;
  }
}

void Stabilizer::apply_s(std::size_t q) {
  check_qubit(q, "apply_s");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xw = x_[row * words_ + w];
    std::uint64_t& zw = z_[row * words_ + w];
    r_[row] ^= static_cast<std::uint8_t>(((xw & zw & m) != 0));  // Y -> -X
    zw ^= xw & m;                                                // X -> Y
  }
}

void Stabilizer::apply_sdg(std::size_t q) {
  check_qubit(q, "apply_sdg");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xw = x_[row * words_ + w];
    std::uint64_t& zw = z_[row * words_ + w];
    // Sdg = Z . S: X -> -Y, Y -> X.
    r_[row] ^= static_cast<std::uint8_t>(((xw & ~zw & m) != 0));
    zw ^= xw & m;
  }
}

void Stabilizer::apply_x(std::size_t q) {
  check_qubit(q, "apply_x");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    r_[row] ^= static_cast<std::uint8_t>(((z_[row * words_ + w] & m) != 0));
  }
}

void Stabilizer::apply_y(std::size_t q) {
  check_qubit(q, "apply_y");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    r_[row] ^= static_cast<std::uint8_t>(
        (((x_[row * words_ + w] ^ z_[row * words_ + w]) & m) != 0));
  }
}

void Stabilizer::apply_z(std::size_t q) {
  check_qubit(q, "apply_z");
  const std::size_t w = q / 64;
  const std::uint64_t m = std::uint64_t{1} << (q % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    r_[row] ^= static_cast<std::uint8_t>(((x_[row * words_ + w] & m) != 0));
  }
}

void Stabilizer::apply_cx(std::size_t control, std::size_t target) {
  check_qubit(control, "apply_cx");
  check_qubit(target, "apply_cx");
  if (control == target) {
    throw InvalidArgument("apply_cx: control and target must differ");
  }
  const std::size_t wc = control / 64, wt = target / 64;
  const std::uint64_t mc = std::uint64_t{1} << (control % 64);
  const std::uint64_t mt = std::uint64_t{1} << (target % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xc = x_[row * words_ + wc];
    std::uint64_t& zc = z_[row * words_ + wc];
    std::uint64_t& xt = x_[row * words_ + wt];
    std::uint64_t& zt = z_[row * words_ + wt];
    const bool bxc = (xc & mc) != 0, bzc = (zc & mc) != 0;
    const bool bxt = (xt & mt) != 0, bzt = (zt & mt) != 0;
    r_[row] ^= static_cast<std::uint8_t>(bxc && bzt && (bxt == bzc));
    if (bxc) xt ^= mt;
    if (bzt) zc ^= mc;
  }
}

void Stabilizer::apply_cz(std::size_t a, std::size_t b) {
  check_qubit(a, "apply_cz");
  check_qubit(b, "apply_cz");
  if (a == b) throw InvalidArgument("apply_cz: qubits must differ");
  const std::size_t wa = a / 64, wb = b / 64;
  const std::uint64_t ma = std::uint64_t{1} << (a % 64);
  const std::uint64_t mb = std::uint64_t{1} << (b % 64);
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    std::uint64_t& xa = x_[row * words_ + wa];
    std::uint64_t& za = z_[row * words_ + wa];
    std::uint64_t& xb = x_[row * words_ + wb];
    std::uint64_t& zb = z_[row * words_ + wb];
    const bool bxa = (xa & ma) != 0, bza = (za & ma) != 0;
    const bool bxb = (xb & mb) != 0, bzb = (zb & mb) != 0;
    r_[row] ^= static_cast<std::uint8_t>(bxa && bxb && (bza != bzb));
    if (bxa) zb ^= mb;
    if (bxb) za ^= ma;
  }
}

void Stabilizer::apply_swap(std::size_t a, std::size_t b) {
  check_qubit(a, "apply_swap");
  check_qubit(b, "apply_swap");
  if (a == b) return;
  const std::size_t wa = a / 64, wb = b / 64;
  const std::uint64_t ma = std::uint64_t{1} << (a % 64);
  const std::uint64_t mb = std::uint64_t{1} << (b % 64);
  // Pure column exchange: SWAP relabels the qubits, no phase is acquired.
  for (std::size_t row = 0; row < 2 * num_qubits_; ++row) {
    for (std::vector<std::uint64_t>* bits : {&x_, &z_}) {
      std::uint64_t& pa = (*bits)[row * words_ + wa];
      std::uint64_t& pb = (*bits)[row * words_ + wb];
      const bool ba = (pa & ma) != 0, bb = (pb & mb) != 0;
      if (ba != bb) {
        pa ^= ma;
        pb ^= mb;
      }
    }
  }
}

// ---- measurement ------------------------------------------------------------

void Stabilizer::rowsum(std::size_t h, std::size_t i) {
  std::int64_t phase = 2 * (static_cast<std::int64_t>(r_[h]) +
                            static_cast<std::int64_t>(r_[i]));
  std::uint64_t* xh = x_row(h);
  std::uint64_t* zh = z_row(h);
  const std::uint64_t* xi = x_row(i);
  const std::uint64_t* zi = z_row(i);
  for (std::size_t w = 0; w < words_; ++w) {
    phase += g_word(xi[w], zi[w], xh[w], zh[w]);
    xh[w] ^= xi[w];
    zh[w] ^= zi[w];
  }
  // The product of two commuting-group rows is always a real Pauli, so the
  // i-exponent is 0 or 2 mod 4; 2 means a negative sign.
  r_[h] = static_cast<std::uint8_t>(((phase % 4) + 4) % 4 == 2);
}

bool Stabilizer::is_deterministic(std::size_t q) const {
  check_qubit(q, "is_deterministic");
  for (std::size_t i = num_qubits_; i < 2 * num_qubits_; ++i) {
    if (x_bit(i, q)) return false;
  }
  return true;
}

int Stabilizer::measure(std::size_t q, Rng& rng) {
  check_qubit(q, "measure");
  ++measurements_;
  // Random branch: some stabilizer generator anticommutes with Z_q.
  std::size_t p = 2 * num_qubits_;
  for (std::size_t i = num_qubits_; i < 2 * num_qubits_; ++i) {
    if (x_bit(i, q)) {
      p = i;
      break;
    }
  }
  if (p < 2 * num_qubits_) {
    ++random_outcomes_;
    const int outcome = static_cast<int>(rng.below(2));
    // Every other row that anticommutes with Z_q absorbs row p, restoring
    // commutation; the old stabilizer becomes the destabilizer of the new
    // Z_q-type generator (the rank update).
    for (std::size_t i = 0; i < 2 * num_qubits_; ++i) {
      if (i != p && x_bit(i, q)) rowsum(i, p);
    }
    std::copy_n(x_row(p), words_, x_row(p - num_qubits_));
    std::copy_n(z_row(p), words_, z_row(p - num_qubits_));
    r_[p - num_qubits_] = r_[p];
    std::fill_n(x_row(p), words_, 0);
    std::fill_n(z_row(p), words_, 0);
    z_row(p)[q / 64] = std::uint64_t{1} << (q % 64);
    r_[p] = static_cast<std::uint8_t>(outcome);
    return outcome;
  }
  // Deterministic branch: Z_q is in the stabilizer group. Accumulate the
  // product of the stabilizer generators flagged by the destabilizers that
  // anticommute with Z_q into the scratch row; its phase is the outcome.
  const std::size_t scratch = 2 * num_qubits_;
  std::fill_n(x_row(scratch), words_, 0);
  std::fill_n(z_row(scratch), words_, 0);
  r_[scratch] = 0;
  for (std::size_t i = 0; i < num_qubits_; ++i) {
    if (x_bit(i, q)) rowsum(scratch, i + num_qubits_);
  }
  return r_[scratch];
}

void Stabilizer::reset_qubit(std::size_t q, Rng& rng) {
  if (measure(q, rng) == 1) apply_x(q);
}

// ---- queries ----------------------------------------------------------------

std::string Stabilizer::row_string(std::size_t row) const {
  std::string out(num_qubits_ + 1, 'I');
  out[0] = r_[row] ? '-' : '+';
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    const bool x = x_bit(row, q), z = z_bit(row, q);
    out[q + 1] = x ? (z ? 'Y' : 'X') : (z ? 'Z' : 'I');
  }
  return out;
}

std::string Stabilizer::stabilizer_string(std::size_t i) const {
  if (i >= num_qubits_) {
    throw InvalidArgument("stabilizer_string: generator index out of range");
  }
  return row_string(num_qubits_ + i);
}

std::string Stabilizer::destabilizer_string(std::size_t i) const {
  if (i >= num_qubits_) {
    throw InvalidArgument("destabilizer_string: generator index out of range");
  }
  return row_string(i);
}

std::vector<cplx> Stabilizer::to_statevector() const {
  if (num_qubits_ > kMaxDenseQubits) {
    throw SimulationError(
        "Stabilizer::to_statevector: " + std::to_string(num_qubits_) +
        " qubits exceeds the dense-extraction guard (" +
        std::to_string(kMaxDenseQubits) +
        "); the tableau exists precisely to avoid 2^n objects");
  }
  const std::size_t dim = std::size_t{1} << num_qubits_;

  // Apply stabilizer generator i to `v`: P|b> = (-1)^r i^{#Y}
  // (-1)^{popcount(b & z)} |b ^ x>, accumulated into v + Pv (the projector
  // 2(I + g_i)/2 without the normalization, which the final rescale absorbs).
  const auto project = [&](std::vector<cplx>& v, std::size_t i) {
    const std::uint64_t xmask = x_row(num_qubits_ + i)[0];
    const std::uint64_t zmask = z_row(num_qubits_ + i)[0];
    const int y_count = std::popcount(xmask & zmask);
    cplx base{1.0, 0.0};
    switch (y_count % 4) {
      case 1: base = cplx{0.0, 1.0}; break;
      case 2: base = cplx{-1.0, 0.0}; break;
      case 3: base = cplx{0.0, -1.0}; break;
      default: break;
    }
    if (r_[num_qubits_ + i]) base = -base;
    std::vector<cplx> out(v);
    for (std::uint64_t b = 0; b < dim; ++b) {
      const cplx phase =
          (std::popcount(b & zmask) & 1) ? -base : base;
      out[b ^ xmask] += phase * v[b];
    }
    v = std::move(out);
  };

  // Project a fixed pseudo-random vector into the (one-dimensional)
  // stabilizer subspace. A random start is orthogonal to it with probability
  // zero; retry on the measure-zero numerical fluke anyway.
  Rng rng(0x57ab1e5eedULL);
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<cplx> v(dim);
    for (cplx& a : v) a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    for (std::size_t i = 0; i < num_qubits_; ++i) project(v, i);
    double norm2 = 0.0;
    for (const cplx& a : v) norm2 += std::norm(a);
    if (norm2 > 1e-12) {
      const double inv = 1.0 / std::sqrt(norm2);
      for (cplx& a : v) a *= inv;
      return v;
    }
  }
  throw SimulationError(
      "Stabilizer::to_statevector: projection repeatedly annihilated the "
      "probe vector (tableau generators are inconsistent)");
}

std::size_t Stabilizer::memory_bytes() const noexcept {
  return (x_.size() + z_.size()) * sizeof(std::uint64_t) + r_.size();
}

}  // namespace qutes::sim
