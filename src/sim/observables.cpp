#include "qutes/sim/observables.hpp"

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::sim {

double expectation_pauli(const StateVector& state, const std::string& pauli) {
  const std::size_t n = state.num_qubits();
  if (pauli.size() != n) {
    throw InvalidArgument("pauli string length must equal the qubit count");
  }

  // Rotate each non-diagonal factor into the Z basis on a working copy:
  // X = H Z H, Y = (S H)^dagger... -> apply Sdg then H so Y-measurement
  // becomes Z-measurement.
  StateVector work = state;
  std::uint64_t mask = 0;  // qubits participating in the parity
  for (std::size_t i = 0; i < n; ++i) {
    const char op = pauli[i];
    const std::size_t qubit = n - 1 - i;  // MSB-first string
    switch (op) {
      case 'I':
        break;
      case 'Z':
        mask |= std::uint64_t{1} << qubit;
        break;
      case 'X':
        work.apply_1q(gates::H(), qubit);
        mask |= std::uint64_t{1} << qubit;
        break;
      case 'Y':
        work.apply_1q(gates::Sdg(), qubit);
        work.apply_1q(gates::H(), qubit);
        mask |= std::uint64_t{1} << qubit;
        break;
      default:
        throw InvalidArgument(std::string("bad Pauli character '") + op + "'");
    }
  }
  if (mask == 0) return 1.0;  // identity string

  double expectation = 0.0;
  const auto amps = work.amplitudes();
  for (std::uint64_t basis = 0; basis < work.dim(); ++basis) {
    const double p = std::norm(amps[basis]);
    if (p == 0.0) continue;
    const bool odd = std::popcount(basis & mask) % 2 == 1;
    expectation += odd ? -p : p;
  }
  return expectation;
}

}  // namespace qutes::sim
