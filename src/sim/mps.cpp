#include "qutes/sim/mps.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::sim {

namespace {

// Below this many scalar multiply-adds the OpenMP fork/join overhead exceeds
// the contraction work and we stay serial (same spirit as the statevector's
// kParallelThreshold, expressed in flops because tensor shapes vary).
constexpr std::size_t kParallelWork = std::size_t{1} << 15;

// Singular values below this fraction of the largest are numerical zeros and
// are always dropped, even in the "truncation disabled" regime — otherwise
// every SVD split would double the bond with exact-zero directions.
constexpr double kSvdFloor = 1e-14;

constexpr double kProbEpsilon = 1e-15;

/// out[m x n] = a[m x k] * b[k x n], all row-major.
void matmul(const cplx* a, const cplx* b, cplx* out, std::size_t m,
            std::size_t k, std::size_t n) {
  const bool parallel = m * n * k >= kParallelWork;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::int64_t row = 0; row < static_cast<std::int64_t>(m); ++row) {
    cplx* out_row = out + static_cast<std::size_t>(row) * n;
    std::fill(out_row, out_row + n, cplx{});
    const cplx* a_row = a + static_cast<std::size_t>(row) * k;
    for (std::size_t inner = 0; inner < k; ++inner) {
      const cplx scale = a_row[inner];
      if (scale == cplx{}) continue;
      const cplx* b_row = b + inner * n;
      for (std::size_t col = 0; col < n; ++col) out_row[col] += scale * b_row[col];
    }
  }
}

/// Thin SVD via one-sided Jacobi: factors `a` (row-major, m x n) as
/// U diag(S) V^H with U (m x k), V (n x k), k = min(m, n), singular values
/// sorted descending. Jacobi is slower than blocked Householder methods but
/// is simple, unconditionally stable, and dependency-free — bond dimensions
/// stay small enough (<= a few hundred) that it is nowhere near the hot
/// path's cost profile.
struct Svd {
  std::vector<cplx> u;      // m x k row-major
  std::vector<double> s;    // k
  std::vector<cplx> v;      // n x k row-major
  std::size_t k = 0;
};

/// Core: requires m >= n. Works on a column-major copy so the inner loops
/// stream down columns.
Svd jacobi_svd_tall(const cplx* a, std::size_t m, std::size_t n) {
  // Column-major working copy of A and of V (n x n identity).
  std::vector<cplx> cols(m * n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) cols[c * m + r] = a[r * n + c];
  }
  std::vector<cplx> v(n * n, cplx{});
  for (std::size_t c = 0; c < n; ++c) v[c * n + c] = cplx{1.0};

  // Columns this far below the matrix norm are numerically-zero singular
  // directions. They must not be rotated: a zero-ish column stays ~fully
  // correlated with whatever it was merged into, so the relative convergence
  // test keeps firing while the column shrinks into the denormal range —
  // where |apq| can no longer be squared or divided by accurately, the
  // computed phase factor stops being unit-modulus, and the "rotation"
  // silently rescales the partner column (observed as per-split norm drift).
  double fro2 = 0.0;
  for (const cplx& x : cols) fro2 += std::norm(x);
  const double col_floor = 1e-60 * fro2;

  const int max_sweeps = 60;
  const double tol = 1e-14;  // on |apq| relative to sqrt(app * aqq)
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        cplx* cp = cols.data() + p * m;
        cplx* cq = cols.data() + q * m;
        double app = 0.0, aqq = 0.0;
        cplx apq{};
        for (std::size_t r = 0; r < m; ++r) {
          app += std::norm(cp[r]);
          aqq += std::norm(cq[r]);
          apq += std::conj(cp[r]) * cq[r];
        }
        if (app <= col_floor || aqq <= col_floor) continue;
        const double abs_apq = std::abs(apq);  // hypot: no underflow from squaring
        if (abs_apq <= tol * std::sqrt(app * aqq)) continue;
        rotated = true;
        const cplx phase = apq / abs_apq;  // e^{i phi}
        const double zeta = (aqq - app) / (2.0 * abs_apq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        const cplx conj_phase = std::conj(phase);
        for (std::size_t r = 0; r < m; ++r) {
          const cplx xp = cp[r];
          const cplx xq = conj_phase * cq[r];
          cp[r] = cs * xp - sn * xq;
          cq[r] = sn * xp + cs * xq;
        }
        cplx* vp = v.data() + p * n;
        cplx* vq = v.data() + q * n;
        for (std::size_t r = 0; r < n; ++r) {
          const cplx xp = vp[r];
          const cplx xq = conj_phase * vq[r];
          vp[r] = cs * xp - sn * xq;
          vq[r] = sn * xp + cs * xq;
        }
      }
    }
    if (!rotated) break;
  }

  // Singular values = column norms; sort descending.
  std::vector<double> norms(n);
  for (std::size_t c = 0; c < n; ++c) {
    double norm2 = 0.0;
    for (std::size_t r = 0; r < m; ++r) norm2 += std::norm(cols[c * m + r]);
    norms[c] = std::sqrt(norm2);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });

  Svd out;
  out.k = n;
  out.s.resize(n);
  out.u.assign(m * n, cplx{});
  out.v.assign(n * n, cplx{});
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t c = order[j];
    out.s[j] = norms[c];
    const double inv = norms[c] > 0.0 ? 1.0 / norms[c] : 0.0;
    for (std::size_t r = 0; r < m; ++r) out.u[r * n + j] = cols[c * m + r] * inv;
    for (std::size_t r = 0; r < n; ++r) out.v[r * n + j] = v[c * n + r];
  }
  return out;
}

Svd jacobi_svd(const cplx* a, std::size_t m, std::size_t n) {
  if (m >= n) return jacobi_svd_tall(a, m, n);
  // SVD of A^H (n x m, tall): A^H = U' S V'^H  =>  A = V' S U'^H.
  std::vector<cplx> ah(n * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) ah[c * m + r] = std::conj(a[r * n + c]);
  }
  Svd t = jacobi_svd_tall(ah.data(), n, m);
  Svd out;
  out.k = t.k;
  out.s = std::move(t.s);
  out.u = std::move(t.v);  // m x k
  out.v = std::move(t.u);  // n x k
  return out;
}

}  // namespace

// ---- construction ----------------------------------------------------------

Mps::Mps(std::size_t num_qubits, MpsOptions options)
    : num_qubits_(num_qubits), options_(options) {
  if (num_qubits == 0) throw InvalidArgument("Mps needs at least 1 qubit");
  if (options_.truncation_threshold < 0.0 || options_.truncation_threshold >= 1.0) {
    throw InvalidArgument("Mps truncation_threshold must lie in [0, 1)");
  }
  sites_.resize(num_qubits);
  dl_.assign(num_qubits, 1);
  dr_.assign(num_qubits, 1);
  for (auto& t : sites_) {
    t.assign(2, cplx{});
    t[0] = cplx{1.0};  // physical index 0 -> |0>
  }
}

Mps Mps::from_statevector(const StateVector& psi, MpsOptions options) {
  Mps mps(psi.num_qubits(), options);
  const std::size_t n = psi.num_qubits();
  const auto amps = psi.amplitudes();

  // Peel sites off the left: carry starts as the full state viewed as a
  // (1 * 2) x 2^{n-1} matrix with the site's physical bit as the row's low
  // bit (little-endian: qubit i is basis bit i).
  std::size_t chi = 1;  // bond entering the current site from the left
  std::vector<cplx> carry(amps.begin(), amps.end());  // chi x 2^{n-i} (row-major)
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t rest = std::size_t{1} << (n - 1 - i);
    // M[(l*2 + p), j] = carry[l, p + 2*j]
    std::vector<cplx> m(chi * 2 * rest);
    for (std::size_t l = 0; l < chi; ++l) {
      for (std::size_t p = 0; p < 2; ++p) {
        for (std::size_t j = 0; j < rest; ++j) {
          m[(l * 2 + p) * rest + j] = carry[l * 2 * rest + (p + 2 * j)];
        }
      }
    }
    Svd svd = jacobi_svd(m.data(), chi * 2, rest);
    // Truncate by the same policy gate splits use.
    const double smax = svd.s.empty() ? 0.0 : svd.s[0];
    const double floor =
        std::max(options.truncation_threshold, kSvdFloor) * smax;
    double total2 = 0.0;
    for (double s : svd.s) total2 += s * s;
    std::size_t keep = 0;
    for (double s : svd.s) {
      if (s <= floor && keep > 0) break;
      ++keep;
    }
    if (options.max_bond_dim > 0) keep = std::min(keep, options.max_bond_dim);
    keep = std::max<std::size_t>(keep, 1);
    double kept2 = 0.0;
    for (std::size_t j = 0; j < keep; ++j) kept2 += svd.s[j] * svd.s[j];
    if (total2 > 0.0 && kept2 < total2) {
      mps.truncation_error_ += (total2 - kept2) / total2;
      ++mps.svd_truncations_;
      const double rescale = std::sqrt(total2 / kept2);
      for (std::size_t j = 0; j < keep; ++j) svd.s[j] *= rescale;
    }

    auto& site = mps.sites_[i];
    site.assign(chi * 2 * keep, cplx{});
    for (std::size_t row = 0; row < chi * 2; ++row) {
      for (std::size_t j = 0; j < keep; ++j) site[row * keep + j] = svd.u[row * svd.k + j];
    }
    mps.dl_[i] = chi;
    mps.dr_[i] = keep;
    // carry = S V^H : keep x rest
    carry.assign(keep * rest, cplx{});
    for (std::size_t j = 0; j < keep; ++j) {
      for (std::size_t col = 0; col < rest; ++col) {
        carry[j * rest + col] = svd.s[j] * std::conj(svd.v[col * svd.k + j]);
      }
    }
    chi = keep;
    mps.max_bond_reached_ = std::max(mps.max_bond_reached_, keep);
  }
  auto& last = mps.sites_[n - 1];
  last.assign(chi * 2, cplx{});
  for (std::size_t l = 0; l < chi; ++l) {
    for (std::size_t p = 0; p < 2; ++p) last[l * 2 + p] = carry[l * 2 + p];
  }
  mps.dl_[n - 1] = chi;
  mps.dr_[n - 1] = 1;
  return mps;
}

void Mps::check_qubit(std::size_t q, const char* what) const {
  if (q >= num_qubits_) {
    throw InvalidArgument(std::string(what) + ": qubit " + std::to_string(q) +
                          " out of range (have " + std::to_string(num_qubits_) + ")");
  }
}

// ---- gate application ------------------------------------------------------

void Mps::apply_1q(const Matrix2& u, std::size_t target) {
  check_qubit(target, "Mps::apply_1q");
  auto& t = sites_[target];
  const std::size_t dl = dl_[target], dr = dr_[target];
  const bool parallel = dl * dr * 4 >= kParallelWork;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::int64_t l = 0; l < static_cast<std::int64_t>(dl); ++l) {
    cplx* row0 = t.data() + static_cast<std::size_t>(l) * 2 * dr;
    cplx* row1 = row0 + dr;
    for (std::size_t r = 0; r < dr; ++r) {
      const cplx a0 = row0[r], a1 = row1[r];
      row0[r] = u(0, 0) * a0 + u(0, 1) * a1;
      row1[r] = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void Mps::apply_global_phase(double lambda) {
  const cplx phase = std::polar(1.0, lambda);
  for (cplx& amp : sites_[0]) amp *= phase;
}

void Mps::apply_controlled_1q(const Matrix2& u, std::size_t control,
                              std::size_t target) {
  // Controlled-U in the apply_2q basis with q0 = control, q1 = target:
  // index = target_bit * 2 + control_bit.
  Matrix4 cu{};
  cu.m[0 * 4 + 0] = cplx{1.0};           // |t=0,c=0>
  cu.m[2 * 4 + 2] = cplx{1.0};           // |t=1,c=0>
  cu.m[1 * 4 + 1] = u(0, 0);             // c=1 block
  cu.m[1 * 4 + 3] = u(0, 1);
  cu.m[3 * 4 + 1] = u(1, 0);
  cu.m[3 * 4 + 3] = u(1, 1);
  apply_2q(cu, control, target);
}

void Mps::apply_swap(std::size_t a, std::size_t b) {
  check_qubit(a, "Mps::apply_swap");
  check_qubit(b, "Mps::apply_swap");
  if (a == b) throw InvalidArgument("Mps::apply_swap: identical qubits");
  const std::size_t lo = std::min(a, b), hi = std::max(a, b);
  for (std::size_t i = lo; i < hi; ++i) swap_adjacent(i);
  for (std::size_t i = hi - 1; i-- > lo;) swap_adjacent(i);
}

void Mps::apply_2q(const Matrix4& u, std::size_t q0, std::size_t q1) {
  check_qubit(q0, "Mps::apply_2q");
  check_qubit(q1, "Mps::apply_2q");
  if (q0 == q1) throw InvalidArgument("Mps::apply_2q: identical qubits");
  const std::size_t lo = std::min(q0, q1), hi = std::max(q0, q1);
  if (hi - lo == 1) {
    apply_2q_adjacent(u, lo, /*low_site_is_q0=*/lo == q0);
    return;
  }
  // Swap-chain: walk the high qubit's site down to lo+1, apply, walk back.
  // Each hop is itself a nearest-neighbor split, so truncation policy and
  // error accounting apply uniformly.
  for (std::size_t i = hi - 1; i > lo; --i) swap_adjacent(i);
  apply_2q_adjacent(u, lo, /*low_site_is_q0=*/lo == q0);
  for (std::size_t i = lo + 1; i < hi; ++i) swap_adjacent(i);
}

void Mps::apply_kq(const MatrixN& u, std::span<const std::size_t> targets) {
  if (u.num_qubits() != targets.size()) {
    throw InvalidArgument("Mps::apply_kq: matrix width does not match target count");
  }
  if (targets.empty() || targets.size() > 2) {
    throw InvalidArgument(
        "Mps::apply_kq: the MPS backend consumes 1- and 2-qubit blocks only "
        "(got " + std::to_string(targets.size()) + " qubits)");
  }
  if (targets.size() == 1) {
    Matrix2 m2;
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 2; ++c) m2.m[r * 2 + c] = u(r, c);
    }
    apply_1q(m2, targets[0]);
    return;
  }
  Matrix4 m4;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m4.m[r * 4 + c] = u(r, c);
  }
  // MatrixN local bit 0 acts on targets[0] — exactly apply_2q's q0.
  apply_2q(m4, targets[0], targets[1]);
}

void Mps::swap_adjacent(std::size_t i) {
  Matrix4 swap{};
  swap.m[0 * 4 + 0] = cplx{1.0};
  swap.m[1 * 4 + 2] = cplx{1.0};
  swap.m[2 * 4 + 1] = cplx{1.0};
  swap.m[3 * 4 + 3] = cplx{1.0};
  apply_2q_adjacent(swap, i, true);
}

void Mps::apply_2q_adjacent(const Matrix4& u, std::size_t i, bool low_site_is_q0) {
  const std::size_t dl = dl_[i], mid = dr_[i], dr = dr_[i + 1];

  // theta[(l*2 + p1), (p2*dr + r)] = sum_b A_i[(l*2+p1), b] A_{i+1}[(b*2+p2), r]
  std::vector<cplx> theta(dl * 2 * 2 * dr);
  matmul(sites_[i].data(), sites_[i + 1].data(), theta.data(), dl * 2, mid, 2 * dr);

  // Apply the 4x4 unitary on the physical pair. Matrix4 basis index is
  // q1*2 + q0; site i's physical bit plays q0 when low_site_is_q0.
  std::vector<cplx> theta2(theta.size());
  const auto gate_index = [low_site_is_q0](std::size_t p_low, std::size_t p_high) {
    return low_site_is_q0 ? p_high * 2 + p_low : p_low * 2 + p_high;
  };
  const bool parallel = dl * dr * 16 >= kParallelWork;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::int64_t l = 0; l < static_cast<std::int64_t>(dl); ++l) {
    for (std::size_t r = 0; r < dr; ++r) {
      cplx in[4], out[4];
      for (std::size_t p1 = 0; p1 < 2; ++p1) {
        for (std::size_t p2 = 0; p2 < 2; ++p2) {
          in[p1 * 2 + p2] =
              theta[(static_cast<std::size_t>(l) * 2 + p1) * 2 * dr + p2 * dr + r];
        }
      }
      for (std::size_t p1 = 0; p1 < 2; ++p1) {
        for (std::size_t p2 = 0; p2 < 2; ++p2) {
          cplx acc{};
          for (std::size_t t1 = 0; t1 < 2; ++t1) {
            for (std::size_t t2 = 0; t2 < 2; ++t2) {
              acc += u(gate_index(p1, p2), gate_index(t1, t2)) * in[t1 * 2 + t2];
            }
          }
          out[p1 * 2 + p2] = acc;
        }
      }
      for (std::size_t p1 = 0; p1 < 2; ++p1) {
        for (std::size_t p2 = 0; p2 < 2; ++p2) {
          theta2[(static_cast<std::size_t>(l) * 2 + p1) * 2 * dr + p2 * dr + r] =
              out[p1 * 2 + p2];
        }
      }
    }
  }

  // Split back: SVD of the (2*dl) x (2*dr) matrix, truncated.
  Svd svd = jacobi_svd(theta2.data(), dl * 2, dr * 2);

  const double smax = svd.s.empty() ? 0.0 : svd.s[0];
  if (smax == 0.0) throw SimulationError("Mps: SVD of a zero state");
  const double floor = std::max(options_.truncation_threshold, kSvdFloor) * smax;
  double total2 = 0.0;
  for (double s : svd.s) total2 += s * s;
  std::size_t keep = 0;
  for (double s : svd.s) {
    if (s <= floor && keep > 0) break;
    ++keep;
  }
  if (options_.max_bond_dim > 0) keep = std::min(keep, options_.max_bond_dim);
  keep = std::max<std::size_t>(keep, 1);
  double kept2 = 0.0;
  for (std::size_t j = 0; j < keep; ++j) kept2 += svd.s[j] * svd.s[j];
  if (kept2 < total2) {
    truncation_error_ += (total2 - kept2) / total2;
    ++svd_truncations_;
    // Renormalize the kept spectrum so the state stays a unit vector and
    // downstream sampling probabilities remain a distribution.
    const double rescale = std::sqrt(total2 / kept2);
    for (std::size_t j = 0; j < keep; ++j) svd.s[j] *= rescale;
  }

  auto& left = sites_[i];
  left.assign(dl * 2 * keep, cplx{});
  for (std::size_t row = 0; row < dl * 2; ++row) {
    for (std::size_t j = 0; j < keep; ++j) left[row * keep + j] = svd.u[row * svd.k + j];
  }
  auto& right = sites_[i + 1];
  right.assign(keep * 2 * dr, cplx{});
  for (std::size_t j = 0; j < keep; ++j) {
    for (std::size_t p2 = 0; p2 < 2; ++p2) {
      for (std::size_t r = 0; r < dr; ++r) {
        right[(j * 2 + p2) * dr + r] =
            svd.s[j] * std::conj(svd.v[(p2 * dr + r) * svd.k + j]);
      }
    }
  }
  dr_[i] = keep;
  dl_[i + 1] = keep;
  max_bond_reached_ = std::max(max_bond_reached_, keep);
}

// ---- environments ----------------------------------------------------------

std::vector<cplx> Mps::left_environment(std::size_t q) const {
  std::vector<cplx> env{cplx{1.0}};  // 1x1
  std::size_t chi = 1;
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t dl = dl_[i], dr = dr_[i];
    const auto& t = sites_[i];
    std::vector<cplx> next(dr * dr, cplx{});
    // next[r, r'] = sum_{p, l, l'} env[l, l'] t[(l,p),r] conj(t[(l',p),r'])
    for (std::size_t p = 0; p < 2; ++p) {
      // m1[r, l'] = sum_l t[(l,p),r] env[l, l']
      std::vector<cplx> m1(dr * dl, cplx{});
      for (std::size_t l = 0; l < dl; ++l) {
        const cplx* trow = t.data() + (l * 2 + p) * dr;
        const cplx* erow = env.data() + l * chi;
        for (std::size_t r = 0; r < dr; ++r) {
          const cplx scale = trow[r];
          if (scale == cplx{}) continue;
          for (std::size_t lp = 0; lp < dl; ++lp) m1[r * dl + lp] += scale * erow[lp];
        }
      }
      for (std::size_t r = 0; r < dr; ++r) {
        for (std::size_t lp = 0; lp < dl; ++lp) {
          const cplx scale = m1[r * dl + lp];
          if (scale == cplx{}) continue;
          const cplx* trow = t.data() + (lp * 2 + p) * dr;
          for (std::size_t rp = 0; rp < dr; ++rp) {
            next[r * dr + rp] += scale * std::conj(trow[rp]);
          }
        }
      }
    }
    env = std::move(next);
    chi = dr;
  }
  return env;
}

std::vector<cplx> Mps::right_environment(std::size_t q) const {
  std::vector<cplx> env{cplx{1.0}};  // 1x1
  for (std::size_t i = num_qubits_; i-- > q;) {
    const std::size_t dl = dl_[i], dr = dr_[i];
    const auto& t = sites_[i];
    std::vector<cplx> next(dl * dl, cplx{});
    // next[l, l'] = sum_{p, r, r'} t[(l,p),r] env[r, r'] conj(t[(l',p),r'])
    for (std::size_t p = 0; p < 2; ++p) {
      // m1[l, r'] = sum_r t[(l,p),r] env[r, r']
      std::vector<cplx> m1(dl * dr, cplx{});
      for (std::size_t l = 0; l < dl; ++l) {
        const cplx* trow = t.data() + (l * 2 + p) * dr;
        for (std::size_t r = 0; r < dr; ++r) {
          const cplx scale = trow[r];
          if (scale == cplx{}) continue;
          const cplx* erow = env.data() + r * dr;
          for (std::size_t rp = 0; rp < dr; ++rp) m1[l * dr + rp] += scale * erow[rp];
        }
      }
      for (std::size_t l = 0; l < dl; ++l) {
        for (std::size_t lp = 0; lp < dl; ++lp) {
          const cplx* trow = t.data() + (lp * 2 + p) * dr;
          cplx acc{};
          for (std::size_t rp = 0; rp < dr; ++rp) {
            acc += m1[l * dr + rp] * std::conj(trow[rp]);
          }
          next[l * dl + lp] += acc;
        }
      }
    }
    env = std::move(next);
  }
  return env;
}

// ---- measurement & sampling ------------------------------------------------

double Mps::probability_one(std::size_t qubit) const {
  check_qubit(qubit, "Mps::probability_one");
  const std::vector<cplx> left = left_environment(qubit);
  const std::vector<cplx> right = right_environment(qubit + 1);
  const std::size_t dl = dl_[qubit], dr = dr_[qubit];
  const auto& t = sites_[qubit];

  double weight[2] = {0.0, 0.0};
  for (std::size_t p = 0; p < 2; ++p) {
    // w_p = sum_{l,l',r,r'} left[l,l'] t[(l,p),r] conj(t[(l',p),r']) right[r,r']
    cplx acc{};
    for (std::size_t l = 0; l < dl; ++l) {
      for (std::size_t lp = 0; lp < dl; ++lp) {
        const cplx lv = left[l * dl + lp];
        if (lv == cplx{}) continue;
        const cplx* trow = t.data() + (l * 2 + p) * dr;
        const cplx* tprow = t.data() + (lp * 2 + p) * dr;
        for (std::size_t r = 0; r < dr; ++r) {
          if (trow[r] == cplx{}) continue;
          const cplx* rrow = right.data() + r * dr;
          for (std::size_t rp = 0; rp < dr; ++rp) {
            acc += lv * trow[r] * std::conj(tprow[rp]) * rrow[rp];
          }
        }
      }
    }
    weight[p] = std::abs(acc.real());
  }
  const double total = weight[0] + weight[1];
  if (total < kProbEpsilon) throw SimulationError("Mps: zero-norm state");
  return weight[1] / total;
}

void Mps::collapse(std::size_t qubit, int outcome, double prob) {
  if (prob < kProbEpsilon) {
    throw SimulationError("measured an outcome with vanishing probability");
  }
  const double scale = 1.0 / std::sqrt(prob);
  auto& t = sites_[qubit];
  const std::size_t dl = dl_[qubit], dr = dr_[qubit];
  for (std::size_t l = 0; l < dl; ++l) {
    for (std::size_t p = 0; p < 2; ++p) {
      cplx* row = t.data() + (l * 2 + p) * dr;
      if (static_cast<int>(p) == outcome) {
        for (std::size_t r = 0; r < dr; ++r) row[r] *= scale;
      } else {
        std::fill(row, row + dr, cplx{});
      }
    }
  }
}

int Mps::measure(std::size_t qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  collapse(qubit, outcome, outcome ? p1 : 1.0 - p1);
  return outcome;
}

void Mps::reset_qubit(std::size_t qubit, Rng& rng) {
  if (measure(qubit, rng) == 1) apply_1q(gates::X(), qubit);
}

Mps::Sampler Mps::make_sampler() const {
  Sampler sampler;
  sampler.right.resize(num_qubits_ + 1);
  sampler.right[num_qubits_] = {cplx{1.0}};
  for (std::size_t i = num_qubits_; i-- > 0;) {
    // Reuse the single-site recursion from right_environment.
    const std::size_t dl = dl_[i], dr = dr_[i];
    const auto& t = sites_[i];
    const auto& env = sampler.right[i + 1];
    std::vector<cplx> next(dl * dl, cplx{});
    for (std::size_t p = 0; p < 2; ++p) {
      std::vector<cplx> m1(dl * dr, cplx{});
      for (std::size_t l = 0; l < dl; ++l) {
        const cplx* trow = t.data() + (l * 2 + p) * dr;
        for (std::size_t r = 0; r < dr; ++r) {
          const cplx scale = trow[r];
          if (scale == cplx{}) continue;
          const cplx* erow = env.data() + r * dr;
          for (std::size_t rp = 0; rp < dr; ++rp) m1[l * dr + rp] += scale * erow[rp];
        }
      }
      for (std::size_t l = 0; l < dl; ++l) {
        for (std::size_t lp = 0; lp < dl; ++lp) {
          const cplx* trow = t.data() + (lp * 2 + p) * dr;
          cplx acc{};
          for (std::size_t rp = 0; rp < dr; ++rp) {
            acc += m1[l * dr + rp] * std::conj(trow[rp]);
          }
          next[l * dl + lp] += acc;
        }
      }
    }
    sampler.right[i] = std::move(next);
  }
  return sampler;
}

std::uint64_t Mps::sample(const Sampler& sampler, Rng& rng) const {
  if (num_qubits_ > 64) {
    throw SimulationError("Mps::sample: more than 64 qubits cannot pack into one "
                          "basis index");
  }
  // v is the left-boundary row vector conditioned on the bits drawn so far,
  // kept normalized so that <v| R |v> == 1 at every step; then the
  // conditional probability of drawing p at site i is w_p R_{i+1} w_p^H with
  // w_p = v A_i[p].
  std::vector<cplx> v{cplx{1.0}};
  std::uint64_t basis = 0;

  // The initial v is only normalized if the state is; fold the true norm in.
  double prev = sampler.right[0][0].real();
  if (prev < kProbEpsilon) throw SimulationError("sampling from a zero state");
  for (cplx& x : v) x /= std::sqrt(prev);

  std::vector<cplx> w0, w1;
  for (std::size_t i = 0; i < num_qubits_; ++i) {
    const std::size_t dl = dl_[i], dr = dr_[i];
    const auto& t = sites_[i];
    const auto& env = sampler.right[i + 1];
    const auto project = [&](std::size_t p, std::vector<cplx>& w) {
      w.assign(dr, cplx{});
      for (std::size_t l = 0; l < dl; ++l) {
        const cplx scale = v[l];
        if (scale == cplx{}) continue;
        const cplx* trow = t.data() + (l * 2 + p) * dr;
        for (std::size_t r = 0; r < dr; ++r) w[r] += scale * trow[r];
      }
    };
    const auto quad = [&](const std::vector<cplx>& w) {
      cplx acc{};
      for (std::size_t r = 0; r < dr; ++r) {
        if (w[r] == cplx{}) continue;
        const cplx* erow = env.data() + r * dr;
        for (std::size_t rp = 0; rp < dr; ++rp) {
          acc += w[r] * erow[rp] * std::conj(w[rp]);
        }
      }
      return std::abs(acc.real());
    };
    project(1, w1);
    const double p1 = std::min(1.0, quad(w1));
    const int bit = rng.uniform() < p1 ? 1 : 0;
    double prob;
    if (bit) {
      v = w1;
      prob = p1;
    } else {
      project(0, w0);
      v = w0;
      prob = 1.0 - p1;
    }
    if (prob < kProbEpsilon) {
      throw SimulationError("sampled an outcome with vanishing probability");
    }
    const double scale = 1.0 / std::sqrt(prob);
    for (cplx& x : v) x *= scale;
    if (bit) basis = set_bit(basis, i);
  }
  return basis;
}

std::uint64_t Mps::sample(Rng& rng) const {
  const Sampler sampler = make_sampler();
  return sample(sampler, rng);
}

// ---- queries ---------------------------------------------------------------

cplx Mps::amplitude(std::uint64_t basis) const {
  if (num_qubits_ < 64 && basis >= (std::uint64_t{1} << num_qubits_)) {
    throw InvalidArgument("Mps::amplitude: basis index out of range");
  }
  std::vector<cplx> v{cplx{1.0}};
  for (std::size_t i = 0; i < num_qubits_; ++i) {
    const std::size_t dl = dl_[i], dr = dr_[i];
    const std::size_t p = test_bit(basis, i) ? 1 : 0;
    const auto& t = sites_[i];
    std::vector<cplx> next(dr, cplx{});
    for (std::size_t l = 0; l < dl; ++l) {
      const cplx scale = v[l];
      if (scale == cplx{}) continue;
      const cplx* trow = t.data() + (l * 2 + p) * dr;
      for (std::size_t r = 0; r < dr; ++r) next[r] += scale * trow[r];
    }
    v = std::move(next);
  }
  return v[0];
}

double Mps::expectation_z(std::size_t qubit) const {
  return 1.0 - 2.0 * probability_one(qubit);
}

double Mps::norm() const {
  const std::vector<cplx> env = right_environment(0);
  return std::sqrt(std::abs(env[0].real()));
}

void Mps::normalize() {
  const double n = norm();
  if (n < kProbEpsilon) throw SimulationError("normalizing a zero state");
  const double scale = 1.0 / n;
  for (cplx& amp : sites_[0]) amp *= scale;
}

std::vector<cplx> Mps::to_statevector() const {
  if (num_qubits_ > kMaxDenseQubits) {
    throw SimulationError("Mps::to_statevector: " + std::to_string(num_qubits_) +
                          " qubits would materialize 2^" +
                          std::to_string(num_qubits_) +
                          " amplitudes (limit " + std::to_string(kMaxDenseQubits) +
                          "); the MPS exists precisely to avoid this object");
  }
  // Grow left to right: T_k[b, r] over b in [0, 2^k), bond r.
  std::vector<cplx> t{cplx{1.0}};
  std::size_t states = 1, chi = 1;
  for (std::size_t i = 0; i < num_qubits_; ++i) {
    const std::size_t dl = dl_[i], dr = dr_[i];
    const auto& site = sites_[i];
    std::vector<cplx> next(states * 2 * dr, cplx{});
    const bool parallel = states * 2 * dr * dl >= kParallelWork;
#pragma omp parallel for schedule(static) if (parallel)
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(states); ++b) {
      const cplx* trow = t.data() + static_cast<std::size_t>(b) * chi;
      for (std::size_t p = 0; p < 2; ++p) {
        const std::size_t idx = static_cast<std::size_t>(b) | (p << i);
        cplx* out_row = next.data() + idx * dr;
        for (std::size_t l = 0; l < dl; ++l) {
          const cplx scale = trow[l];
          if (scale == cplx{}) continue;
          const cplx* srow = site.data() + (l * 2 + p) * dr;
          for (std::size_t r = 0; r < dr; ++r) out_row[r] += scale * srow[r];
        }
      }
    }
    t = std::move(next);
    states <<= 1;
    chi = dr;
  }
  // chi == 1 at the end; t is exactly the amplitude vector.
  std::vector<cplx> amps(states);
  for (std::size_t b = 0; b < states; ++b) amps[b] = t[b];
  return amps;
}

std::size_t Mps::bond_dim(std::size_t i) const {
  check_qubit(i, "Mps::bond_dim");
  return dr_[i];
}

std::size_t Mps::max_bond_dim() const noexcept {
  std::size_t best = 1;
  for (std::size_t d : dr_) best = std::max(best, d);
  return best;
}

}  // namespace qutes::sim
