#include "qutes/sim/matrix.hpp"

#include <cmath>

#include "qutes/common/error.hpp"

namespace qutes::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}  // namespace

Matrix2 Matrix2::adjoint() const noexcept {
  return Matrix2{{std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])}};
}

Matrix2 Matrix2::operator*(const Matrix2& rhs) const noexcept {
  Matrix2 out;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      out.m[r * 2 + c] =
          (*this)(r, 0) * rhs(0, c) + (*this)(r, 1) * rhs(1, c);
    }
  }
  return out;
}

double Matrix2::distance(const Matrix2& rhs) const noexcept {
  double d = 0.0;
  for (std::size_t i = 0; i < 4; ++i) d = std::max(d, std::abs(m[i] - rhs.m[i]));
  return d;
}

bool Matrix2::is_unitary(double tol) const noexcept {
  const Matrix2 prod = *this * adjoint();
  return prod.distance(gates::I()) <= tol;
}

Matrix4 Matrix4::adjoint() const noexcept {
  Matrix4 out;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out.m[c * 4 + r] = std::conj(m[r * 4 + c]);
  return out;
}

Matrix4 Matrix4::operator*(const Matrix4& rhs) const noexcept {
  Matrix4 out;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      cplx acc = 0.0;
      for (std::size_t k = 0; k < 4; ++k) acc += (*this)(r, k) * rhs(k, c);
      out.m[r * 4 + c] = acc;
    }
  }
  return out;
}

bool Matrix4::is_unitary(double tol) const noexcept {
  const Matrix4 prod = *this * adjoint();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const cplx expect = (r == c) ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
      if (std::abs(prod(r, c) - expect) > tol) return false;
    }
  }
  return true;
}

MatrixN::MatrixN(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0 || num_qubits > kMaxQubits) {
    throw InvalidArgument("MatrixN: width " + std::to_string(num_qubits) +
                          " outside [1, " + std::to_string(kMaxQubits) + "]");
  }
  const std::size_t d = dim();
  m_.assign(d * d, cplx{});
  for (std::size_t i = 0; i < d; ++i) at(i, i) = cplx{1.0, 0.0};
}

MatrixN MatrixN::from_1q(const Matrix2& u) {
  MatrixN out(1);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) out.at(r, c) = u(r, c);
  return out;
}

MatrixN MatrixN::from_2q(const Matrix4& u) {
  MatrixN out(2);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) out.at(r, c) = u(r, c);
  return out;
}

MatrixN MatrixN::operator*(const MatrixN& rhs) const {
  if (num_qubits_ != rhs.num_qubits_) {
    throw InvalidArgument("MatrixN product: width mismatch");
  }
  MatrixN out(num_qubits_);
  const std::size_t d = dim();
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      cplx acc = 0.0;
      for (std::size_t k = 0; k < d; ++k) acc += (*this)(r, k) * rhs(k, c);
      out.at(r, c) = acc;
    }
  }
  return out;
}

MatrixN MatrixN::adjoint() const {
  MatrixN out(num_qubits_);
  const std::size_t d = dim();
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c) out.at(c, r) = std::conj((*this)(r, c));
  return out;
}

MatrixN MatrixN::embedded(std::size_t new_num_qubits,
                          std::span<const std::size_t> positions) const {
  if (positions.size() != num_qubits_) {
    throw InvalidArgument("MatrixN::embedded: one position per qubit required");
  }
  std::size_t mask = 0;
  for (std::size_t p : positions) {
    if (p >= new_num_qubits) {
      throw InvalidArgument("MatrixN::embedded: position out of range");
    }
    if (mask & (std::size_t{1} << p)) {
      throw InvalidArgument("MatrixN::embedded: duplicate position");
    }
    mask |= std::size_t{1} << p;
  }
  // Gather the participating bits of a wide index back into this matrix's
  // local ordering.
  const auto extract = [&](std::size_t wide) {
    std::size_t local = 0;
    for (std::size_t j = 0; j < positions.size(); ++j) {
      local |= ((wide >> positions[j]) & 1u) << j;
    }
    return local;
  };
  MatrixN out(new_num_qubits);
  const std::size_t d = out.dim();
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      // Identity on the non-participating bits: entries that change them
      // vanish, the rest copy the source matrix.
      out.at(r, c) = ((r ^ c) & ~mask) ? cplx{} : (*this)(extract(r), extract(c));
    }
  }
  return out;
}

double MatrixN::distance(const MatrixN& rhs) const {
  if (num_qubits_ != rhs.num_qubits_) {
    throw InvalidArgument("MatrixN::distance: width mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < m_.size(); ++i) {
    d = std::max(d, std::abs(m_[i] - rhs.m_[i]));
  }
  return d;
}

bool MatrixN::is_unitary(double tol) const {
  if (num_qubits_ == 0) return false;
  return (*this * adjoint()).distance(MatrixN(num_qubits_)) <= tol;
}

Matrix4 kron(const Matrix2& b, const Matrix2& a) noexcept {
  Matrix4 out;
  for (std::size_t br = 0; br < 2; ++br)
    for (std::size_t bc = 0; bc < 2; ++bc)
      for (std::size_t ar = 0; ar < 2; ++ar)
        for (std::size_t ac = 0; ac < 2; ++ac)
          out.m[(br * 2 + ar) * 4 + (bc * 2 + ac)] = b(br, bc) * a(ar, ac);
  return out;
}

namespace gates {

Matrix2 I() noexcept { return {{cplx{1}, cplx{0}, cplx{0}, cplx{1}}}; }
Matrix2 X() noexcept { return {{cplx{0}, cplx{1}, cplx{1}, cplx{0}}}; }
Matrix2 Y() noexcept { return {{cplx{0}, cplx{0, -1}, cplx{0, 1}, cplx{0}}}; }
Matrix2 Z() noexcept { return {{cplx{1}, cplx{0}, cplx{0}, cplx{-1}}}; }
Matrix2 H() noexcept {
  return {{cplx{kInvSqrt2}, cplx{kInvSqrt2}, cplx{kInvSqrt2}, cplx{-kInvSqrt2}}};
}
Matrix2 S() noexcept { return {{cplx{1}, cplx{0}, cplx{0}, cplx{0, 1}}}; }
Matrix2 Sdg() noexcept { return {{cplx{1}, cplx{0}, cplx{0}, cplx{0, -1}}}; }
Matrix2 T() noexcept { return P(M_PI / 4); }
Matrix2 Tdg() noexcept { return P(-M_PI / 4); }
Matrix2 SX() noexcept {
  // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
  const cplx p{0.5, 0.5};
  const cplx q{0.5, -0.5};
  return {{p, q, q, p}};
}

Matrix2 RX(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {{cplx{c}, cplx{0, -s}, cplx{0, -s}, cplx{c}}};
}

Matrix2 RY(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {{cplx{c}, cplx{-s}, cplx{s}, cplx{c}}};
}

Matrix2 RZ(double theta) noexcept {
  return {{std::exp(cplx{0, -theta / 2}), cplx{0}, cplx{0}, std::exp(cplx{0, theta / 2})}};
}

Matrix2 P(double lambda) noexcept {
  return {{cplx{1}, cplx{0}, cplx{0}, std::exp(cplx{0, lambda})}};
}

Matrix2 U(double theta, double phi, double lambda) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {{cplx{c}, -std::exp(cplx{0, lambda}) * s, std::exp(cplx{0, phi}) * s,
           std::exp(cplx{0, phi + lambda}) * c}};
}

}  // namespace gates

}  // namespace qutes::sim
