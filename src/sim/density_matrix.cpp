#include "qutes/sim/density_matrix.hpp"

#include <cmath>
#include <new>
#include <string>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace qutes::sim {

namespace {

constexpr std::uint64_t kParallelThreshold = std::uint64_t{1} << 14;

void check_kraus_complete(std::span<const Matrix2> kraus) {
  // sum_k K^dagger K must be the identity.
  Matrix2 acc{{cplx{0}, cplx{0}, cplx{0}, cplx{0}}};
  for (const Matrix2& k : kraus) {
    const Matrix2 kk = k.adjoint() * k;
    for (std::size_t i = 0; i < 4; ++i) acc.m[i] += kk.m[i];
  }
  if (acc.distance(gates::I()) > 1e-9) {
    throw InvalidArgument("Kraus operators are not trace-preserving");
  }
}

}  // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits), dim_(dim_of(num_qubits)) {
  if (num_qubits == 0) throw InvalidArgument("DensityMatrix needs >= 1 qubit");
  if (num_qubits > kMaxQubits) {
    throw SimulationError(
        "density matrix over " + std::to_string(num_qubits) + " qubits needs 4^" +
        std::to_string(num_qubits) + " entries (limit " +
        std::to_string(kMaxQubits) + "); for noiseless circuits the mps "
        "backend scales with entanglement instead — try --backend mps — and "
        "Clifford-only circuits run at any width on --backend stabilizer");
  }
  try {
    rho_.assign(dim_ * dim_, cplx{});
  } catch (const std::bad_alloc&) {
    throw SimulationError("allocating 4^" + std::to_string(num_qubits) +
                          " density-matrix entries failed (out of memory)");
  }
  rho_[0] = cplx{1.0, 0.0};
}

DensityMatrix DensityMatrix::from_statevector(const StateVector& psi) {
  DensityMatrix rho(psi.num_qubits());
  const auto amps = psi.amplitudes();
  for (std::uint64_t j = 0; j < rho.dim_; ++j) {
    for (std::uint64_t i = 0; i < rho.dim_; ++i) {
      rho.rho_[i + rho.dim_ * j] = amps[i] * std::conj(amps[j]);
    }
  }
  return rho;
}

cplx DensityMatrix::element(std::uint64_t row, std::uint64_t column) const {
  if (row >= dim_ || column >= dim_) throw InvalidArgument("element out of range");
  return rho_[row + dim_ * column];
}

void DensityMatrix::apply_to_rows(const Matrix2& u, std::size_t q,
                                  std::span<const std::size_t> controls) {
  // Treat rho as a 2n-qubit state: row bit q is virtual qubit q; row
  // controls are the control bits of the row index.
  const std::uint64_t total = dim_ * dim_;
  const std::uint64_t half = total >> 1;
  std::uint64_t ctrl_mask = 0;
  for (std::size_t c : controls) ctrl_mask |= std::uint64_t{1} << c;
  const cplx u00 = u.m[0], u01 = u.m[1], u10 = u.m[2], u11 = u.m[3];
  cplx* rho = rho_.data();
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(half); ++k) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(k), q);
    if ((i0 & ctrl_mask) != ctrl_mask) continue;
    const std::uint64_t i1 = set_bit(i0, q);
    const cplx a0 = rho[i0];
    const cplx a1 = rho[i1];
    rho[i0] = u00 * a0 + u01 * a1;
    rho[i1] = u10 * a0 + u11 * a1;
  }
}

void DensityMatrix::apply_to_columns(const Matrix2& u, std::size_t q,
                                     std::span<const std::size_t> controls) {
  // Column bit q lives at virtual position q + n; conj(u) acts there.
  const Matrix2 cu{{std::conj(u.m[0]), std::conj(u.m[1]), std::conj(u.m[2]),
                    std::conj(u.m[3])}};
  std::vector<std::size_t> shifted;
  shifted.reserve(controls.size());
  for (std::size_t c : controls) shifted.push_back(c + num_qubits_);
  std::uint64_t ctrl_mask = 0;
  for (std::size_t c : shifted) ctrl_mask |= std::uint64_t{1} << c;

  const std::size_t vq = q + num_qubits_;
  const std::uint64_t total = dim_ * dim_;
  const std::uint64_t half = total >> 1;
  const cplx u00 = cu.m[0], u01 = cu.m[1], u10 = cu.m[2], u11 = cu.m[3];
  cplx* rho = rho_.data();
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(half); ++k) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(k), vq);
    if ((i0 & ctrl_mask) != ctrl_mask) continue;
    const std::uint64_t i1 = set_bit(i0, vq);
    const cplx a0 = rho[i0];
    const cplx a1 = rho[i1];
    rho[i0] = u00 * a0 + u01 * a1;
    rho[i1] = u10 * a0 + u11 * a1;
  }
}

void DensityMatrix::apply_1q(const Matrix2& u, std::size_t target) {
  if (target >= num_qubits_) throw InvalidArgument("apply_1q: qubit out of range");
  apply_to_rows(u, target, {});
  apply_to_columns(u, target, {});
}

void DensityMatrix::apply_multi_controlled_1q(const Matrix2& u,
                                              std::span<const std::size_t> controls,
                                              std::size_t target) {
  if (target >= num_qubits_) throw InvalidArgument("mc gate: target out of range");
  for (std::size_t c : controls) {
    if (c >= num_qubits_) throw InvalidArgument("mc gate: control out of range");
    if (c == target) throw InvalidArgument("mc gate: control equals target");
  }
  apply_to_rows(u, target, controls);
  apply_to_columns(u, target, controls);
}

void DensityMatrix::apply_swap(std::size_t a, std::size_t b) {
  if (a >= num_qubits_ || b >= num_qubits_) {
    throw InvalidArgument("swap: qubit out of range");
  }
  if (a == b) return;
  // Permute both row and column bits.
  std::vector<cplx> next(rho_.size());
  for (std::uint64_t j = 0; j < dim_; ++j) {
    std::uint64_t pj = j;
    if (test_bit(j, a) != test_bit(j, b)) pj = flip_bit(flip_bit(j, a), b);
    for (std::uint64_t i = 0; i < dim_; ++i) {
      std::uint64_t pi = i;
      if (test_bit(i, a) != test_bit(i, b)) pi = flip_bit(flip_bit(i, a), b);
      next[pi + dim_ * pj] = rho_[i + dim_ * j];
    }
  }
  rho_ = std::move(next);
}

void DensityMatrix::apply_channel(std::span<const Matrix2> kraus, std::size_t target) {
  if (target >= num_qubits_) throw InvalidArgument("channel: qubit out of range");
  if (kraus.empty()) throw InvalidArgument("channel: no Kraus operators");
  check_kraus_complete(kraus);
  std::vector<cplx> acc(rho_.size(), cplx{});
  const std::vector<cplx> original = rho_;
  for (const Matrix2& k : kraus) {
    rho_ = original;
    apply_to_rows(k, target, {});
    apply_to_columns(k, target, {});
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += rho_[i];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_depolarizing(std::size_t target, double p) {
  if (p < 0.0 || p > 1.0) throw InvalidArgument("depolarizing: bad probability");
  const double s0 = std::sqrt(1.0 - p);
  const double s1 = std::sqrt(p / 3.0);
  Matrix2 k0 = gates::I();
  Matrix2 kx = gates::X();
  Matrix2 ky = gates::Y();
  Matrix2 kz = gates::Z();
  for (auto& m : k0.m) m *= s0;
  for (auto& m : kx.m) m *= s1;
  for (auto& m : ky.m) m *= s1;
  for (auto& m : kz.m) m *= s1;
  const Matrix2 kraus[4] = {k0, kx, ky, kz};
  apply_channel(kraus, target);
}

void DensityMatrix::apply_bit_flip(std::size_t target, double p) {
  if (p < 0.0 || p > 1.0) throw InvalidArgument("bit flip: bad probability");
  Matrix2 k0 = gates::I();
  Matrix2 k1 = gates::X();
  for (auto& m : k0.m) m *= std::sqrt(1.0 - p);
  for (auto& m : k1.m) m *= std::sqrt(p);
  const Matrix2 kraus[2] = {k0, k1};
  apply_channel(kraus, target);
}

void DensityMatrix::apply_phase_flip(std::size_t target, double p) {
  if (p < 0.0 || p > 1.0) throw InvalidArgument("phase flip: bad probability");
  Matrix2 k0 = gates::I();
  Matrix2 k1 = gates::Z();
  for (auto& m : k0.m) m *= std::sqrt(1.0 - p);
  for (auto& m : k1.m) m *= std::sqrt(p);
  const Matrix2 kraus[2] = {k0, k1};
  apply_channel(kraus, target);
}

void DensityMatrix::apply_amplitude_damping(std::size_t target, double gamma) {
  if (gamma < 0.0 || gamma > 1.0) throw InvalidArgument("damping: bad gamma");
  const Matrix2 k0{{cplx{1}, cplx{0}, cplx{0}, cplx{std::sqrt(1.0 - gamma)}}};
  const Matrix2 k1{{cplx{0}, cplx{std::sqrt(gamma)}, cplx{0}, cplx{0}}};
  const Matrix2 kraus[2] = {k0, k1};
  apply_channel(kraus, target);
}

void DensityMatrix::apply_phase_damping(std::size_t target, double gamma) {
  if (gamma < 0.0 || gamma > 1.0) throw InvalidArgument("phase damping: bad gamma");
  const Matrix2 k0{{cplx{1}, cplx{0}, cplx{0}, cplx{std::sqrt(1.0 - gamma)}}};
  const Matrix2 k1{{cplx{0}, cplx{0}, cplx{0}, cplx{std::sqrt(gamma)}}};
  const Matrix2 kraus[2] = {k0, k1};
  apply_channel(kraus, target);
}

double DensityMatrix::probability_one(std::size_t qubit) const {
  if (qubit >= num_qubits_) throw InvalidArgument("probability: qubit out of range");
  double p = 0.0;
  for (std::uint64_t i = 0; i < dim_; ++i) {
    if (test_bit(i, qubit)) p += rho_[i + dim_ * i].real();
  }
  return p;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dim_);
  for (std::uint64_t i = 0; i < dim_; ++i) probs[i] = rho_[i + dim_ * i].real();
  return probs;
}

int DensityMatrix::measure(std::size_t qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double p = outcome ? p1 : 1.0 - p1;
  if (p < 1e-15) throw SimulationError("measuring an impossible outcome");
  // Project: zero every entry whose row or column disagrees with the
  // outcome, then renormalize the trace.
  for (std::uint64_t j = 0; j < dim_; ++j) {
    for (std::uint64_t i = 0; i < dim_; ++i) {
      if (test_bit(i, qubit) != (outcome == 1) ||
          test_bit(j, qubit) != (outcome == 1)) {
        rho_[i + dim_ * j] = cplx{};
      }
    }
  }
  const double inv = 1.0 / p;
  for (cplx& e : rho_) e *= inv;
  return outcome;
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::uint64_t i = 0; i < dim_; ++i) t += rho_[i + dim_ * i].real();
  return t;
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_{ij} rho_{ij} rho_{ji} = sum_{ij} |rho_{ij}|^2 for
  // Hermitian rho.
  double p = 0.0;
  for (const cplx& e : rho_) p += std::norm(e);
  return p;
}

double DensityMatrix::fidelity(const StateVector& psi) const {
  if (psi.num_qubits() != num_qubits_) {
    throw InvalidArgument("fidelity: dimension mismatch");
  }
  const auto amps = psi.amplitudes();
  cplx acc = 0.0;
  for (std::uint64_t j = 0; j < dim_; ++j) {
    for (std::uint64_t i = 0; i < dim_; ++i) {
      acc += std::conj(amps[i]) * rho_[i + dim_ * j] * amps[j];
    }
  }
  return acc.real();
}

bool DensityMatrix::is_hermitian(double tol) const {
  for (std::uint64_t j = 0; j < dim_; ++j) {
    for (std::uint64_t i = 0; i <= j; ++i) {
      if (std::abs(rho_[i + dim_ * j] - std::conj(rho_[j + dim_ * i])) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qutes::sim
