#include "qutes/sim/kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>

#include "qutes/common/bitops.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define QUTES_KERNELS_X86 1
#include <immintrin.h>
#else
#define QUTES_KERNELS_X86 0
#endif

namespace qutes::sim::kernels {

namespace {

// Below this many loop iterations the OpenMP fork/join overhead exceeds the
// work (mirrors kParallelThreshold in statevector.cpp).
constexpr std::uint64_t kParallelThreshold = std::uint64_t{1} << 14;

// Pair-pairs per AVX2 chunk: 2^12 iterations x 2 pairs x 2 amplitudes x 16
// bytes = 256 KiB per chunk, sized to stream through L2 while giving OpenMP
// enough chunks to balance.
constexpr std::uint64_t kAvx2Chunk = std::uint64_t{1} << 12;

bool cpu_has_avx2() noexcept {
#if QUTES_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512() noexcept {
#if QUTES_KERNELS_X86
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") && cpu_has_avx2();
#else
  return false;
#endif
}

Isa best_isa() noexcept {
  if (cpu_has_avx512()) return Isa::Avx512;
  return cpu_has_avx2() ? Isa::Avx2 : Isa::Portable;
}

Isa detect_isa() noexcept {
  if (const char* env = std::getenv("QUTES_SIMD")) {
    std::string v(env);
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (v == "0" || v == "off" || v == "none" || v == "portable") {
      return Isa::Portable;
    }
    // Cap (not force): requesting an ISA the CPU lacks degrades to the best
    // one it has, so scripted runs never crash on older machines.
    if (v == "avx2") return cpu_has_avx2() ? Isa::Avx2 : Isa::Portable;
    if (v == "avx512") return best_isa();
  }
  return best_isa();
}

// -1 = no override; otherwise the forced Isa value.
std::atomic<int> g_isa_override{-1};

// Sorted fixed-bit positions for compressed controlled iteration: the group
// index is spread over the non-fixed bits, then all control bits are forced
// to 1. Returns the number of fixed bits (controls + target).
std::size_t prepare_ctrl(const std::size_t* controls, std::size_t num_controls,
                         std::size_t target, std::size_t* fixed,
                         std::uint64_t* ctrl_mask) noexcept {
  std::uint64_t mask = 0;
  std::size_t f = 0;
  const auto insert_sorted = [&](std::size_t q) {
    std::size_t pos = f++;
    while (pos > 0 && fixed[pos - 1] > q) {
      fixed[pos] = fixed[pos - 1];
      --pos;
    }
    fixed[pos] = q;
  };
  for (std::size_t c = 0; c < num_controls; ++c) {
    mask |= std::uint64_t{1} << controls[c];
    insert_sorted(controls[c]);
  }
  insert_sorted(target);
  *ctrl_mask = mask;
  return f;
}

// ---- portable kernels -------------------------------------------------------
// Bodies are written planar (explicit real/imag doubles) so GCC's
// auto-vectorizer gets reassociation-free FMA chains; std::complex operator
// arithmetic blocks that (strict FP semantics on the intermediate values).

void dense1q_portable(cplx* amps, std::uint64_t dim, std::size_t target,
                      const cplx* u) {
  const std::uint64_t half = dim >> 1;
  const std::uint64_t s = std::uint64_t{1} << target;
  const double u00r = u[0].real(), u00i = u[0].imag();
  const double u01r = u[1].real(), u01i = u[1].imag();
  const double u10r = u[2].real(), u10i = u[2].imag();
  const double u11r = u[3].real(), u11i = u[3].imag();
  double* d = reinterpret_cast<double*>(amps);
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
  for (std::int64_t p = 0; p < static_cast<std::int64_t>(half); ++p) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(p), target);
    const std::uint64_t i1 = i0 + s;
    const double a0r = d[2 * i0], a0i = d[2 * i0 + 1];
    const double a1r = d[2 * i1], a1i = d[2 * i1 + 1];
    d[2 * i0] = u00r * a0r - u00i * a0i + u01r * a1r - u01i * a1i;
    d[2 * i0 + 1] = u00r * a0i + u00i * a0r + u01r * a1i + u01i * a1r;
    d[2 * i1] = u10r * a0r - u10i * a0i + u11r * a1r - u11i * a1i;
    d[2 * i1 + 1] = u10r * a0i + u10i * a0r + u11r * a1i + u11i * a1r;
  }
}

void diag1q_portable(cplx* amps, std::uint64_t dim, std::size_t target,
                     cplx d0, cplx d1) {
  const std::uint64_t half = dim >> 1;
  const std::uint64_t s = std::uint64_t{1} << target;
  const double d0r = d0.real(), d0i = d0.imag();
  const double d1r = d1.real(), d1i = d1.imag();
  double* d = reinterpret_cast<double*>(amps);
  if (d0 == cplx{1.0, 0.0}) {
    // Z/S/T/P shape: only the |1> half of the state moves.
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(half); ++p) {
      const std::uint64_t i1 =
          insert_zero_bit(static_cast<std::uint64_t>(p), target) + s;
      const double ar = d[2 * i1], ai = d[2 * i1 + 1];
      d[2 * i1] = d1r * ar - d1i * ai;
      d[2 * i1 + 1] = d1r * ai + d1i * ar;
    }
    return;
  }
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
  for (std::int64_t p = 0; p < static_cast<std::int64_t>(half); ++p) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(p), target);
    const std::uint64_t i1 = i0 + s;
    const double a0r = d[2 * i0], a0i = d[2 * i0 + 1];
    const double a1r = d[2 * i1], a1i = d[2 * i1 + 1];
    d[2 * i0] = d0r * a0r - d0i * a0i;
    d[2 * i0 + 1] = d0r * a0i + d0i * a0r;
    d[2 * i1] = d1r * a1r - d1i * a1i;
    d[2 * i1 + 1] = d1r * a1i + d1i * a1r;
  }
}

void antidiag1q_portable(cplx* amps, std::uint64_t dim, std::size_t target,
                         cplx a01, cplx a10) {
  const std::uint64_t half = dim >> 1;
  const std::uint64_t s = std::uint64_t{1} << target;
  if (a01 == cplx{1.0, 0.0} && a10 == cplx{1.0, 0.0}) {
    // X: a pure exchange of the two half-spaces, no arithmetic at all.
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(half); ++p) {
      const std::uint64_t i0 =
          insert_zero_bit(static_cast<std::uint64_t>(p), target);
      std::swap(amps[i0], amps[i0 + s]);
    }
    return;
  }
  const double c01r = a01.real(), c01i = a01.imag();
  const double c10r = a10.real(), c10i = a10.imag();
  double* d = reinterpret_cast<double*>(amps);
#pragma omp parallel for schedule(static) if (half >= kParallelThreshold)
  for (std::int64_t p = 0; p < static_cast<std::int64_t>(half); ++p) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(p), target);
    const std::uint64_t i1 = i0 + s;
    const double a0r = d[2 * i0], a0i = d[2 * i0 + 1];
    const double a1r = d[2 * i1], a1i = d[2 * i1 + 1];
    d[2 * i0] = c01r * a1r - c01i * a1i;
    d[2 * i0 + 1] = c01r * a1i + c01i * a1r;
    d[2 * i1] = c10r * a0r - c10i * a0i;
    d[2 * i1 + 1] = c10r * a0i + c10i * a0r;
  }
}

// Portable column-major complex matvec over a gathered 2^k block. The
// __restrict__ qualifiers matter: without them the compiler must assume the
// output planes alias the matrix and re-load every column, which blocks
// vectorization of the accumulation loop.
void matvec_portable(const double* __restrict__ col_re,
                     const double* __restrict__ col_im,
                     const double* __restrict__ in_re,
                     const double* __restrict__ in_im,
                     double* __restrict__ out_re,
                     double* __restrict__ out_im, std::size_t block) noexcept {
  for (std::size_t r = 0; r < block; ++r) {
    out_re[r] = 0.0;
    out_im[r] = 0.0;
  }
  for (std::size_t c = 0; c < block; ++c) {
    const double b_re = in_re[c];
    const double b_im = in_im[c];
    const double* __restrict__ m_re = col_re + c * block;
    const double* __restrict__ m_im = col_im + c * block;
    for (std::size_t r = 0; r < block; ++r) {
      out_re[r] += m_re[r] * b_re - m_im[r] * b_im;
      out_im[r] += m_re[r] * b_im + m_im[r] * b_re;
    }
  }
}

// ---- AVX2 kernels -----------------------------------------------------------
// Intrinsics live in standalone helpers with a per-function target attribute
// (no global -mavx2): OpenMP regions are outlined by the compiler into
// functions that would not inherit the attribute, so the omp loops stay in
// plain callers that hand each helper a contiguous chunk. Data is processed
// as interleaved (re,im) lanes; a complex scale by (vr + i*vi) is
// fmaddsub(vr, a, vi * swap(a)): even lanes vr*re - vi*im, odd lanes
// vr*im + vi*re.

#if QUTES_KERNELS_X86

// Each iteration p covers two adjacent basis pairs: for target >= 1 the pair
// bases insert_zero_bit(2p) and insert_zero_bit(2p)+1 are contiguous, giving
// unit-stride 256-bit loads on both half-spaces.
__attribute__((target("avx2,fma"))) void dense1q_avx2_range(
    double* d, std::uint64_t begin, std::uint64_t end, std::size_t target,
    const cplx* u) {
  const std::uint64_t s = std::uint64_t{1} << target;
  const __m256d u00r = _mm256_set1_pd(u[0].real());
  const __m256d u00i = _mm256_set1_pd(u[0].imag());
  const __m256d u01r = _mm256_set1_pd(u[1].real());
  const __m256d u01i = _mm256_set1_pd(u[1].imag());
  const __m256d u10r = _mm256_set1_pd(u[2].real());
  const __m256d u10i = _mm256_set1_pd(u[2].imag());
  const __m256d u11r = _mm256_set1_pd(u[3].real());
  const __m256d u11i = _mm256_set1_pd(u[3].imag());
  for (std::uint64_t p = begin; p < end; ++p) {
    const std::uint64_t i0 = insert_zero_bit(2 * p, target);
    double* q0 = d + 2 * i0;
    double* q1 = d + 2 * (i0 + s);
    const __m256d a0 = _mm256_loadu_pd(q0);
    const __m256d a1 = _mm256_loadu_pd(q1);
    const __m256d a0s = _mm256_permute_pd(a0, 0x5);
    const __m256d a1s = _mm256_permute_pd(a1, 0x5);
    __m256d r0 = _mm256_fmaddsub_pd(u00r, a0, _mm256_mul_pd(u00i, a0s));
    r0 = _mm256_add_pd(r0, _mm256_fmaddsub_pd(u01r, a1, _mm256_mul_pd(u01i, a1s)));
    __m256d r1 = _mm256_fmaddsub_pd(u10r, a0, _mm256_mul_pd(u10i, a0s));
    r1 = _mm256_add_pd(r1, _mm256_fmaddsub_pd(u11r, a1, _mm256_mul_pd(u11i, a1s)));
    _mm256_storeu_pd(q0, r0);
    _mm256_storeu_pd(q1, r1);
  }
}

__attribute__((target("avx2,fma"))) void diag1q_avx2_range(
    double* d, std::uint64_t begin, std::uint64_t end, std::size_t target,
    cplx d0, cplx d1) {
  const std::uint64_t s = std::uint64_t{1} << target;
  const bool skip0 = d0 == cplx{1.0, 0.0};
  const __m256d d0r = _mm256_set1_pd(d0.real());
  const __m256d d0i = _mm256_set1_pd(d0.imag());
  const __m256d d1r = _mm256_set1_pd(d1.real());
  const __m256d d1i = _mm256_set1_pd(d1.imag());
  for (std::uint64_t p = begin; p < end; ++p) {
    const std::uint64_t i0 = insert_zero_bit(2 * p, target);
    double* q1 = d + 2 * (i0 + s);
    const __m256d a1 = _mm256_loadu_pd(q1);
    const __m256d a1s = _mm256_permute_pd(a1, 0x5);
    _mm256_storeu_pd(q1, _mm256_fmaddsub_pd(d1r, a1, _mm256_mul_pd(d1i, a1s)));
    if (skip0) continue;
    double* q0 = d + 2 * i0;
    const __m256d a0 = _mm256_loadu_pd(q0);
    const __m256d a0s = _mm256_permute_pd(a0, 0x5);
    _mm256_storeu_pd(q0, _mm256_fmaddsub_pd(d0r, a0, _mm256_mul_pd(d0i, a0s)));
  }
}

// FMA matvec over a gathered planar block (block % 4 == 0, i.e. k >= 2).
// Output accumulators live in registers for a whole row strip; the column
// loop is 4-way unrolled into 8 independent FMA chains so the loop is
// throughput-bound, not latency-bound. Real and imaginary planes never mix
// lanes, so no shuffles are needed.
__attribute__((target("avx2,fma"))) void matvec_avx2(
    const double* col_re, const double* col_im, const double* in_re,
    const double* in_im, double* out_re, double* out_im, std::size_t block) {
  for (std::size_t r = 0; r < block; r += 4) {
    __m256d ore0 = _mm256_setzero_pd(), oim0 = _mm256_setzero_pd();
    __m256d ore1 = _mm256_setzero_pd(), oim1 = _mm256_setzero_pd();
    __m256d ore2 = _mm256_setzero_pd(), oim2 = _mm256_setzero_pd();
    __m256d ore3 = _mm256_setzero_pd(), oim3 = _mm256_setzero_pd();
    for (std::size_t c = 0; c < block; c += 4) {
      const __m256d v0r = _mm256_loadu_pd(col_re + (c + 0) * block + r);
      const __m256d v0i = _mm256_loadu_pd(col_im + (c + 0) * block + r);
      const __m256d b0r = _mm256_broadcast_sd(in_re + c + 0);
      const __m256d b0i = _mm256_broadcast_sd(in_im + c + 0);
      ore0 = _mm256_fnmadd_pd(v0i, b0i, _mm256_fmadd_pd(v0r, b0r, ore0));
      oim0 = _mm256_fmadd_pd(v0i, b0r, _mm256_fmadd_pd(v0r, b0i, oim0));
      const __m256d v1r = _mm256_loadu_pd(col_re + (c + 1) * block + r);
      const __m256d v1i = _mm256_loadu_pd(col_im + (c + 1) * block + r);
      const __m256d b1r = _mm256_broadcast_sd(in_re + c + 1);
      const __m256d b1i = _mm256_broadcast_sd(in_im + c + 1);
      ore1 = _mm256_fnmadd_pd(v1i, b1i, _mm256_fmadd_pd(v1r, b1r, ore1));
      oim1 = _mm256_fmadd_pd(v1i, b1r, _mm256_fmadd_pd(v1r, b1i, oim1));
      const __m256d v2r = _mm256_loadu_pd(col_re + (c + 2) * block + r);
      const __m256d v2i = _mm256_loadu_pd(col_im + (c + 2) * block + r);
      const __m256d b2r = _mm256_broadcast_sd(in_re + c + 2);
      const __m256d b2i = _mm256_broadcast_sd(in_im + c + 2);
      ore2 = _mm256_fnmadd_pd(v2i, b2i, _mm256_fmadd_pd(v2r, b2r, ore2));
      oim2 = _mm256_fmadd_pd(v2i, b2r, _mm256_fmadd_pd(v2r, b2i, oim2));
      const __m256d v3r = _mm256_loadu_pd(col_re + (c + 3) * block + r);
      const __m256d v3i = _mm256_loadu_pd(col_im + (c + 3) * block + r);
      const __m256d b3r = _mm256_broadcast_sd(in_re + c + 3);
      const __m256d b3i = _mm256_broadcast_sd(in_im + c + 3);
      ore3 = _mm256_fnmadd_pd(v3i, b3i, _mm256_fmadd_pd(v3r, b3r, ore3));
      oim3 = _mm256_fmadd_pd(v3i, b3r, _mm256_fmadd_pd(v3r, b3i, oim3));
    }
    _mm256_storeu_pd(out_re + r, _mm256_add_pd(_mm256_add_pd(ore0, ore1),
                                               _mm256_add_pd(ore2, ore3)));
    _mm256_storeu_pd(out_im + r, _mm256_add_pd(_mm256_add_pd(oim0, oim1),
                                               _mm256_add_pd(oim2, oim3)));
  }
}

void dense1q_avx2(cplx* amps, std::uint64_t dim, std::size_t target,
                  const cplx* u) {
  double* d = reinterpret_cast<double*>(amps);
  const std::uint64_t iters = dim >> 2;  // two pairs per iteration
  const std::uint64_t chunks = (iters + kAvx2Chunk - 1) / kAvx2Chunk;
#pragma omp parallel for schedule(static) if ((dim >> 1) >= kParallelThreshold)
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(chunks); ++c) {
    const std::uint64_t begin = static_cast<std::uint64_t>(c) * kAvx2Chunk;
    dense1q_avx2_range(d, begin, std::min(iters, begin + kAvx2Chunk), target, u);
  }
}

void diag1q_avx2(cplx* amps, std::uint64_t dim, std::size_t target, cplx d0,
                 cplx d1) {
  double* d = reinterpret_cast<double*>(amps);
  const std::uint64_t iters = dim >> 2;
  const std::uint64_t chunks = (iters + kAvx2Chunk - 1) / kAvx2Chunk;
#pragma omp parallel for schedule(static) if ((dim >> 1) >= kParallelThreshold)
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(chunks); ++c) {
    const std::uint64_t begin = static_cast<std::uint64_t>(c) * kAvx2Chunk;
    diag1q_avx2_range(d, begin, std::min(iters, begin + kAvx2Chunk), target, d0, d1);
  }
}

// ---- AVX-512 k-qubit kernels ------------------------------------------------
// The fused-block matvec is where the time goes once gates are fused: a
// 2^k x 2^k complex matvec per group of 2^k amplitudes. On zmm registers a
// 16-row double strip needs two loads per column half, and splitting the
// accumulators by row half x column parity yields 8 independent FMA chains —
// enough to hide the 4-cycle FMA latency on a single 512-bit port. Gather
// and scatter use the hardware instructions with loop-invariant index
// vectors (the local-offset table doubles as the index base; per group only
// a broadcast add of 2*base changes).

// block ∈ {16, 32, 64} (k >= 4): rows advance in strips of 16.
__attribute__((target("avx512f,avx512dq"))) void matvec_avx512(
    const double* __restrict__ col_re, const double* __restrict__ col_im,
    const double* __restrict__ in_re, const double* __restrict__ in_im,
    double* __restrict__ out_re, double* __restrict__ out_im,
    std::size_t block) {
  for (std::size_t r = 0; r < block; r += 16) {
    __m512d oreA0 = _mm512_setzero_pd(), oimA0 = _mm512_setzero_pd();
    __m512d oreA1 = _mm512_setzero_pd(), oimA1 = _mm512_setzero_pd();
    __m512d oreB0 = _mm512_setzero_pd(), oimB0 = _mm512_setzero_pd();
    __m512d oreB1 = _mm512_setzero_pd(), oimB1 = _mm512_setzero_pd();
    for (std::size_t c = 0; c < block; c += 2) {
      const double* ma = col_re + c * block + r;
      const double* mai = col_im + c * block + r;
      const __m512d va0r = _mm512_loadu_pd(ma);
      const __m512d va0i = _mm512_loadu_pd(mai);
      const __m512d va1r = _mm512_loadu_pd(ma + 8);
      const __m512d va1i = _mm512_loadu_pd(mai + 8);
      const __m512d bar = _mm512_set1_pd(in_re[c]);
      const __m512d bai = _mm512_set1_pd(in_im[c]);
      oreA0 = _mm512_fmadd_pd(va0r, bar, oreA0);
      oreA0 = _mm512_fnmadd_pd(va0i, bai, oreA0);
      oimA0 = _mm512_fmadd_pd(va0r, bai, oimA0);
      oimA0 = _mm512_fmadd_pd(va0i, bar, oimA0);
      oreA1 = _mm512_fmadd_pd(va1r, bar, oreA1);
      oreA1 = _mm512_fnmadd_pd(va1i, bai, oreA1);
      oimA1 = _mm512_fmadd_pd(va1r, bai, oimA1);
      oimA1 = _mm512_fmadd_pd(va1i, bar, oimA1);
      const double* mb = col_re + (c + 1) * block + r;
      const double* mbi = col_im + (c + 1) * block + r;
      const __m512d vb0r = _mm512_loadu_pd(mb);
      const __m512d vb0i = _mm512_loadu_pd(mbi);
      const __m512d vb1r = _mm512_loadu_pd(mb + 8);
      const __m512d vb1i = _mm512_loadu_pd(mbi + 8);
      const __m512d bbr = _mm512_set1_pd(in_re[c + 1]);
      const __m512d bbi = _mm512_set1_pd(in_im[c + 1]);
      oreB0 = _mm512_fmadd_pd(vb0r, bbr, oreB0);
      oreB0 = _mm512_fnmadd_pd(vb0i, bbi, oreB0);
      oimB0 = _mm512_fmadd_pd(vb0r, bbi, oimB0);
      oimB0 = _mm512_fmadd_pd(vb0i, bbr, oimB0);
      oreB1 = _mm512_fmadd_pd(vb1r, bbr, oreB1);
      oreB1 = _mm512_fnmadd_pd(vb1i, bbi, oreB1);
      oimB1 = _mm512_fmadd_pd(vb1r, bbi, oimB1);
      oimB1 = _mm512_fmadd_pd(vb1i, bbr, oimB1);
    }
    _mm512_storeu_pd(out_re + r, _mm512_add_pd(oreA0, oreB0));
    _mm512_storeu_pd(out_re + r + 8, _mm512_add_pd(oreA1, oreB1));
    _mm512_storeu_pd(out_im + r, _mm512_add_pd(oimA0, oimB0));
    _mm512_storeu_pd(out_im + r + 8, _mm512_add_pd(oimA1, oimB1));
  }
}

// offset2[l] = 2 * local-offset[l] (double index of the re component);
// im sits at +1. k >= 4 so block is a multiple of 16 and every 8-lane slice
// of the offset table is full.
__attribute__((target("avx512f,avx512dq"))) void kq_dense_avx512_range(
    double* d, std::uint64_t gbegin, std::uint64_t gend,
    const std::size_t* sorted, std::size_t k, const std::int64_t* offset2,
    const double* col_re, const double* col_im) {
  const std::size_t block = std::size_t{1} << k;
  const std::size_t slices = block / 8;
  const __m512i one = _mm512_set1_epi64(1);
  for (std::uint64_t g = gbegin; g < gend; ++g) {
    std::uint64_t base = g;
    for (std::size_t j = 0; j < k; ++j) base = insert_zero_bit(base, sorted[j]);
    const __m512i b2 = _mm512_set1_epi64(static_cast<std::int64_t>(2 * base));
    alignas(64) std::array<double, 64> in_re, in_im, out_re, out_im;
    for (std::size_t s = 0; s < slices; ++s) {
      const __m512i ire = _mm512_add_epi64(
          _mm512_loadu_si512(offset2 + 8 * s), b2);
      const __m512i iim = _mm512_add_epi64(ire, one);
      // Masked gather with a zeroed source: the unmasked intrinsic expands
      // with an undefined pass-through operand that trips -Wmaybe-uninitialized.
      const __m512d zero = _mm512_setzero_pd();
      _mm512_store_pd(in_re.data() + 8 * s,
                      _mm512_mask_i64gather_pd(zero, 0xFF, ire, d, 8));
      _mm512_store_pd(in_im.data() + 8 * s,
                      _mm512_mask_i64gather_pd(zero, 0xFF, iim, d, 8));
    }
    matvec_avx512(col_re, col_im, in_re.data(), in_im.data(), out_re.data(),
                  out_im.data(), block);
    for (std::size_t s = 0; s < slices; ++s) {
      const __m512i ire = _mm512_add_epi64(
          _mm512_loadu_si512(offset2 + 8 * s), b2);
      const __m512i iim = _mm512_add_epi64(ire, one);
      _mm512_i64scatter_pd(d, ire, _mm512_load_pd(out_re.data() + 8 * s), 8);
      _mm512_i64scatter_pd(d, iim, _mm512_load_pd(out_im.data() + 8 * s), 8);
    }
  }
}

void kq_dense_avx512(cplx* amps, std::uint64_t dim, const std::size_t* sorted,
                     std::size_t k, const std::int64_t* offset2,
                     const double* col_re, const double* col_im) {
  double* d = reinterpret_cast<double*>(amps);
  const std::uint64_t groups = dim >> k;
  const std::uint64_t chunks = (groups + kAvx2Chunk - 1) / kAvx2Chunk;
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(chunks); ++c) {
    const std::uint64_t begin = static_cast<std::uint64_t>(c) * kAvx2Chunk;
    kq_dense_avx512_range(d, begin, std::min(groups, begin + kAvx2Chunk),
                          sorted, k, offset2, col_re, col_im);
  }
}

#endif  // QUTES_KERNELS_X86

}  // namespace

// ---- dispatch ---------------------------------------------------------------

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::Portable: return "portable";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "unknown";
}

bool isa_available(Isa isa) noexcept {
  switch (isa) {
    case Isa::Portable: return true;
    case Isa::Avx2: return cpu_has_avx2();
    case Isa::Avx512: return cpu_has_avx512();
  }
  return false;
}

Isa active_isa() noexcept {
  const int forced = g_isa_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa detected = detect_isa();
  return detected;
}

void force_isa(Isa isa) noexcept {
  if (!isa_available(isa)) isa = Isa::Portable;
  g_isa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void reset_isa() noexcept {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

// ---- classification ---------------------------------------------------------

Kind1q classify_1q(const cplx* u) noexcept {
  const bool z01 = u[1] == cplx{};
  const bool z10 = u[2] == cplx{};
  if (z01 && z10) return Kind1q::Diagonal;
  if (u[0] == cplx{} && u[3] == cplx{}) return Kind1q::Antidiagonal;
  return Kind1q::Dense;
}

bool is_diagonal_matrix(const cplx* matrix, std::size_t block) noexcept {
  for (std::size_t r = 0; r < block; ++r) {
    for (std::size_t c = 0; c < block; ++c) {
      if (r != c && matrix[r * block + c] != cplx{}) return false;
    }
  }
  return true;
}

// ---- single-qubit kernels ---------------------------------------------------

void apply_1q_dense(Isa isa, cplx* amps, std::uint64_t dim, std::size_t target,
                    const cplx* u) {
#if QUTES_KERNELS_X86
  // The paired-load layout needs target >= 1 (the target-0 pair straddles
  // vector lanes); dim >= 4 always holds there. Avx512 shares this path —
  // the 1q sweep is memory-bound, wider registers buy nothing.
  if (isa != Isa::Portable && target >= 1) {
    dense1q_avx2(amps, dim, target, u);
    return;
  }
#endif
  (void)isa;
  dense1q_portable(amps, dim, target, u);
}

void apply_1q_diag(Isa isa, cplx* amps, std::uint64_t dim, std::size_t target,
                   cplx d0, cplx d1) {
#if QUTES_KERNELS_X86
  if (isa != Isa::Portable && target >= 1) {
    diag1q_avx2(amps, dim, target, d0, d1);
    return;
  }
#endif
  (void)isa;
  diag1q_portable(amps, dim, target, d0, d1);
}

void apply_1q_antidiag(Isa isa, cplx* amps, std::uint64_t dim,
                       std::size_t target, cplx a01, cplx a10) {
  // Pure data movement (X) or a scaled swap: memory-bound either way, the
  // portable loop saturates bandwidth on every ISA.
  (void)isa;
  antidiag1q_portable(amps, dim, target, a01, a10);
}

// ---- controlled kernels -----------------------------------------------------
// Group enumeration touches dim >> (controls+1) pairs; the group loop is
// scalar (the pairs are scattered), so the ISA only matters for the trivial
// per-pair arithmetic and all variants share one body.

void apply_ctrl_1q_dense(Isa isa, cplx* amps, std::uint64_t dim,
                         const std::size_t* controls, std::size_t num_controls,
                         std::size_t target, const cplx* u) {
  (void)isa;
  std::array<std::size_t, 64> fixed{};
  std::uint64_t ctrl_mask = 0;
  const std::size_t f =
      prepare_ctrl(controls, num_controls, target, fixed.data(), &ctrl_mask);
  const std::uint64_t groups = dim >> f;
  const std::uint64_t t = std::uint64_t{1} << target;
  const cplx u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(groups); ++g) {
    std::uint64_t i0 = static_cast<std::uint64_t>(g);
    for (std::size_t j = 0; j < f; ++j) i0 = insert_zero_bit(i0, fixed[j]);
    i0 |= ctrl_mask;
    const std::uint64_t i1 = i0 | t;
    const cplx a0 = amps[i0];
    const cplx a1 = amps[i1];
    amps[i0] = u00 * a0 + u01 * a1;
    amps[i1] = u10 * a0 + u11 * a1;
  }
}

void apply_ctrl_1q_diag(Isa isa, cplx* amps, std::uint64_t dim,
                        const std::size_t* controls, std::size_t num_controls,
                        std::size_t target, cplx d0, cplx d1) {
  (void)isa;
  std::array<std::size_t, 64> fixed{};
  std::uint64_t ctrl_mask = 0;
  const std::size_t f =
      prepare_ctrl(controls, num_controls, target, fixed.data(), &ctrl_mask);
  const std::uint64_t groups = dim >> f;
  const std::uint64_t t = std::uint64_t{1} << target;
  const bool skip0 = d0 == cplx{1.0, 0.0};
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(groups); ++g) {
    std::uint64_t i0 = static_cast<std::uint64_t>(g);
    for (std::size_t j = 0; j < f; ++j) i0 = insert_zero_bit(i0, fixed[j]);
    i0 |= ctrl_mask;
    amps[i0 | t] *= d1;
    if (!skip0) amps[i0] *= d0;
  }
}

void apply_ctrl_1q_antidiag(Isa isa, cplx* amps, std::uint64_t dim,
                            const std::size_t* controls,
                            std::size_t num_controls, std::size_t target,
                            cplx a01, cplx a10) {
  (void)isa;
  std::array<std::size_t, 64> fixed{};
  std::uint64_t ctrl_mask = 0;
  const std::size_t f =
      prepare_ctrl(controls, num_controls, target, fixed.data(), &ctrl_mask);
  const std::uint64_t groups = dim >> f;
  const std::uint64_t t = std::uint64_t{1} << target;
  const bool pure_swap = a01 == cplx{1.0, 0.0} && a10 == cplx{1.0, 0.0};
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(groups); ++g) {
    std::uint64_t i0 = static_cast<std::uint64_t>(g);
    for (std::size_t j = 0; j < f; ++j) i0 = insert_zero_bit(i0, fixed[j]);
    i0 |= ctrl_mask;
    const std::uint64_t i1 = i0 | t;
    if (pure_swap) {
      std::swap(amps[i0], amps[i1]);
    } else {
      const cplx a0 = amps[i0];
      amps[i0] = a01 * amps[i1];
      amps[i1] = a10 * a0;
    }
  }
}

// ---- k-qubit kernels --------------------------------------------------------

void apply_kq_dense(Isa isa, cplx* amps, std::uint64_t dim,
                    const std::size_t* targets, std::size_t k,
                    const cplx* matrix) {
  // Sorted targets drive the zero-bit insertion (ascending order keeps each
  // later insertion position valid); the unsorted order defines local bits.
  // Insertion sort: k is tiny, and std::sort on a partial array trips GCC's
  // -Warray-bounds.
  std::array<std::size_t, 6> sorted{};
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t pos = j;
    while (pos > 0 && sorted[pos - 1] > targets[j]) {
      sorted[pos] = sorted[pos - 1];
      --pos;
    }
    sorted[pos] = targets[j];
  }

  const std::size_t block = std::size_t{1} << k;
  // offset[l] = scattered bit pattern of local index l over the targets;
  // group base + offset[l] = global index (disjoint bit sets). Hoisted out
  // of the group loop along with the planar matrix split below.
  std::array<std::uint64_t, 64> offset{};
  for (std::size_t l = 0; l < block; ++l) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if ((l >> j) & 1u) bits |= std::uint64_t{1} << targets[j];
    }
    offset[l] = bits;
  }

  // Planar, column-major split of the matrix: std::complex arithmetic
  // defeats auto-vectorization (strict FP semantics forbid reassociating the
  // row dot product), and walking columns makes the inner loop independent
  // accumulations over contiguous doubles.
  std::array<double, 64 * 64> col_re;
  std::array<double, 64 * 64> col_im;
  for (std::size_t r = 0; r < block; ++r) {
    for (std::size_t c = 0; c < block; ++c) {
      col_re[c * block + r] = matrix[r * block + c].real();
      col_im[c * block + r] = matrix[r * block + c].imag();
    }
  }

#if QUTES_KERNELS_X86
  // k >= 4 on AVX-512 hardware goes through the zmm matvec with hardware
  // gather/scatter; narrower blocks stay on the ymm path (an 8-row strip
  // cannot fill the 8 accumulator chains the 512-bit port needs).
  if (isa == Isa::Avx512 && k >= 4) {
    alignas(64) std::array<std::int64_t, 64> offset2;
    for (std::size_t l = 0; l < block; ++l) {
      offset2[l] = static_cast<std::int64_t>(2 * offset[l]);
    }
    kq_dense_avx512(amps, dim, sorted.data(), k, offset2.data(),
                    col_re.data(), col_im.data());
    return;
  }
  const bool use_avx2 = isa != Isa::Portable && k >= 2;
#else
  const bool use_avx2 = false;
  (void)isa;
#endif
  const std::uint64_t groups = dim >> k;
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(groups); ++g) {
    std::uint64_t base = static_cast<std::uint64_t>(g);
    for (std::size_t j = 0; j < k; ++j) base = insert_zero_bit(base, sorted[j]);
    std::array<double, 64> in_re;
    std::array<double, 64> in_im;
    std::array<double, 64> out_re;
    std::array<double, 64> out_im;
    for (std::size_t l = 0; l < block; ++l) {
      const cplx a = amps[base + offset[l]];
      in_re[l] = a.real();
      in_im[l] = a.imag();
    }
#if QUTES_KERNELS_X86
    if (use_avx2) {
      matvec_avx2(col_re.data(), col_im.data(), in_re.data(), in_im.data(),
                  out_re.data(), out_im.data(), block);
    } else
#endif
    {
      matvec_portable(col_re.data(), col_im.data(), in_re.data(), in_im.data(),
                      out_re.data(), out_im.data(), block);
    }
    for (std::size_t r = 0; r < block; ++r) {
      amps[base + offset[r]] = cplx{out_re[r], out_im[r]};
    }
  }
#if !QUTES_KERNELS_X86
  (void)use_avx2;
#endif
}

void apply_kq_diag(Isa isa, cplx* amps, std::uint64_t dim,
                   const std::size_t* targets, std::size_t k,
                   const cplx* diag) {
  // One complex multiply per amplitude: memory-bound, no SIMD variant.
  (void)isa;
  std::array<std::size_t, 6> sorted{};
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t pos = j;
    while (pos > 0 && sorted[pos - 1] > targets[j]) {
      sorted[pos] = sorted[pos - 1];
      --pos;
    }
    sorted[pos] = targets[j];
  }
  const std::size_t block = std::size_t{1} << k;
  std::array<std::uint64_t, 64> offset{};
  for (std::size_t l = 0; l < block; ++l) {
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if ((l >> j) & 1u) bits |= std::uint64_t{1} << targets[j];
    }
    offset[l] = bits;
  }
  const std::uint64_t groups = dim >> k;
#pragma omp parallel for schedule(static) if (groups >= kParallelThreshold)
  for (std::int64_t g = 0; g < static_cast<std::int64_t>(groups); ++g) {
    std::uint64_t base = static_cast<std::uint64_t>(g);
    for (std::size_t j = 0; j < k; ++j) base = insert_zero_bit(base, sorted[j]);
    for (std::size_t l = 0; l < block; ++l) {
      amps[base + offset[l]] *= diag[l];
    }
  }
}

}  // namespace qutes::sim::kernels
