#include "qutes/sim/statevector.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <new>
#include <numeric>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/sim/kernels.hpp"

namespace qutes::sim {

namespace {

// Below this many amplitudes the OpenMP fork/join overhead exceeds the work.
constexpr std::uint64_t kParallelThreshold = std::uint64_t{1} << 14;

// Probabilities below this are treated as impossible outcomes when
// collapsing; guards against dividing by ~0 norms from roundoff.
constexpr double kProbEpsilon = 1e-15;

// Kernel-dispatch counters, resolved once (adds are no-ops with metrics off).
struct KernelMetrics {
  obs::Counter& dense_1q = obs::metrics().counter(obs::names::kSvKernel1qDense);
  obs::Counter& diag_1q = obs::metrics().counter(obs::names::kSvKernel1qDiag);
  obs::Counter& perm_1q = obs::metrics().counter(obs::names::kSvKernel1qPerm);
  obs::Counter& dense_ctrl = obs::metrics().counter(obs::names::kSvKernelCtrlDense);
  obs::Counter& diag_ctrl = obs::metrics().counter(obs::names::kSvKernelCtrlDiag);
  obs::Counter& perm_ctrl = obs::metrics().counter(obs::names::kSvKernelCtrlPerm);
  obs::Counter& dense_kq = obs::metrics().counter(obs::names::kSvKernelKqDense);
  obs::Counter& diag_kq = obs::metrics().counter(obs::names::kSvKernelKqDiag);
  obs::Counter& simd = obs::metrics().counter(obs::names::kSvKernelSimd);
};

KernelMetrics& kernel_metrics() {
  static KernelMetrics m;
  return m;
}

}  // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits == 0) throw InvalidArgument("StateVector needs at least 1 qubit");
  if (num_qubits > kMaxQubits) {
    throw SimulationError(
        "statevector over " + std::to_string(num_qubits) + " qubits needs 2^" +
        std::to_string(num_qubits) + " dense amplitudes (limit " +
        std::to_string(kMaxQubits) + "); the mps backend scales with "
        "entanglement instead — try --backend mps — and Clifford-only "
        "circuits run at any width on --backend stabilizer");
  }
  try {
    amps_.assign(dim_of(num_qubits), cplx{});
  } catch (const std::bad_alloc&) {
    throw SimulationError("allocating 2^" + std::to_string(num_qubits) +
                          " dense amplitudes failed (out of memory); "
                          "try --backend mps");
  }
  amps_[0] = cplx{1.0, 0.0};
}

StateVector StateVector::from_amplitudes(std::vector<cplx> amplitudes) {
  const std::size_t n = amplitudes.size();
  if (n < 2 || (n & (n - 1)) != 0) {
    throw InvalidArgument("amplitude count must be a power of two >= 2");
  }
  double norm2 = 0.0;
  for (const cplx& a : amplitudes) norm2 += std::norm(a);
  if (std::abs(norm2 - 1.0) > 1e-8) {
    throw InvalidArgument("amplitudes are not normalized (|psi|^2 = " +
                          std::to_string(norm2) + ")");
  }
  StateVector sv(bits_for(n - 1));
  sv.amps_ = std::move(amplitudes);
  return sv;
}

cplx StateVector::amplitude(std::uint64_t index) const {
  if (index >= dim()) throw InvalidArgument("basis index out of range");
  return amps_[index];
}

void StateVector::set_basis_state(std::uint64_t index) {
  if (index >= dim()) throw InvalidArgument("basis index out of range");
  std::fill(amps_.begin(), amps_.end(), cplx{});
  amps_[index] = cplx{1.0, 0.0};
}

void StateVector::add_qubits(std::size_t count) {
  if (count == 0) return;
  if (num_qubits_ + count > kMaxQubits) {
    throw SimulationError("register growth past " + std::to_string(kMaxQubits) +
                          " qubits; try --backend mps (or --backend "
                          "stabilizer for Clifford-only circuits)");
  }
  // New qubits sit at the high end in |0>, so the existing amplitudes keep
  // their indices and the tail is zero.
  num_qubits_ += count;
  amps_.resize(dim_of(num_qubits_), cplx{});
}

void StateVector::check_qubit(std::size_t q, const char* what) const {
  if (q >= num_qubits_) {
    throw InvalidArgument(std::string(what) + ": qubit " + std::to_string(q) +
                          " out of range (n=" + std::to_string(num_qubits_) + ")");
  }
}

void StateVector::apply_1q(const Matrix2& u, std::size_t target) {
  check_qubit(target, "apply_1q");
  KernelMetrics& m = kernel_metrics();
  const kernels::Isa isa = kernels::active_isa();
  switch (kernels::classify_1q(u.m.data())) {
    case kernels::Kind1q::Diagonal:
      m.diag_1q.add(1);
      kernels::apply_1q_diag(isa, amps_.data(), dim(), target, u.m[0], u.m[3]);
      return;
    case kernels::Kind1q::Antidiagonal:
      m.perm_1q.add(1);
      kernels::apply_1q_antidiag(isa, amps_.data(), dim(), target, u.m[1], u.m[2]);
      return;
    case kernels::Kind1q::Dense:
      break;
  }
  m.dense_1q.add(1);
  if (isa != kernels::Isa::Portable) m.simd.add(1);
  kernels::apply_1q_dense(isa, amps_.data(), dim(), target, u.m.data());
}

void StateVector::apply_controlled_1q(const Matrix2& u, std::size_t control,
                                      std::size_t target) {
  const std::size_t ctrl[1] = {control};
  apply_multi_controlled_1q(u, ctrl, target);
}

void StateVector::apply_multi_controlled_1q(const Matrix2& u,
                                            std::span<const std::size_t> controls,
                                            std::size_t target) {
  if (controls.empty()) {
    apply_1q(u, target);
    return;
  }
  check_qubit(target, "apply_multi_controlled_1q");
  std::uint64_t ctrl_mask = 0;
  for (std::size_t c : controls) {
    check_qubit(c, "apply_multi_controlled_1q");
    if (c == target) throw InvalidArgument("control equals target");
    if (ctrl_mask & (std::uint64_t{1} << c)) {
      throw InvalidArgument("apply_multi_controlled_1q: duplicate control");
    }
    ctrl_mask |= std::uint64_t{1} << c;
  }
  KernelMetrics& m = kernel_metrics();
  const kernels::Isa isa = kernels::active_isa();
  switch (kernels::classify_1q(u.m.data())) {
    case kernels::Kind1q::Diagonal:
      m.diag_ctrl.add(1);
      kernels::apply_ctrl_1q_diag(isa, amps_.data(), dim(), controls.data(),
                                  controls.size(), target, u.m[0], u.m[3]);
      return;
    case kernels::Kind1q::Antidiagonal:
      m.perm_ctrl.add(1);
      kernels::apply_ctrl_1q_antidiag(isa, amps_.data(), dim(), controls.data(),
                                      controls.size(), target, u.m[1], u.m[2]);
      return;
    case kernels::Kind1q::Dense:
      break;
  }
  m.dense_ctrl.add(1);
  kernels::apply_ctrl_1q_dense(isa, amps_.data(), dim(), controls.data(),
                               controls.size(), target, u.m.data());
}

void StateVector::apply_2q(const Matrix4& u, std::size_t q0, std::size_t q1) {
  check_qubit(q0, "apply_2q");
  check_qubit(q1, "apply_2q");
  if (q0 == q1) throw InvalidArgument("apply_2q: identical qubits");
  // Local bit 0 of the 4x4 matrix acts on q0, bit 1 on q1 — exactly the
  // k-qubit kernel's convention.
  const std::size_t targets[2] = {q0, q1};
  KernelMetrics& m = kernel_metrics();
  const kernels::Isa isa = kernels::active_isa();
  if (kernels::is_diagonal_matrix(u.m.data(), 4)) {
    const cplx diag[4] = {u.m[0], u.m[5], u.m[10], u.m[15]};
    m.diag_kq.add(1);
    kernels::apply_kq_diag(isa, amps_.data(), dim(), targets, 2, diag);
    return;
  }
  m.dense_kq.add(1);
  if (isa != kernels::Isa::Portable) m.simd.add(1);
  kernels::apply_kq_dense(isa, amps_.data(), dim(), targets, 2, u.m.data());
}

void StateVector::apply_kq(const MatrixN& u, std::span<const std::size_t> targets) {
  const std::size_t k = targets.size();
  if (k == 0 || k != u.num_qubits()) {
    throw InvalidArgument("apply_kq: matrix width must equal target count");
  }
  if (k > num_qubits_) throw InvalidArgument("apply_kq: block wider than register");
  std::uint64_t target_mask = 0;
  for (std::size_t q : targets) {
    check_qubit(q, "apply_kq");
    if (target_mask & (std::uint64_t{1} << q)) {
      throw InvalidArgument("apply_kq: duplicate target qubit");
    }
    target_mask |= std::uint64_t{1} << q;
  }
  if (k == 1) {
    apply_1q(Matrix2{{u(0, 0), u(0, 1), u(1, 0), u(1, 1)}}, targets[0]);
    return;
  }

  const std::size_t block = std::size_t{1} << k;
  KernelMetrics& m = kernel_metrics();
  const kernels::Isa isa = kernels::active_isa();
  if (kernels::is_diagonal_matrix(u.data(), block)) {
    // Fused chains of phase-type gates land here: one multiply per
    // amplitude instead of a dense 2^k x 2^k matvec.
    std::array<cplx, std::size_t{1} << MatrixN::kMaxQubits> diag;
    for (std::size_t l = 0; l < block; ++l) diag[l] = u(l, l);
    m.diag_kq.add(1);
    kernels::apply_kq_diag(isa, amps_.data(), dim(), targets.data(), k,
                           diag.data());
    return;
  }
  m.dense_kq.add(1);
  if (isa != kernels::Isa::Portable) m.simd.add(1);
  kernels::apply_kq_dense(isa, amps_.data(), dim(), targets.data(), k, u.data());
}

void StateVector::apply_swap(std::size_t a, std::size_t b) {
  check_qubit(a, "apply_swap");
  check_qubit(b, "apply_swap");
  if (a == b) return;
  const std::uint64_t quarter = dim() >> 2;
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  cplx* amps = amps_.data();
#pragma omp parallel for schedule(static) if (quarter >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(quarter); ++i) {
    const std::uint64_t base =
        insert_zero_bit(insert_zero_bit(static_cast<std::uint64_t>(i), lo), hi);
    const std::uint64_t i01 = set_bit(base, a);
    const std::uint64_t i10 = set_bit(base, b);
    std::swap(amps[i01], amps[i10]);
  }
}

void StateVector::apply_phase(double lambda, std::size_t target) {
  check_qubit(target, "apply_phase");
  KernelMetrics& m = kernel_metrics();
  m.diag_1q.add(1);
  kernels::apply_1q_diag(kernels::active_isa(), amps_.data(), dim(), target,
                         cplx{1.0, 0.0}, std::exp(cplx{0.0, lambda}));
}

void StateVector::apply_cphase(double lambda, std::size_t control, std::size_t target) {
  check_qubit(control, "apply_cphase");
  check_qubit(target, "apply_cphase");
  if (control == target) throw InvalidArgument("apply_cphase: identical qubits");
  // diag(1, e^{i lambda}) on the control-selected pairs: touches dim/4
  // amplitudes instead of scanning all of them.
  KernelMetrics& m = kernel_metrics();
  m.diag_ctrl.add(1);
  const std::size_t ctrl[1] = {control};
  kernels::apply_ctrl_1q_diag(kernels::active_isa(), amps_.data(), dim(), ctrl,
                              1, target, cplx{1.0, 0.0},
                              std::exp(cplx{0.0, lambda}));
}

void StateVector::apply_global_phase(double lambda) {
  const cplx phase = std::exp(cplx{0.0, lambda});
  const std::uint64_t n = dim();
  cplx* amps = amps_.data();
#pragma omp parallel for schedule(static) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    amps[i] *= phase;
  }
}

double StateVector::probability_one(std::size_t qubit) const {
  check_qubit(qubit, "probability_one");
  const std::uint64_t n = dim();
  const cplx* amps = amps_.data();
  double p = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : p) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (test_bit(static_cast<std::uint64_t>(i), qubit)) p += std::norm(amps[i]);
  }
  return p;
}

std::vector<double> StateVector::probabilities() const {
  const std::uint64_t n = dim();
  std::vector<double> probs(n);
  const cplx* amps = amps_.data();
  double* out = probs.data();
#pragma omp parallel for schedule(static) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    out[i] = std::norm(amps[i]);
  }
  return probs;
}

int StateVector::measure(std::size_t qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double p = outcome ? p1 : 1.0 - p1;
  if (p < kProbEpsilon) {
    throw SimulationError("measured an outcome with vanishing probability");
  }
  const double scale = 1.0 / std::sqrt(p);
  const std::uint64_t n = dim();
  cplx* amps = amps_.data();
#pragma omp parallel for schedule(static) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (test_bit(static_cast<std::uint64_t>(i), qubit) == (outcome == 1)) {
      amps[i] *= scale;
    } else {
      amps[i] = cplx{};
    }
  }
  return outcome;
}

std::uint64_t StateVector::measure_all(Rng& rng) {
  const std::uint64_t outcome = sample(rng);
  set_basis_state(outcome);
  return outcome;
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double r = rng.uniform();
  for (std::uint64_t i = 0; i < dim(); ++i) {
    r -= std::norm(amps_[i]);
    if (r <= 0.0) return i;
  }
  // Roundoff pushed the cumulative sum slightly under 1; return the last
  // state with nonzero probability.
  for (std::uint64_t i = dim(); i-- > 0;) {
    if (std::norm(amps_[i]) > 0.0) return i;
  }
  throw SimulationError("sampling from a zero state");
}

Counts StateVector::sample_counts(std::size_t shots, Rng& rng,
                                  std::span<const std::size_t> qubits) const {
  // Build the cumulative distribution once; each shot is then a binary
  // search instead of a linear scan.
  std::vector<double> cdf(dim());
  double acc = 0.0;
  for (std::uint64_t i = 0; i < dim(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  Counts counts;
  for (std::size_t s = 0; s < shots; ++s) {
    const double r = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    std::uint64_t idx = static_cast<std::uint64_t>(it - cdf.begin());
    if (idx >= dim()) idx = dim() - 1;
    std::string key;
    if (qubits.empty()) {
      key = to_bitstring(idx, num_qubits_);
    } else {
      key.resize(qubits.size());
      for (std::size_t q = 0; q < qubits.size(); ++q) {
        key[qubits.size() - 1 - q] = test_bit(idx, qubits[q]) ? '1' : '0';
      }
    }
    ++counts[key];
  }
  return counts;
}

void StateVector::reset_qubit(std::size_t qubit, Rng& rng) {
  if (measure(qubit, rng) == 1) apply_1q(gates::X(), qubit);
}

double StateVector::norm() const {
  const std::uint64_t n = dim();
  const cplx* amps = amps_.data();
  double n2 = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : n2) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    n2 += std::norm(amps[i]);
  }
  return std::sqrt(n2);
}

void StateVector::normalize() {
  const double nrm = norm();
  if (nrm < kProbEpsilon) throw SimulationError("normalizing a zero state");
  const double inv = 1.0 / nrm;
  const std::uint64_t n = dim();
  cplx* amps = amps_.data();
#pragma omp parallel for schedule(static) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    amps[i] *= inv;
  }
}

cplx StateVector::inner_product(const StateVector& other) const {
  if (dim() != other.dim()) {
    throw InvalidArgument("inner_product: dimension mismatch");
  }
  const std::uint64_t n = dim();
  const cplx* a = amps_.data();
  const cplx* b = other.amps_.data();
  double re = 0.0, im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : re, im) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const cplx v = std::conj(a[i]) * b[i];
    re += v.real();
    im += v.imag();
  }
  return {re, im};
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

double StateVector::expectation_z(std::size_t qubit) const {
  return 1.0 - 2.0 * probability_one(qubit);
}

double StateVector::expectation_zz(std::size_t a, std::size_t b) const {
  check_qubit(a, "expectation_zz");
  check_qubit(b, "expectation_zz");
  const std::uint64_t n = dim();
  const cplx* amps = amps_.data();
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc) if (n >= kParallelThreshold)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    const bool parity = test_bit(idx, a) ^ test_bit(idx, b);
    acc += (parity ? -1.0 : 1.0) * std::norm(amps[i]);
  }
  return acc;
}

}  // namespace qutes::sim
