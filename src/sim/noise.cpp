#include "qutes/sim/noise.hpp"

#include <cmath>

#include "qutes/common/error.hpp"

namespace qutes::sim {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw InvalidArgument(std::string(what) + ": probability out of [0,1]");
  }
}

}  // namespace

void apply_depolarizing(StateVector& sv, std::size_t qubit, double p, Rng& rng) {
  check_probability(p, "apply_depolarizing");
  if (rng.uniform() >= p) return;
  switch (rng.below(3)) {
    case 0: sv.apply_1q(gates::X(), qubit); break;
    case 1: sv.apply_1q(gates::Y(), qubit); break;
    default: sv.apply_1q(gates::Z(), qubit); break;
  }
}

void apply_bit_flip(StateVector& sv, std::size_t qubit, double p, Rng& rng) {
  check_probability(p, "apply_bit_flip");
  if (rng.uniform() < p) sv.apply_1q(gates::X(), qubit);
}

void apply_phase_flip(StateVector& sv, std::size_t qubit, double p, Rng& rng) {
  check_probability(p, "apply_phase_flip");
  if (rng.uniform() < p) sv.apply_1q(gates::Z(), qubit);
}

void apply_amplitude_damping(StateVector& sv, std::size_t qubit, double gamma, Rng& rng) {
  check_probability(gamma, "apply_amplitude_damping");
  if (gamma == 0.0) return;
  // Kraus operators: K0 = diag(1, sqrt(1-gamma)), K1 = sqrt(gamma) |0><1|.
  // Branch K1 fires with probability gamma * P(|1>).
  const double p1 = sv.probability_one(qubit);
  const double p_decay = gamma * p1;
  if (rng.uniform() < p_decay) {
    // Project onto |1>, then flip to |0> — the decay branch.
    // (measure() would be probabilistic; here the branch choice has already
    // been made, so project deterministically via K1.)
    Matrix2 k1{{cplx{}, cplx{1.0}, cplx{}, cplx{}}};  // |0><1|
    sv.apply_1q(k1, qubit);
    sv.normalize();
  } else {
    Matrix2 k0{{cplx{1.0}, cplx{}, cplx{}, cplx{std::sqrt(1.0 - gamma)}}};
    sv.apply_1q(k0, qubit);
    sv.normalize();
  }
}

int apply_readout_error(int outcome, double p, Rng& rng) {
  check_probability(p, "apply_readout_error");
  if (rng.uniform() < p) return outcome ^ 1;
  return outcome;
}

}  // namespace qutes::sim
