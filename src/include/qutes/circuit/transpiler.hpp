// Circuit lowering and optimization passes.
//
// Replaces qiskit.transpile() for the purposes of this project:
//  * decompose_multicontrolled — lower MCX/MCZ/MCP (and CSWAP) to
//    {1q, CX, CCX, CP}, allocating a fresh clean-ancilla register for the
//    V-chain construction when a gate has >= 3 controls. Linear Toffoli
//    count in the number of controls (Barenco et al. 1995).
//  * decompose_to_basis — full lowering to the {u, cx} basis (what a real
//    backend would accept); implies multi-controlled lowering first.
//  * optimize — peephole passes: cancel adjacent self-inverse pairs, fuse
//    consecutive phase rotations on one qubit, drop identity rotations.
//
// Passes are pure functions circuit -> circuit; composition order is up to
// the caller (transpile() runs the standard pipeline). Every function here
// is a thin wrapper over a one-pass PassManager (see pass_manager.hpp) —
// compose, reorder, or instrument the underlying passes through that API.
#pragma once

#include "qutes/circuit/circuit.hpp"

namespace qutes::circ {

struct TranspileOptions {
  bool lower_multicontrolled = true;
  bool to_basis = false;
  int optimization_level = 1;  // 0 = none, 1 = peephole to fixpoint
};

/// Lower MCX/MCZ/MCP/CSWAP to {1q gates, CX, CCX, CP}. Gates with >= 3
/// controls use a V-chain over a shared clean ancilla register appended to
/// the output circuit (register "anc"), sized for the widest gate.
[[nodiscard]] QuantumCircuit decompose_multicontrolled(const QuantumCircuit& circuit);

/// Lower every unitary to the {u, cx} basis. Includes multi-controlled
/// lowering. Measure/reset/barrier pass through.
[[nodiscard]] QuantumCircuit decompose_to_basis(const QuantumCircuit& circuit);

/// Peephole optimizer. Runs to fixpoint (bounded by `max_passes`).
[[nodiscard]] QuantumCircuit optimize(const QuantumCircuit& circuit, int max_passes = 8);

/// Standard pipeline: lowerings per options, then optimization.
/// Deprecated: compose the equivalent pipeline through PassManager presets —
/// make_pipeline(Preset::O1) subsumes the default options (it additionally
/// runs ReorderCommuting before the peephole), Preset::Basis the to_basis
/// variant (pass_manager.hpp) — which adds per-pass instrumentation and a
/// PropertySet the free function cannot return.
[[deprecated("use make_pipeline(Preset::O1) / make_pipeline(Preset::Basis)")]]
[[nodiscard]] QuantumCircuit transpile(const QuantumCircuit& circuit,
                                       const TranspileOptions& options = {});

}  // namespace qutes::circ
