// OpenQASM 2.0 interchange.
//
// The paper lists "export Qutes code to ... QASM" as future work; we
// implement it (plus an importer, so circuits round-trip). The dialect is
// OpenQASM 2.0 with qelib1.inc gate names, extended with single-bit
// conditions `if (c[i] == v)` — the only conditional form the Qutes
// compiler emits. Multi-controlled gates are lowered to the qelib1 basis
// before emission.
#pragma once

#include <string>

#include "qutes/circuit/circuit.hpp"

namespace qutes::circ::qasm {

/// Serialize a circuit to OpenQASM 2.0. Multi-controlled instructions are
/// decomposed first; register names are preserved.
[[nodiscard]] std::string export_circuit(const QuantumCircuit& circuit);

/// Parse OpenQASM 2.0 (the subset produced by export_circuit plus common
/// hand-written programs: qreg/creg, qelib1 gates, measure, reset, barrier,
/// single-bit if). Throws CircuitError with a line number on malformed input.
[[nodiscard]] QuantumCircuit import_circuit(const std::string& source);

}  // namespace qutes::circ::qasm
