// Circuit instruction set.
//
// One Instruction is one timeline entry of a QuantumCircuit: a gate, a
// measurement, a reset, or a barrier. Multi-controlled gates store their
// controls inline (qubits = [controls..., target]) so the transpiler can
// lower them late, exactly like Qiskit's mcx/mcp instructions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"

namespace qutes::circ {

enum class GateType {
  // 1-qubit, no parameter
  H, X, Y, Z, S, Sdg, T, Tdg, SX,
  // 1-qubit, parameterized
  RX, RY, RZ, P, U,
  // 2-qubit
  CX, CY, CZ, CH, CP, CRZ, SWAP,
  // 3-qubit
  CCX, CSWAP,
  // n-qubit (qubits = [controls..., target])
  MCX, MCZ, MCP,
  // non-unitary / structural
  Measure, Reset, Barrier, GlobalPhase,
};

/// Number of qubit operands a gate type takes, or 0 if variadic (MC*,
/// Barrier) — callers must size those explicitly.
[[nodiscard]] std::size_t fixed_arity(GateType type) noexcept;

/// Number of double parameters the gate carries.
[[nodiscard]] std::size_t param_count(GateType type) noexcept;

/// Lower-case mnemonic ("h", "cx", "mcp", "measure", ...).
[[nodiscard]] const char* gate_name(GateType type) noexcept;

/// True for purely unitary operations (excludes Measure/Reset/Barrier).
[[nodiscard]] bool is_unitary_gate(GateType type) noexcept;

/// Classical condition attached to an instruction: execute only when the
/// given classical bit currently holds `value` (OpenQASM `if` semantics,
/// restricted to single bits as emitted by the Qutes compiler).
struct Condition {
  std::size_t clbit = 0;
  int value = 1;
};

/// A symbolic circuit parameter: a name plus its index into the owning
/// circuit's parameter table. Obtained from QuantumCircuit::parameter() and
/// usable anywhere a rotation angle goes (the Qiskit ParameterVector analog):
/// `qc.rx(qc.parameter("theta"), 0)`.
struct Param {
  std::string name;
  std::size_t index = 0;
};

/// A rotation angle operand: either a concrete value or a reference to a
/// circuit parameter. Implicitly convertible from double and Param so
/// existing `qc.rx(0.5, q)` call sites keep compiling unchanged.
struct Angle {
  double value = 0.0;  ///< concrete angle, or the current binding of `param`
  int param = -1;      ///< parameter-table index, or -1 for concrete

  Angle(double v) : value(v) {}  // NOLINT(google-explicit-constructor)
  Angle(const Param& p)          // NOLINT(google-explicit-constructor)
      : value(0.0), param(static_cast<int>(p.index)) {}

  [[nodiscard]] bool is_symbolic() const noexcept { return param >= 0; }
};

struct Instruction {
  GateType type;
  std::vector<std::size_t> qubits;  // for MC*: [controls..., target]
  std::vector<double> params;
  /// Symbolic-parameter references, parallel to `params`. Empty means fully
  /// concrete (the common case — no per-instruction overhead). Otherwise the
  /// same length as `params`: entry i is -1 when params[i] is a plain number,
  /// or the parameter-table index whose binding params[i] currently mirrors
  /// (0.0 until bound). Simulation always reads `params`, so an unbound
  /// symbolic instruction still *evaluates* — executors reject it up front.
  std::vector<int> param_refs;
  std::vector<std::size_t> clbits;  // Measure: destination bits, 1:1 with qubits
  std::optional<Condition> condition;

  /// Target qubit of a (multi-)controlled instruction: the last operand.
  /// Throws instead of invoking UB when the instruction has no qubit
  /// operands (e.g. GlobalPhase or an implicit full-width barrier).
  [[nodiscard]] std::size_t target() const {
    if (qubits.empty()) {
      throw CircuitError("Instruction::target(): instruction has no qubit operands");
    }
    return qubits.back();
  }

  /// True when any operand is a symbolic (unbound) parameter reference.
  [[nodiscard]] bool is_parameterized() const noexcept {
    for (int r : param_refs) {
      if (r >= 0) return true;
    }
    return false;
  }

  /// Parameter-table index behind params[i], or -1 when concrete.
  [[nodiscard]] int param_ref(std::size_t i) const noexcept {
    return i < param_refs.size() ? param_refs[i] : -1;
  }
};

/// Operand i of `in` as an Angle, preserving a symbolic reference. Lowering
/// passes use this to relay an angle into a decomposition unchanged.
[[nodiscard]] inline Angle angle_of(const Instruction& in, std::size_t i) {
  Angle a(in.params[i]);
  a.param = in.param_ref(i);
  return a;
}

}  // namespace qutes::circ
