// Circuit instruction set.
//
// One Instruction is one timeline entry of a QuantumCircuit: a gate, a
// measurement, a reset, or a barrier. Multi-controlled gates store their
// controls inline (qubits = [controls..., target]) so the transpiler can
// lower them late, exactly like Qiskit's mcx/mcp instructions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"

namespace qutes::circ {

enum class GateType {
  // 1-qubit, no parameter
  H, X, Y, Z, S, Sdg, T, Tdg, SX,
  // 1-qubit, parameterized
  RX, RY, RZ, P, U,
  // 2-qubit
  CX, CY, CZ, CH, CP, CRZ, SWAP,
  // 3-qubit
  CCX, CSWAP,
  // n-qubit (qubits = [controls..., target])
  MCX, MCZ, MCP,
  // non-unitary / structural
  Measure, Reset, Barrier, GlobalPhase,
};

/// Number of qubit operands a gate type takes, or 0 if variadic (MC*,
/// Barrier) — callers must size those explicitly.
[[nodiscard]] std::size_t fixed_arity(GateType type) noexcept;

/// Number of double parameters the gate carries.
[[nodiscard]] std::size_t param_count(GateType type) noexcept;

/// Lower-case mnemonic ("h", "cx", "mcp", "measure", ...).
[[nodiscard]] const char* gate_name(GateType type) noexcept;

/// True for purely unitary operations (excludes Measure/Reset/Barrier).
[[nodiscard]] bool is_unitary_gate(GateType type) noexcept;

/// Classical condition attached to an instruction: execute only when the
/// given classical bit currently holds `value` (OpenQASM `if` semantics,
/// restricted to single bits as emitted by the Qutes compiler).
struct Condition {
  std::size_t clbit = 0;
  int value = 1;
};

struct Instruction {
  GateType type;
  std::vector<std::size_t> qubits;  // for MC*: [controls..., target]
  std::vector<double> params;
  std::vector<std::size_t> clbits;  // Measure: destination bits, 1:1 with qubits
  std::optional<Condition> condition;

  /// Target qubit of a (multi-)controlled instruction: the last operand.
  /// Throws instead of invoking UB when the instruction has no qubit
  /// operands (e.g. GlobalPhase or an implicit full-width barrier).
  [[nodiscard]] std::size_t target() const {
    if (qubits.empty()) {
      throw CircuitError("Instruction::target(): instruction has no qubit operands");
    }
    return qubits.back();
  }
};

}  // namespace qutes::circ
