// Qiskit source export (paper §6: "establishing methods to export Qutes
// code to widely used quantum programming languages, particularly Qiskit
// and QASM"). QASM lives in qasm.hpp; this emits a runnable Python script
// that rebuilds the circuit with qiskit.QuantumCircuit calls — the shape a
// user pastes into a notebook to continue on IBM tooling.
#pragma once

#include <string>

#include "qutes/circuit/circuit.hpp"

namespace qutes::circ::qiskit {

/// Emit a self-contained Python script: imports, register construction,
/// one builder call per instruction (multi-controlled gates are lowered
/// first), and a __main__ guard that prints the circuit. Single-bit
/// conditions map to `.c_if(clbit, value)`.
[[nodiscard]] std::string export_circuit(const QuantumCircuit& circuit);

}  // namespace qutes::circ::qiskit
