// Unified compilation pipeline: Pass / PropertySet / PassManager.
//
// The paper outsources its whole lowering story to qiskit.transpile(); our
// replacement used to be a pile of disconnected entry points (transpile()
// free functions, route_linear(), the executor's inline fusion). This header
// gives them one architecture, modeled on Qiskit's PassManager and on the
// pass pipelines argued for by XACC and Bettelli et al.:
//
//  * Pass      — a named IR transformation run(QuantumCircuit&, PropertySet&);
//  * PropertySet — analysis state shared across passes and with the runtime
//    (coupling map, final qubit layout, fusion plan, per-pass metrics);
//  * PassManager — an ordered pass list; running it instruments every pass
//    with wall time and depth/size/2q-gate deltas.
//
// Concrete passes migrate every pre-existing transform: multi-controlled
// lowering, basis lowering, the peephole fixpoint, 1q-run fusion, linear
// routing, and the runtime gate-fusion planner. The legacy free functions in
// transpiler.hpp / routing.hpp are thin wrappers over one-pass managers, and
// the Executor consumes a pre-run pipeline instead of fusing inline.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/fusion.hpp"

namespace qutes::circ {

/// Target connectivity for routing passes. Full means all-to-all (no routing
/// needed); Line is the linear-nearest-neighbor chain 0-1-...-n-1 that
/// route_linear supports. Richer graphs plug in here later without touching
/// the Pass interface.
struct CouplingMap {
  enum class Topology { Full, Line };
  Topology topology = Topology::Full;

  [[nodiscard]] static CouplingMap full() noexcept { return {Topology::Full}; }
  [[nodiscard]] static CouplingMap line() noexcept { return {Topology::Line}; }
  /// True when the map actually restricts 2q-gate placement.
  [[nodiscard]] bool constrained() const noexcept {
    return topology != Topology::Full;
  }
  [[nodiscard]] const char* name() const noexcept {
    return topology == Topology::Line ? "line" : "full";
  }
};

/// Per-pass instrumentation captured by PassManager::run.
struct PassStats {
  std::string name;
  double wall_ms = 0.0;
  std::size_t depth_before = 0;
  std::size_t depth_after = 0;
  std::size_t size_before = 0;   // gate_count()
  std::size_t size_after = 0;
  std::size_t twoq_before = 0;   // multi_qubit_gate_count()
  std::size_t twoq_after = 0;
};

/// Analysis state threaded through a pipeline run and handed to consumers
/// (executor, CLI, benches). Passes read and write it; the manager appends
/// one PassStats entry per pass.
struct PropertySet {
  /// Connectivity the pipeline targets; Route records what it routed for.
  CouplingMap coupling_map;
  /// final_layout[logical] = physical wire holding that logical qubit after
  /// routing. Empty until a routing pass runs; identity when the routing
  /// pass restored the layout with trailing SWAPs.
  std::vector<std::size_t> final_layout;
  std::size_t swaps_inserted = 0;
  /// Runtime gate-fusion plan produced by FuseGates; the Executor replays it
  /// instead of planning fusion itself when present and compatible.
  std::optional<FusionPlan> fusion_plan;
  /// One entry per executed pass, in order.
  std::vector<PassStats> stats;

  [[nodiscard]] double total_wall_ms() const noexcept {
    double total = 0.0;
    for (const PassStats& s : stats) total += s.wall_ms;
    return total;
  }
};

/// One IR transformation. Implementations mutate the circuit in place and
/// may read/write shared analysis state in the PropertySet.
class Pass {
public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void run(QuantumCircuit& circuit, PropertySet& properties) = 0;
};

/// Ordered, instrumented pass pipeline.
class PassManager {
public:
  PassManager() = default;
  PassManager(PassManager&&) noexcept = default;
  PassManager& operator=(PassManager&&) noexcept = default;

  PassManager& add(std::unique_ptr<Pass> pass);

  template <typename P, typename... Args>
  PassManager& emplace(Args&&... args) {
    return add(std::make_unique<P>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t size() const noexcept { return passes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return passes_.empty(); }
  [[nodiscard]] std::vector<std::string> pass_names() const;

  /// Run every pass in order on a copy of `circuit`, recording per-pass
  /// instrumentation into `properties.stats`.
  [[nodiscard]] QuantumCircuit run(const QuantumCircuit& circuit,
                                   PropertySet& properties) const;
  /// Convenience overload discarding the property set.
  [[nodiscard]] QuantumCircuit run(const QuantumCircuit& circuit) const;

private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// ---- concrete passes -------------------------------------------------------

/// Lower MCX/MCZ/MCP/CSWAP to {1q, CX, CCX, CP}; >= 3 controls use a V-chain
/// over a fresh clean-ancilla register. Classical conditions on a source
/// gate propagate onto every instruction of its decomposition.
class DecomposeMulticontrolled final : public Pass {
public:
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;
};

/// Full lowering to the {u, cx} basis (implies multi-controlled lowering).
class DecomposeToBasis final : public Pass {
public:
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;
};

/// Peephole optimizer run to fixpoint (bounded by max_passes): cancels
/// adjacent self-inverse pairs, fuses consecutive phase rotations, drops
/// identity rotations. Never reorders or cancels across barriers or
/// classically-conditioned instructions.
class Optimize final : public Pass {
public:
  explicit Optimize(int max_passes = 8) : max_passes_(max_passes) {}
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;

private:
  int max_passes_;
};

/// Commutation-aware reordering: a single forward pass moves each gate as
/// far left as legal adjacent transpositions allow (disjoint wire sets
/// always commute; same-wire pairs only when both gates are diagonal in the
/// computational basis), landing next to the earliest commuting gate that
/// shares a wire. Diagonal chains cluster together and gates of one logical
/// layer pull adjacent, so downstream peephole and fusion passes see denser,
/// more mergeable runs. Barriers, measurements, resets, and conditioned
/// instructions fence all motion.
class ReorderCommuting final : public Pass {
public:
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;
};

/// Collapse maximal runs of adjacent 1q unitaries per wire into one U gate
/// (ZYZ decomposition; identity runs vanish).
class FuseSingleQubitGates final : public Pass {
public:
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;
};

/// Insert SWAPs so every 2q unitary acts on neighbors of the coupling map
/// (Line topology; Full is a no-op). Threads final_layout and swaps_inserted
/// through the PropertySet so downstream passes and measurement remapping
/// can see where every logical qubit ended up. Measurements and barriers
/// only need their qubits remapped, never adjacency.
class Route final : public Pass {
public:
  explicit Route(CouplingMap coupling = CouplingMap::line(),
                 bool restore_layout = true)
      : coupling_(coupling), restore_layout_(restore_layout) {}
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;

private:
  CouplingMap coupling_;
  bool restore_layout_;
};

/// Runtime gate-fusion planner (lifted out of the executor): builds the
/// greedy disjoint-block FusionPlan over the circuit's instruction list and
/// stores it in the PropertySet. The circuit itself is left untouched — the
/// plan references instruction indices, so this must be the last pass of a
/// pipeline whose output the executor replays.
class FuseGates final : public Pass {
public:
  explicit FuseGates(FusionOptions options = {}) : options_(std::move(options)) {}
  [[nodiscard]] std::string name() const override;
  void run(QuantumCircuit& circuit, PropertySet& properties) override;

private:
  FusionOptions options_;
};

// ---- pipeline presets ------------------------------------------------------

/// Named pipelines mirroring qiskit.transpile(optimization_level=...):
///  * O0       — multi-controlled lowering only (execution-legal, unoptimized);
///  * O1       — O0 + commutation-aware reordering + peephole fixpoint (a
///               superset of the legacy transpile() default);
///  * Basis    — {u, cx} lowering + 1q-run fusion + peephole;
///  * Hardware — Basis, then routing to the coupling map, then re-lowering
///               the inserted SWAPs and a final peephole.
enum class Preset { O0, O1, Basis, Hardware };

[[nodiscard]] const char* preset_name(Preset preset) noexcept;

/// Parse a CLI spelling ("O0", "o1", "basis", "hardware"); nullopt if unknown.
[[nodiscard]] std::optional<Preset> parse_preset(std::string_view text) noexcept;

/// Build the pass pipeline for a preset. `coupling` is used by Hardware
/// (ignored by the others); Full coupling makes the Route stage a no-op.
[[nodiscard]] PassManager make_pipeline(Preset preset,
                                        CouplingMap coupling = CouplingMap::line());

/// Render properties.stats as the aligned per-pass table printed by
/// `qutes ... --dump-passes` (name, wall ms, depth/size/2q before -> after).
[[nodiscard]] std::string format_pass_table(const PropertySet& properties);

}  // namespace qutes::circ
