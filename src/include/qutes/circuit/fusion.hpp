// Runtime gate-fusion engine.
//
// Mirrors Qiskit Aer's statevector fusion pass: adjacent unitary
// instructions whose combined wire set fits in `max_fused_qubits` are merged
// into a single dense MatrixN block, so a run of gates costs one
// gather/scatter sweep over the amplitudes instead of one sweep per gate. At
// 16+ qubits the state no longer fits in cache and sweep count — not flop
// count — dominates, which is where fusion pays off.
//
// The pass is greedy and keeps a set of *open* blocks with pairwise-disjoint
// wire sets. Because disjoint operators commute, an open block may legally
// be emitted after raw instructions that touched other wires; the plan
// therefore preserves semantics exactly (up to floating-point roundoff of
// the pre-multiplied matrices). Measurements, resets, barriers, classically
// conditioned gates, and gates the caller pins via `keep_raw` (e.g. gates
// that acquire noise in a trajectory run) are never fused; they flush any
// open block they overlap.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "qutes/circuit/instruction.hpp"
#include "qutes/sim/matrix.hpp"

namespace qutes::circ {

struct FusionOptions {
  /// Widest fused block (clamped to MatrixN::kMaxQubits). <= 1 disables
  /// fusion entirely: the plan replays the source instructions unchanged.
  /// 5 is the measured sweet spot for the vectorized statevector kernels:
  /// wider blocks absorb more gates per sweep, but at 6 the 64x64 matvec's
  /// arithmetic outgrows what fewer sweeps save.
  std::size_t max_fused_qubits = 5;
  /// Optional pin: instructions for which this returns true stay raw even if
  /// they are fusable unitaries. The executor uses it to keep noisy gates as
  /// noise insertion points.
  std::function<bool(const Instruction&)> keep_raw;
  /// Only form blocks whose wire set is a contiguous run (max - min + 1 ==
  /// count). Backends whose state layout is a chain (MPS) set this via their
  /// capability query: a contiguous <=2q block lands on neighboring sites, so
  /// replaying it needs no internal routing. Gates on scattered wires still
  /// execute — they just stay raw.
  bool require_adjacent_wires = false;
  /// Pack disjoint open blocks into wider ones when they flush together
  /// (first-fit, creation order). Disjoint operators commute, so the packed
  /// product is exact; the win is that a layer of narrow blocks costs one
  /// amplitude sweep instead of one per block. This is what keeps structured
  /// circuits (Grover: H/X layers fenced by a wide oracle) from degenerating
  /// into singleton blocks.
  bool coalesce_blocks = true;
};

/// One step of a fusion plan: either a fused dense block over `qubits`, or a
/// replay of the source instruction at index `instruction`.
struct FusedOp {
  bool fused = false;
  sim::MatrixN matrix;               // valid when fused
  std::vector<std::size_t> qubits;   // valid when fused; local bit j = qubits[j]
  std::size_t instruction = 0;       // valid when !fused: source index
  std::size_t gate_count = 1;        // source gates this op covers
};

struct FusionPlan {
  std::vector<FusedOp> ops;
  /// Number of source instructions the plan covers.
  std::size_t source_instructions = 0;
  /// Source gates absorbed into fused blocks.
  std::size_t fused_gates = 0;
  /// block width (qubits) -> number of fused blocks of that width.
  std::map<std::size_t, std::size_t> width_histogram;

  [[nodiscard]] std::size_t fused_blocks() const noexcept {
    std::size_t n = 0;
    for (const auto& [w, c] : width_histogram) n += c;
    return n;
  }
};

/// Dense matrix of a unitary, unconditioned instruction over its own qubit
/// list (local bit j = in.qubits[j]). Built by applying the instruction to
/// each basis column, so it is consistent with apply_instruction by
/// construction. Throws CircuitError for non-unitary/structural
/// instructions or blocks wider than MatrixN::kMaxQubits.
[[nodiscard]] sim::MatrixN instruction_matrix(const Instruction& in);

/// True if `in` can enter a fused block under the given width limit: an
/// unconditioned unitary gate on 1..max_fused_qubits wires (GlobalPhase and
/// Barrier excluded).
[[nodiscard]] bool is_fusable(const Instruction& in, std::size_t max_fused_qubits);

/// Build the greedy fusion plan for an instruction sequence.
[[nodiscard]] FusionPlan build_fusion_plan(std::span<const Instruction> instructions,
                                           const FusionOptions& options = {});

}  // namespace qutes::circ
