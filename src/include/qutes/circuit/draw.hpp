// ASCII rendering of circuits, for the CLI's --draw flag and debugging.
//
// Layout: one text row per qubit plus one shared classical row; gates are
// packed into depth layers (the same layering depth() computes), controls
// render as '*', X-targets as '(+)', measurements as 'M'.
#pragma once

#include <string>

#include "qutes/circuit/circuit.hpp"

namespace qutes::circ {

/// Render `circuit` as ASCII art. Rows are labeled with register names.
[[nodiscard]] std::string draw(const QuantumCircuit& circuit);

}  // namespace qutes::circ
