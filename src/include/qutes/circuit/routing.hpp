// Hardware-aware passes: single-qubit gate fusion and routing to a
// linear-nearest-neighbor coupling map.
//
// The paper claims Qutes inherits "hardware-agnostic capabilities" from its
// backend; these passes are the backend half of that story — the step
// between the abstract circuit the compiler emits and what a
// restricted-connectivity device can execute.
//
//  * fuse_single_qubit_gates: collapse maximal runs of adjacent 1-qubit
//    unitaries on one wire into a single U(theta, phi, lambda) (ZYZ
//    decomposition, global phase tracked in the circuit).
//  * route_linear: insert SWAPs so every 2-qubit gate acts on adjacent
//    qubits of a line 0-1-2-...-n-1. Input must already be lowered to at
//    most 2-qubit gates (run decompose_to_basis or decompose_multicontrolled
//    + CCX lowering first). With restore_layout, trailing SWAPs undo the
//    permutation so the routed circuit is semantically identical.
//
// Both entry points are thin wrappers over one-pass PassManagers
// (FuseSingleQubitGates / Route in pass_manager.hpp); use that API to
// compose them with other passes or read the final layout from a
// PropertySet.
#pragma once

#include <cstddef>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/sim/matrix.hpp"

namespace qutes::circ {

/// ZYZ decomposition: U = e^{i phase} * U3(theta, phi, lambda).
struct EulerAngles {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
  double phase = 0.0;
};

/// Decompose an arbitrary single-qubit unitary (checked) into Euler angles.
[[nodiscard]] EulerAngles decompose_1q_unitary(const sim::Matrix2& u);

/// The 2x2 matrix of any single-qubit unitary instruction in the IR.
[[nodiscard]] sim::Matrix2 matrix_of_1q(const Instruction& instruction);

/// Fuse maximal runs of adjacent single-qubit unitaries per wire into one U
/// gate (identity runs vanish entirely). Barriers, measurements, resets,
/// conditions, and multi-qubit gates break runs.
[[nodiscard]] QuantumCircuit fuse_single_qubit_gates(const QuantumCircuit& circuit);

struct RoutingResult {
  QuantumCircuit circuit;
  /// final_layout[logical] = physical wire holding that logical qubit at the
  /// end (identity when restore_layout was requested).
  std::vector<std::size_t> final_layout;
  std::size_t swaps_inserted = 0;
};

/// Route onto the line topology. Throws CircuitError if the input still has
/// gates on 3+ qubits.
/// Deprecated: use a PassManager with the Route pass (or the Hardware
/// preset, pass_manager.hpp), which threads final_layout/swaps_inserted
/// through a PropertySet alongside per-pass instrumentation.
[[deprecated("use PassManager + Route (or make_pipeline(Preset::Hardware))")]]
[[nodiscard]] RoutingResult route_linear(const QuantumCircuit& circuit,
                                         bool restore_layout = true);

}  // namespace qutes::circ
