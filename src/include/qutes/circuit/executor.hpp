// Executor: runs a QuantumCircuit on a simulation backend.
//
// Replaces the Qiskit Aer backend in the paper's stack. The executor owns
// the circuit-level stages — the caller's compilation pipeline (see
// pass_manager.hpp), option validation (qutes::RunConfig::validate()), and
// capability checks — then delegates state evolution and sampling to a
// Backend resolved by name from the registry in backend.hpp ("statevector",
// "density", or "mps").
//
// The default statevector backend keeps the original two-path engine:
//  * static circuits (no mid-circuit measurement feeding gates, no reset,
//    no conditions, no noise) evolve the state once and sample `shots`
//    outcomes from the final distribution;
//  * dynamic circuits re-run one full trajectory per shot, honoring
//    measurement collapse, reset, c_if conditions, and noise channels. The
//    trajectory loop is OpenMP-parallel; every shot draws from its own
//    counter-derived RNG stream (Rng(seed, shot)), so counts are
//    bit-identical for a fixed seed regardless of thread count.
// Runtime gate fusion is the FuseGates pass — each backend composes a
// one-pass manager internally, clamping the block width (and, for
// chain-layout backends, wire contiguity) to its published capabilities:
// adjacent unitaries are pre-multiplied into dense blocks of up to
// `backend.max_fused_qubits` wires, cutting the number of full-state sweeps.
// On the noisy path, gates that acquire noise stay unfused so channels still
// attach per gate.
//
// All run options live in qutes::RunConfig (run_config.hpp) — the same
// struct the language front end and the CLI consume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/run_config.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::circ {

/// Deprecated aliases for the pre-RunConfig spelling. Note the fields moved:
/// `backend`/`max_fused_qubits`/`parallel_shots`/`max_bond_dim`/
/// `truncation_threshold`/`noise` now live under `RunConfig::backend`
/// (as `backend.name`, ...), and `pipeline` under `RunConfig::pipeline`
/// (as `pipeline.manager`).
using ExecutionOptions [[deprecated("use qutes::RunConfig")]] = qutes::RunConfig;
using ExecutorOptions [[deprecated("use qutes::RunConfig")]] = qutes::RunConfig;

struct ExecutionResult {
  /// Histogram over classical registers, MSB-first (clbit N-1 leftmost).
  sim::Counts counts;
  /// Per-shot outcomes when RunConfig::record_memory is set (else empty).
  std::vector<std::string> memory;
  /// Number of trajectories actually simulated (1 for the static fast path).
  std::size_t trajectories = 0;
  /// Whether the static fast path was taken.
  bool fast_path = false;
  /// Gate-fusion diagnostics: source gates absorbed into fused blocks, the
  /// number of blocks, and blocks per width (empty when fusion is off or
  /// found nothing to merge).
  std::size_t fused_gates = 0;
  std::size_t fused_blocks = 0;
  std::map<std::size_t, std::size_t> fused_width_histogram;
  /// Per-pass instrumentation from RunConfig::pipeline (empty when no
  /// pipeline was supplied). The executor's internal FuseGates planning is
  /// reported through the fused_* fields above, not here.
  std::vector<PassStats> pass_stats;
  /// Name of the backend that produced this result.
  std::string backend;
  /// MPS diagnostics (0 for the dense backends): cumulative truncated
  /// probability weight and the largest bond dimension the run reached.
  double truncation_error = 0.0;
  std::size_t max_bond_dim_reached = 0;
};

/// One request in a same-circuit shot batch (Executor::run_batch): its own
/// seed and shot count. Everything else — backend, pipeline, noise, fusion —
/// comes from the shared RunConfig, which is what makes the batch a batch.
struct ShotBatchItem {
  std::uint64_t seed = 0x5eed0f5eedULL;
  std::size_t shots = 1024;
  bool record_memory = false;
};

/// One request in a bind-before-run batch (Executor::run_bound_batch): a
/// full parameter binding for the shared symbolic circuit, plus the per-item
/// sampling knobs of ShotBatchItem.
struct BindBatchItem {
  std::vector<double> params;
  std::uint64_t seed = 0x5eed0f5eedULL;
  std::size_t shots = 1024;
  bool record_memory = false;
};

class Executor {
public:
  explicit Executor(RunConfig config = {}) : config_(std::move(config)) {}

  /// Run with sampling; returns the counts histogram. Calls
  /// RunConfig::validate() first, so a bad config throws CircuitError before
  /// any work happens.
  [[nodiscard]] ExecutionResult run(const QuantumCircuit& circuit) const;

  /// Run one circuit for several (seed, shots) requests at once — the qutesd
  /// batched executor's entry point. The pipeline, backend resolution, and
  /// capability checks run once; backends that can share work across items do
  /// (the statevector method evolves the state once for static noiseless
  /// circuits and only re-samples per item). Guarantee: results[i] has
  /// bit-identical counts/memory to
  /// `Executor(config with items[i].seed/shots).run(circuit)`, because every
  /// per-item draw comes from that item's own Rng(seed, ...) streams — the
  /// same invariant that makes the shot loops thread-count-invariant.
  [[nodiscard]] std::vector<ExecutionResult> run_batch(
      const QuantumCircuit& circuit, std::span<const ShotBatchItem> items) const;

  /// The variational inner loop: run one *parameterized* circuit under many
  /// parameter bindings. The pipeline, backend resolution, and capability
  /// checks run once on the unbound circuit (symbolic angles survive every
  /// pass); each item then binds the prepared circuit and executes it.
  /// Guarantee: results[i] is bit-identical to running
  /// `pipeline(circuit).bind(items[i].params)` through `run` without a
  /// pipeline — fusion plans are built per bound circuit, so concrete-angle
  /// arithmetic is byte-for-byte the same as the pre-bound path. Also
  /// accepts a fully concrete circuit (items must then carry empty params).
  [[nodiscard]] std::vector<ExecutionResult> run_bound_batch(
      const QuantumCircuit& circuit, std::span<const BindBatchItem> items) const;

  /// Run a single trajectory and return the final state plus the classical
  /// bits (as a packed integer, clbit 0 = LSB). Useful for tests that
  /// inspect amplitudes.
  struct Trajectory {
    sim::StateVector state;
    std::uint64_t clbits = 0;
  };
  [[nodiscard]] Trajectory run_single(const QuantumCircuit& circuit) const;

  /// True if `circuit` qualifies for the sample-from-final-state fast path.
  [[nodiscard]] static bool is_static(const QuantumCircuit& circuit);

private:
  RunConfig config_;
};

/// Apply one instruction to a state (measure writes into `clbits`). Exposed
/// for the language runtime, which executes instructions as it logs them.
void apply_instruction(sim::StateVector& sv, const Instruction& instr,
                       std::uint64_t& clbits, Rng& rng);

}  // namespace qutes::circ
