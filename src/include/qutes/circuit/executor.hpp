// Executor: runs a QuantumCircuit on the dense state-vector simulator.
//
// Replaces the Qiskit Aer backend in the paper's stack. Two paths:
//  * static circuits (no mid-circuit measurement feeding gates, no reset,
//    no conditions, no noise) evolve the state once and sample `shots`
//    outcomes from the final distribution;
//  * dynamic circuits re-run one full trajectory per shot, honoring
//    measurement collapse, reset, c_if conditions, and noise channels.
#pragma once

#include <cstdint>
#include <optional>

#include "qutes/circuit/circuit.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/noise.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::circ {

struct ExecutionOptions {
  std::size_t shots = 1024;
  std::uint64_t seed = 0x5eed0f5eedULL;
  sim::NoiseModel noise;
  /// Also record the per-shot bitstrings, in shot order (Aer "memory").
  bool record_memory = false;
};

struct ExecutionResult {
  /// Histogram over classical registers, MSB-first (clbit N-1 leftmost).
  sim::Counts counts;
  /// Per-shot outcomes when options.record_memory is set (else empty).
  std::vector<std::string> memory;
  /// Number of trajectories actually simulated (1 for the static fast path).
  std::size_t trajectories = 0;
  /// Whether the static fast path was taken.
  bool fast_path = false;
};

class Executor {
public:
  explicit Executor(ExecutionOptions options = {}) : options_(options) {}

  /// Run with sampling; returns the counts histogram.
  [[nodiscard]] ExecutionResult run(const QuantumCircuit& circuit) const;

  /// Run a single trajectory and return the final state plus the classical
  /// bits (as a packed integer, clbit 0 = LSB). Useful for tests that
  /// inspect amplitudes.
  struct Trajectory {
    sim::StateVector state;
    std::uint64_t clbits = 0;
  };
  [[nodiscard]] Trajectory run_single(const QuantumCircuit& circuit) const;

  /// True if `circuit` qualifies for the sample-from-final-state fast path.
  [[nodiscard]] static bool is_static(const QuantumCircuit& circuit);

private:
  ExecutionOptions options_;
};

/// Apply one instruction to a state (measure writes into `clbits`). Exposed
/// for the language runtime, which executes instructions as it logs them.
void apply_instruction(sim::StateVector& sv, const Instruction& instr,
                       std::uint64_t& clbits, Rng& rng);

}  // namespace qutes::circ
