// Executor: runs a QuantumCircuit on a simulation backend.
//
// Replaces the Qiskit Aer backend in the paper's stack. The executor owns
// the circuit-level stages — the caller's compilation pipeline (see
// pass_manager.hpp), option validation, and capability checks — then
// delegates state evolution and sampling to a Backend resolved by name from
// the registry in backend.hpp ("statevector", "density", or "mps").
//
// The default statevector backend keeps the original two-path engine:
//  * static circuits (no mid-circuit measurement feeding gates, no reset,
//    no conditions, no noise) evolve the state once and sample `shots`
//    outcomes from the final distribution;
//  * dynamic circuits re-run one full trajectory per shot, honoring
//    measurement collapse, reset, c_if conditions, and noise channels. The
//    trajectory loop is OpenMP-parallel; every shot draws from its own
//    counter-derived RNG stream (Rng(seed, shot)), so counts are
//    bit-identical for a fixed seed regardless of thread count.
// Runtime gate fusion is the FuseGates pass — each backend composes a
// one-pass manager internally, clamping the block width (and, for
// chain-layout backends, wire contiguity) to its published capabilities:
// adjacent unitaries are pre-multiplied into dense blocks of up to
// `max_fused_qubits` wires, cutting the number of full-state sweeps. On the
// noisy path, gates that acquire noise stay unfused so channels still attach
// per gate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/noise.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::circ {

struct ExecutionOptions {
  std::size_t shots = 1024;
  std::uint64_t seed = 0x5eed0f5eedULL;
  sim::NoiseModel noise;
  /// Also record the per-shot bitstrings, in shot order (Aer "memory").
  bool record_memory = false;
  /// Widest runtime-fused block; 1 disables gate fusion (gate-at-a-time
  /// execution, exactly the pre-fusion behavior). Clamped to
  /// sim::MatrixN::kMaxQubits and to the backend's own capability cap.
  std::size_t max_fused_qubits = 4;
  /// Run the per-shot trajectory loop across OpenMP threads. Results are
  /// independent of the thread count either way.
  bool parallel_shots = true;
  /// Optional compilation pipeline run over the circuit before execution
  /// (e.g. make_pipeline(Preset::Basis)). Not owned; must outlive the run.
  /// Per-pass instrumentation lands in ExecutionResult::pass_stats.
  const PassManager* pipeline = nullptr;
  /// Simulation backend, looked up in the backend registry (backend.hpp):
  /// "statevector" (dense, exact, ~30-qubit wall), "density" (exact mixed
  /// states, ~13 qubits), or "mps" (tensor network; scales with entanglement,
  /// not qubit count). Unknown names throw CircuitError listing the registry.
  std::string backend = "statevector";
  /// MPS bond-dimension cap (must be >= 1; only the mps backend reads it).
  /// Exact simulation needs up to 2^(n/2), so a finite cap trades fidelity
  /// for tractability; ExecutionResult::truncation_error reports the loss.
  std::size_t max_bond_dim = 64;
  /// MPS relative SVD truncation threshold (see sim::MpsOptions).
  double truncation_threshold = 1e-12;
};

/// Alias matching the Aer-style "executor options" naming used in docs.
using ExecutorOptions = ExecutionOptions;

struct ExecutionResult {
  /// Histogram over classical registers, MSB-first (clbit N-1 leftmost).
  sim::Counts counts;
  /// Per-shot outcomes when options.record_memory is set (else empty).
  std::vector<std::string> memory;
  /// Number of trajectories actually simulated (1 for the static fast path).
  std::size_t trajectories = 0;
  /// Whether the static fast path was taken.
  bool fast_path = false;
  /// Gate-fusion diagnostics: source gates absorbed into fused blocks, the
  /// number of blocks, and blocks per width (empty when fusion is off or
  /// found nothing to merge).
  std::size_t fused_gates = 0;
  std::size_t fused_blocks = 0;
  std::map<std::size_t, std::size_t> fused_width_histogram;
  /// Per-pass instrumentation from options.pipeline (empty when no pipeline
  /// was supplied). The executor's internal FuseGates planning is reported
  /// through the fused_* fields above, not here.
  std::vector<PassStats> pass_stats;
  /// Name of the backend that produced this result.
  std::string backend;
  /// MPS diagnostics (0 for the dense backends): cumulative truncated
  /// probability weight and the largest bond dimension the run reached.
  double truncation_error = 0.0;
  std::size_t max_bond_dim_reached = 0;
};

class Executor {
public:
  explicit Executor(ExecutionOptions options = {}) : options_(options) {}

  /// Run with sampling; returns the counts histogram.
  [[nodiscard]] ExecutionResult run(const QuantumCircuit& circuit) const;

  /// Run a single trajectory and return the final state plus the classical
  /// bits (as a packed integer, clbit 0 = LSB). Useful for tests that
  /// inspect amplitudes.
  struct Trajectory {
    sim::StateVector state;
    std::uint64_t clbits = 0;
  };
  [[nodiscard]] Trajectory run_single(const QuantumCircuit& circuit) const;

  /// True if `circuit` qualifies for the sample-from-final-state fast path.
  [[nodiscard]] static bool is_static(const QuantumCircuit& circuit);

private:
  ExecutionOptions options_;
};

/// Apply one instruction to a state (measure writes into `clbits`). Exposed
/// for the language runtime, which executes instructions as it logs them.
void apply_instruction(sim::StateVector& sv, const Instruction& instr,
                       std::uint64_t& clbits, Rng& rng);

}  // namespace qutes::circ
