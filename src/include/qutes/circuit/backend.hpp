// Pluggable simulation backends behind the Executor.
//
// The Executor owns circuit-level concerns (the compilation pipeline, option
// validation) and delegates the actual state evolution + sampling to a
// Backend resolved by name from a registry — the same split Qiskit Aer makes
// between `AerSimulator` and its `method=` strings, which is where the paper
// sends every circuit. Four methods ship built in:
//
//   "statevector"  dense 2^n amplitudes; exact, fast path + per-shot
//                  trajectories, trajectory (Monte-Carlo) noise; ~30 qubits.
//   "density"      exact mixed states, 4^n entries; closed-form noise
//                  channels instead of trajectory averaging; ~13 qubits.
//   "mps"          matrix-product state; memory scales with entanglement,
//                  not qubit count, so low-entanglement circuits run at
//                  40-64+ qubits (cf. Aer's `matrix_product_state`).
//   "stabilizer"   Aaronson–Gottesman phase tableau; Clifford gates only
//                  (H, S, Sdg, X, Y, Z, CX, CZ, SWAP) but polynomial in the
//                  qubit count, so GHZ/teleportation/error-correction
//                  workloads run at thousands of qubits (cf. Aer's
//                  `stabilizer` method and Stim).
//
// `RunConfig::backend.name` may also be "auto": the executor then picks the
// stabilizer method when the prepared circuit is all-Clifford and noiseless,
// and the statevector method otherwise (resolve_backend_name).
//
// Each backend publishes BackendCapabilities, which the executor-side fusion
// planning respects instead of hard-coding per-backend rules: the MPS, for
// example, consumes at most 2-qubit fused blocks on adjacent sites, so its
// capability entry caps the fusion width at 2 and demands contiguous wires.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qutes/circuit/executor.hpp"
#include "qutes/sim/mps.hpp"
#include "qutes/sim/stabilizer.hpp"

namespace qutes::circ {

struct BackendCapabilities {
  /// Widest fused block the backend can replay (1 = no dense-block replay).
  std::size_t max_fused_qubits = sim::MatrixN::kMaxQubits;
  /// Fused blocks must cover a contiguous wire run (chain-layout backends).
  bool fused_adjacent_only = false;
  /// Supports mid-circuit measurement / reset / classical conditions.
  bool supports_dynamic = true;
  /// Supports a NoiseModel (however it realizes it).
  bool supports_noise = true;
  /// Hard qubit-count ceiling (0 = no backend-specific ceiling).
  std::size_t max_qubits = 0;
  /// Performs best when 2q gates touch neighboring wires — pair with the
  /// `hardware` pipeline preset (linear-topology routing) to feed it that
  /// layout.
  bool prefers_linear_layout = false;
  /// Gate mnemonics (gate_name() spellings) the backend implements; empty =
  /// the full gate set. When non-empty the executor rejects every other
  /// unitary gate by name before execution — the stabilizer backend lists
  /// only the Clifford generators here, so neither validation nor
  /// capability-clamped fusion needs a per-backend special case. Structural
  /// instructions (measure/reset/barrier/global phase) are governed by
  /// supports_dynamic, not this list.
  std::vector<std::string> supported_gates;
};

/// One simulation method. Stateless across runs: `execute` gets the prepared
/// (post-pipeline) circuit and fills in counts/memory/diagnostics.
class Backend {
public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual BackendCapabilities capabilities() const = 0;

  /// Run `circuit` under `config` (already validated by the Executor),
  /// writing counts, memory, trajectories, fusion diagnostics, and
  /// backend-specific fields into `result` (whose pipeline-level fields the
  /// Executor has already filled).
  virtual void execute(const QuantumCircuit& circuit, const RunConfig& config,
                       ExecutionResult& result) const = 0;

  /// Run one circuit for several (seed, shots) requests
  /// (Executor::run_batch). `results` arrives pre-sized to `items.size()`
  /// with the pipeline-level fields filled. The contract is bit-identity:
  /// results[i] must equal what execute() would produce under items[i]'s
  /// seed/shots/record_memory. The base implementation just loops execute()
  /// per item (trivially identical); backends override it to share
  /// seed-independent work — the statevector method evolves static noiseless
  /// circuits once and re-samples per item from its own Rng(seed) stream.
  virtual void execute_batch(const QuantumCircuit& circuit,
                             const RunConfig& config,
                             std::span<const ShotBatchItem> items,
                             std::vector<ExecutionResult>& results) const;
};

// ---- registry ---------------------------------------------------------------

using BackendFactory = std::unique_ptr<Backend> (*)();

/// Register (or replace) a backend under `name`. The built-in three are
/// pre-registered; tests may add experimental methods.
void register_backend(const std::string& name, BackendFactory factory);

/// Registered names, sorted (for error messages and --help).
[[nodiscard]] std::vector<std::string> backend_names();

[[nodiscard]] bool backend_known(const std::string& name);

/// Instantiate by name. Throws CircuitError naming the known backends when
/// `name` is not registered.
[[nodiscard]] std::unique_ptr<Backend> make_backend(const std::string& name);

// ---- helpers ---------------------------------------------------------------

/// Evolve `circuit` (unitaries + barriers + global phase only — throws
/// CircuitError on measure/reset/conditions) on a fresh MPS. Gates wider
/// than two qubits are lowered to the {u, cx} basis first. Exposed for the
/// differential harness, which diffs the returned state against the dense
/// reference.
[[nodiscard]] sim::Mps evolve_mps(const QuantumCircuit& circuit,
                                  sim::MpsOptions options = {});

/// Evolve `circuit` (Clifford unitaries + barriers + global phase only —
/// throws CircuitError on measure/reset/conditions or non-Clifford gates) on
/// a fresh stabilizer tableau. Exposed for the differential harness, which
/// extracts the dense state at small n and diffs it against the reference.
[[nodiscard]] sim::Stabilizer evolve_stabilizer(const QuantumCircuit& circuit);

/// True when every instruction is representable on the stabilizer tableau:
/// unitary gates from {h, s, sdg, x, y, z, cx, cz, swap} plus structural
/// instructions (measure/reset/barrier/global phase, with or without
/// conditions). This is the `--backend auto` dispatch predicate.
[[nodiscard]] bool is_clifford_circuit(const QuantumCircuit& circuit);

/// Resolve the "auto" backend name against a prepared circuit: "stabilizer"
/// for noiseless all-Clifford circuits, "statevector" otherwise. Names other
/// than "auto" pass through unchanged.
[[nodiscard]] std::string resolve_backend_name(const std::string& name,
                                               const QuantumCircuit& circuit,
                                               const RunConfig& config);

}  // namespace qutes::circ
