// QuantumCircuit: the gate-level IR every upper layer targets.
//
// This is the Qiskit-QuantumCircuit replacement. A circuit owns a flat qubit
// index space carved into named registers (one per Qutes variable, mirroring
// the paper's QuantumCircuitHandler), a classical bit space for measurement
// results, and an ordered instruction list. Builder methods are fluent and
// validate operands eagerly so a malformed circuit fails at construction,
// not at execution.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/instruction.hpp"

namespace qutes::circ {

/// A contiguous run of qubits with a name; purely descriptive (QASM output,
/// drawing) — instructions address flat indices.
struct QuantumRegister {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;

  [[nodiscard]] std::size_t operator[](std::size_t i) const { return offset + i; }
};

struct ClassicalRegister {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;

  [[nodiscard]] std::size_t operator[](std::size_t i) const { return offset + i; }
};

class QuantumCircuit {
public:
  QuantumCircuit() = default;
  /// Anonymous circuit with `num_qubits` qubits in one register "q" and
  /// `num_clbits` classical bits in register "c".
  explicit QuantumCircuit(std::size_t num_qubits, std::size_t num_clbits = 0);

  // ---- register management -------------------------------------------------

  /// Append a named quantum register; returns a copy (with its flat offset).
  /// By value on purpose: a reference into qregs_ would dangle as soon as the
  /// next add_register() reallocates the vector — found by ASan, pinned by
  /// test_circuit.RegisterHandlesSurviveLaterRegisterAdds.
  QuantumRegister add_register(const std::string& name, std::size_t size);
  ClassicalRegister add_classical_register(const std::string& name, std::size_t size);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_clbits() const noexcept { return num_clbits_; }
  [[nodiscard]] const std::vector<QuantumRegister>& qregs() const noexcept { return qregs_; }
  [[nodiscard]] const std::vector<ClassicalRegister>& cregs() const noexcept { return cregs_; }

  [[nodiscard]] const std::vector<Instruction>& instructions() const noexcept {
    return instructions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return instructions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return instructions_.empty(); }
  [[nodiscard]] double global_phase() const noexcept { return global_phase_; }
  void add_global_phase(double lambda) noexcept { global_phase_ += lambda; }

  // ---- symbolic parameters --------------------------------------------------

  /// Find-or-create the named symbolic parameter. Names must be identifiers
  /// ([A-Za-z_][A-Za-z0-9_]*, and not "pi") so unbound circuits round-trip
  /// through QASM. The returned Param is usable anywhere an angle goes.
  Param parameter(const std::string& name);

  /// Parameter table in binding order (index i binds values[i]).
  [[nodiscard]] std::vector<Param> parameters() const;
  [[nodiscard]] std::size_t num_parameters() const noexcept {
    return param_names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& parameter_names() const noexcept {
    return param_names_;
  }
  /// True when the circuit still carries unbound symbolic parameters.
  [[nodiscard]] bool is_parameterized() const noexcept {
    return !param_names_.empty();
  }

  /// Substitute concrete angles for every symbolic parameter and return the
  /// fully-bound circuit. Cheap — a copy plus angle writes; no pipeline work.
  /// Throws CircuitError naming the expected count when `values.size() !=
  /// num_parameters()`.
  [[nodiscard]] QuantumCircuit bind(std::span<const double> values) const;

  // ---- fluent gate builders -------------------------------------------------

  QuantumCircuit& h(std::size_t q);
  QuantumCircuit& x(std::size_t q);
  QuantumCircuit& y(std::size_t q);
  QuantumCircuit& z(std::size_t q);
  QuantumCircuit& s(std::size_t q);
  QuantumCircuit& sdg(std::size_t q);
  QuantumCircuit& t(std::size_t q);
  QuantumCircuit& tdg(std::size_t q);
  QuantumCircuit& sx(std::size_t q);
  QuantumCircuit& rx(Angle theta, std::size_t q);
  QuantumCircuit& ry(Angle theta, std::size_t q);
  QuantumCircuit& rz(Angle theta, std::size_t q);
  QuantumCircuit& p(Angle lambda, std::size_t q);
  QuantumCircuit& u(Angle theta, Angle phi, Angle lambda, std::size_t q);
  QuantumCircuit& cx(std::size_t control, std::size_t target);
  QuantumCircuit& cy(std::size_t control, std::size_t target);
  QuantumCircuit& cz(std::size_t control, std::size_t target);
  QuantumCircuit& ch(std::size_t control, std::size_t target);
  QuantumCircuit& cp(Angle lambda, std::size_t control, std::size_t target);
  QuantumCircuit& crz(Angle theta, std::size_t control, std::size_t target);
  QuantumCircuit& swap(std::size_t a, std::size_t b);
  QuantumCircuit& ccx(std::size_t c0, std::size_t c1, std::size_t target);
  QuantumCircuit& cswap(std::size_t control, std::size_t a, std::size_t b);
  QuantumCircuit& mcx(std::span<const std::size_t> controls, std::size_t target);
  QuantumCircuit& mcz(std::span<const std::size_t> controls, std::size_t target);
  QuantumCircuit& mcp(Angle lambda, std::span<const std::size_t> controls,
                      std::size_t target);
  QuantumCircuit& measure(std::size_t qubit, std::size_t clbit);
  /// Measure a run of qubits into a run of clbits, index-aligned.
  QuantumCircuit& measure(std::span<const std::size_t> qubits,
                          std::span<const std::size_t> clbits);
  /// Measure every qubit into the same-numbered clbit (grows clbits if needed).
  QuantumCircuit& measure_all();
  QuantumCircuit& reset(std::size_t qubit);
  QuantumCircuit& barrier();

  /// Attach a classical condition to the most recently appended instruction.
  QuantumCircuit& c_if(std::size_t clbit, int value);

  /// Attach a classical condition to every instruction from index `first` to
  /// the end (barriers excepted). Used by lowering passes to propagate a
  /// source gate's condition onto its multi-instruction decomposition — legal
  /// because no decomposition emits a measurement, so the bit cannot change
  /// mid-sequence.
  QuantumCircuit& c_if_from(std::size_t first, std::size_t clbit, int value);

  /// Append a raw instruction (validated).
  QuantumCircuit& append(Instruction instr);

  /// Inline `other`, mapping its qubit i to `qubit_map[i]` and its clbit j to
  /// `clbit_map[j]`. Maps must cover the other circuit's spaces.
  QuantumCircuit& compose(const QuantumCircuit& other,
                          std::span<const std::size_t> qubit_map,
                          std::span<const std::size_t> clbit_map = {});

  /// Adjoint of this circuit. Requires a purely unitary circuit (no
  /// measure/reset); barriers are kept in place.
  [[nodiscard]] QuantumCircuit inverse() const;

  /// `power` sequential repetitions of this circuit.
  [[nodiscard]] QuantumCircuit repeat(std::size_t power) const;

  // ---- metrics ---------------------------------------------------------------

  /// Circuit depth: longest chain of instructions over shared qubits/clbits.
  /// Barriers synchronize but contribute no depth.
  [[nodiscard]] std::size_t depth() const;

  /// Total non-structural instruction count (excludes barriers).
  [[nodiscard]] std::size_t gate_count() const;

  /// Count per mnemonic, e.g. {"h": 4, "cx": 3, "measure": 2}.
  [[nodiscard]] std::map<std::string, std::size_t> count_ops() const;

  /// Count of two-or-more-qubit unitary gates (entangling cost proxy).
  [[nodiscard]] std::size_t multi_qubit_gate_count() const;

private:
  void check_qubit(std::size_t q) const;
  void check_clbit(std::size_t c) const;
  void check_distinct(std::span<const std::size_t> qubits) const;

  std::size_t num_qubits_ = 0;
  std::size_t num_clbits_ = 0;
  double global_phase_ = 0.0;
  std::vector<QuantumRegister> qregs_;
  std::vector<ClassicalRegister> cregs_;
  std::vector<std::string> param_names_;  ///< symbolic-parameter table
  std::vector<Instruction> instructions_;
};

}  // namespace qutes::circ
