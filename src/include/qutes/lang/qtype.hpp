// The Qutes type lattice: classical types (bool, int, float, string),
// quantum types (qubit, quint, qustring), arrays of either, and void for
// functions. Mirrors the paper's Section 4.
#pragma once

#include <cstddef>
#include <string>

namespace qutes::lang {

enum class TypeKind {
  Void, Bool, Int, Float, String, Qubit, Quint, Qustring, Array,
};

struct QType {
  TypeKind kind = TypeKind::Void;
  TypeKind element = TypeKind::Void;  ///< element kind when kind == Array
  std::size_t quint_width = 0;        ///< declared quint width; 0 = infer

  [[nodiscard]] static QType scalar(TypeKind k) { return {k, TypeKind::Void, 0}; }
  [[nodiscard]] static QType array_of(TypeKind elem) {
    return {TypeKind::Array, elem, 0};
  }
  [[nodiscard]] static QType quint(std::size_t width) {
    return {TypeKind::Quint, TypeKind::Void, width};
  }

  [[nodiscard]] bool is_array() const noexcept { return kind == TypeKind::Array; }
  [[nodiscard]] bool is_quantum() const noexcept {
    const TypeKind k = is_array() ? element : kind;
    return k == TypeKind::Qubit || k == TypeKind::Quint || k == TypeKind::Qustring;
  }
  [[nodiscard]] bool is_classical_scalar() const noexcept {
    return kind == TypeKind::Bool || kind == TypeKind::Int ||
           kind == TypeKind::Float || kind == TypeKind::String;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const QType& a, const QType& b) noexcept {
    return a.kind == b.kind && a.element == b.element;
  }
};

/// The classical type a quantum type measures into (paper: automatic
/// measurement on quantum->classical flow): qubit -> bool, quint -> int,
/// qustring -> string. Classical kinds map to themselves.
[[nodiscard]] TypeKind measured_kind(TypeKind quantum) noexcept;

/// The quantum type a classical type promotes to (paper: type promotion):
/// bool -> qubit, int -> quint, string -> qustring.
[[nodiscard]] TypeKind promoted_kind(TypeKind classical) noexcept;

[[nodiscard]] const char* type_kind_name(TypeKind kind) noexcept;

}  // namespace qutes::lang
