// AST pretty-printer: renders a parsed program back to canonical Qutes
// source. Backs the `qutes fmt` CLI subcommand and doubles as a parser
// round-trip oracle in the tests (parse . format . parse == parse).
#pragma once

#include <string>

#include "qutes/lang/ast.hpp"

namespace qutes::lang {

/// Canonical source text of an expression (no trailing newline).
[[nodiscard]] std::string format_expression(Expr& expr);

/// Canonical source text of a whole program (2-space indents, one statement
/// per line, normalized spacing).
[[nodiscard]] std::string format_program(Program& program);

}  // namespace qutes::lang
