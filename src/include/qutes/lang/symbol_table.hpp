// Symbols and lexical scopes.
//
// Mirrors the paper's Symbol class: each symbol carries a name, a type, and
// its scope; pass 1 (SymbolCollector) instantiates them, pass 2 (the
// interpreter) binds runtime values. Scopes form a parent chain; variables
// bind shared_ptr<Value> so function parameters alias caller storage
// (pass-by-reference semantics, paper §4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"
#include "qutes/lang/ast.hpp"
#include "qutes/lang/value.hpp"

namespace qutes::lang {

struct Symbol {
  std::string name;
  QType type;
  SourceLocation declared_at;
  ValuePtr value;  ///< bound during interpretation
};

class Scope {
public:
  explicit Scope(std::shared_ptr<Scope> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declare in this scope; throws LangError on redeclaration here.
  Symbol& declare(const std::string& name, QType type, SourceLocation loc);

  /// Look up through the parent chain; nullptr if absent.
  [[nodiscard]] Symbol* lookup(const std::string& name);

  /// Look up in this scope only.
  [[nodiscard]] Symbol* lookup_local(const std::string& name);

  [[nodiscard]] const std::shared_ptr<Scope>& parent() const noexcept {
    return parent_;
  }

private:
  std::shared_ptr<Scope> parent_;
  std::map<std::string, Symbol> symbols_;
};

/// Function registry built by pass 1. Functions are global (no overloading,
/// like the paper's implementation).
class FunctionTable {
public:
  void declare(FuncDeclStmt& decl);
  [[nodiscard]] FuncDeclStmt* lookup(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return functions_.size(); }
  /// Name-ordered view (the lowering pass assigns chunk indices from it, so
  /// chunk order is deterministic).
  [[nodiscard]] const std::map<std::string, FuncDeclStmt*>& items() const noexcept {
    return functions_;
  }

private:
  std::map<std::string, FuncDeclStmt*> functions_;
};

}  // namespace qutes::lang
