// Token vocabulary of the Qutes language.
#pragma once

#include <cstdint>
#include <string>

#include "qutes/common/error.hpp"

namespace qutes::lang {

enum class TokenType {
  // literals
  IntLit, FloatLit, StringLit, QuantumIntLit, QuantumStringLit,
  KetZero, KetOne, KetPlus, KetMinus,
  // identifiers & type keywords
  Identifier,
  KwBool, KwInt, KwFloat, KwString, KwQubit, KwQuint, KwQustring, KwVoid,
  // value keywords
  KwTrue, KwFalse,
  // control keywords
  KwIf, KwElse, KwWhile, KwForeach, KwIn, KwReturn, KwPrint, KwBarrier,
  // gate-statement keywords (the paper's built-in quantum operations)
  KwNot, KwPauliY, KwPauliZ, KwHadamard, KwPhase, KwSGate, KwTGate,
  KwMeasure, KwReset,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  // operators
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  ShlAssign, ShrAssign,
  Plus, Minus, Star, Slash, Percent,
  Shl, Shr,
  EqEq, NotEq, Lt, LtEq, Gt, GtEq,
  AndAnd, OrOr, Bang, Tilde,
  // end of input
  Eof,
};

/// Human-readable token-type name for diagnostics.
[[nodiscard]] const char* token_type_name(TokenType type) noexcept;

struct Token {
  TokenType type = TokenType::Eof;
  std::string text;          ///< raw lexeme (identifier name, literal text)
  std::int64_t int_value = 0;
  double float_value = 0.0;
  SourceLocation location;
};

}  // namespace qutes::lang
