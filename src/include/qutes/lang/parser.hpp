// Recursive-descent parser for Qutes (grammar in DESIGN.md §3).
#pragma once

#include <vector>

#include "qutes/lang/ast.hpp"
#include "qutes/lang/token.hpp"

namespace qutes::lang {

class Parser {
public:
  explicit Parser(std::vector<Token> tokens);

  /// Parse a whole program. Throws LangError at the first syntax error.
  [[nodiscard]] Program parse_program();

private:
  // token stream helpers
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool check(TokenType type) const;
  bool match(TokenType type);
  const Token& expect(TokenType type, const char* context);
  const Token& advance();
  [[noreturn]] void fail(const std::string& message) const;

  // grammar productions
  StmtPtr statement();
  StmtPtr declaration_or_function();   // after a leading type token
  StmtPtr var_declaration(QType type, Token name);
  StmtPtr function_declaration(QType type, Token name);
  StmtPtr if_statement();
  StmtPtr while_statement();
  StmtPtr foreach_statement();
  StmtPtr return_statement();
  StmtPtr print_statement();
  StmtPtr gate_statement(GateKind kind);
  std::unique_ptr<BlockStmt> block();
  StmtPtr assignment_or_expr_statement();

  [[nodiscard]] bool at_type_token() const;
  QType parse_type();

  // expression ladder
  ExprPtr expression();
  ExprPtr logic_or();
  ExprPtr logic_and();
  ExprPtr equality();
  ExprPtr comparison();
  ExprPtr containment();  // 'in'
  ExprPtr shift();
  ExprPtr term();
  ExprPtr factor();
  ExprPtr unary();
  ExprPtr postfix();
  ExprPtr primary();

  /// Recursion-depth cap shared by the statement and expression ladders.
  /// Pathological nesting ("((((..." or "{{{{...") must fail with LangError,
  /// not overflow the native stack (found by the differential fuzz corpus).
  static constexpr std::size_t kMaxNestingDepth = 512;

  class NestingGuard {
  public:
    NestingGuard(Parser& parser, SourceLocation loc);
    ~NestingGuard() { --parser_.depth_; }
    NestingGuard(const NestingGuard&) = delete;
    NestingGuard& operator=(const NestingGuard&) = delete;

  private:
    Parser& parser_;
  };

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

/// Convenience: lex + parse.
[[nodiscard]] Program parse(const std::string& source);

}  // namespace qutes::lang
