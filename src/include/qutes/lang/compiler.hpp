// Compiler facade: the one-call public API for running Qutes programs.
//
//   auto result = qutes::lang::run_source("quint x = 5q; x += 3; print x;");
//   result.output    -> "0\n" / "8\n" (measured)
//   result.circuit   -> the full circuit the program compiled to
//
// Internals follow the paper's pipeline: lex -> parse -> pass 1
// (SymbolCollector) -> pass 2. Pass 2 defaults to the bytecode engine
// (lowering pass + dispatch VM, lang/lower.hpp + lang/vm.hpp); the original
// tree-walking Interpreter stays available as `RunConfig::exec_mode =
// ExecMode::Ast` and serves as the differential reference. Both engines share
// lang::Runtime for every value-level operation, so results are
// bit-identical either way.
//
// Options live in qutes::RunConfig (run_config.hpp) — the same struct the
// Executor and the CLI consume. The front-end-specific fields are `echo`,
// `debug_trace` (the statement-level trace, formerly RunOptions::trace),
// `include_stdlib`, and `replay_shots`; the backend/pipeline sub-structs
// configure the post-run replay experiment.
#pragma once

#include <optional>
#include <string>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/lang/ast.hpp"
#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/diagnostics.hpp"
#include "qutes/lang/symbol_table.hpp"
#include "qutes/run_config.hpp"

namespace qutes::lang {

/// Deprecated alias for the pre-RunConfig spelling. Fields moved: `trace`
/// is now `debug_trace`, and `backend`/`max_bond_dim`/`truncation_threshold`
/// live under `RunConfig::backend` (as `backend.name`, ...); `pipeline` is
/// `pipeline.manager`.
using RunOptions [[deprecated("use qutes::RunConfig")]] = qutes::RunConfig;

struct RunResult {
  std::string output;             ///< everything `print` produced
  circ::QuantumCircuit circuit;   ///< the compiled circuit log
  /// Pipeline output when RunConfig::pipeline.manager was set; otherwise a
  /// copy of `circuit`. This is what --qasm exports when a pipeline is
  /// requested.
  circ::QuantumCircuit lowered_circuit;
  /// Pass instrumentation and analysis state (final layout, per-pass stats)
  /// from the pipeline run; empty without a pipeline.
  circ::PropertySet properties;
  /// Replay histogram when RunConfig::replay_shots > 0 (run on
  /// RunConfig::backend.name with seed+1, so the live run's draws stay
  /// intact).
  std::optional<circ::ExecutionResult> replay;
  std::size_t num_qubits = 0;
  std::size_t circuit_depth = 0;
  std::size_t gate_count = 0;
};

/// Parse only (lex + parse + pass 1); useful for front-end tests and for
/// measuring compile time without execution. Throws LangError on malformed
/// programs.
struct CompileResult {
  Program program;
  Program stdlib_program;  ///< owns the standard library's AST (if loaded)
  FunctionTable functions; ///< stdlib + user functions
  DiagnosticEngine diagnostics;
};
[[nodiscard]] CompileResult compile_source(const std::string& source,
                                           bool include_stdlib = true);

/// Compile then lower to bytecode (lex + parse + pass 1 + lowering), without
/// executing. The artifact's `source_hash` is the fnv1a64 of `source`, so a
/// cache can check `Bytecode::load(path).source_hash == fnv1a64(source)` and
/// skip the whole front end on a hit. Throws LangError on malformed programs
/// and on statically-detected over-deep nesting.
[[nodiscard]] Bytecode lower_source(const std::string& source,
                                    bool include_stdlib = true);

/// Full pipeline: compile then interpret. Throws LangError on any language
/// error (with source location) — including config validation failures
/// (RunConfig::validate()'s CircuitError is re-wrapped so every front-end
/// failure is one catchable type).
[[nodiscard]] RunResult run_source(const std::string& source,
                                   qutes::RunConfig config = {});

/// Read a .qut file and run it.
[[nodiscard]] RunResult run_file(const std::string& path,
                                 qutes::RunConfig config = {});

}  // namespace qutes::lang
