// Compiler facade: the one-call public API for running Qutes programs.
//
//   auto result = qutes::lang::run_source("quint x = 5q; x += 3; print x;");
//   result.output    -> "0\n" / "8\n" (measured)
//   result.circuit   -> the full circuit the program compiled to
//
// Internals follow the paper's pipeline: lex -> parse -> pass 1
// (SymbolCollector) -> pass 2 (Interpreter with live circuit+state).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/lang/ast.hpp"
#include "qutes/lang/diagnostics.hpp"
#include "qutes/lang/symbol_table.hpp"

namespace qutes::lang {

struct RunOptions {
  std::uint64_t seed = 0x5eed0f5eedULL;
  std::ostream* echo = nullptr;   ///< mirror print output here (e.g. &std::cout)
  std::ostream* trace = nullptr;  ///< statement-level debug trace destination
  bool include_stdlib = true;     ///< load the Qutes standard library first
  /// Optional compilation pipeline (e.g. circ::make_pipeline(Preset::O1))
  /// run over the logged circuit after execution. Not owned; must outlive
  /// the call. Output lands in RunResult::lowered_circuit, instrumentation
  /// in RunResult::properties.
  const circ::PassManager* pipeline = nullptr;
  /// When > 0, re-run the logged (pipeline-lowered) circuit as a shots
  /// experiment on `backend` after the live run: every trajectory re-rolls
  /// every mid-circuit measurement, so the histogram shows the program's
  /// full outcome distribution, not just the live run's draw. The histogram
  /// lands in RunResult::replay. Ignored when the program logged no qubits
  /// (purely classical programs have nothing quantum to re-run).
  std::size_t replay_shots = 0;
  /// Simulation backend for the replay ("statevector", "density", or "mps"
  /// — see circ::backend_names()). The live interpreter always executes on
  /// the dense statevector (automatic measurement needs amplitudes); the
  /// backend choice applies to the replay, which is where wide
  /// low-entanglement circuits need the MPS escape hatch. Unknown names
  /// throw LangError before anything runs.
  std::string backend = "statevector";
  /// MPS bond-dimension cap for the replay (circ::ExecutionOptions).
  std::size_t max_bond_dim = 64;
  /// MPS relative SVD truncation threshold for the replay.
  double truncation_threshold = 1e-12;
};

struct RunResult {
  std::string output;             ///< everything `print` produced
  circ::QuantumCircuit circuit;   ///< the compiled circuit log
  /// Pipeline output when RunOptions::pipeline was set; otherwise a copy of
  /// `circuit`. This is what --qasm exports when a pipeline is requested.
  circ::QuantumCircuit lowered_circuit;
  /// Pass instrumentation and analysis state (final layout, per-pass stats)
  /// from the pipeline run; empty without a pipeline.
  circ::PropertySet properties;
  /// Replay histogram when RunOptions::replay_shots > 0 (run on
  /// RunOptions::backend with seed+1, so the live run's draws stay intact).
  std::optional<circ::ExecutionResult> replay;
  std::size_t num_qubits = 0;
  std::size_t circuit_depth = 0;
  std::size_t gate_count = 0;
};

/// Parse only (lex + parse + pass 1); useful for front-end tests and for
/// measuring compile time without execution. Throws LangError on malformed
/// programs.
struct CompileResult {
  Program program;
  Program stdlib_program;  ///< owns the standard library's AST (if loaded)
  FunctionTable functions; ///< stdlib + user functions
  DiagnosticEngine diagnostics;
};
[[nodiscard]] CompileResult compile_source(const std::string& source,
                                           bool include_stdlib = true);

/// Full pipeline: compile then interpret. Throws LangError on any language
/// error (with source location).
[[nodiscard]] RunResult run_source(const std::string& source, RunOptions options = {});

/// Read a .qut file and run it.
[[nodiscard]] RunResult run_file(const std::string& path, RunOptions options = {});

}  // namespace qutes::lang
