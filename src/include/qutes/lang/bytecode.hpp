// lang::Bytecode — the flat compiled form of a Qutes program.
//
// A program lowers (lower.hpp) to one `Chunk` per callable — chunk 0 is the
// top level, one more per user/stdlib function — each a linear instruction
// stream over a shared constant pool (strings, floats, types, source
// locations). The Vm (vm.hpp) executes chunks with a stack discipline and
// frame-indexed variable slots: name resolution, scope-chain walks, and
// double dispatch all happen once at lowering time instead of once per
// executed node.
//
// The artifact is versioned and serializable (save/load) with a content hash
// of the originating source, so a service front end (ROADMAP item 1,
// `qutesd`) can cache lowered programs across requests and skip
// lex/parse/lower entirely on a hash hit. load() fully validates the
// artifact — magic, version, section sizes, every operand index and jump
// target — and rejects corrupt or truncated files with a LangError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qutes/common/cache_key.hpp"
#include "qutes/common/error.hpp"
#include "qutes/lang/qtype.hpp"

namespace qutes::lang {

enum class Op : std::uint8_t {
  // ---- constants & stack ---------------------------------------------------
  PushInt,     ///< a = value
  PushFloat,   ///< b = float pool index
  PushBool,    ///< a = 0/1
  PushString,  ///< b = string pool index
  Pop,         ///< discard an expression-statement result
  // ---- quantum literals ----------------------------------------------------
  QuintLit,     ///< a = literal value; promote onto a fresh "qlit" register
  QustringLit,  ///< b = string pool index ("qslit" register)
  KetState,     ///< a = KetKind
  SupBegin,     ///< open a superposition-literal builder
  SupElem,      ///< pop one element into the open builder (checks interleave)
  SupEnd,       ///< close builder; push the prepared register
  ArrBegin,     ///< open a classical array-literal builder
  ArrElem,      ///< pop one element into it (nested-array check)
  ArrEnd,       ///< close; push the array value
  // ---- variables (slots resolved at lowering time) -------------------------
  LoadLocal,    ///< b = slot (throws "use of undeclared" when unbound)
  LoadGlobal,   ///< b = slot in the top-level frame
  CheckLocal,   ///< b = slot: assignment-target pre-check, before the rhs runs
  CheckGlobal,  ///< b = slot
  AssignLocal,  ///< b = slot: pop rhs, assign through the shared Runtime rules
  AssignGlobal, ///< b = slot
  CompoundLocal,  ///< a = BinaryOp, b = slot: pop rhs, `slot op= rhs`
  CompoundGlobal, ///< a = BinaryOp, b = slot
  CheckIndexTarget, ///< peek: target of an index assignment must be an array
  IndexPrep,    ///< pop index, validate against peeked array, push classical
  AssignIndex,  ///< pop rhs, index, target: `target[index] = rhs`
  CompoundIndex,///< a = BinaryOp: pop rhs, index, target
  IndexGet,     ///< pop index, target: push `target[index]` (read rules)
  // ---- declarations --------------------------------------------------------
  Declare,         ///< b = slot, c = type: redeclaration check, bind later
  BindInit,        ///< b = slot, c = type: pop initializer, coerce, bind
  DeclareDefault,  ///< b = slot, c = type: declare + default-initialize
  DeclarePromoteInt,    ///< a = literal, b = slot, c = type (quantum fast path)
  DeclarePromoteString, ///< a = string pool index, b = slot, c = type
  ScopeExit,       ///< b = scope pool index: clear that lexical scope's slots
  // ---- operators -----------------------------------------------------------
  UnaryApply,   ///< a = UnaryOp
  BinaryApply,  ///< a = BinaryOp (non-short-circuit)
  ToBool,       ///< pop; push Bool(condition_bool) — measures quantum operands
  // ---- control flow --------------------------------------------------------
  Jump,            ///< a = target pc
  JumpIfFalse,     ///< a = target pc; pop condition (condition_bool rules)
  JumpIfFalsePeek, ///< a = target pc; top already Bool, kept on the stack
  JumpIfTruePeek,  ///< a = target pc
  LoopReset,       ///< b = loop counter index
  LoopBump,        ///< b = loop counter index; throws on budget exhaustion
  ForeachInit,     ///< b = iterator index; pop iterable, expand to items
  ForeachNext,     ///< a = exit pc, b = iterator index, c = loop-variable slot
  // ---- calls ---------------------------------------------------------------
  CallBuiltin,  ///< a = argc, b = builtin name (string pool)
  CallUser,     ///< a = argc, b = callee chunk index
  Return,       ///< a = 1 if a return value is on the stack
  // ---- statements ----------------------------------------------------------
  Print,      ///< pop; render and emit
  Barrier,
  GateApply,  ///< a = GateKind; pop one operand (arrays broadcast)
  // ---- runtime-deferred diagnostics ---------------------------------------
  // Names that do not resolve at lowering time are not lowering errors — the
  // statement may never execute. These reproduce the tree-walk's runtime
  // messages at the exact point the reference would raise them.
  ThrowUseUndeclared,    ///< b = name (string pool)
  ThrowAssignUndeclared, ///< b = name
  ThrowUnknownFunction,  ///< b = name
};

/// Count of Op values (loader range validation).
inline constexpr std::uint8_t kOpCount =
    static_cast<std::uint8_t>(Op::ThrowUnknownFunction) + 1;

[[nodiscard]] const char* op_name(Op op) noexcept;

struct Instr {
  Op op = Op::Pop;
  std::int64_t a = 0;   ///< immediate / enum / jump target / argc
  std::uint32_t b = 0;  ///< slot / pool index
  std::uint32_t c = 0;  ///< secondary pool index (type, slot)
  std::uint32_t loc = 0;  ///< index into Bytecode::locations
};

struct ParamInfo {
  std::uint32_t name = 0;  ///< string pool
  std::uint32_t type = 0;  ///< type pool
};

struct Chunk {
  std::uint32_t name = 0;         ///< string pool; "" for the top level
  std::vector<ParamInfo> params;
  std::uint32_t return_type = 0;  ///< type pool (Void for the top level)
  std::uint32_t num_slots = 0;
  std::vector<std::uint32_t> slot_names;  ///< string pool, one per slot
  std::uint32_t num_loops = 0;    ///< while-loop budget counters
  std::uint32_t num_iters = 0;    ///< foreach iterator states
  /// Slots cleared together by one ScopeExit (a lexical scope's own
  /// declarations; nested scopes clear their own).
  std::vector<std::vector<std::uint32_t>> scopes;
  std::vector<Instr> code;
  /// Index of the first parameter that redeclares an earlier one, if any.
  /// The reference interpreter coerces the preceding arguments (observable:
  /// coercion can measure) and then raises the redeclaration error at call
  /// time; the Vm replicates that order.
  std::optional<std::uint32_t> duplicate_param;
};

struct Bytecode {
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t source_hash = 0;  ///< fnv1a64 of the source text
  std::vector<std::string> strings;
  std::vector<double> floats;
  std::vector<QType> types;
  std::vector<SourceLocation> locations;
  std::vector<Chunk> chunks;  ///< chunk 0 = top level

  [[nodiscard]] std::size_t total_ops() const;

  /// Structural validation: every operand index, enum value, and jump target
  /// in range. Throws LangError ("bytecode: ...") on the first violation.
  /// load() always runs this; the lowerer's output is valid by construction.
  void validate() const;

  /// Versioned binary artifact (little-endian). save() throws Error on I/O
  /// failure; load() throws LangError on I/O failure, bad magic, version
  /// mismatch, truncation, or validation failure.
  void save(const std::string& path) const;
  [[nodiscard]] static Bytecode load(const std::string& path);

  /// Byte-serialized image (what save() writes) — also handy for tests.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Bytecode deserialize(const std::uint8_t* data,
                                            std::size_t size);

  /// Human-readable listing (CLI --dump-bytecode).
  [[nodiscard]] std::string disassemble() const;
};

/// FNV-1a 64-bit content hash (artifact cache key ingredient). The
/// implementation moved to qutes::fnv1a64 (common/cache_key.hpp) so the
/// service compile cache shares it; this alias keeps existing callers
/// working.
[[nodiscard]] inline std::uint64_t fnv1a64(const std::string& data) noexcept {
  return qutes::fnv1a64(data);
}

}  // namespace qutes::lang
