// QuantumCircuitHandler — the runtime quantum engine behind the interpreter
// (the paper's class of the same name).
//
// Responsibilities:
//  * own the program's single QuantumCircuit log (one quantum register per
//    declared variable, as in the paper) AND a live state vector, applied in
//    lock-step — the live state is what gives mid-program measurement
//    (quantum conditions, print) real semantics;
//  * allocate registers as quantum variables are declared;
//  * record+execute gates, measurements, resets, and inlined sub-circuits
//    (the Grover machinery behind the `in` operator).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/value.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::lang {

class QuantumCircuitHandler {
public:
  explicit QuantumCircuitHandler(std::uint64_t seed = 0x5eed0f5eedULL);

  /// Allocate `width` fresh |0> qubits as a named register (the name is
  /// uniquified if reused — shadowing, loops). Returns the register slice.
  QuantumRef allocate(const std::string& name, std::size_t width, TypeKind kind);

  /// The instruction log (exportable to QASM, measurable for depth/size).
  [[nodiscard]] const circ::QuantumCircuit& circuit() const noexcept {
    return circuit_;
  }

  /// Find-or-add a symbolic parameter in the logged circuit's table (the
  /// `param(...)` builtin). Throws CircuitError on a non-identifier name.
  circ::Param declare_parameter(const std::string& name) {
    return circuit_.parameter(name);
  }
  [[nodiscard]] const sim::StateVector& state() const;
  [[nodiscard]] bool has_state() const noexcept { return state_.has_value(); }
  [[nodiscard]] std::size_t num_qubits() const noexcept {
    return circuit_.num_qubits();
  }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  // ---- gate recording (logged + applied live) -------------------------------

  /// Append a unitary instruction to the log and apply it to the live state.
  void apply(circ::Instruction instruction);

  // Convenience wrappers over apply() for the common single-qubit gates,
  // broadcasting across a register slice.
  void h(const QuantumRef& ref);
  void x(const QuantumRef& ref);
  void y(const QuantumRef& ref);
  void z(const QuantumRef& ref);
  void s(const QuantumRef& ref);
  void t(const QuantumRef& ref);
  void phase(double lambda, const QuantumRef& ref);
  void cx(std::size_t control, std::size_t target);
  void swap(std::size_t a, std::size_t b);
  void barrier();

  /// Encode the low `ref.width` bits of `value` with X gates (register must
  /// be fresh |0>s).
  void encode_bits(const QuantumRef& ref, std::uint64_t value);

  /// CX fan-out copy of computational-basis content from src into a fresh
  /// dst (entangles; this is reversible-arithmetic copying, not cloning).
  void copy_basis(const QuantumRef& src, const QuantumRef& dst);

  /// Measure the register: logs measure instructions into a fresh classical
  /// register, collapses the live state, returns the packed outcome
  /// (ref qubit i -> bit i).
  std::uint64_t measure(const QuantumRef& ref);

  /// Reset all qubits of the register to |0> (logged + applied).
  void reset(const QuantumRef& ref);

  /// Inline a self-contained sub-circuit: every register of `sub` is
  /// reallocated here with `prefix`-qualified names, instructions are
  /// remapped, logged, and executed live (including mid-circuit
  /// measurements and c_if). Returns the sub-circuit's classical bits after
  /// execution, packed little-endian in sub-circuit clbit order.
  std::uint64_t compose_inline(const circ::QuantumCircuit& sub,
                               const std::string& prefix);

  /// Flat qubit indices of a register slice.
  [[nodiscard]] static std::vector<std::size_t> qubits_of(const QuantumRef& ref);

  /// Number of classical bits consumed so far (measurement history size).
  [[nodiscard]] std::size_t num_clbits() const noexcept {
    return circuit_.num_clbits();
  }

private:
  std::string unique_name(const std::string& base, const char* fallback);

  circ::QuantumCircuit circuit_;
  std::optional<sim::StateVector> state_;
  Rng rng_;
  std::map<std::string, std::size_t> name_counters_;
  std::vector<int> clbit_values_;  ///< live values of measured classical bits
};

}  // namespace qutes::lang
