// Runtime values of the Qutes interpreter.
//
// Classical values live directly in the variant; quantum values are
// references into the runtime's single quantum circuit/state (a register
// slice), which is also how the paper's Symbol objects refer to their
// QuantumRegister. Variables are passed by reference (paper §4), so scopes
// bind names to shared_ptr<Value>.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "qutes/common/error.hpp"
#include "qutes/lang/qtype.hpp"

namespace qutes::lang {

/// A slice of the runtime's quantum register file.
struct QuantumRef {
  std::size_t offset = 0;  ///< first qubit (flat index)
  std::size_t width = 0;   ///< number of qubits
  TypeKind kind = TypeKind::Qubit;
};

class Value;
using ValuePtr = std::shared_ptr<Value>;

struct ArrayValue {
  TypeKind element = TypeKind::Void;
  std::vector<ValuePtr> items;
};

class Value {
public:
  using Data = std::variant<std::monostate, bool, std::int64_t, double, std::string,
                            QuantumRef, ArrayValue>;

  Value() = default;
  Value(QType type, Data data) : type_(type), data_(std::move(data)) {}

  [[nodiscard]] static ValuePtr make_void();
  [[nodiscard]] static ValuePtr make_bool(bool v);
  [[nodiscard]] static ValuePtr make_int(std::int64_t v);
  [[nodiscard]] static ValuePtr make_float(double v);
  [[nodiscard]] static ValuePtr make_string(std::string v);
  [[nodiscard]] static ValuePtr make_quantum(QuantumRef ref);
  [[nodiscard]] static ValuePtr make_array(TypeKind element,
                                           std::vector<ValuePtr> items);
  /// A Float carrying its symbolic-parameter identity: `param("theta")`
  /// evaluates to the current binding but remembers which circuit parameter
  /// it is, so rotation builtins can log a symbolic instruction.
  [[nodiscard]] static ValuePtr make_param(double bound_value, int param_index);

  [[nodiscard]] const QType& type() const noexcept { return type_; }
  [[nodiscard]] TypeKind kind() const noexcept { return type_.kind; }
  [[nodiscard]] bool is_quantum() const noexcept { return type_.is_quantum() && !type_.is_array(); }
  [[nodiscard]] bool is_array() const noexcept { return type_.is_array(); }

  // Checked accessors; throw LangError on a kind mismatch (interpreter bugs
  // surface as internal errors rather than UB).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_float() const;  ///< accepts Int too (widening)
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const QuantumRef& as_quantum() const;
  [[nodiscard]] ArrayValue& as_array();
  [[nodiscard]] const ArrayValue& as_array() const;

  /// Overwrite contents in place (assignment through a reference).
  void assign(const Value& other) {
    type_ = other.type_;
    data_ = other.data_;
    param_index_ = other.param_index_;
  }

  /// Parameter-table index when this Float came from `param(...)` (and has
  /// flowed through nothing but plain assignment); -1 otherwise. Arithmetic
  /// produces fresh Values, so any computed angle is concrete again.
  [[nodiscard]] int param_index() const noexcept { return param_index_; }

  /// Debug/print rendering of a classical value ("true", "42", "1.5", ...).
  [[nodiscard]] std::string to_display_string() const;

private:
  QType type_ = QType::scalar(TypeKind::Void);
  Data data_;
  int param_index_ = -1;
};

}  // namespace qutes::lang
