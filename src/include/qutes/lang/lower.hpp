// AST -> bytecode lowering (the Vm's compile step).
//
// One pass over the typed AST per chunk, mirroring the tree-walk's scope
// state in lowering-time scope maps so every name resolves to a frame slot
// index exactly where the reference interpreter would have resolved it —
// names that don't resolve lower to Throw* ops that reproduce the runtime
// diagnostics if (and only if) the statement executes.
//
// The pass also performs the classical optimizations the tree-walk cannot:
// literal subtrees fold through the exact runtime operator rules
// (Runtime::classical_binary — same two's-complement wraparound, same IEEE
// results; subtrees whose evaluation would throw are left unfolded so the
// error still surfaces at runtime), short-circuit operators fold when the
// lhs decides, and statically-false/true conditions eliminate dead branches.
//
// Guards: the tree-walk bounds evaluate() recursion at kMaxEvalDepth; the
// lowerer enforces the same limit on static expression depth with the same
// message, and bounds statement nesting (belt over the parser's own guard),
// so lowering a pathological program raises LangError instead of
// overflowing the C++ stack.
#pragma once

#include "qutes/lang/ast.hpp"
#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/symbol_table.hpp"

namespace qutes::lang {

/// Lower a parsed program (pass 1 must already have filled `functions`).
/// `source_hash` is stored in the artifact for cache keying (see
/// Bytecode::save); pass fnv1a64 of the source text.
[[nodiscard]] Bytecode lower(Program& program, const FunctionTable& functions,
                             std::uint64_t source_hash = 0);

}  // namespace qutes::lang
