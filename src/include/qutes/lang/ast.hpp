// Abstract syntax tree of a Qutes program.
//
// Classic virtual-visitor hierarchy: the interpreter (pass 2) and the symbol
// collector (pass 1) are visitors, mirroring the paper's two AST traversals.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"
#include "qutes/lang/qtype.hpp"

namespace qutes::lang {

// ---- operators ---------------------------------------------------------------

enum class UnaryOp { Neg, Not, BitNot };
enum class BinaryOp {
  Add, Sub, Mul, Div, Mod, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
  In,  ///< substring search: pattern in qustring (compiles to Grover)
};

[[nodiscard]] const char* unary_op_name(UnaryOp op) noexcept;
[[nodiscard]] const char* binary_op_name(BinaryOp op) noexcept;

// ---- expressions ---------------------------------------------------------------

struct IntLitExpr;
struct FloatLitExpr;
struct BoolLitExpr;
struct StringLitExpr;
struct QuantumIntLitExpr;
struct QuantumStringLitExpr;
struct KetLitExpr;
struct ArrayLitExpr;
struct VarRefExpr;
struct IndexExpr;
struct CallExpr;
struct UnaryExpr;
struct BinaryExpr;

class ExprVisitor {
public:
  virtual ~ExprVisitor() = default;
  virtual void visit(IntLitExpr&) = 0;
  virtual void visit(FloatLitExpr&) = 0;
  virtual void visit(BoolLitExpr&) = 0;
  virtual void visit(StringLitExpr&) = 0;
  virtual void visit(QuantumIntLitExpr&) = 0;
  virtual void visit(QuantumStringLitExpr&) = 0;
  virtual void visit(KetLitExpr&) = 0;
  virtual void visit(ArrayLitExpr&) = 0;
  virtual void visit(VarRefExpr&) = 0;
  virtual void visit(IndexExpr&) = 0;
  virtual void visit(CallExpr&) = 0;
  virtual void visit(UnaryExpr&) = 0;
  virtual void visit(BinaryExpr&) = 0;
};

struct Expr {
  SourceLocation location;
  virtual ~Expr() = default;
  virtual void accept(ExprVisitor& visitor) = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  std::int64_t value = 0;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct FloatLitExpr final : Expr {
  double value = 0.0;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct BoolLitExpr final : Expr {
  bool value = false;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct StringLitExpr final : Expr {
  std::string value;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

/// `5q`: a quint initialized to basis state |5>.
struct QuantumIntLitExpr final : Expr {
  std::int64_t value = 0;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

/// `"0101"q`: a qustring initialized to the given bitstring.
struct QuantumStringLitExpr final : Expr {
  std::string bits;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

enum class KetKind { Zero, One, Plus, Minus };

/// `|0>`, `|1>`, `|+>`, `|->`: a single qubit in the named state.
struct KetLitExpr final : Expr {
  KetKind kind = KetKind::Zero;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

/// `[a, b, c]` (classical array) or `[0, 3]q` (equal superposition of the
/// listed basis values, prepared on a fresh quint).
struct ArrayLitExpr final : Expr {
  std::vector<ExprPtr> elements;
  bool superposition = false;  ///< trailing 'q'
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct VarRefExpr final : Expr {
  std::string name;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct IndexExpr final : Expr {
  ExprPtr target;
  ExprPtr index;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct CallExpr final : Expr {
  std::string callee;
  std::vector<ExprPtr> args;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct UnaryExpr final : Expr {
  UnaryOp op = UnaryOp::Neg;
  ExprPtr operand;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

struct BinaryExpr final : Expr {
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
  void accept(ExprVisitor& v) override { v.visit(*this); }
};

// ---- statements ---------------------------------------------------------------

struct VarDeclStmt;
struct AssignStmt;
struct ExprStmt;
struct BlockStmt;
struct IfStmt;
struct WhileStmt;
struct ForeachStmt;
struct FuncDeclStmt;
struct ReturnStmt;
struct PrintStmt;
struct BarrierStmt;
struct GateStmt;

class StmtVisitor {
public:
  virtual ~StmtVisitor() = default;
  virtual void visit(VarDeclStmt&) = 0;
  virtual void visit(AssignStmt&) = 0;
  virtual void visit(ExprStmt&) = 0;
  virtual void visit(BlockStmt&) = 0;
  virtual void visit(IfStmt&) = 0;
  virtual void visit(WhileStmt&) = 0;
  virtual void visit(ForeachStmt&) = 0;
  virtual void visit(FuncDeclStmt&) = 0;
  virtual void visit(ReturnStmt&) = 0;
  virtual void visit(PrintStmt&) = 0;
  virtual void visit(BarrierStmt&) = 0;
  virtual void visit(GateStmt&) = 0;
};

struct Stmt {
  SourceLocation location;
  virtual ~Stmt() = default;
  virtual void accept(StmtVisitor& visitor) = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct VarDeclStmt final : Stmt {
  QType type;
  std::string name;
  ExprPtr init;  // may be null
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct AssignStmt final : Stmt {
  ExprPtr lvalue;                      ///< VarRefExpr or IndexExpr
  std::optional<BinaryOp> compound;    ///< nullopt for '=', op for '+=' etc.
  ExprPtr value;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct ExprStmt final : Stmt {
  ExprPtr expr;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct BlockStmt final : Stmt {
  std::vector<StmtPtr> statements;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct IfStmt final : Stmt {
  ExprPtr condition;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct WhileStmt final : Stmt {
  ExprPtr condition;
  StmtPtr body;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct ForeachStmt final : Stmt {
  std::string var_name;
  ExprPtr iterable;
  StmtPtr body;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct Param {
  QType type;
  std::string name;
};

struct FuncDeclStmt final : Stmt {
  QType return_type;
  std::string name;
  std::vector<Param> params;
  std::unique_ptr<BlockStmt> body;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct ReturnStmt final : Stmt {
  ExprPtr value;  // may be null
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct PrintStmt final : Stmt {
  ExprPtr value;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

struct BarrierStmt final : Stmt {
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

/// The built-in gate statements: `hadamard q;`, `not a, b;`, ...
enum class GateKind { Not, PauliY, PauliZ, Hadamard, Phase, SGate, TGate,
                      MeasureStmt, ResetStmt };

[[nodiscard]] const char* gate_kind_name(GateKind kind) noexcept;

struct GateStmt final : Stmt {
  GateKind gate = GateKind::Not;
  std::vector<ExprPtr> operands;
  void accept(StmtVisitor& v) override { v.visit(*this); }
};

/// A parsed program: top-level statements (including function declarations).
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace qutes::lang
