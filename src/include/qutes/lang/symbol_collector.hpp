// Pass 1 of the paper's two-pass compilation: walk the AST instantiating
// symbols — function declarations into the FunctionTable, plus structural
// validation that doesn't need runtime values (duplicate parameters,
// function declarations only at top level, return placement).
#pragma once

#include "qutes/lang/ast.hpp"
#include "qutes/lang/diagnostics.hpp"
#include "qutes/lang/symbol_table.hpp"

namespace qutes::lang {

class SymbolCollector final : public StmtVisitor {
public:
  SymbolCollector(FunctionTable& functions, DiagnosticEngine& diagnostics)
      : functions_(functions), diagnostics_(diagnostics) {}

  /// Run pass 1 over the program. Throws LangError on structural errors.
  void collect(Program& program);

  void visit(VarDeclStmt&) override;
  void visit(AssignStmt&) override;
  void visit(ExprStmt&) override;
  void visit(BlockStmt&) override;
  void visit(IfStmt&) override;
  void visit(WhileStmt&) override;
  void visit(ForeachStmt&) override;
  void visit(FuncDeclStmt&) override;
  void visit(ReturnStmt&) override;
  void visit(PrintStmt&) override;
  void visit(BarrierStmt&) override;
  void visit(GateStmt&) override;

private:
  FunctionTable& functions_;
  DiagnosticEngine& diagnostics_;
  bool at_top_level_ = true;
  bool inside_function_ = false;
};

}  // namespace qutes::lang
