// The bytecode dispatch VM — the compiled execution engine.
//
// Executes lang::Bytecode (lower.hpp) with an explicit value stack and an
// explicit frame stack: no per-node virtual dispatch, no recursion, no name
// lookups (slots were resolved at lowering time). Every value-level
// operation delegates to the same lang::Runtime the tree-walking
// Interpreter uses, so the two engines produce bit-identical circuits,
// measurement draws, outputs, and diagnostics; `--exec-mode ast` keeps the
// tree-walk available as the differential reference.
//
// The VM is defensive against adversarial artifacts (a load()ed file is
// attacker-controlled input for a future qutesd daemon): the loader
// validates all static indices, and the dispatch loop uses checked stack
// pops so even a semantically-nonsense instruction stream raises a clean
// LangError instead of corrupting memory.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/builtins.hpp"
#include "qutes/lang/runtime.hpp"

namespace qutes::lang {

struct VmOptions {
  std::uint64_t seed = 0x5eed0f5eedULL;
  /// Mirror `print` output here as well as capturing it (nullptr = capture
  /// only).
  std::ostream* echo = nullptr;
  /// Bindings for `param(...)` declarations, in declaration order
  /// (RunConfig::bind_params).
  std::vector<double> bind_params{};
  /// Evaluate unbound `param(...)` uses as 0.0 placeholders instead of
  /// erroring (the qutesd canonical compile).
  bool allow_unbound_params = false;
};

class Vm {
public:
  explicit Vm(const Bytecode& bytecode, VmOptions options = {});

  /// Execute the top-level chunk. Single-use, like the Interpreter: a thrown
  /// LangError leaves the VM dead.
  void run();

  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }

private:
  struct Frame {
    const Chunk* chunk = nullptr;
    std::size_t pc = 0;
    std::vector<ValuePtr> slots;          ///< null = unbound (reads as undeclared)
    std::vector<std::uint8_t> declared;   ///< Declare executed (may be unbound)
    std::vector<std::uint32_t> declared_at;  ///< location pool idx per slot
    std::vector<std::uint64_t> loops;     ///< while-iteration budgets
    struct Iter {
      std::vector<ValuePtr> items;
      std::size_t next = 0;
    };
    std::vector<Iter> iters;
    std::uint32_t call_loc = 0;  ///< location pool idx of the call site
  };

  void exec_loop(std::uint64_t& steps);
  Frame make_frame(const Chunk& chunk, std::uint32_t call_loc) const;

  [[nodiscard]] SourceLocation loc_of(std::uint32_t idx) const {
    return bc_.locations[idx];
  }
  ValuePtr pop(std::uint32_t loc_idx);
  ValuePtr& peek(std::uint32_t loc_idx);
  const BuiltinFn& builtin_of(std::uint32_t name_idx, std::uint32_t loc_idx);

  // --- scalar temporary recycling -----------------------------------------
  // Classical-heavy programs churn through one heap-allocated Value per
  // pushed literal and per binary result. A temporary whose use_count() is 1
  // is provably unaliased (variables alias their values by reference, so a
  // captured pointer always shows up in the count), which makes reusing its
  // heap cell safe: no other observer exists. Recycled cells feed the next
  // PushInt/PushBool/result instead of a fresh allocation.
  void push_scalar(Value&& scratch);
  void push_int(std::int64_t v);
  void push_bool(bool v);
  void recycle(ValuePtr&& v) noexcept;
  /// Same-kind classical-scalar assignment inline (Runtime's coerce is an
  /// identity there); anything else delegates to Runtime::assign_plain.
  void assign_scalar_or_plain(const ValuePtr& slot, const ValuePtr& rhs,
                              std::uint32_t loc_idx);
  /// Inline `int op int` evaluation, bit-exact with Runtime::classical_binary
  /// (wraparound arithmetic, identical error strings). Returns false for any
  /// operand/op shape it does not cover; the caller falls back to Runtime.
  bool try_int_binary(BinaryOp op, const ValuePtr& lhs, const ValuePtr& rhs,
                      std::uint32_t loc_idx);

  const Bytecode& bc_;
  Runtime runtime_;
  std::vector<ValuePtr> stack_;
  std::vector<Frame> frames_;
  std::vector<Runtime::SupBuilder> sups_;
  std::vector<Runtime::ArrBuilder> arrs_;
  /// Builtins resolved once per name (index = string pool slot).
  std::vector<const BuiltinFn*> builtin_cache_;
  /// Unaliased scalar cells awaiting reuse (see push_scalar/recycle).
  std::vector<ValuePtr> free_cells_;
  std::size_t call_depth_ = 0;
};

}  // namespace qutes::lang
