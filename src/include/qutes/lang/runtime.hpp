// Shared operational semantics of the Qutes language runtime.
//
// Both execution engines — the tree-walking Interpreter (pass 2 of the
// paper's pipeline) and the bytecode Vm (the compiled hot path) — delegate
// every value-level operation to this one class: binary/unary operators with
// the automatic-measurement rule, quantum arithmetic (Draper adders, rotate
// shifts, Grover substring search), literal construction, declaration
// defaulting/coercion, assignment, printing, foreach expansion, and gate
// broadcasting. Keeping a single copy of these rules is what makes the two
// engines bit-identical: same circuit-builder calls in the same order, same
// RNG draw order, same LangError messages.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "qutes/lang/ast.hpp"
#include "qutes/lang/casting_handler.hpp"
#include "qutes/lang/circuit_handler.hpp"
#include "qutes/lang/value.hpp"

namespace qutes::lang {

// Execution limits shared by both engines (and by the lowering pass, which
// enforces the expression-depth guard statically — see lower.hpp).
inline constexpr std::size_t kMaxCallDepth = 200;
inline constexpr std::size_t kMaxEvalDepth = 1000;
inline constexpr std::size_t kDefaultQuintWidth = 4;
inline constexpr std::size_t kMaxWhileIterations = 1u << 20;

class Runtime {
public:
  explicit Runtime(std::uint64_t seed, std::ostream* echo = nullptr);

  [[nodiscard]] QuantumCircuitHandler& handler() noexcept { return handler_; }
  [[nodiscard]] TypeCastingHandler& casting() noexcept { return casting_; }
  [[nodiscard]] std::string captured_output() const { return captured_.str(); }
  void emit_output(const std::string& text);

  /// Configure symbolic-parameter bindings for this run (RunConfig::
  /// bind_params / allow_unbound_params, set by both engines before
  /// execution). Values bind `param(...)` declarations in declaration order.
  void set_bind_params(std::vector<double> values, bool allow_unbound) {
    bind_params_ = std::move(values);
    allow_unbound_params_ = allow_unbound;
  }

  /// The `param(name)` builtin: find-or-add the symbolic parameter in the
  /// logged circuit and return its current binding as a param-tagged Float.
  /// Unbound use (declaration index beyond the provided bindings) is a
  /// LangError naming the parameter — unless allow_unbound was set, in which
  /// case the placeholder binding 0.0 is used (the qutesd canonical compile).
  ValuePtr declare_param(const std::string& name, SourceLocation loc);

  /// Measure iff quantum; classical values pass through untouched.
  [[nodiscard]] ValuePtr classical_of(const ValuePtr& value);

  // ---- operators ------------------------------------------------------------
  ValuePtr evaluate_binary(BinaryOp op, const ValuePtr& lhs, const ValuePtr& rhs,
                           SourceLocation loc);
  ValuePtr unary(UnaryOp op, const ValuePtr& operand, SourceLocation loc);
  /// Pure classical binary operator semantics (two's-complement wraparound,
  /// division traps, string/float rules). Static so the lowering pass can
  /// fold literal operands through the exact runtime rules.
  static ValuePtr classical_binary(BinaryOp op, const ValuePtr& lhs,
                                   const ValuePtr& rhs, SourceLocation loc);
  /// The `in` operator / `indexof` builtin (Grover substring search on
  /// quantum text).
  ValuePtr substring_in(const ValuePtr& pattern, const ValuePtr& text,
                        SourceLocation loc, bool want_index);
  ValuePtr index_of(const ValuePtr& pattern, const ValuePtr& text,
                    SourceLocation loc);
  /// `target[index]` read access (arrays, strings, quantum registers).
  ValuePtr index_value(const ValuePtr& target, const ValuePtr& index,
                       SourceLocation loc);

  // ---- literals -------------------------------------------------------------
  ValuePtr ket_lit(KetKind kind);
  ValuePtr quantum_int_lit(std::int64_t value, SourceLocation loc);
  ValuePtr quantum_string_lit(const std::string& bits, SourceLocation loc);

  /// Superposition literal `[v0, v1, ...]q`, built element-at-a-time so both
  /// engines interleave measurement draws and validity checks identically.
  struct SupBuilder {
    std::vector<std::uint64_t> values;
    std::uint64_t max_value = 0;
  };
  void sup_element(SupBuilder& builder, const ValuePtr& element,
                   SourceLocation loc);
  ValuePtr sup_finish(const SupBuilder& builder, SourceLocation loc);

  /// Classical array literal, element-at-a-time (same reason).
  struct ArrBuilder {
    TypeKind element = TypeKind::Void;
    std::vector<ValuePtr> items;
  };
  static void arr_element(ArrBuilder& builder, ValuePtr element,
                          SourceLocation loc);

  // ---- declarations & assignment -------------------------------------------
  /// Value for a declaration without an initializer (allocates quantum
  /// registers under the variable's name).
  ValuePtr default_init(const QType& type, const std::string& name,
                        SourceLocation loc);
  /// Coerce an evaluated initializer to the declared type (arrays coerce
  /// element-wise to the declared element type).
  ValuePtr bind_decl_init(const ValuePtr& value, const QType& type,
                          const std::string& name, SourceLocation loc);
  /// Plain `lvalue = rhs`: fresh (void) slots adopt the value's type; typed
  /// slots coerce to their own.
  void assign_plain(const ValuePtr& slot, const ValuePtr& rhs,
                    SourceLocation loc);
  /// Compound `lvalue op= rhs` (in-place quantum update or classical
  /// read-modify-write). `name` feeds the error messages.
  void compound_assign(const std::string& name, const ValuePtr& slot,
                       BinaryOp op, const ValuePtr& rhs, SourceLocation loc);

  // ---- statements -----------------------------------------------------------
  [[nodiscard]] std::string render_for_print(const ValuePtr& value);
  /// Expand a foreach iterable into its item sequence (arrays by reference,
  /// string characters, register qubits).
  std::vector<ValuePtr> iterate_items(const ValuePtr& iterable,
                                      SourceLocation loc);
  /// Apply a gate statement to one evaluated operand (arrays broadcast).
  void apply_gate_value(GateKind gate, const ValuePtr& value,
                        SourceLocation loc);

private:
  ValuePtr quantum_add_sub(BinaryOp op, const ValuePtr& lhs, const ValuePtr& rhs,
                           SourceLocation loc);
  ValuePtr quantum_shift(BinaryOp op, const ValuePtr& lhs, const ValuePtr& rhs,
                         SourceLocation loc, bool in_place);

  QuantumCircuitHandler handler_;
  TypeCastingHandler casting_;
  std::ostringstream captured_;
  std::ostream* echo_ = nullptr;
  std::vector<double> bind_params_;
  bool allow_unbound_params_ = false;
};

}  // namespace qutes::lang
