// TypeCastingHandler — the paper's component mediating every
// classical<->quantum conversion:
//  * promotion  (classical -> quantum): encodes the classical value into a
//    fresh register of the program circuit;
//  * measurement (quantum -> classical): appends measurements, collapses the
//    live state, and returns the classical result;
//  * coercion: the general assignment/declaration conversion combining both
//    directions plus the classical widenings.
#pragma once

#include <string>

#include "qutes/lang/circuit_handler.hpp"
#include "qutes/lang/value.hpp"

namespace qutes::lang {

class TypeCastingHandler {
public:
  explicit TypeCastingHandler(QuantumCircuitHandler& handler) : handler_(handler) {}

  /// Promote a classical scalar to its quantum counterpart on a fresh
  /// register named after the destination variable. `width_hint` overrides
  /// the inferred quint width (0 = infer from the value, minimum 1).
  [[nodiscard]] ValuePtr promote(const Value& classical, const std::string& name,
                                 std::size_t width_hint, SourceLocation loc);

  /// Measure a quantum value into its classical counterpart
  /// (qubit -> bool, quint -> int, qustring -> string).
  [[nodiscard]] ValuePtr measure_to_classical(const Value& quantum);

  /// Coerce `value` for binding to a `target`-typed variable called `name`.
  /// Quantum -> quantum of the same kind aliases (no cloning); classical ->
  /// quantum promotes; quantum -> classical measures; classical widenings
  /// (int -> float, etc.) convert. Throws LangError on impossible casts.
  [[nodiscard]] ValuePtr coerce(const ValuePtr& value, const QType& target,
                                const std::string& name, SourceLocation loc);

  /// Boolean of a condition expression: quantum operands are measured first
  /// (the paper's rule for if/while).
  [[nodiscard]] bool condition_bool(const Value& value, SourceLocation loc);

  /// Quint width that promotion would choose for an integer value.
  [[nodiscard]] static std::size_t width_for_int(std::int64_t value);

private:
  QuantumCircuitHandler& handler_;
};

}  // namespace qutes::lang
