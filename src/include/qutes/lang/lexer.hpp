// Hand-written lexer for Qutes source (replaces the paper's ANTLR-generated
// front end).
//
// Notable lexemes beyond the usual C-family set:
//   5q        quantum integer literal (basis state |5>)
//   "0101"q   quantum string literal (a qustring initializer)
//   |0> |1> |+> |->   single-qubit ket literals
#pragma once

#include <string>
#include <vector>

#include "qutes/lang/token.hpp"

namespace qutes::lang {

class Lexer {
public:
  explicit Lexer(std::string source);

  /// Tokenize the whole input; the final token is always Eof. Throws
  /// LangError on an invalid character or malformed literal.
  [[nodiscard]] std::vector<Token> tokenize();

private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept;
  char advance() noexcept;
  [[nodiscard]] bool match(char expected) noexcept;
  void skip_whitespace_and_comments();
  [[nodiscard]] SourceLocation here() const noexcept;

  Token lex_number();
  Token lex_string();
  Token lex_identifier_or_keyword();
  Token lex_ket();

  std::string source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

/// Convenience: lex a full source string.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

}  // namespace qutes::lang
