// Built-in functions of the Qutes runtime — the paper's "common quantum
// operations as built-in language features": gate application in expression
// form (cx, ccx, cz, swap, mcz, p, rx/ry/rz), measurement, QFT, Bell pairs,
// Grover position search (indexof), and introspection (len, depth,
// gate_count).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"
#include "qutes/lang/value.hpp"

namespace qutes::lang {

class Runtime;

/// Builtins operate on the shared Runtime (runtime.hpp), so both execution
/// engines — tree-walk interpreter and bytecode VM — call the same
/// implementations.
using BuiltinFn = std::function<ValuePtr(Runtime&, std::vector<ValuePtr>&,
                                         SourceLocation)>;

/// Name -> implementation for every builtin. Stable across calls.
[[nodiscard]] const std::map<std::string, BuiltinFn>& builtin_table();

/// True if `name` names a builtin (user functions may not shadow these).
[[nodiscard]] bool is_builtin(const std::string& name);

}  // namespace qutes::lang
