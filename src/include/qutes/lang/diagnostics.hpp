// Diagnostic collection for the front end.
//
// Hard errors throw LangError immediately; the collector gathers
// non-fatal findings (warnings from pass 1: shadowing, suspicious casts,
// unused variables) so the CLI can print them without aborting.
#pragma once

#include <string>
#include <vector>

#include "qutes/common/error.hpp"

namespace qutes::lang {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string message;
  SourceLocation location;

  [[nodiscard]] std::string to_string() const;
};

class DiagnosticEngine {
public:
  void report(Severity severity, std::string message, SourceLocation location);
  void warn(std::string message, SourceLocation location) {
    report(Severity::Warning, std::move(message), location);
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool has_errors() const noexcept { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }

  /// All diagnostics rendered one per line.
  [[nodiscard]] std::string to_string() const;

private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace qutes::lang
