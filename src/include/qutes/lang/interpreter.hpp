// Pass 2 of the paper's two-pass compilation: the tree-walking interpreter.
//
// Classical operations execute natively; quantum operations are recorded
// into the QuantumCircuitHandler and applied to its live state in lock-step,
// so quantum values used in classical contexts (conditions, print,
// comparisons) trigger real measurements with real collapse — the paper's
// automatic-measurement rule.
//
// All value-level semantics live in lang::Runtime (runtime.hpp), shared with
// the bytecode Vm; this class contributes only the AST walk itself (scope
// chain, visitors, eval/call depth guards). It remains the differential
// reference for the Vm (`--exec-mode ast`).
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "qutes/lang/ast.hpp"
#include "qutes/lang/diagnostics.hpp"
#include "qutes/lang/runtime.hpp"
#include "qutes/lang/symbol_table.hpp"

namespace qutes::lang {

struct InterpreterOptions {
  std::uint64_t seed = 0x5eed0f5eedULL;
  /// Mirror `print` output here as well as capturing it (nullptr = capture
  /// only).
  std::ostream* echo = nullptr;
  /// Statement-level execution trace (the paper's "quantum specific
  /// debugging tools" direction): one line per executed statement with the
  /// source location and running circuit size, written to `trace`.
  std::ostream* trace = nullptr;
  /// Bindings for `param(...)` declarations, in declaration order
  /// (RunConfig::bind_params).
  std::vector<double> bind_params{};
  /// Evaluate unbound `param(...)` uses as 0.0 placeholders instead of
  /// erroring (the qutesd canonical compile).
  bool allow_unbound_params = false;
};

class Interpreter final : public ExprVisitor, public StmtVisitor {
public:
  explicit Interpreter(InterpreterOptions options = {});

  /// Run a program (pass 1 must already have filled `functions`).
  void run(Program& program, FunctionTable& functions);

  // ---- services used by builtins & the compiler facade ---------------------
  [[nodiscard]] Runtime& runtime() noexcept { return runtime_; }
  [[nodiscard]] QuantumCircuitHandler& handler() noexcept { return runtime_.handler(); }
  [[nodiscard]] TypeCastingHandler& casting() noexcept { return runtime_.casting(); }
  [[nodiscard]] const std::string captured_output() const {
    return runtime_.captured_output();
  }
  void emit_output(const std::string& text) { runtime_.emit_output(text); }

  /// Evaluate an expression to a value (used recursively and by builtins).
  ValuePtr evaluate(Expr& expr);

  /// Call a user function with already-evaluated arguments (by reference).
  ValuePtr call_user_function(FuncDeclStmt& fn, std::vector<ValuePtr> args,
                              SourceLocation loc);

  /// Render a value for `print`: quantum operands are measured first.
  [[nodiscard]] std::string render_for_print(const ValuePtr& value) {
    return runtime_.render_for_print(value);
  }

  /// Grover position search (the `indexof` builtin): like the `in` operator
  /// but returning the matched position (-1 on miss).
  [[nodiscard]] ValuePtr index_of(const ValuePtr& pattern, const ValuePtr& text,
                                  SourceLocation loc) {
    return runtime_.index_of(pattern, text, loc);
  }

  // ---- visitor interface ----------------------------------------------------
  void visit(IntLitExpr&) override;
  void visit(FloatLitExpr&) override;
  void visit(BoolLitExpr&) override;
  void visit(StringLitExpr&) override;
  void visit(QuantumIntLitExpr&) override;
  void visit(QuantumStringLitExpr&) override;
  void visit(KetLitExpr&) override;
  void visit(ArrayLitExpr&) override;
  void visit(VarRefExpr&) override;
  void visit(IndexExpr&) override;
  void visit(CallExpr&) override;
  void visit(UnaryExpr&) override;
  void visit(BinaryExpr&) override;

  void visit(VarDeclStmt&) override;
  void visit(AssignStmt&) override;
  void visit(ExprStmt&) override;
  void visit(BlockStmt&) override;
  void visit(IfStmt&) override;
  void visit(WhileStmt&) override;
  void visit(ForeachStmt&) override;
  void visit(FuncDeclStmt&) override;
  void visit(ReturnStmt&) override;
  void visit(PrintStmt&) override;
  void visit(BarrierStmt&) override;
  void visit(GateStmt&) override;

private:
  struct ReturnSignal {
    ValuePtr value;
  };

  void execute(Stmt& stmt);
  /// Resolve an lvalue expression to its storage slot.
  ValuePtr& resolve_slot(Expr& lvalue);

  std::shared_ptr<Scope> scope_;
  FunctionTable* functions_ = nullptr;
  Runtime runtime_;
  DiagnosticEngine diagnostics_;
  std::ostream* trace_ = nullptr;
  ValuePtr result_;  ///< expression result channel for the visitor
  std::size_t call_depth_ = 0;
  /// Recursion depth of evaluate(). The parser's nesting guard bounds
  /// *nested* constructs, but a flat chain (`1+1+…+1`) parses iteratively
  /// into an arbitrarily deep left-leaning tree; this bounds the recursive
  /// walk so pathological programs raise LangError instead of overflowing
  /// the stack (found by the ASan run of the tests/corpus replay). The
  /// lowering pass enforces the same limit statically (lower.hpp).
  std::size_t eval_depth_ = 0;
};

}  // namespace qutes::lang
