// The Qutes standard library (paper §6: "developing a comprehensive
// standard library containing essential quantum functions and algorithms").
//
// The library is written in Qutes itself — the functions below are parsed
// by the same front end and their bodies run through the same interpreter
// as user code, which both dogfoods the language and keeps the library
// trivially extensible. compile_source() loads it ahead of the user
// program unless RunConfig disables it; user programs may call any of
// these but may not redefine them.
#pragma once

#include <string>
#include <vector>

namespace qutes::lang {

/// Full source text of the standard library.
[[nodiscard]] const std::string& stdlib_source();

/// Names defined by the standard library (for diagnostics/tools).
[[nodiscard]] const std::vector<std::string>& stdlib_function_names();

}  // namespace qutes::lang
