// Matrix-product-state (tensor-network) quantum simulator.
//
// Where StateVector stores all 2^n amplitudes — a hard wall near 30 qubits —
// an MPS factorizes the state into one rank-3 tensor per qubit
//
//   |psi> = sum_{p_0..p_{n-1}} A_0[p_0] A_1[p_1] ... A_{n-1}[p_{n-1}] |p_0..p_{n-1}>
//
// where A_i[p] is a (bond x bond) matrix slice. Memory and gate cost scale
// with the *bond dimension* chi (the entanglement across each cut), not with
// 2^n, so low-entanglement circuits (GHZ, QFT on product states, shallow
// brickwork, sparse oracles) run at 40, 64, or more qubits — the same escape
// hatch Qiskit Aer's `matrix_product_state` method provides the paper's
// stack.
//
// Mechanics (the standard Vidal/DMRG toolkit):
//  * 1q gates contract locally into one site tensor — exact, O(chi^2);
//  * nearest-neighbor 2q gates contract the two site tensors into a theta
//    tensor, apply the 4x4 unitary, and split back via SVD. Singular values
//    below `truncation_threshold` (relative) are discarded and the bond is
//    capped at `max_bond_dim`; the discarded weight accumulates in
//    truncation_error() so callers can see how lossy a run was;
//  * distant 2q gates ride internal nearest-neighbor SWAP chains;
//  * sampling walks the chain qubit-by-qubit, conditioning a left
//    environment on the bits drawn so far against precomputed right
//    environments (Sampler) — O(n chi^3) per shot, no 2^n object anywhere.
//
// Contraction kernels are OpenMP-parallel over bond indices above a size
// threshold. Qubit ordering is little-endian (site i = qubit i), matching
// StateVector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "qutes/common/rng.hpp"
#include "qutes/sim/matrix.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::sim {

struct MpsOptions {
  /// Hard cap on any bond dimension; 0 = unlimited (exact up to
  /// `truncation_threshold`). Exact simulation of arbitrary n-qubit states
  /// needs chi = 2^(n/2), so a cap is what makes 48+ qubits tractable.
  std::size_t max_bond_dim = 0;
  /// Discard singular values below this fraction of the largest one in each
  /// split. 0 keeps everything representable (only exact numerical zeros are
  /// dropped) — the "truncation disabled" regime differential tests use.
  double truncation_threshold = 0.0;
};

class Mps {
public:
  /// |0...0> on `num_qubits` qubits (a bond-dimension-1 product state).
  explicit Mps(std::size_t num_qubits, MpsOptions options = {});

  /// Factorize a dense state into an MPS by successive SVD splits. Exact up
  /// to the options' truncation policy.
  static Mps from_statevector(const StateVector& psi, MpsOptions options = {});

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const MpsOptions& options() const noexcept { return options_; }

  // ---- gate application ---------------------------------------------------

  /// Apply a single-qubit unitary to `target` (exact, local contraction).
  void apply_1q(const Matrix2& u, std::size_t target);

  /// Apply a general two-qubit unitary; `q0` indexes the low bit of the 4x4
  /// basis, `q1` the high bit (same convention as StateVector::apply_2q).
  /// Non-neighboring pairs are routed through an internal SWAP chain.
  void apply_2q(const Matrix4& u, std::size_t q0, std::size_t q1);

  /// Apply `u` to `target` controlled on `control` being |1>.
  void apply_controlled_1q(const Matrix2& u, std::size_t control, std::size_t target);

  /// Apply a dense 1- or 2-qubit block: local bit j of the matrix acts on
  /// `targets[j]`. This is how the executor replays fused blocks; blocks
  /// wider than 2 qubits are rejected (the MPS consumes at most 2q blocks —
  /// see BackendCapabilities::max_fused_qubits).
  void apply_kq(const MatrixN& u, std::span<const std::size_t> targets);

  /// SWAP two qubits (adjacent pairs are one split; distant pairs chain).
  void apply_swap(std::size_t a, std::size_t b);

  /// Multiply the entire state by e^{i lambda}.
  void apply_global_phase(double lambda);

  // ---- measurement & sampling ---------------------------------------------

  /// P(qubit = 1), via left/right environment contraction.
  [[nodiscard]] double probability_one(std::size_t qubit) const;

  /// Projectively measure one qubit: collapses the chain and returns 0/1.
  int measure(std::size_t qubit, Rng& rng);

  /// Measure `qubit` and, if it came up 1, flip it back to |0>.
  void reset_qubit(std::size_t qubit, Rng& rng);

  /// Precomputed right environments for repeated sampling. Read-only once
  /// built, so one Sampler may be shared by any number of threads — each
  /// shot only needs its own Rng stream (Rng(seed, shot)) for the counts to
  /// come out bit-identical at any thread count.
  struct Sampler {
    /// right[i] is the chi_i x chi_i environment of sites i..n-1.
    std::vector<std::vector<cplx>> right;
  };
  [[nodiscard]] Sampler make_sampler() const;

  /// Sample one basis state (little-endian bit i = qubit i) without
  /// collapsing, by the conditional qubit-by-qubit walk.
  [[nodiscard]] std::uint64_t sample(const Sampler& sampler, Rng& rng) const;

  /// Convenience: build a one-shot sampler and draw.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  // ---- queries -------------------------------------------------------------

  /// Amplitude <basis|psi>: one O(n chi^2) chain contraction.
  [[nodiscard]] cplx amplitude(std::uint64_t basis) const;

  /// <Z_qubit> = P(0) - P(1).
  [[nodiscard]] double expectation_z(std::size_t qubit) const;

  /// L2 norm of the state (1 up to roundoff and truncation renormalization).
  [[nodiscard]] double norm() const;

  /// Rescale to unit norm. Throws SimulationError on a zero state.
  void normalize();

  /// Contract the full chain into a dense statevector. Only for small n
  /// (guarded at kMaxDenseQubits — the whole point of the MPS is not to
  /// build this object at 48 qubits).
  static constexpr std::size_t kMaxDenseQubits = 24;
  [[nodiscard]] std::vector<cplx> to_statevector() const;

  // ---- diagnostics ---------------------------------------------------------

  /// Bond dimension to the right of site i (chi between qubits i and i+1).
  [[nodiscard]] std::size_t bond_dim(std::size_t i) const;

  /// Largest bond dimension currently in the chain.
  [[nodiscard]] std::size_t max_bond_dim() const noexcept;

  /// Largest bond dimension reached at any point of the evolution.
  [[nodiscard]] std::size_t max_bond_dim_reached() const noexcept {
    return max_bond_reached_;
  }

  /// Cumulative truncated probability weight: sum over every SVD split of
  /// (discarded singular values)^2 / (total)^2. 0 in the exact regime.
  [[nodiscard]] double truncation_error() const noexcept { return truncation_error_; }

  /// Number of lossy SVD splits so far (splits that actually discarded
  /// weight; 0 in the exact regime). Feeds the mps.svd_truncations metric.
  [[nodiscard]] std::size_t svd_truncations() const noexcept {
    return svd_truncations_;
  }

private:
  // Site tensor i has dims (dl_[i], 2, dr_[i]), flattened row-major as
  // t[(l * 2 + p) * dr + r]; dr_[i] == dl_[i+1], dl_[0] == dr_[n-1] == 1.
  std::vector<cplx>& site(std::size_t i) { return sites_[i]; }
  [[nodiscard]] const std::vector<cplx>& site(std::size_t i) const { return sites_[i]; }

  void check_qubit(std::size_t q, const char* what) const;

  /// Contract sites (i, i+1), apply the 4x4 `u` whose low bit sits on
  /// `low_site_is_q0 ? site i : site i+1`, split back with truncated SVD.
  void apply_2q_adjacent(const Matrix4& u, std::size_t i, bool low_site_is_q0);

  /// SWAP the physical indices of adjacent sites (i, i+1).
  void swap_adjacent(std::size_t i);

  /// Left environment of sites 0..q-1 (chi x chi, identity-like for q=0).
  [[nodiscard]] std::vector<cplx> left_environment(std::size_t q) const;
  /// Right environment of sites q..n-1.
  [[nodiscard]] std::vector<cplx> right_environment(std::size_t q) const;

  /// Project qubit q onto `outcome` and rescale by 1/sqrt(prob).
  void collapse(std::size_t qubit, int outcome, double prob);

  std::size_t num_qubits_ = 0;
  MpsOptions options_;
  std::vector<std::vector<cplx>> sites_;
  std::vector<std::size_t> dl_, dr_;
  std::size_t max_bond_reached_ = 1;
  double truncation_error_ = 0.0;
  std::size_t svd_truncations_ = 0;
};

}  // namespace qutes::sim
