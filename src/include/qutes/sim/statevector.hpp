// Dense state-vector quantum simulator.
//
// This is the execution substrate that replaces Qiskit Aer in the paper's
// stack. It stores all 2^n complex amplitudes of an n-qubit register and
// applies gates as strided in-place updates. Kernels are OpenMP-parallel
// above a size threshold; below it the loop overhead dominates and we stay
// serial.
//
// Qubit ordering is little-endian: qubit 0 is the least-significant bit of a
// basis-state index (Qiskit convention).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "qutes/common/rng.hpp"
#include "qutes/sim/matrix.hpp"

namespace qutes::sim {

/// Histogram of measured bitstrings (MSB-first keys), as returned by
/// sampling `shots` repetitions.
using Counts = std::map<std::string, std::uint64_t>;

class StateVector {
public:
  /// Hard qubit ceiling: 2^30 amplitudes is 16 GiB of complex<double>, the
  /// practical wall for a dense representation. Larger registers must use a
  /// representation that does not store 2^n amplitudes (the mps backend).
  static constexpr std::size_t kMaxQubits = 30;

  /// Construct |0...0> on `num_qubits` qubits (1..kMaxQubits). Throws
  /// SimulationError naming the limit — and pointing at `--backend mps` —
  /// when the register is too wide or the allocation itself fails.
  explicit StateVector(std::size_t num_qubits);

  /// Construct from explicit amplitudes; the length must be a power of two
  /// and the vector must be normalized (checked to 1e-8).
  static StateVector from_amplitudes(std::vector<cplx> amplitudes);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::uint64_t dim() const noexcept { return amps_.size(); }
  [[nodiscard]] std::span<const cplx> amplitudes() const noexcept { return amps_; }
  [[nodiscard]] cplx amplitude(std::uint64_t index) const;

  /// Reset the whole register to the computational basis state |index>.
  void set_basis_state(std::uint64_t index);

  /// Tensor `count` fresh |0> qubits onto the high end of the register.
  /// Existing amplitudes are preserved; this is how the Qutes runtime grows
  /// the circuit as variables are declared.
  void add_qubits(std::size_t count);

  // ---- gate application ---------------------------------------------------

  /// Apply a single-qubit unitary to `target`.
  void apply_1q(const Matrix2& u, std::size_t target);

  /// Apply `u` to `target` controlled on `control` being |1>.
  void apply_controlled_1q(const Matrix2& u, std::size_t control, std::size_t target);

  /// Apply `u` to `target` controlled on every qubit in `controls` being |1>.
  /// An empty control list degenerates to apply_1q.
  void apply_multi_controlled_1q(const Matrix2& u, std::span<const std::size_t> controls,
                                 std::size_t target);

  /// Apply a general two-qubit unitary; `q0` indexes the low bit of the 4x4
  /// basis, `q1` the high bit.
  void apply_2q(const Matrix4& u, std::size_t q0, std::size_t q1);

  /// Apply a dense k-qubit unitary to the listed qubits: local bit j of the
  /// matrix acts on `targets[j]`. This is the gather/scatter kernel behind
  /// the runtime gate-fusion engine (one sweep applies a whole fused block).
  /// Width-1 blocks route through the tuned apply_1q kernel.
  void apply_kq(const MatrixN& u, std::span<const std::size_t> targets);

  /// SWAP two qubits (specialized kernel: pure permutation, no arithmetic).
  void apply_swap(std::size_t a, std::size_t b);

  /// diag(1, e^{i lambda}) on `target` (specialized: touches half the amps).
  void apply_phase(double lambda, std::size_t target);

  /// Controlled phase: multiplies amplitudes with both bits set by e^{i lambda}.
  void apply_cphase(double lambda, std::size_t control, std::size_t target);

  /// Multiply the entire state by e^{i lambda}.
  void apply_global_phase(double lambda);

  // ---- measurement & sampling ---------------------------------------------

  /// P(qubit = 1).
  [[nodiscard]] double probability_one(std::size_t qubit) const;

  /// Full probability distribution over basis states (length dim()).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Projectively measure one qubit: collapses the state and returns 0/1.
  int measure(std::size_t qubit, Rng& rng);

  /// Measure every qubit (collapses to a single basis state); returns its index.
  std::uint64_t measure_all(Rng& rng);

  /// Sample a basis state from |amps|^2 *without* collapsing.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Sample `shots` outcomes of the listed qubits (all qubits if empty)
  /// without collapsing; keys are MSB-first bitstrings over those qubits.
  [[nodiscard]] Counts sample_counts(std::size_t shots, Rng& rng,
                                     std::span<const std::size_t> qubits = {}) const;

  /// Measure `qubit` and, if it came up 1, flip it back to |0>.
  void reset_qubit(std::size_t qubit, Rng& rng);

  // ---- diagnostics ---------------------------------------------------------

  /// L2 norm of the state (should be 1 up to roundoff).
  [[nodiscard]] double norm() const;

  /// Rescale to unit norm. Throws SimulationError on a zero state.
  void normalize();

  /// <this|other>; registers must have equal dimension.
  [[nodiscard]] cplx inner_product(const StateVector& other) const;

  /// |<this|other>|^2.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// <Z_qubit> = P(0) - P(1).
  [[nodiscard]] double expectation_z(std::size_t qubit) const;

  /// Two-qubit ZZ correlator <Z_a Z_b>; +1 means perfectly correlated.
  [[nodiscard]] double expectation_zz(std::size_t a, std::size_t b) const;

private:
  void check_qubit(std::size_t q, const char* what) const;

  std::size_t num_qubits_;
  std::vector<cplx> amps_;
};

}  // namespace qutes::sim
